// Experiment E3 (Theorems 4.5 and 4.7): deciding the existential
// k-pebble game in polynomial time, O(n^{2k}) for fixed k. Measures
// winner computation versus instance size for k = 2, 3 and reports the
// enumerated position-universe size (which realizes the n^{2k} shape).

#include <benchmark/benchmark.h>

#include "games/pebble_game.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

void BM_PebbleGameWinner(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(3);
  Structure a = RandomDigraph(n, 2.0 / n, &rng);
  Structure b = RandomDigraph(4, 0.4, &rng, /*allow_loops=*/true);
  int64_t universe = 0;
  int64_t duplicator_wins = 0;
  for (auto _ : state) {
    PebbleGame game(a, b, k);
    universe = game.UniverseSize();
    duplicator_wins += game.DuplicatorWins() ? 1 : 0;
  }
  state.counters["universe"] = static_cast<double>(universe);
  state.counters["duplicator_wins"] = duplicator_wins > 0 ? 1 : 0;
}

void PebbleArgs(benchmark::internal::Benchmark* b) {
  for (int n : {6, 9, 12, 15, 18}) {
    b->Args({n, 2});
  }
  for (int n : {6, 9, 12}) {
    b->Args({n, 3});
  }
}

BENCHMARK(BM_PebbleGameWinner)->Apply(PebbleArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cspdb
