// Serving-layer benchmarks (ISSUE 5): cache hit vs miss latency, the
// canonicalization cost that the hit path pays, skewed-stream replay hit
// rates, and overload shedding. Names follow BM_<op>/<size> and are
// distilled by bench/distill_bench.py --mode service into
// BENCH_service.json; the rate counters ride along as benchmark counters.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "csp/instance.h"
#include "exec/thread_pool.h"
#include "gen/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/shard.h"
#include "service/fingerprint.h"
#include "service/server.h"
#include "service/workload.h"
#include "util/rng.h"

namespace cspdb::service {
namespace {

CspInstance BenchCsp(int num_variables) {
  Rng rng(271828);
  return RandomBinaryCsp(num_variables, 4, num_variables * 3 / 2, 0.3, &rng);
}

// Exact nearest-rank quantile over the measured per-request latencies
// (sorts a copy). Benchmarks publish *exact* quantiles — the histogram's
// <=1%-error buckets are for always-on production metrics, not for the
// numbers BENCH_service.json archives.
double ExactQuantileNs(std::vector<int64_t> latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  // Same nearest-rank convention as HistogramSnapshot::ValueAtQuantile:
  // rank = ceil(q * count) - 1, clamped.
  const auto count = static_cast<int64_t>(latencies.size());
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  rank = std::max<int64_t>(1, std::min(rank, count)) - 1;
  return static_cast<double>(latencies[static_cast<std::size_t>(rank)]);
}

// Publishes p50/p99/p999 latency counters from `latencies_ns`.
void PublishQuantiles(benchmark::State& state,
                      std::vector<int64_t> latencies_ns) {
  state.counters["p50_ns"] = ExactQuantileNs(latencies_ns, 0.50);
  state.counters["p99_ns"] = ExactQuantileNs(latencies_ns, 0.99);
  state.counters["p999_ns"] = ExactQuantileNs(std::move(latencies_ns), 0.999);
}

// Latency of a guaranteed cache hit: canonicalize + lookup + map-back.
void BM_service_hit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  CspdbService service;
  ServiceRequest request = SolveCspRequest{BenchCsp(n)};
  benchmark::DoNotOptimize(service.Handle(request));  // warm
  for (auto _ : state) {
    Response r = service.Handle(request);
    benchmark::DoNotOptimize(r);
  }
  const ServiceStats stats = service.stats();
  state.counters["hit_rate"] =
      stats.requests > 0
          ? static_cast<double>(stats.cache_hits) / stats.requests
          : 0.0;
}
BENCHMARK(BM_service_hit)->Arg(12)->Arg(24)->Arg(48);

// Latency of a guaranteed miss (invalidated every iteration): the full
// canonicalize + engine + insert path on a small instance.
void BM_service_miss(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  CspdbService service;
  ServiceRequest request = SolveCspRequest{BenchCsp(n)};
  for (auto _ : state) {
    service.InvalidateKind(RequestKind::kSolveCsp);
    Response r = service.Handle(request);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_service_miss)->Arg(12)->Arg(24)->Arg(48);

// The fixed cost both paths pay: canonical labeling + fingerprint.
void BM_canonicalize_csp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CspInstance csp = BenchCsp(n);
  for (auto _ : state) {
    CanonicalCsp canon = CanonicalizeCsp(csp);
    benchmark::DoNotOptimize(canon);
  }
}
BENCHMARK(BM_canonicalize_csp)->Arg(12)->Arg(24)->Arg(48);

// End-to-end replay of a Zipf-skewed stream on a fresh service: ns/op is
// the whole-stream wall time; hit/coalesce rates ride as counters.
void BM_service_replay(benchmark::State& state) {
  WorkloadOptions workload;
  workload.num_requests = static_cast<int>(state.range(0));
  workload.pool_size = 12;
  workload.zipf_s = 1.1;
  workload.seed = 7;
  const std::vector<ServiceRequest> stream = GenerateRequestStream(workload);
  double hit_rate = 0.0;
  std::vector<int64_t> latencies_ns;
  for (auto _ : state) {
    CspdbService service;
    latencies_ns.clear();
    latencies_ns.reserve(stream.size());
    for (const ServiceRequest& request : stream) {
      Response r = service.Handle(request);
      latencies_ns.push_back(r.latency_ns);
      benchmark::DoNotOptimize(r);
    }
    const ServiceStats stats = service.stats();
    hit_rate = stats.requests > 0
                   ? static_cast<double>(stats.cache_hits) / stats.requests
                   : 0.0;
  }
  state.counters["hit_rate"] = hit_rate;
  state.counters["requests"] = static_cast<double>(stream.size());
  PublishQuantiles(state, std::move(latencies_ns));
}
BENCHMARK(BM_service_replay)->Arg(256)->Unit(benchmark::kMillisecond);

// Overload: a burst of 4x max_pending short-deadline submissions against
// a 2-thread pool. ns/op is burst-to-drain wall time; the shed/rejected
// split shows the admission queue and deadline checks doing their job.
void BM_service_overload(benchmark::State& state) {
  const int max_pending = static_cast<int>(state.range(0));
  const int burst = 4 * max_pending;
  WorkloadOptions workload;
  workload.num_requests = burst;
  workload.pool_size = 16;
  workload.seed = 11;
  const std::vector<ServiceRequest> stream = GenerateRequestStream(workload);
  int64_t shed = 0, rejected = 0, total = 0;
  std::vector<int64_t> latencies_ns;
  for (auto _ : state) {
    exec::ThreadPool pool(2);
    {
      ServiceOptions options;
      options.pool = &pool;
      options.max_pending = max_pending;
      options.default_timeout_ns = 500'000;  // 0.5ms: most queued sheds
      CspdbService service(options);
      std::vector<std::future<Response>> futures;
      futures.reserve(stream.size());
      for (const ServiceRequest& request : stream) {
        futures.push_back(service.Submit(request));
      }
      latencies_ns.clear();
      latencies_ns.reserve(futures.size());
      for (auto& f : futures) {
        Response r = f.get();
        // End-to-end as the caller saw it: queue wait + handling.
        latencies_ns.push_back(r.queue_wait_ns + r.latency_ns);
        benchmark::DoNotOptimize(r);
      }
      const ServiceStats stats = service.stats();
      shed = stats.shed_deadline;
      rejected = stats.rejected;
      total = stats.requests;
    }
  }
  state.counters["shed_rate"] =
      total > 0 ? static_cast<double>(shed) / total : 0.0;
  state.counters["rejected_rate"] =
      total > 0 ? static_cast<double>(rejected) / total : 0.0;
  // Worker threads driving the service: lets the distiller stamp
  // oversubscribed=true when this exceeds the machine's CPUs. (Not
  // named "threads": Google Benchmark already emits a builtin threads
  // field that would shadow the counter in the JSON.)
  state.counters["worker_threads"] = 2.0;
  PublishQuantiles(state, std::move(latencies_ns));
}
BENCHMARK(BM_service_overload)->Arg(64)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Networked saturation: a real two-node loopback cluster (sockets, epoll
// loops, consistent-hash routing) driven closed-loop by N concurrent
// client connections. The arg is the connection count — in a closed loop
// that IS the offered load. ns/op is whole-replay wall time; the
// counters publish exact latency quantiles, achieved throughput, and the
// local/remote serving split. Distilled into the "saturation" section of
// BENCH_service.json.

/// One in-process cluster node with its own worker pool (nodes must not
/// share one: a routed request blocks a pool thread on its peer's reply).
struct BenchNode {
  BenchNode() : pool(2) {
    ServiceOptions options;
    options.pool = &pool;
    service = std::make_unique<CspdbService>(options);
  }

  exec::ThreadPool pool;
  std::unique_ptr<CspdbService> service;
  std::unique_ptr<net::ShardRouter> router;
  std::unique_ptr<net::NetServer> server;
};

/// Two clustered nodes on loopback ports (pid-salted base, retried on
/// bind collision). Empty on repeated failure.
std::vector<std::unique_ptr<BenchNode>> StartBenchCluster() {
  const int base_port = 26000 + static_cast<int>(getpid() % 20000);
  for (int attempt = 0; attempt < 5; ++attempt) {
    std::vector<std::string> addresses;
    for (int i = 0; i < 2; ++i) {
      addresses.push_back("127.0.0.1:" +
                          std::to_string(base_port + attempt * 2 + i));
    }
    std::vector<net::PeerId> members;
    for (const std::string& address : addresses) members.push_back({address});
    std::vector<std::unique_ptr<BenchNode>> nodes;
    bool ok = true;
    for (int i = 0; i < 2; ++i) {
      auto node = std::make_unique<BenchNode>();
      node->router = std::make_unique<net::ShardRouter>(
          node->service.get(), addresses[i], members);
      net::ServerOptions server_options;
      server_options.listen_address = addresses[i];
      server_options.pool = &node->pool;
      node->server = std::make_unique<net::NetServer>(node->service.get(),
                                                      server_options);
      node->server->set_router(node->router.get());
      std::string error;
      if (!node->server->Start(&error)) {
        ok = false;
        break;
      }
      nodes.push_back(std::move(node));
    }
    if (ok) return nodes;
  }
  return {};
}

void BM_net_saturation(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<BenchNode>> nodes = StartBenchCluster();
  if (nodes.empty()) {
    state.SkipWithError("could not bind loopback ports");
    return;
  }
  WorkloadOptions workload;
  workload.num_requests = 400;
  workload.pool_size = 12;
  workload.zipf_s = 1.1;
  workload.seed = 7;
  const std::vector<ServiceRequest> stream = GenerateRequestStream(workload);

  std::vector<std::unique_ptr<net::Connection>> conns;
  for (int i = 0; i < connections; ++i) {
    std::string error;
    std::unique_ptr<net::Connection> conn =
        net::Connection::Dial(nodes[0]->server->address(), 2000, &error);
    if (conn == nullptr) {
      state.SkipWithError("dial failed");
      return;
    }
    conns.push_back(std::move(conn));
  }

  std::vector<int64_t> latencies_ns;
  double achieved_qps = 0.0;
  std::atomic<int64_t> call_errors{0};
  for (auto _ : state) {
    std::vector<std::vector<int64_t>> per_conn(conns.size());
    std::atomic<int> next{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(conns.size());
    for (std::size_t w = 0; w < conns.size(); ++w) {
      workers.emplace_back([&, w] {
        uint64_t id = 1;
        for (int i = next.fetch_add(1); i < workload.num_requests;
             i = next.fetch_add(1)) {
          std::string error;
          const auto start = std::chrono::steady_clock::now();
          std::optional<Response> r =
              conns[w]->Call(stream[i], id++, 0, 30000, &error);
          if (!r.has_value() || r->status != StatusCode::kOk) {
            call_errors.fetch_add(1);
            continue;
          }
          per_conn[w].push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double elapsed_s =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - t0)
            .count();
    achieved_qps =
        elapsed_s > 0 ? workload.num_requests / elapsed_s : 0.0;
    latencies_ns.clear();
    for (const std::vector<int64_t>& lane : per_conn) {
      latencies_ns.insert(latencies_ns.end(), lane.begin(), lane.end());
    }
  }
  if (call_errors.load() > 0) {
    state.SkipWithError("rpc errors during replay");
    return;
  }
  const net::RouterStats stats = nodes[0]->router->stats();
  const double routed =
      static_cast<double>(stats.local_hits + stats.remote_hits +
                          stats.remote_compute + stats.local_compute);
  state.counters["local_hit_rate"] =
      routed > 0 ? stats.local_hits / routed : 0.0;
  state.counters["remote_hit_rate"] =
      routed > 0 ? stats.remote_hits / routed : 0.0;
  state.counters["remote_compute_rate"] =
      routed > 0 ? stats.remote_compute / routed : 0.0;
  state.counters["achieved_qps"] = achieved_qps;
  state.counters["requests"] = static_cast<double>(workload.num_requests);
  state.counters["worker_threads"] = static_cast<double>(connections);
  PublishQuantiles(state, std::move(latencies_ns));
  for (auto& node : nodes) node->server->Shutdown();
}
// 12 matches the bench-smoke filter; 2 and 6 chart the approach to
// saturation on a small machine.
// No ->UseRealTime() etc: those modifiers suffix the benchmark name,
// which would break the distiller's BM_<op>/<size> match (it reads the
// real_time field either way). Iterations is pinned because the work
// runs in client threads, where cpu-time-based auto-tuning would spin
// forever; iteration 2+ replays against a warm cluster cache, which is
// the steady state we want to measure.
BENCHMARK(BM_net_saturation)
    ->Arg(2)
    ->Arg(6)
    ->Arg(12)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cspdb::service
