// Serving-layer benchmarks (ISSUE 5): cache hit vs miss latency, the
// canonicalization cost that the hit path pays, skewed-stream replay hit
// rates, and overload shedding. Names follow BM_<op>/<size> and are
// distilled by bench/distill_bench.py --mode service into
// BENCH_service.json; the rate counters ride along as benchmark counters.

#include <algorithm>
#include <cstdint>
#include <future>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "csp/instance.h"
#include "exec/thread_pool.h"
#include "gen/generators.h"
#include "service/fingerprint.h"
#include "service/server.h"
#include "service/workload.h"
#include "util/rng.h"

namespace cspdb::service {
namespace {

CspInstance BenchCsp(int num_variables) {
  Rng rng(271828);
  return RandomBinaryCsp(num_variables, 4, num_variables * 3 / 2, 0.3, &rng);
}

// Exact nearest-rank quantile over the measured per-request latencies
// (sorts a copy). Benchmarks publish *exact* quantiles — the histogram's
// <=1%-error buckets are for always-on production metrics, not for the
// numbers BENCH_service.json archives.
double ExactQuantileNs(std::vector<int64_t> latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  // Same nearest-rank convention as HistogramSnapshot::ValueAtQuantile:
  // rank = ceil(q * count) - 1, clamped.
  const auto count = static_cast<int64_t>(latencies.size());
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  rank = std::max<int64_t>(1, std::min(rank, count)) - 1;
  return static_cast<double>(latencies[static_cast<std::size_t>(rank)]);
}

// Publishes p50/p99/p999 latency counters from `latencies_ns`.
void PublishQuantiles(benchmark::State& state,
                      std::vector<int64_t> latencies_ns) {
  state.counters["p50_ns"] = ExactQuantileNs(latencies_ns, 0.50);
  state.counters["p99_ns"] = ExactQuantileNs(latencies_ns, 0.99);
  state.counters["p999_ns"] = ExactQuantileNs(std::move(latencies_ns), 0.999);
}

// Latency of a guaranteed cache hit: canonicalize + lookup + map-back.
void BM_service_hit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  CspdbService service;
  ServiceRequest request = SolveCspRequest{BenchCsp(n)};
  benchmark::DoNotOptimize(service.Handle(request));  // warm
  for (auto _ : state) {
    Response r = service.Handle(request);
    benchmark::DoNotOptimize(r);
  }
  const ServiceStats stats = service.stats();
  state.counters["hit_rate"] =
      stats.requests > 0
          ? static_cast<double>(stats.cache_hits) / stats.requests
          : 0.0;
}
BENCHMARK(BM_service_hit)->Arg(12)->Arg(24)->Arg(48);

// Latency of a guaranteed miss (invalidated every iteration): the full
// canonicalize + engine + insert path on a small instance.
void BM_service_miss(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  CspdbService service;
  ServiceRequest request = SolveCspRequest{BenchCsp(n)};
  for (auto _ : state) {
    service.InvalidateKind(RequestKind::kSolveCsp);
    Response r = service.Handle(request);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_service_miss)->Arg(12)->Arg(24)->Arg(48);

// The fixed cost both paths pay: canonical labeling + fingerprint.
void BM_canonicalize_csp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CspInstance csp = BenchCsp(n);
  for (auto _ : state) {
    CanonicalCsp canon = CanonicalizeCsp(csp);
    benchmark::DoNotOptimize(canon);
  }
}
BENCHMARK(BM_canonicalize_csp)->Arg(12)->Arg(24)->Arg(48);

// End-to-end replay of a Zipf-skewed stream on a fresh service: ns/op is
// the whole-stream wall time; hit/coalesce rates ride as counters.
void BM_service_replay(benchmark::State& state) {
  WorkloadOptions workload;
  workload.num_requests = static_cast<int>(state.range(0));
  workload.pool_size = 12;
  workload.zipf_s = 1.1;
  workload.seed = 7;
  const std::vector<ServiceRequest> stream = GenerateRequestStream(workload);
  double hit_rate = 0.0;
  std::vector<int64_t> latencies_ns;
  for (auto _ : state) {
    CspdbService service;
    latencies_ns.clear();
    latencies_ns.reserve(stream.size());
    for (const ServiceRequest& request : stream) {
      Response r = service.Handle(request);
      latencies_ns.push_back(r.latency_ns);
      benchmark::DoNotOptimize(r);
    }
    const ServiceStats stats = service.stats();
    hit_rate = stats.requests > 0
                   ? static_cast<double>(stats.cache_hits) / stats.requests
                   : 0.0;
  }
  state.counters["hit_rate"] = hit_rate;
  state.counters["requests"] = static_cast<double>(stream.size());
  PublishQuantiles(state, std::move(latencies_ns));
}
BENCHMARK(BM_service_replay)->Arg(256)->Unit(benchmark::kMillisecond);

// Overload: a burst of 4x max_pending short-deadline submissions against
// a 2-thread pool. ns/op is burst-to-drain wall time; the shed/rejected
// split shows the admission queue and deadline checks doing their job.
void BM_service_overload(benchmark::State& state) {
  const int max_pending = static_cast<int>(state.range(0));
  const int burst = 4 * max_pending;
  WorkloadOptions workload;
  workload.num_requests = burst;
  workload.pool_size = 16;
  workload.seed = 11;
  const std::vector<ServiceRequest> stream = GenerateRequestStream(workload);
  int64_t shed = 0, rejected = 0, total = 0;
  std::vector<int64_t> latencies_ns;
  for (auto _ : state) {
    exec::ThreadPool pool(2);
    {
      ServiceOptions options;
      options.pool = &pool;
      options.max_pending = max_pending;
      options.default_timeout_ns = 500'000;  // 0.5ms: most queued sheds
      CspdbService service(options);
      std::vector<std::future<Response>> futures;
      futures.reserve(stream.size());
      for (const ServiceRequest& request : stream) {
        futures.push_back(service.Submit(request));
      }
      latencies_ns.clear();
      latencies_ns.reserve(futures.size());
      for (auto& f : futures) {
        Response r = f.get();
        // End-to-end as the caller saw it: queue wait + handling.
        latencies_ns.push_back(r.queue_wait_ns + r.latency_ns);
        benchmark::DoNotOptimize(r);
      }
      const ServiceStats stats = service.stats();
      shed = stats.shed_deadline;
      rejected = stats.rejected;
      total = stats.requests;
    }
  }
  state.counters["shed_rate"] =
      total > 0 ? static_cast<double>(shed) / total : 0.0;
  state.counters["rejected_rate"] =
      total > 0 ? static_cast<double>(rejected) / total : 0.0;
  PublishQuantiles(state, std::move(latencies_ns));
}
BENCHMARK(BM_service_overload)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cspdb::service
