#include "simd_scalar_ref.h"

#include <bit>

namespace cspdb::benchref {

void AndInPlace(uint64_t* dst, const uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

int64_t PopCount(const uint64_t* words, std::size_t n) {
  int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

bool Intersects(const uint64_t* a, const uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

int64_t CountUnsupported(const uint64_t* valid, const uint64_t* rows,
                         std::size_t row_words, std::size_t num_rows) {
  int64_t unsupported = 0;
  for (std::size_t r = 0; r < num_rows; ++r) {
    if (!Intersects(valid, rows + r * row_words, row_words)) ++unsupported;
  }
  return unsupported;
}

}  // namespace cspdb::benchref
