#!/usr/bin/env python3
"""Distills Google-Benchmark JSON into the committed BENCH_*.json files.

Default mode pairs BM_<op>_baseline/<size> with BM_<op>_optimized/<size>
and emits one record per (op, size) with ns/op for both sides, the
speedup, and the peak-rows counter where the benchmark reports one. The
SIMD kernel pairs in bench_parallel use this naming too, so the kernels
distill takes bench_report's AND bench_parallel's raw JSON together.

--mode parallel instead groups BM_<op>_t<threads>/<size> (bench_parallel):
t1 is the true serial kernel, every other thread count gets a speedup
relative to it. An op with no t1 of its own (a suffixed design variant
like natural_join_striped) borrows the base op's t1 — strip the last
underscore token — and records which op it borrowed as baseline_op, so
design variants share one serial denominator. machine.num_cpus is
recorded, and any thread entry with threads > num_cpus is stamped
oversubscribed=true so readers can tell real scaling from
oversubscription on a small machine.

--mode service takes plain BM_<op>/<size> names (bench_service) and emits
ns/op plus any serving-layer counters the benchmark reported: rates
(hit_rate, shed_rate, rejected_rate, requests), exact per-request
latency quantiles (p50_ns, p99_ns, p999_ns — computed by the benchmark
from sorted latency vectors, not from histogram buckets), throughput
(achieved_qps), and the clustered local/remote serving split. Rows that
report a worker_threads counter get the same oversubscribed=true stamp as
--mode parallel when worker_threads > machine.num_cpus, so overload and
saturation numbers from a small machine are not read as real capacity.
(The counter is worker_threads, not threads: the library's own threads
field would shadow a counter of that name.)
net_* ops (the two-node loopback saturation sweep) are split into a
separate "saturation" section of the trajectory entry.

Usage: distill_bench.py <benchmark-json>... <output-json> [--label LABEL]
                        [--mode kernels|parallel|service]

Multiple input files are merged benchmark-by-benchmark (first file's
machine context wins) before distilling. Repeated runs of one benchmark
(--benchmark_repetitions) distill to the per-cell MINIMUM time: on a
shared machine the minimum is the least-contended estimate, and both
sides of every pair get the same treatment.
"""

import argparse
import datetime
import json
import os
import re
import subprocess
import sys


def git_head() -> str:
    """HEAD commit of the repo containing this script, or "unknown"."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"

NAME_RE = re.compile(r"^BM_(?P<op>\w+?)_(?P<side>baseline|optimized)/(?P<size>\d+)$")
PARALLEL_RE = re.compile(r"^BM_(?P<op>\w+?)_t(?P<threads>\d+)/(?P<size>\d+)$")
# Pinned-iteration benchmarks (BM_net_saturation) get an "/iterations:N"
# name suffix from the library; tolerate it.
SERVICE_RE = re.compile(
    r"^BM_(?P<op>\w+)/(?P<size>\d+)(?:/iterations:\d+)?$"
)
SERVICE_COUNTERS = (
    "hit_rate",
    "shed_rate",
    "rejected_rate",
    "requests",
    "worker_threads",
    "achieved_qps",
    "local_hit_rate",
    "remote_hit_rate",
    "remote_compute_rate",
    "p50_ns",
    "p99_ns",
    "p999_ns",
)


def keep_min(cell, slot, bench):
    """Fills cell[slot] with the fastest of the repetitions seen."""
    prev = cell.get(slot)
    if prev is None or bench["real_time"] < prev["real_time"]:
        cell[slot] = bench


def distill_kernels(report):
    """(op, size) -> {baseline, optimized} records for bench_report."""
    cells = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        m = NAME_RE.match(bench["name"])
        if not m:
            continue
        key = (m.group("op"), int(m.group("size")))
        keep_min(cells.setdefault(key, {}), m.group("side"), bench)

    kernels = []
    for (op, size), sides in sorted(cells.items()):
        if "baseline" not in sides or "optimized" not in sides:
            sys.stderr.write(f"warning: unpaired benchmark {op}/{size}\n")
            continue
        base = sides["baseline"]
        opt = sides["optimized"]
        base_ns = base["real_time"]  # time_unit is ns by default
        opt_ns = opt["real_time"]
        record = {
            "op": op,
            "size": size,
            "baseline_ns_per_op": round(base_ns, 1),
            "optimized_ns_per_op": round(opt_ns, 1),
            "speedup": round(base_ns / opt_ns, 2) if opt_ns > 0 else None,
        }
        if "peak_rows" in opt:
            record["peak_rows"] = int(opt["peak_rows"])
        kernels.append(record)
    return kernels


def distill_parallel(report, num_cpus=None):
    """(op, size) -> per-thread-count records for bench_parallel."""
    cells = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        m = PARALLEL_RE.match(bench["name"])
        if not m:
            continue
        key = (m.group("op"), int(m.group("size")))
        keep_min(cells.setdefault(key, {}), int(m.group("threads")), bench)

    kernels = []
    for (op, size), by_threads in sorted(cells.items()):
        baseline_op = op
        if 1 not in by_threads:
            # Suffixed design variants (natural_join_striped) share the
            # base op's serial kernel, so they borrow its t1.
            base = op.rsplit("_", 1)[0]
            if (base, size) in cells and 1 in cells[(base, size)]:
                baseline_op = base
                by_threads = dict(by_threads)
                by_threads[1] = cells[(base, size)][1]
            else:
                sys.stderr.write(f"warning: no t1 baseline for {op}/{size}\n")
                continue
        serial_ns = by_threads[1]["real_time"]
        record = {
            "op": op,
            "size": size,
            "serial_ns_per_op": round(serial_ns, 1),
            "threads": [],
        }
        if baseline_op != op:
            record["baseline_op"] = baseline_op
        for threads in sorted(by_threads):
            if threads == 1:
                continue
            ns = by_threads[threads]["real_time"]
            entry = {
                "threads": threads,
                "ns_per_op": round(ns, 1),
                "speedup_vs_serial": round(serial_ns / ns, 2)
                if ns > 0
                else None,
            }
            if num_cpus is not None and threads > num_cpus:
                entry["oversubscribed"] = True
            record["threads"].append(entry)
        kernels.append(record)
    return kernels


def distill_service(report, num_cpus=None):
    """BM_<op>/<size> -> (kernels, saturation) records for bench_service.

    net_* ops — the networked saturation sweep — land in the second list;
    everything else in the first. Rows reporting a threads counter above
    num_cpus are stamped oversubscribed=true (same convention as
    --mode parallel).
    """
    kernels = []
    saturation = []
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        m = SERVICE_RE.match(bench["name"])
        if not m:
            continue
        # real_time is reported in the benchmark's own unit (ns or ms).
        scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
            bench.get("time_unit", "ns"), 1
        )
        record = {
            "op": m.group("op"),
            "size": int(m.group("size")),
            "ns_per_op": round(bench["real_time"] * scale, 1),
        }
        for counter in SERVICE_COUNTERS:
            if counter in bench:
                record[counter] = round(float(bench[counter]), 4)
        if (
            num_cpus is not None
            and record.get("worker_threads") is not None
            and record["worker_threads"] > num_cpus
        ):
            record["oversubscribed"] = True
        target = saturation if m.group("op").startswith("net_") else kernels
        target.append(record)
    kernels.sort(key=lambda k: (k["op"], k["size"]))
    saturation.sort(key=lambda k: (k["op"], k["size"]))
    return kernels, saturation


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="+", metavar="json",
        help="one or more benchmark JSON inputs followed by the output path",
    )
    parser.add_argument("--label", default="trajectory entry")
    parser.add_argument(
        "--mode", choices=["kernels", "parallel", "service"], default="kernels"
    )
    opts = parser.parse_args()
    if len(opts.paths) < 2:
        sys.stderr.write("error: need at least one input and one output\n")
        return 1
    in_paths, out_path, label = opts.paths[:-1], opts.paths[-1], opts.label

    report = {"context": {}, "benchmarks": []}
    for in_path in in_paths:
        try:
            with open(in_path) as f:
                part = json.load(f)
        except OSError as e:
            sys.stderr.write(f"error: cannot read {in_path}: {e.strerror}\n")
            return 1
        except json.JSONDecodeError as e:
            sys.stderr.write(f"error: {in_path} is not valid JSON: {e}\n")
            return 1
        if not report["context"]:
            report["context"] = part.get("context", {})
        report["benchmarks"].extend(part.get("benchmarks", []))

    if opts.mode == "parallel":
        kernels = distill_parallel(
            report, num_cpus=report.get("context", {}).get("num_cpus")
        )
        if not kernels:
            sys.stderr.write("error: no BM_<op>_t<threads>/<size> benchmarks\n")
            return 1
    elif opts.mode == "service":
        kernels, saturation = distill_service(
            report, num_cpus=report.get("context", {}).get("num_cpus")
        )
        if not kernels and not saturation:
            sys.stderr.write("error: no BM_<op>/<size> benchmarks\n")
            return 1
    else:
        kernels = distill_kernels(report)
        if not kernels:
            sys.stderr.write(
                "error: no paired BM_<op>_<side>/<size> benchmarks\n"
            )
            return 1

    context = report.get("context", {})
    out = {
        "generated_by": "bench/run_benchmarks.sh",
        "machine": {
            "git_head": git_head(),
            # cspdb-lint: allow(wallclock) -- provenance stamp, not a measurement
            "generated_at": datetime.date.today().isoformat(),
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "cpu_scaling_enabled": context.get("cpu_scaling_enabled"),
            "build_type": context.get("library_build_type"),
        },
        "trajectory": [
            {
                "entry": label,
                # cspdb-lint: allow(wallclock) -- provenance stamp, not a measurement
                "date": datetime.date.today().isoformat(),
                "kernels": kernels,
            }
        ],
    }
    if opts.mode == "service":
        out["trajectory"][0]["saturation"] = saturation
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")

    if opts.mode == "service":
        kernels = kernels + saturation
    for k in kernels:
        if opts.mode == "service":
            rates = "  ".join(
                f"{c} {k[c]}" for c in SERVICE_COUNTERS if c in k
            )
            print(
                f"{k['op']:>20}/{k['size']:<6} "
                f"{k['ns_per_op']:>14.1f} ns  {rates}"
            )
        elif opts.mode == "parallel":
            scaling = "  ".join(
                f"t{t['threads']} {t['speedup_vs_serial']}x"
                for t in k["threads"]
            )
            print(
                f"{k['op']:>16}/{k['size']:<6} "
                f"serial {k['serial_ns_per_op']:>12.1f} ns  {scaling}"
            )
        else:
            print(
                f"{k['op']:>16}/{k['size']:<6} "
                f"baseline {k['baseline_ns_per_op']:>12.1f} ns  "
                f"optimized {k['optimized_ns_per_op']:>12.1f} ns  "
                f"speedup {k['speedup']}x"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
