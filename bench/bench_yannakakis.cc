// Experiment E8 (Section 6, acyclic joins): the Yannakakis semijoin
// algorithm versus left-to-right join evaluation on acyclic (chain and
// star) schemas. Reports peak intermediate cardinality. Expected shape:
// Yannakakis' peak stays near the input size while the naive order
// multiplies; Boolean (nonemptiness) answering via the full reducer never
// materializes a join at all.

#include <benchmark/benchmark.h>

#include "db/acyclic.h"
#include "db/algebra.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// A star schema: center attribute 0 with `legs` leg attributes; skewed
// center values to force join blowup.
std::vector<DbRelation> StarRelations(int legs, int rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<DbRelation> rels;
  for (int i = 0; i < legs; ++i) {
    DbRelation r({0, i + 1});
    for (int row = 0; row < rows; ++row) {
      r.AddRow({rng.UniformInt(0, 2), rng.UniformInt(0, rows - 1)});
    }
    rels.push_back(std::move(r));
  }
  return rels;
}

std::vector<DbRelation> ChainRelations(int length, int rows,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<DbRelation> rels;
  for (int i = 0; i < length; ++i) {
    DbRelation r({i, i + 1});
    for (int row = 0; row < rows; ++row) {
      r.AddRow({rng.UniformInt(0, rows / 2), rng.UniformInt(0, rows / 2)});
    }
    rels.push_back(std::move(r));
  }
  return rels;
}

void BM_YannakakisStar(benchmark::State& state) {
  int legs = static_cast<int>(state.range(0));
  std::vector<DbRelation> rels = StarRelations(legs, 40, 3);
  auto forest = BuildJoinForest(HypergraphOfSchemas(rels));
  int64_t peak = 0;
  for (auto _ : state) {
    DbRelation r = YannakakisEvaluate(*forest, rels, {0}, &peak);
    benchmark::DoNotOptimize(r.size());
  }
  state.counters["peak_rows"] = static_cast<double>(peak);
}

void BM_NaiveJoinStar(benchmark::State& state) {
  int legs = static_cast<int>(state.range(0));
  std::vector<DbRelation> rels = StarRelations(legs, 40, 3);
  int64_t peak = 0;
  for (auto _ : state) {
    DbRelation r = JoinAll(rels, &peak);
    benchmark::DoNotOptimize(r.size());
  }
  state.counters["peak_rows"] = static_cast<double>(peak);
}

void BM_YannakakisChainBoolean(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  std::vector<DbRelation> rels = ChainRelations(length, 60, 5);
  auto forest = BuildJoinForest(HypergraphOfSchemas(rels));
  int64_t nonempty = 0;
  for (auto _ : state) {
    nonempty += AcyclicJoinNonempty(*forest, rels) ? 1 : 0;
  }
  state.counters["nonempty"] = nonempty > 0 ? 1 : 0;
}

void BM_NaiveJoinChainBoolean(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  std::vector<DbRelation> rels = ChainRelations(length, 60, 5);
  int64_t peak = 0;
  int64_t nonempty = 0;
  for (auto _ : state) {
    nonempty += JoinAll(rels, &peak).empty() ? 0 : 1;
  }
  state.counters["nonempty"] = nonempty > 0 ? 1 : 0;
  state.counters["peak_rows"] = static_cast<double>(peak);
}

BENCHMARK(BM_YannakakisStar)->DenseRange(2, 4, 1);
BENCHMARK(BM_NaiveJoinStar)->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_YannakakisChainBoolean)->DenseRange(2, 10, 2);
BENCHMARK(BM_NaiveJoinChainBoolean)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace cspdb
