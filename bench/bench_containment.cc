// Experiment E2 (Propositions 2.2/2.3): conjunctive-query containment via
// canonical databases. Compares the homomorphism-based decision with the
// evaluation-based one as query size grows. Expected shape: both agree;
// the homomorphism search scales better than materializing the join.

#include <benchmark/benchmark.h>

#include "db/containment.h"
#include "db/conjunctive_query.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// A chain query Q(x0, x_n) :- E(x0,x1), ..., E(x_{n-1},x_n) with a few
// random chords.
ConjunctiveQuery ChainQuery(int length, int chords, uint64_t seed) {
  Rng rng(seed);
  std::vector<Atom> body;
  for (int i = 0; i < length; ++i) {
    body.push_back({"E", {i, i + 1}});
  }
  for (int c = 0; c < chords; ++c) {
    int u = rng.UniformInt(0, length);
    int v = rng.UniformInt(0, length);
    body.push_back({"E", {u, v}});
  }
  return ConjunctiveQuery(length + 1, {0, length}, std::move(body));
}

void BM_ContainmentViaHomomorphism(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  ConjunctiveQuery q1 = ChainQuery(length, 2, 11);
  ConjunctiveQuery q2 = ChainQuery(length, 0, 13);
  int64_t contained = 0;
  for (auto _ : state) {
    contained += IsContainedIn(q1, q2) ? 1 : 0;
  }
  state.counters["contained"] = contained > 0 ? 1 : 0;
}

void BM_ContainmentViaEvaluation(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  ConjunctiveQuery q1 = ChainQuery(length, 2, 11);
  ConjunctiveQuery q2 = ChainQuery(length, 0, 13);
  int64_t contained = 0;
  for (auto _ : state) {
    contained += IsContainedInViaEvaluation(q1, q2) ? 1 : 0;
  }
  state.counters["contained"] = contained > 0 ? 1 : 0;
}

BENCHMARK(BM_ContainmentViaHomomorphism)->DenseRange(4, 16, 4);
BENCHMARK(BM_ContainmentViaEvaluation)->DenseRange(4, 16, 4);

}  // namespace
}  // namespace cspdb
