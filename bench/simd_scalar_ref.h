// Frozen scalar word-loop references for the SIMD-vs-scalar benchmarks in
// bench_parallel.cc. These are hand-written copies of the pre-SIMD bitset
// kernels, deliberately NOT routed through util/simd.h: that header's
// scalar namespace is inline and would be compiled under the library's
// SIMD flags (and comdat-merged across TUs), which is exactly the
// contamination a baseline must avoid. This TU is compiled with the SIMD
// instruction sets disabled (see bench/CMakeLists.txt), so the measured
// baseline is what the repo shipped before the SIMD pass.

#ifndef CSPDB_BENCH_SIMD_SCALAR_REF_H_
#define CSPDB_BENCH_SIMD_SCALAR_REF_H_

#include <cstddef>
#include <cstdint>

namespace cspdb::benchref {

void AndInPlace(uint64_t* dst, const uint64_t* src, std::size_t n);

int64_t PopCount(const uint64_t* words, std::size_t n);

bool Intersects(const uint64_t* a, const uint64_t* b, std::size_t n);

/// The support-mask revision sweep shape: how many of `num_rows` rows
/// (each `row_words` words, laid out contiguously) share no set bit with
/// `valid` — the scalar twin of ConstraintSupport::CollectUnsupported.
int64_t CountUnsupported(const uint64_t* valid, const uint64_t* rows,
                         std::size_t row_words, std::size_t num_rows);

}  // namespace cspdb::benchref

#endif  // CSPDB_BENCH_SIMD_SCALAR_REF_H_
