// Experiment E1 (Proposition 2.1): CSP solvability as join evaluation.
// Compares backtracking search against natural-join evaluation on random
// binary CSPs as the number of constraints grows, and reports the peak
// intermediate join size. Expected shape: both decide identically; search
// stays cheap on loose instances, while the join pays for materialized
// intermediates as density rises.

#include <benchmark/benchmark.h>

#include "csp/solver.h"
#include "db/algebra.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

CspInstance MakeInstance(int vars, int constraints, double tightness,
                         uint64_t seed) {
  Rng rng(seed);
  return RandomBinaryCsp(vars, 3, constraints, tightness, &rng);
}

void BM_SolveBySearch(benchmark::State& state) {
  int vars = static_cast<int>(state.range(0));
  int constraints = static_cast<int>(state.range(1));
  CspInstance csp = MakeInstance(vars, constraints, 0.4, 7);
  int64_t solvable = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(csp);
    solvable += solver.Solve().has_value() ? 1 : 0;
  }
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
}

void BM_SolveByJoin(benchmark::State& state) {
  int vars = static_cast<int>(state.range(0));
  int constraints = static_cast<int>(state.range(1));
  CspInstance csp = MakeInstance(vars, constraints, 0.4, 7);
  int64_t peak = 0;
  int64_t solvable = 0;
  for (auto _ : state) {
    solvable += SolvableByJoin(csp, &peak) ? 1 : 0;
  }
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
  state.counters["peak_rows"] = static_cast<double>(peak);
}

void JoinVsSearchArgs(benchmark::internal::Benchmark* b) {
  for (int vars : {6, 8, 10, 12}) {
    for (int density : {1, 2, 3}) {  // constraints = density * vars / 2
      b->Args({vars, density * vars / 2});
    }
  }
}

BENCHMARK(BM_SolveBySearch)->Apply(JoinVsSearchArgs);
BENCHMARK(BM_SolveByJoin)->Apply(JoinVsSearchArgs);

}  // namespace
}  // namespace cspdb
