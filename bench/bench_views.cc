// Experiment E9/E10 (Theorems 7.1, 7.3, 7.5): view-based query answering
// via the reduction to CSP. Measures certain-answer decisions as the view
// extensions grow (data complexity — co-NP in the worst case, so the
// search may blow up on adversarial inputs), the one-time template
// construction cost, the CSP-to-views round trip, and the (polynomial)
// maximal-rewriting approximation. Expected shape: rewriting evaluation
// scales smoothly; exact certain-answer decisions are feasible at small
// scale and dominated by the homomorphism search.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "views/certain_answers.h"
#include "views/constraint_template.h"
#include "views/csp_to_views.h"
#include "views/rewriting.h"
#include "util/rng.h"

namespace cspdb {
namespace {

ViewSetting ChainSetting() {
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("ab", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("b", setting.alphabet)});
  setting.query = ParseRegex("(ab)*b", setting.alphabet);
  return setting;
}

ViewInstance RandomInstance(int objects, int edges_per_view,
                            uint64_t seed) {
  Rng rng(seed);
  ViewInstance instance;
  instance.num_objects = objects;
  instance.ext.resize(2);
  for (int i = 0; i < 2; ++i) {
    for (int e = 0; e < edges_per_view; ++e) {
      instance.ext[i].push_back({rng.UniformInt(0, objects - 1),
                                 rng.UniformInt(0, objects - 1)});
    }
  }
  return instance;
}

void BM_BuildConstraintTemplate(benchmark::State& state) {
  ViewSetting setting = ChainSetting();
  for (auto _ : state) {
    ConstraintTemplate tmpl = BuildConstraintTemplate(setting);
    benchmark::DoNotOptimize(tmpl.b.TotalTuples());
  }
}

void BM_CertainAnswerDecision(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  ViewSetting setting = ChainSetting();
  ViewInstance instance = RandomInstance(objects, objects, 7);
  ConstraintTemplate tmpl = BuildConstraintTemplate(setting);
  int64_t certain = 0;
  for (auto _ : state) {
    certain +=
        CertainAnswerViaCsp(tmpl, setting, instance, 0, objects - 1) ? 1
                                                                     : 0;
  }
  state.counters["certain"] = certain > 0 ? 1 : 0;
}

void BM_FullCertainAnswerSet(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  ViewSetting setting = ChainSetting();
  ViewInstance instance = RandomInstance(objects, objects, 7);
  int64_t size = 0;
  for (auto _ : state) {
    size = static_cast<int64_t>(CertainAnswers(setting, instance).size());
  }
  state.counters["certain_pairs"] = static_cast<double>(size);
}

void BM_RewritingAnswers(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  ViewSetting setting = ChainSetting();
  ViewInstance instance = RandomInstance(objects, 2 * objects, 9);
  int64_t size = 0;
  for (auto _ : state) {
    size = static_cast<int64_t>(RewritingAnswers(setting, instance).size());
  }
  state.counters["pairs"] = static_cast<double>(size);
}

void BM_CertainByKConsistencyApprox(benchmark::State& state) {
  // The polynomial Datalog-style certificate vs the exact co-NP check.
  int objects = static_cast<int>(state.range(0));
  ViewSetting setting = ChainSetting();
  ViewInstance instance = RandomInstance(objects, objects, 7);
  ConstraintTemplate tmpl = BuildConstraintTemplate(setting);
  int64_t certified = 0;
  for (auto _ : state) {
    certified += CertainByKConsistency(tmpl, setting, instance, 0,
                                       objects - 1, 2)
                     ? 1
                     : 0;
  }
  state.counters["certified"] = certified > 0 ? 1 : 0;
}

void BM_CspToViewsRoundTrip(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(13);
  Structure a = RandomDigraph(n, 2.0 / n, &rng);
  Structure b = RandomDigraph(2, 0.5, &rng, /*allow_loops=*/true);
  int64_t agree = 0;
  for (auto _ : state) {
    CspToViewsReduction red = ReduceCspToViewAnswering(a, b);
    bool not_certain =
        !CertainAnswerViaCsp(red.setting, red.instance, red.c, red.d);
    agree += (not_certain == FindHomomorphism(a, b).has_value()) ? 1 : 0;
  }
  state.counters["agree"] = agree > 0 ? 1 : 0;
}

BENCHMARK(BM_BuildConstraintTemplate);
BENCHMARK(BM_CertainAnswerDecision)->DenseRange(4, 12, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullCertainAnswerSet)->DenseRange(4, 8, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RewritingAnswers)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_CertainByKConsistencyApprox)->DenseRange(4, 12, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CspToViewsRoundTrip)->DenseRange(3, 7, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cspdb
