// Experiment E6 (Section 3 dichotomies): dedicated polynomial solvers for
// Schaefer's tractable classes versus generic backtracking, and the
// Hell-Nešetřil bipartite case. Expected shape: the dedicated solvers
// scale polynomially; generic search matches them on small sizes and
// falls behind as instances grow (most visibly on unsatisfiable inputs).

#include <benchmark/benchmark.h>

#include "boolean/cnf.h"
#include "boolean/hell_nesetril.h"
#include "boolean/horn_sat.h"
#include "boolean/schaefer.h"
#include "boolean/two_sat.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "util/rng.h"

namespace cspdb {
namespace {

void BM_HornDedicated(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(5);
  CnfFormula phi = RandomHorn(n, 4 * n, 3, &rng);
  int64_t sat = 0;
  for (auto _ : state) sat += SolveHorn(phi).has_value() ? 1 : 0;
  state.counters["sat"] = sat > 0 ? 1 : 0;
}

void BM_HornViaSchaeferDispatch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(5);
  CnfFormula phi = RandomHorn(n, 4 * n, 3, &rng);
  Vocabulary voc = HornVocabulary(3);
  Structure a = CnfToStructure(phi, voc);
  Structure b = HornTemplate(3);
  int64_t sat = 0;
  for (auto _ : state) {
    sat += SolveBooleanCsp(a, b).solvable ? 1 : 0;
  }
  state.counters["sat"] = sat > 0 ? 1 : 0;
}

void BM_TwoSatDedicated(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  CnfFormula phi = RandomKSat(n, 2 * n, 2, &rng);
  int64_t sat = 0;
  for (auto _ : state) sat += SolveTwoSat(phi).has_value() ? 1 : 0;
  state.counters["sat"] = sat > 0 ? 1 : 0;
}

void BM_TwoSatGenericSearch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  CnfFormula phi = RandomKSat(n, 2 * n, 2, &rng);
  Vocabulary voc = CnfVocabulary(2);
  Structure a = CnfToStructure(phi, voc);
  Structure b = TwoSatTemplate();
  CspInstance csp = ToCspInstance(a, b);
  int64_t sat = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(csp);
    sat += solver.Solve().has_value() ? 1 : 0;
  }
  state.counters["sat"] = sat > 0 ? 1 : 0;
}

void BM_ThreeSatGenericSearch(benchmark::State& state) {
  // The NP-complete side of the dichotomy near the phase transition.
  int n = static_cast<int>(state.range(0));
  Rng rng(9);
  CnfFormula phi = RandomKSat(n, static_cast<int>(4.2 * n), 3, &rng);
  Vocabulary voc = CnfVocabulary(3);
  Structure a = CnfToStructure(phi, voc);
  Structure b = SatTemplate(3);
  CspInstance csp = ToCspInstance(a, b);
  int64_t sat = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(csp);
    sat += solver.Solve().has_value() ? 1 : 0;
  }
  state.counters["sat"] = sat > 0 ? 1 : 0;
}

void BM_BipartiteHColoring(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11);
  Structure g = RandomUndirectedGraph(n, 2.0 / n, &rng);
  Structure h = PathGraph(4);
  int64_t colorable = 0;
  for (auto _ : state) {
    colorable += DecideHColoring(g, h).colorable ? 1 : 0;
  }
  state.counters["colorable"] = colorable > 0 ? 1 : 0;
}

void BM_BipartiteHColoringBySearch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11);
  Structure g = RandomUndirectedGraph(n, 2.0 / n, &rng);
  Structure h = PathGraph(4);
  int64_t colorable = 0;
  for (auto _ : state) {
    colorable += FindHomomorphism(g, h).has_value() ? 1 : 0;
  }
  state.counters["colorable"] = colorable > 0 ? 1 : 0;
}

BENCHMARK(BM_HornDedicated)->RangeMultiplier(2)->Range(16, 256);
BENCHMARK(BM_HornViaSchaeferDispatch)->RangeMultiplier(2)->Range(16, 64);
BENCHMARK(BM_TwoSatDedicated)->RangeMultiplier(2)->Range(16, 256);
BENCHMARK(BM_TwoSatGenericSearch)->RangeMultiplier(2)->Range(16, 64);
BENCHMARK(BM_ThreeSatGenericSearch)->DenseRange(8, 16, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BipartiteHColoring)->RangeMultiplier(2)->Range(16, 128);
BENCHMARK(BM_BipartiteHColoringBySearch)->RangeMultiplier(2)
    ->Range(16, 64);

}  // namespace
}  // namespace cspdb
