// Experiment E11 (Section 4): bottom-up Datalog evaluation. Semi-naive
// versus naive on transitive closure and on the Non-2-Colorability
// program of Section 4, plus the canonical program rho_{K2}. Expected
// shape: identical fixpoints; semi-naive fires asymptotically fewer rules.

#include <benchmark/benchmark.h>

#include "boolean/hell_nesetril.h"
#include "datalog/canonical_program.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

DatalogProgram TransitiveClosure() {
  DatalogProgram p;
  p.AddRule({{"T", {0, 1}}, {{"E", {0, 1}}}, 2});
  p.AddRule({{"T", {0, 1}}, {{"T", {0, 2}}, {"E", {2, 1}}}, 3});
  p.SetGoal("T");
  return p;
}

void BM_NaiveTransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Structure g = RandomDigraph(n, 1.5 / n, &rng);
  DatalogProgram p = TransitiveClosure();
  int64_t facts = 0, derivations = 0;
  for (auto _ : state) {
    DatalogResult r = EvaluateNaive(p, g);
    facts = static_cast<int64_t>(r.Facts("T").size());
    derivations = r.derivations;
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["derivations"] = static_cast<double>(derivations);
}

void BM_SemiNaiveTransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Structure g = RandomDigraph(n, 1.5 / n, &rng);
  DatalogProgram p = TransitiveClosure();
  int64_t facts = 0, derivations = 0;
  for (auto _ : state) {
    DatalogResult r = EvaluateSemiNaive(p, g);
    facts = static_cast<int64_t>(r.Facts("T").size());
    derivations = r.derivations;
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["derivations"] = static_cast<double>(derivations);
}

void BM_NonTwoColorability(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Odd cycle: worst case, the full odd-path relation saturates.
  Structure g = CycleGraph(2 * n + 1);
  DatalogProgram p = NonTwoColorabilityProgram();
  int64_t goal = 0;
  for (auto _ : state) {
    goal += EvaluateSemiNaive(p, g).GoalDerived(p) ? 1 : 0;
  }
  state.counters["non2col"] = goal > 0 ? 1 : 0;
}

void BM_CanonicalProgramK2(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  Structure g = RandomUndirectedGraph(n, 2.5 / n, &rng);
  Structure k2 = CliqueGraph(2);
  DatalogProgram p = CanonicalKDatalogProgram(k2, 3);
  int64_t spoiler = 0;
  for (auto _ : state) {
    spoiler += EvaluateSemiNaive(p, g).GoalDerived(p) ? 1 : 0;
  }
  state.counters["rules"] = static_cast<double>(p.rules().size());
  state.counters["spoiler_wins"] = spoiler > 0 ? 1 : 0;
}

BENCHMARK(BM_NaiveTransitiveClosure)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SemiNaiveTransitiveClosure)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NonTwoColorability)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CanonicalProgramK2)->DenseRange(4, 10, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cspdb
