// Experiment E7b (Section 6 extensions): the other width-based solvers —
// hypertree decompositions (acyclic instances get width 1 and the
// Yannakakis route) and the bounded-variable-formula evaluation of
// Proposition 6.1 — against bucket elimination on the same instances.

#include <benchmark/benchmark.h>

#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "logic/bounded_formula.h"
#include "relational/structure.h"
#include "treewidth/bucket_elimination.h"
#include "treewidth/counting.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "treewidth/hypertree.h"
#include "util/rng.h"

namespace cspdb {
namespace {

void BM_HypertreeSolve(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  CspInstance csp = RandomTreewidthCsp(n, 2, 3, 0.3, 0.95, &rng);
  int width = 0;
  int64_t solvable = 0;
  for (auto _ : state) {
    solvable += SolveWithHypertreeHeuristic(csp, &width).has_value();
  }
  state.counters["width"] = width;
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
}

void BM_BucketSolve(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  CspInstance csp = RandomTreewidthCsp(n, 2, 3, 0.3, 0.95, &rng);
  int64_t solvable = 0;
  for (auto _ : state) {
    solvable += SolveWithTreewidthHeuristic(csp).has_value();
  }
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
}

void BM_BoundedFormulaEvaluation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11);
  Structure a = RandomTreewidthDigraph(n, 2, 0.85, &rng);
  Structure b = RandomDigraph(4, 0.4, &rng, /*allow_loops=*/true);
  BoundedFormula phi = FormulaForStructure(a);
  int64_t holds = 0;
  for (auto _ : state) {
    holds += EvaluateSentence(phi, b) ? 1 : 0;
  }
  state.counters["registers"] = phi.RegisterCount();
  state.counters["holds"] = holds > 0 ? 1 : 0;
}

void BM_CountByElimination(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(13);
  CspInstance csp = RandomTreewidthCsp(n, 2, 3, 0.25, 0.95, &rng);
  int64_t count = 0;
  for (auto _ : state) {
    count = CountSolutionsWithTreewidthHeuristic(csp);
  }
  state.counters["count"] = static_cast<double>(count);
}

void BM_CountBySearchEnumeration(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(13);
  CspInstance csp = RandomTreewidthCsp(n, 2, 3, 0.25, 0.95, &rng);
  int64_t count = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(csp);
    count = solver.CountSolutions(2000000);
  }
  state.counters["count"] = static_cast<double>(count);
}

void BM_FormulaConstruction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11);
  Structure a = RandomTreewidthDigraph(n, 2, 0.85, &rng);
  for (auto _ : state) {
    BoundedFormula phi = FormulaForStructure(a);
    benchmark::DoNotOptimize(phi.RegisterCount());
  }
}

BENCHMARK(BM_HypertreeSolve)->DenseRange(10, 40, 10);
BENCHMARK(BM_BucketSolve)->DenseRange(10, 40, 10);
BENCHMARK(BM_BoundedFormulaEvaluation)->DenseRange(10, 40, 10);
BENCHMARK(BM_FormulaConstruction)->DenseRange(10, 40, 10);
BENCHMARK(BM_CountByElimination)->DenseRange(8, 20, 4);
BENCHMARK(BM_CountBySearchEnumeration)->DenseRange(8, 20, 4);

}  // namespace
}  // namespace cspdb
