#!/usr/bin/env bash
# Builds the Release benchmark binaries, runs the baseline-vs-optimized
# kernel suite, the serial-vs-parallel suite, and the serving-layer suite,
# and distills the results into BENCH_kernels.json + BENCH_parallel.json +
# BENCH_service.json at the repository root (see EXPERIMENTS.md for
# methodology).
#
# Usage:
#   bench/run_benchmarks.sh           # full run, refreshes the committed
#                                     # BENCH_*.json files
#   bench/run_benchmarks.sh --smoke   # quick CI pass; writes into the build
#                                     # dir only, never touches the committed
#                                     # JSON files
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
fi

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Release)
if command -v ccache >/dev/null; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}" >/dev/null
cmake --build "$BUILD_DIR" --target bench_report bench_parallel \
  bench_service -j"$(nproc)" >/dev/null

BENCH_ARGS=(--benchmark_format=json)
# The parallel suite repeats every benchmark and the distiller keeps the
# per-cell minimum: these kernels are short enough that neighbor load on
# a shared machine dominates single-run noise, and the minimum is the
# least-contended estimate (same treatment for both sides of each
# comparison).
PAR_ARGS=(--benchmark_format=json --benchmark_repetitions=5)
SVC_ARGS=(--benchmark_format=json)
if [[ "$SMOKE" == 1 ]]; then
  # Smallest tier of each op, minimal sampling: validates the harness and
  # the distiller without burning CI minutes. 64 is the smallest SIMD
  # word tier in bench_parallel.
  BENCH_ARGS+=(--benchmark_filter='/(8|16|1000)$' --benchmark_min_time=0.01)
  PAR_ARGS+=(--benchmark_filter='/(48|64|2000|10000)$' --benchmark_min_time=0.01
             --benchmark_repetitions=1)
  # The iterations-suffix alternative keeps the pinned-iteration
  # BM_net_saturation/12 tier in the smoke.
  SVC_ARGS+=(--benchmark_filter='/(12|64|256)(/iterations:[0-9]+)?$'
             --benchmark_min_time=0.01)
  OUT=$BUILD_DIR/BENCH_kernels.smoke.json
  PAR_OUT=$BUILD_DIR/BENCH_parallel.smoke.json
  SVC_OUT=$BUILD_DIR/BENCH_service.smoke.json
  LABEL="smoke"
  PAR_LABEL="smoke"
  SVC_LABEL="smoke"
else
  OUT=BENCH_kernels.json
  PAR_OUT=BENCH_parallel.json
  SVC_OUT=BENCH_service.json
  LABEL="flat-storage + bitset + SIMD kernels vs frozen scalar references"
  PAR_LABEL="parallel GAC/join/full-reducer vs serial twins; partitioned vs striped joins"
  SVC_LABEL="serving layer: hit/miss latency, replay hit rate, overload shed, two-node loopback saturation"
fi

# Run every suite first: the kernels distill merges bench_report's pairs
# with bench_parallel's SIMD-vs-scalar pairs, so it needs both raws.
RAW=$BUILD_DIR/bench_report.raw.json
"$BUILD_DIR/bench/bench_report" "${BENCH_ARGS[@]}" > "$RAW"

PAR_RAW=$BUILD_DIR/bench_parallel.raw.json
"$BUILD_DIR/bench/bench_parallel" "${PAR_ARGS[@]}" > "$PAR_RAW"

SVC_RAW=$BUILD_DIR/bench_service.raw.json
"$BUILD_DIR/bench/bench_service" "${SVC_ARGS[@]}" > "$SVC_RAW"

python3 bench/distill_bench.py "$RAW" "$PAR_RAW" "$OUT" --label "$LABEL"
echo "wrote $OUT"

python3 bench/distill_bench.py "$PAR_RAW" "$PAR_OUT" \
  --label "$PAR_LABEL" --mode parallel
echo "wrote $PAR_OUT"

python3 bench/distill_bench.py "$SVC_RAW" "$SVC_OUT" \
  --label "$SVC_LABEL" --mode service
echo "wrote $SVC_OUT"
