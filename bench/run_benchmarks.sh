#!/usr/bin/env bash
# Builds the Release benchmark binary, runs the baseline-vs-optimized
# kernel suite, and distills the results into BENCH_kernels.json at the
# repository root (see EXPERIMENTS.md for methodology).
#
# Usage:
#   bench/run_benchmarks.sh           # full run, refreshes BENCH_kernels.json
#   bench/run_benchmarks.sh --smoke   # quick CI pass; writes into the build
#                                     # dir only, never touches the committed
#                                     # BENCH_kernels.json
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
fi

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=Release)
if command -v ccache >/dev/null; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}" >/dev/null
cmake --build "$BUILD_DIR" --target bench_report -j"$(nproc)" >/dev/null

BENCH_ARGS=(--benchmark_format=json)
if [[ "$SMOKE" == 1 ]]; then
  # Smallest tier of each op, minimal sampling: validates the harness and
  # the distiller without burning CI minutes.
  BENCH_ARGS+=(--benchmark_filter='/(8|16|1000)$' --benchmark_min_time=0.01)
  OUT=$BUILD_DIR/BENCH_kernels.smoke.json
  LABEL="smoke"
else
  OUT=BENCH_kernels.json
  LABEL="flat-storage + bitset kernels vs frozen references"
fi

RAW=$BUILD_DIR/bench_report.raw.json
"$BUILD_DIR/bench/bench_report" "${BENCH_ARGS[@]}" > "$RAW"
python3 bench/distill_bench.py "$RAW" "$OUT" --label "$LABEL"
echo "wrote $OUT"
