// Experiment E7 (Theorem 6.2, Proposition 6.1): bounded treewidth makes
// CSP polynomial. Bucket elimination along a min-fill ordering versus
// plain backtracking on random partial k-tree instances, swept over n and
// k. Expected shape: bucket elimination grows smoothly (O(n d^{w+1}));
// plain search degrades with size, especially on unsatisfiable inputs.

#include <benchmark/benchmark.h>

#include "csp/solver.h"
#include "gen/generators.h"
#include "treewidth/bucket_elimination.h"
#include "util/rng.h"

namespace cspdb {
namespace {

CspInstance Instance(int n, int k, uint64_t seed) {
  Rng rng(seed);
  return RandomTreewidthCsp(n, k, 3, 0.3, 0.95, &rng);
}

void BM_BucketElimination(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  CspInstance csp = Instance(n, k, 31);
  int64_t solvable = 0;
  BucketStats stats;
  for (auto _ : state) {
    solvable += SolveWithTreewidthHeuristic(csp, &stats).has_value();
  }
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
  state.counters["induced_width"] = stats.induced_width;
  state.counters["max_table"] = static_cast<double>(stats.max_table_rows);
}

void BM_PlainBacktracking(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  CspInstance csp = Instance(n, k, 31);
  SolverOptions options;
  options.propagation = Propagation::kNone;
  options.node_limit = 2000000;  // keep blowups bounded; report aborts
  int64_t solvable = 0;
  int64_t nodes = 0;
  int64_t aborted = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(csp, options);
    solvable += solver.Solve().has_value() ? 1 : 0;
    nodes = solver.stats().nodes;
    aborted += solver.stats().aborted ? 1 : 0;
  }
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["aborted"] = aborted > 0 ? 1 : 0;
}

void BM_MacSearch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  CspInstance csp = Instance(n, k, 31);
  int64_t solvable = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(csp);
    solvable += solver.Solve().has_value() ? 1 : 0;
  }
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
}

void TreewidthArgs(benchmark::internal::Benchmark* b) {
  for (int n : {10, 20, 30, 40}) {
    for (int k : {1, 2, 3}) {
      b->Args({n, k});
    }
  }
}

BENCHMARK(BM_BucketElimination)->Apply(TreewidthArgs);
BENCHMARK(BM_PlainBacktracking)->Apply(TreewidthArgs);
BENCHMARK(BM_MacSearch)->Apply(TreewidthArgs);

}  // namespace
}  // namespace cspdb
