// Baseline-vs-optimized kernel microbenchmarks, the measured side of
// BENCH_kernels.json. Every op comes in a `baseline` variant (the frozen
// pre-optimization kernels in consistency/reference_gac.h and
// db/reference_join.h) and an `optimized` variant (the shipping
// word-packed / flat-storage kernels), over identical seeded inputs, so
// bench/run_benchmarks.sh can distill per-(op, size) speedups.
//
// Naming contract with bench/distill_bench.py: BM_<op>_<side>/<size>.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "consistency/arc_consistency.h"
#include "consistency/reference_gac.h"
#include "csp/instance.h"
#include "db/algebra.h"
#include "db/reference_join.h"
#include "db/relation.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// --------------------------------------------------------------------------
// GAC revision: the ordering chain x_0 < x_1 < ... < x_{n-1} over domain
// [0, n). Arc consistency triggers the full domino cascade (~n^2/6
// prunings through d^2/2-tuple constraints), so the measurement is
// dominated by the revision loop — tuple-at-a-time support scans in the
// baseline vs word-parallel mask probes in the optimized kernel. Random
// dense instances are deliberately NOT used here: they reach the fixpoint
// with almost no pruning, which measures mask construction, not revision
// (see EXPERIMENTS.md).

CspInstance MakeOrderingChain(int n) {
  CspInstance csp(n, n);
  std::vector<Tuple> less;
  for (int x = 0; x < n; ++x) {
    for (int y = x + 1; y < n; ++y) less.push_back({x, y});
  }
  for (int v = 0; v + 1 < n; ++v) csp.AddConstraint({v, v + 1}, less);
  return csp;
}

void BM_gac_revision_baseline(benchmark::State& state) {
  CspInstance csp = MakeOrderingChain(static_cast<int>(state.range(0)));
  int64_t prunings = 0;
  for (auto _ : state) {
    ReferenceAcResult r = ReferenceEnforceGac(csp);
    benchmark::DoNotOptimize(r.consistent);
    prunings = r.prunings;
  }
  state.counters["prunings"] = static_cast<double>(prunings);
}
BENCHMARK(BM_gac_revision_baseline)->Arg(16)->Arg(48)->Arg(96);

void BM_gac_revision_optimized(benchmark::State& state) {
  CspInstance csp = MakeOrderingChain(static_cast<int>(state.range(0)));
  int64_t prunings = 0;
  for (auto _ : state) {
    AcResult r = EnforceGac(csp);
    benchmark::DoNotOptimize(r.consistent);
    prunings = r.prunings;
  }
  state.counters["prunings"] = static_cast<double>(prunings);
}
BENCHMARK(BM_gac_revision_optimized)->Arg(16)->Arg(48)->Arg(96);

// --------------------------------------------------------------------------
// SAC: smaller tiers — the baseline rebuilds a full restricted instance
// per (variable, value) probe, which is exactly the cost being measured.

CspInstance MakeSacInstance(int n) {
  Rng rng(6789 + n);
  int d = 4;
  int m = std::min(n * (n - 1) / 2, 2 * n);
  return RandomBinaryCsp(n, d, m, /*tightness=*/0.3, &rng);
}

void BM_sac_baseline(benchmark::State& state) {
  CspInstance csp = MakeSacInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ReferenceAcResult r = ReferenceEnforceSingletonArcConsistency(csp);
    benchmark::DoNotOptimize(r.consistent);
  }
}
BENCHMARK(BM_sac_baseline)->Arg(8)->Arg(16)->Arg(24);

void BM_sac_optimized(benchmark::State& state) {
  CspInstance csp = MakeSacInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    AcResult r = EnforceSingletonArcConsistency(csp);
    benchmark::DoNotOptimize(r.consistent);
  }
}
BENCHMARK(BM_sac_optimized)->Arg(8)->Arg(16)->Arg(24);

// --------------------------------------------------------------------------
// Joins: R(0,1) ⋈ S(1,2) with value range n/4, so the output carries ~4n
// rows — enough to expose per-output-row allocation in the baseline.

void MakeJoinInputs(int n, DbRelation* r, DbRelation* s) {
  Rng rng(777 + n);
  int values = std::max(4, n / 4);
  *r = DbRelation({0, 1});
  *s = DbRelation({1, 2});
  r->Reserve(n);
  s->Reserve(n);
  for (int i = 0; i < n; ++i) {
    r->AddRow({rng.UniformInt(0, values - 1), rng.UniformInt(0, values - 1)});
    s->AddRow({rng.UniformInt(0, values - 1), rng.UniformInt(0, values - 1)});
  }
}

void BM_natural_join_baseline(benchmark::State& state) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  ReferenceRelation ref_r = ToReferenceRelation(r);
  ReferenceRelation ref_s = ToReferenceRelation(s);
  std::size_t out_rows = 0;
  for (auto _ : state) {
    ReferenceRelation out = ReferenceNaturalJoin(ref_r, ref_s);
    benchmark::DoNotOptimize(out.rows.data());
    out_rows = out.size();
  }
  state.counters["peak_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_natural_join_baseline)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_natural_join_optimized(benchmark::State& state) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  std::size_t out_rows = 0;
  for (auto _ : state) {
    DbRelation out = NaturalJoin(r, s);
    benchmark::DoNotOptimize(out.data());
    out_rows = out.size();
  }
  state.counters["peak_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_natural_join_optimized)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_semijoin_baseline(benchmark::State& state) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  ReferenceRelation ref_r = ToReferenceRelation(r);
  ReferenceRelation ref_s = ToReferenceRelation(s);
  std::size_t out_rows = 0;
  for (auto _ : state) {
    ReferenceRelation out = ReferenceSemijoin(ref_r, ref_s);
    benchmark::DoNotOptimize(out.rows.data());
    out_rows = out.size();
  }
  state.counters["peak_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_semijoin_baseline)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_semijoin_optimized(benchmark::State& state) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  std::size_t out_rows = 0;
  for (auto _ : state) {
    DbRelation out = Semijoin(r, s);
    benchmark::DoNotOptimize(out.data());
    out_rows = out.size();
  }
  state.counters["peak_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_semijoin_optimized)->Arg(1000)->Arg(10000)->Arg(50000);

// --------------------------------------------------------------------------
// Deduplicating insert: flat store + open-addressed row hash vs one heap
// Tuple and one unordered_set node per row.

void BM_relation_insert_baseline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(555);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back({rng.UniformInt(0, n), rng.UniformInt(0, n),
                    rng.UniformInt(0, 7)});
  }
  std::size_t total = 0;
  for (auto _ : state) {
    ReferenceRelation rel({0, 1, 2});
    for (const Tuple& t : rows) rel.AddRow(t);
    benchmark::DoNotOptimize(rel.rows.data());
    total = rel.size();
  }
  state.counters["peak_rows"] = static_cast<double>(total);
}
BENCHMARK(BM_relation_insert_baseline)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_relation_insert_optimized(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(555);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back({rng.UniformInt(0, n), rng.UniformInt(0, n),
                    rng.UniformInt(0, 7)});
  }
  std::size_t total = 0;
  for (auto _ : state) {
    DbRelation rel({0, 1, 2});
    for (const Tuple& t : rows) rel.AddRow(t);
    benchmark::DoNotOptimize(rel.data());
    total = rel.size();
  }
  state.counters["peak_rows"] = static_cast<double>(total);
}
BENCHMARK(BM_relation_insert_optimized)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace cspdb
