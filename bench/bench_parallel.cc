// Parallel-vs-serial kernel benchmarks, the measured side of
// BENCH_parallel.json. Every op comes in a `t1` variant (the true serial
// kernel — NOT the parallel code on a one-thread pool, so the serial
// baseline carries zero scheduling overhead) and `t2`/`t4`/`t8` variants
// running the parallel kernel on a dedicated pool of that many workers,
// over identical seeded inputs, so bench/run_benchmarks.sh can distill
// per-(op, size) speedups relative to t1.
//
// Naming contracts with bench/distill_bench.py:
//   * BM_<op>_t<threads>/<size> — parallel mode. Ops with a `_striped`
//     suffix (the pre-partitioning join design, kept as the contention
//     baseline) have no t1 of their own; the distiller aliases them to
//     the base op's t1, so partitioned and striped speedups share one
//     serial denominator.
//   * BM_simd_<op>_(baseline|optimized)/<words> — kernels mode. baseline
//     runs the frozen scalar loops from simd_scalar_ref.cc (compiled with
//     the SIMD instruction sets disabled); optimized runs util/simd.h.
//
// Honesty note: the distiller records machine.num_cpus and stamps thread
// entries with oversubscribed=true where threads exceed it. On a
// single-core machine the t2/t4/t8 variants measure oversubscription
// overhead, not speedup — the numbers are still worth recording (they
// bound the cost of the parallel path), but EXPERIMENTS.md must not
// present them as scaling.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "consistency/arc_consistency.h"
#include "consistency/parallel_gac.h"
#include "csp/instance.h"
#include "db/acyclic.h"
#include "db/algebra.h"
#include "db/parallel_algebra.h"
#include "db/relation.h"
#include "exec/thread_pool.h"
#include "simd_scalar_ref.h"
#include "util/rng.h"
#include "util/simd.h"

namespace cspdb {
namespace {

// One long-lived pool per thread count; constructing a pool inside the
// timed loop would measure thread spawn, not kernel work.
exec::ThreadPool& PoolFor(int threads) {
  static exec::ThreadPool* pools[9] = {};
  if (pools[threads] == nullptr) pools[threads] = new exec::ThreadPool(threads);
  return *pools[threads];
}

ParallelGacOptions GacOptionsFor(int threads) {
  ParallelGacOptions options;
  options.pool = &PoolFor(threads);
  options.min_constraints = 0;  // always take the parallel path
  return options;
}

ParallelDbOptions DbOptionsFor(int threads) {
  ParallelDbOptions options;
  options.pool = &PoolFor(threads);
  options.min_probe_rows = 0;  // always take the parallel path
  options.min_forest_nodes = 0;
  return options;
}

// --------------------------------------------------------------------------
// GAC: the ordering chain x_0 < x_1 < ... < x_{n-1} (same workload as
// bench_report's revision benchmark) — the domino cascade keeps every
// round's worklist non-trivial, which is the case parallel rounds target.

CspInstance MakeOrderingChain(int n) {
  CspInstance csp(n, n);
  std::vector<Tuple> less;
  for (int x = 0; x < n; ++x) {
    for (int y = x + 1; y < n; ++y) less.push_back({x, y});
  }
  for (int v = 0; v + 1 < n; ++v) csp.AddConstraint({v, v + 1}, less);
  return csp;
}

void BM_gac_t1(benchmark::State& state) {
  CspInstance csp = MakeOrderingChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    AcResult r = EnforceGac(csp);
    benchmark::DoNotOptimize(r.consistent);
  }
}
BENCHMARK(BM_gac_t1)->Arg(48)->Arg(96);

void GacParallelBody(benchmark::State& state, int threads) {
  CspInstance csp = MakeOrderingChain(static_cast<int>(state.range(0)));
  ParallelGacOptions options = GacOptionsFor(threads);
  for (auto _ : state) {
    AcResult r = EnforceGacParallel(csp, options);
    benchmark::DoNotOptimize(r.consistent);
  }
}

void BM_gac_t2(benchmark::State& state) { GacParallelBody(state, 2); }
void BM_gac_t4(benchmark::State& state) { GacParallelBody(state, 4); }
void BM_gac_t8(benchmark::State& state) { GacParallelBody(state, 8); }
BENCHMARK(BM_gac_t2)->Arg(48)->Arg(96);
BENCHMARK(BM_gac_t4)->Arg(48)->Arg(96);
BENCHMARK(BM_gac_t8)->Arg(48)->Arg(96);

// --------------------------------------------------------------------------
// Natural join / semijoin: R(0,1) ⋈ S(1,2) with value range n/4 (~4n
// output rows), the workload bench_report uses — the probe side stripes
// across workers, the build side is the shared serial KeyIndex.

void MakeJoinInputs(int n, DbRelation* r, DbRelation* s) {
  Rng rng(777 + n);
  int values = std::max(4, n / 4);
  *r = DbRelation({0, 1});
  *s = DbRelation({1, 2});
  r->Reserve(n);
  s->Reserve(n);
  for (int i = 0; i < n; ++i) {
    r->AddRow({rng.UniformInt(0, values - 1), rng.UniformInt(0, values - 1)});
    s->AddRow({rng.UniformInt(0, values - 1), rng.UniformInt(0, values - 1)});
  }
}

void BM_natural_join_t1(benchmark::State& state) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  for (auto _ : state) {
    DbRelation out = NaturalJoin(r, s);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_natural_join_t1)->Arg(10000)->Arg(50000)->Arg(200000);

void NaturalJoinBody(benchmark::State& state, int threads) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  ParallelDbOptions options = DbOptionsFor(threads);
  for (auto _ : state) {
    DbRelation out = NaturalJoinParallel(r, s, options);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_natural_join_t2(benchmark::State& state) {
  NaturalJoinBody(state, 2);
}
void BM_natural_join_t4(benchmark::State& state) {
  NaturalJoinBody(state, 4);
}
void BM_natural_join_t8(benchmark::State& state) {
  NaturalJoinBody(state, 8);
}
BENCHMARK(BM_natural_join_t2)->Arg(10000)->Arg(50000)->Arg(200000);
BENCHMARK(BM_natural_join_t4)->Arg(10000)->Arg(50000)->Arg(200000);
BENCHMARK(BM_natural_join_t8)->Arg(10000)->Arg(50000)->Arg(200000);

// Striped contention baseline: the same inputs through the shared-index
// striped-probe kernel. No t1 variant — the distiller aliases these to
// BM_natural_join_t1, so both designs divide by one serial measurement.
void NaturalJoinStripedBody(benchmark::State& state, int threads) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  ParallelDbOptions options = DbOptionsFor(threads);
  for (auto _ : state) {
    DbRelation out = NaturalJoinStriped(r, s, options);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_natural_join_striped_t2(benchmark::State& state) {
  NaturalJoinStripedBody(state, 2);
}
void BM_natural_join_striped_t4(benchmark::State& state) {
  NaturalJoinStripedBody(state, 4);
}
void BM_natural_join_striped_t8(benchmark::State& state) {
  NaturalJoinStripedBody(state, 8);
}
BENCHMARK(BM_natural_join_striped_t2)->Arg(10000)->Arg(50000)->Arg(200000);
BENCHMARK(BM_natural_join_striped_t4)->Arg(10000)->Arg(50000)->Arg(200000);
BENCHMARK(BM_natural_join_striped_t8)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_semijoin_t1(benchmark::State& state) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  for (auto _ : state) {
    DbRelation out = Semijoin(r, s);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_semijoin_t1)->Arg(10000)->Arg(50000)->Arg(200000);

void SemijoinBody(benchmark::State& state, int threads) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  ParallelDbOptions options = DbOptionsFor(threads);
  for (auto _ : state) {
    DbRelation out = SemijoinParallel(r, s, options);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_semijoin_t2(benchmark::State& state) { SemijoinBody(state, 2); }
void BM_semijoin_t4(benchmark::State& state) { SemijoinBody(state, 4); }
void BM_semijoin_t8(benchmark::State& state) { SemijoinBody(state, 8); }
BENCHMARK(BM_semijoin_t2)->Arg(10000)->Arg(50000)->Arg(200000);
BENCHMARK(BM_semijoin_t4)->Arg(10000)->Arg(50000)->Arg(200000);
BENCHMARK(BM_semijoin_t8)->Arg(10000)->Arg(50000)->Arg(200000);

void SemijoinStripedBody(benchmark::State& state, int threads) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  ParallelDbOptions options = DbOptionsFor(threads);
  for (auto _ : state) {
    DbRelation out = SemijoinStriped(r, s, options);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_semijoin_striped_t2(benchmark::State& state) {
  SemijoinStripedBody(state, 2);
}
void BM_semijoin_striped_t4(benchmark::State& state) {
  SemijoinStripedBody(state, 4);
}
void BM_semijoin_striped_t8(benchmark::State& state) {
  SemijoinStripedBody(state, 8);
}
BENCHMARK(BM_semijoin_striped_t2)->Arg(10000)->Arg(50000)->Arg(200000);
BENCHMARK(BM_semijoin_striped_t4)->Arg(10000)->Arg(50000)->Arg(200000);
BENCHMARK(BM_semijoin_striped_t8)->Arg(10000)->Arg(50000)->Arg(200000);

// --------------------------------------------------------------------------
// Full reducer over a chain schema R_0(0,1) — R_1(1,2) — ... — the
// upward/downward semijoin passes fan subtree work across workers. `size`
// is rows per relation; the chain is 8 relations long.

std::vector<DbRelation> MakeChainRelations(int rows) {
  constexpr int kChain = 8;
  Rng rng(4242 + rows);
  int values = std::max(4, rows / 4);
  std::vector<DbRelation> rels;
  rels.reserve(kChain);
  for (int i = 0; i < kChain; ++i) {
    DbRelation rel({i, i + 1});
    rel.Reserve(rows);
    for (int j = 0; j < rows; ++j) {
      rel.AddRow(
          {rng.UniformInt(0, values - 1), rng.UniformInt(0, values - 1)});
    }
    rels.push_back(std::move(rel));
  }
  return rels;
}

void BM_full_reducer_t1(benchmark::State& state) {
  std::vector<DbRelation> rels =
      MakeChainRelations(static_cast<int>(state.range(0)));
  JoinForest forest = *BuildJoinForest(HypergraphOfSchemas(rels));
  for (auto _ : state) {
    std::vector<DbRelation> work = rels;
    YannakakisStats stats;
    FullReducer(forest, &work, &stats);
    benchmark::DoNotOptimize(stats.semijoin_passes);
  }
}
BENCHMARK(BM_full_reducer_t1)->Arg(2000)->Arg(10000);

void FullReducerBody(benchmark::State& state, int threads) {
  std::vector<DbRelation> rels =
      MakeChainRelations(static_cast<int>(state.range(0)));
  JoinForest forest = *BuildJoinForest(HypergraphOfSchemas(rels));
  ParallelDbOptions options = DbOptionsFor(threads);
  for (auto _ : state) {
    std::vector<DbRelation> work = rels;
    YannakakisStats stats;
    FullReducerParallel(forest, &work, options, &stats);
    benchmark::DoNotOptimize(stats.semijoin_passes);
  }
}

void BM_full_reducer_t2(benchmark::State& state) {
  FullReducerBody(state, 2);
}
void BM_full_reducer_t4(benchmark::State& state) {
  FullReducerBody(state, 4);
}
void BM_full_reducer_t8(benchmark::State& state) {
  FullReducerBody(state, 8);
}
BENCHMARK(BM_full_reducer_t2)->Arg(2000)->Arg(10000);
BENCHMARK(BM_full_reducer_t4)->Arg(2000)->Arg(10000);
BENCHMARK(BM_full_reducer_t8)->Arg(2000)->Arg(10000);

// --------------------------------------------------------------------------
// SIMD-vs-scalar word kernels (kernels-mode naming: _baseline/_optimized).
// The argument is the span length in 64-bit WORDS: 64 (one Bitset of a
// 4k-tuple constraint, L1), 1024 (64k tuples, L1/L2 boundary), 16384
// (1M tuples / 128 KiB per operand, L2 — the memory-bound regime).
// Baselines call the frozen no-SIMD TU (bench/simd_scalar_ref.cc);
// optimized calls the dispatched util/simd.h kernels the library runs.

std::vector<uint64_t> RandomWords(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) w = rng.engine()();
  return words;
}

// Sparse words (one bit in ~8 set) — the regime support masks live in.
std::vector<uint64_t> SparseWords(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) {
    w = rng.engine()() & rng.engine()() & rng.engine()();
  }
  return words;
}

void BM_simd_and_baseline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<uint64_t> dst = RandomWords(n, 11);
  const std::vector<uint64_t> src = RandomWords(n, 12);
  for (auto _ : state) {
    benchref::AndInPlace(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
}
void BM_simd_and_optimized(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<uint64_t> dst = RandomWords(n, 11);
  const std::vector<uint64_t> src = RandomWords(n, 12);
  for (auto _ : state) {
    simd::AndInPlace(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_simd_and_baseline)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_simd_and_optimized)->Arg(64)->Arg(1024)->Arg(16384);

void BM_simd_popcount_baseline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<uint64_t> words = RandomWords(n, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchref::PopCount(words.data(), n));
  }
}
void BM_simd_popcount_optimized(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<uint64_t> words = RandomWords(n, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::PopCount(words.data(), n));
  }
}
BENCHMARK(BM_simd_popcount_baseline)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_simd_popcount_optimized)->Arg(64)->Arg(1024)->Arg(16384);

// Disjoint operands (even bits vs odd bits): the probe scans the whole
// span, the worst case a support probe hits when a value is dead.
void BM_simd_intersects_baseline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<uint64_t> a(n, 0x5555555555555555ull);
  const std::vector<uint64_t> b(n, 0xaaaaaaaaaaaaaaaaull);
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchref::Intersects(a.data(), b.data(), n));
  }
}
void BM_simd_intersects_optimized(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<uint64_t> a(n, 0x5555555555555555ull);
  const std::vector<uint64_t> b(n, 0xaaaaaaaaaaaaaaaaull);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::Intersects(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_simd_intersects_baseline)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_simd_intersects_optimized)->Arg(64)->Arg(1024)->Arg(16384);

// The GAC revision sweep shape: 64 values, each with a support row of
// `arg` words, probed against one sparse valid mask. Mirrors
// ConstraintSupport::CollectUnsupported without the Bitset plumbing.
void BM_simd_support_sweep_baseline(benchmark::State& state) {
  const std::size_t row_words = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kValues = 64;
  const std::vector<uint64_t> valid = SparseWords(row_words, 31);
  const std::vector<uint64_t> rows = SparseWords(row_words * kValues, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchref::CountUnsupported(
        valid.data(), rows.data(), row_words, kValues));
  }
}
void BM_simd_support_sweep_optimized(benchmark::State& state) {
  const std::size_t row_words = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kValues = 64;
  const std::vector<uint64_t> valid = SparseWords(row_words, 31);
  const std::vector<uint64_t> rows = SparseWords(row_words * kValues, 32);
  for (auto _ : state) {
    int64_t unsupported = 0;
    for (std::size_t v = 0; v < kValues; ++v) {
      if (!simd::Intersects(valid.data(), rows.data() + v * row_words,
                            row_words)) {
        ++unsupported;
      }
    }
    benchmark::DoNotOptimize(unsupported);
  }
}
BENCHMARK(BM_simd_support_sweep_baseline)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_simd_support_sweep_optimized)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace cspdb
