// Parallel-vs-serial kernel benchmarks, the measured side of
// BENCH_parallel.json. Every op comes in a `t1` variant (the true serial
// kernel — NOT the parallel code on a one-thread pool, so the serial
// baseline carries zero scheduling overhead) and `t2`/`t4`/`t8` variants
// running the parallel kernel on a dedicated pool of that many workers,
// over identical seeded inputs, so bench/run_benchmarks.sh can distill
// per-(op, size) speedups relative to t1.
//
// Naming contract with bench/distill_bench.py: BM_<op>_t<threads>/<size>.
//
// Honesty note: the distiller records machine.num_cpus. On a single-core
// machine the t2/t4/t8 variants measure oversubscription overhead, not
// speedup — the numbers are still worth recording (they bound the cost of
// the parallel path), but EXPERIMENTS.md must not present them as scaling.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "consistency/arc_consistency.h"
#include "consistency/parallel_gac.h"
#include "csp/instance.h"
#include "db/acyclic.h"
#include "db/algebra.h"
#include "db/parallel_algebra.h"
#include "db/relation.h"
#include "exec/thread_pool.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// One long-lived pool per thread count; constructing a pool inside the
// timed loop would measure thread spawn, not kernel work.
exec::ThreadPool& PoolFor(int threads) {
  static exec::ThreadPool* pools[9] = {};
  if (pools[threads] == nullptr) pools[threads] = new exec::ThreadPool(threads);
  return *pools[threads];
}

ParallelGacOptions GacOptionsFor(int threads) {
  ParallelGacOptions options;
  options.pool = &PoolFor(threads);
  options.min_constraints = 0;  // always take the parallel path
  return options;
}

ParallelDbOptions DbOptionsFor(int threads) {
  ParallelDbOptions options;
  options.pool = &PoolFor(threads);
  options.min_probe_rows = 0;  // always take the parallel path
  options.min_forest_nodes = 0;
  return options;
}

// --------------------------------------------------------------------------
// GAC: the ordering chain x_0 < x_1 < ... < x_{n-1} (same workload as
// bench_report's revision benchmark) — the domino cascade keeps every
// round's worklist non-trivial, which is the case parallel rounds target.

CspInstance MakeOrderingChain(int n) {
  CspInstance csp(n, n);
  std::vector<Tuple> less;
  for (int x = 0; x < n; ++x) {
    for (int y = x + 1; y < n; ++y) less.push_back({x, y});
  }
  for (int v = 0; v + 1 < n; ++v) csp.AddConstraint({v, v + 1}, less);
  return csp;
}

void BM_gac_t1(benchmark::State& state) {
  CspInstance csp = MakeOrderingChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    AcResult r = EnforceGac(csp);
    benchmark::DoNotOptimize(r.consistent);
  }
}
BENCHMARK(BM_gac_t1)->Arg(48)->Arg(96);

void GacParallelBody(benchmark::State& state, int threads) {
  CspInstance csp = MakeOrderingChain(static_cast<int>(state.range(0)));
  ParallelGacOptions options = GacOptionsFor(threads);
  for (auto _ : state) {
    AcResult r = EnforceGacParallel(csp, options);
    benchmark::DoNotOptimize(r.consistent);
  }
}

void BM_gac_t2(benchmark::State& state) { GacParallelBody(state, 2); }
void BM_gac_t4(benchmark::State& state) { GacParallelBody(state, 4); }
void BM_gac_t8(benchmark::State& state) { GacParallelBody(state, 8); }
BENCHMARK(BM_gac_t2)->Arg(48)->Arg(96);
BENCHMARK(BM_gac_t4)->Arg(48)->Arg(96);
BENCHMARK(BM_gac_t8)->Arg(48)->Arg(96);

// --------------------------------------------------------------------------
// Natural join / semijoin: R(0,1) ⋈ S(1,2) with value range n/4 (~4n
// output rows), the workload bench_report uses — the probe side stripes
// across workers, the build side is the shared serial KeyIndex.

void MakeJoinInputs(int n, DbRelation* r, DbRelation* s) {
  Rng rng(777 + n);
  int values = std::max(4, n / 4);
  *r = DbRelation({0, 1});
  *s = DbRelation({1, 2});
  r->Reserve(n);
  s->Reserve(n);
  for (int i = 0; i < n; ++i) {
    r->AddRow({rng.UniformInt(0, values - 1), rng.UniformInt(0, values - 1)});
    s->AddRow({rng.UniformInt(0, values - 1), rng.UniformInt(0, values - 1)});
  }
}

void BM_natural_join_t1(benchmark::State& state) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  for (auto _ : state) {
    DbRelation out = NaturalJoin(r, s);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_natural_join_t1)->Arg(10000)->Arg(50000);

void NaturalJoinBody(benchmark::State& state, int threads) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  ParallelDbOptions options = DbOptionsFor(threads);
  for (auto _ : state) {
    DbRelation out = NaturalJoinParallel(r, s, options);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_natural_join_t2(benchmark::State& state) {
  NaturalJoinBody(state, 2);
}
void BM_natural_join_t4(benchmark::State& state) {
  NaturalJoinBody(state, 4);
}
void BM_natural_join_t8(benchmark::State& state) {
  NaturalJoinBody(state, 8);
}
BENCHMARK(BM_natural_join_t2)->Arg(10000)->Arg(50000);
BENCHMARK(BM_natural_join_t4)->Arg(10000)->Arg(50000);
BENCHMARK(BM_natural_join_t8)->Arg(10000)->Arg(50000);

void BM_semijoin_t1(benchmark::State& state) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  for (auto _ : state) {
    DbRelation out = Semijoin(r, s);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_semijoin_t1)->Arg(10000)->Arg(50000);

void SemijoinBody(benchmark::State& state, int threads) {
  DbRelation r({0}), s({0});
  MakeJoinInputs(static_cast<int>(state.range(0)), &r, &s);
  ParallelDbOptions options = DbOptionsFor(threads);
  for (auto _ : state) {
    DbRelation out = SemijoinParallel(r, s, options);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_semijoin_t2(benchmark::State& state) { SemijoinBody(state, 2); }
void BM_semijoin_t4(benchmark::State& state) { SemijoinBody(state, 4); }
void BM_semijoin_t8(benchmark::State& state) { SemijoinBody(state, 8); }
BENCHMARK(BM_semijoin_t2)->Arg(10000)->Arg(50000);
BENCHMARK(BM_semijoin_t4)->Arg(10000)->Arg(50000);
BENCHMARK(BM_semijoin_t8)->Arg(10000)->Arg(50000);

// --------------------------------------------------------------------------
// Full reducer over a chain schema R_0(0,1) — R_1(1,2) — ... — the
// upward/downward semijoin passes fan subtree work across workers. `size`
// is rows per relation; the chain is 8 relations long.

std::vector<DbRelation> MakeChainRelations(int rows) {
  constexpr int kChain = 8;
  Rng rng(4242 + rows);
  int values = std::max(4, rows / 4);
  std::vector<DbRelation> rels;
  rels.reserve(kChain);
  for (int i = 0; i < kChain; ++i) {
    DbRelation rel({i, i + 1});
    rel.Reserve(rows);
    for (int j = 0; j < rows; ++j) {
      rel.AddRow(
          {rng.UniformInt(0, values - 1), rng.UniformInt(0, values - 1)});
    }
    rels.push_back(std::move(rel));
  }
  return rels;
}

void BM_full_reducer_t1(benchmark::State& state) {
  std::vector<DbRelation> rels =
      MakeChainRelations(static_cast<int>(state.range(0)));
  JoinForest forest = *BuildJoinForest(HypergraphOfSchemas(rels));
  for (auto _ : state) {
    std::vector<DbRelation> work = rels;
    YannakakisStats stats;
    FullReducer(forest, &work, &stats);
    benchmark::DoNotOptimize(stats.semijoin_passes);
  }
}
BENCHMARK(BM_full_reducer_t1)->Arg(2000)->Arg(10000);

void FullReducerBody(benchmark::State& state, int threads) {
  std::vector<DbRelation> rels =
      MakeChainRelations(static_cast<int>(state.range(0)));
  JoinForest forest = *BuildJoinForest(HypergraphOfSchemas(rels));
  ParallelDbOptions options = DbOptionsFor(threads);
  for (auto _ : state) {
    std::vector<DbRelation> work = rels;
    YannakakisStats stats;
    FullReducerParallel(forest, &work, options, &stats);
    benchmark::DoNotOptimize(stats.semijoin_passes);
  }
}

void BM_full_reducer_t2(benchmark::State& state) {
  FullReducerBody(state, 2);
}
void BM_full_reducer_t4(benchmark::State& state) {
  FullReducerBody(state, 4);
}
void BM_full_reducer_t8(benchmark::State& state) {
  FullReducerBody(state, 8);
}
BENCHMARK(BM_full_reducer_t2)->Arg(2000)->Arg(10000);
BENCHMARK(BM_full_reducer_t4)->Arg(2000)->Arg(10000);
BENCHMARK(BM_full_reducer_t8)->Arg(2000)->Arg(10000);

}  // namespace
}  // namespace cspdb
