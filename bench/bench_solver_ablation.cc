// Ablation study for the design choices DESIGN.md calls out in the
// solver stack: propagation level (none / forward checking / MAC),
// dynamic variable ordering (MRV on/off), and conflict-directed
// backjumping, on random binary CSPs swept across the tightness phase
// transition. Expected shape: near the phase transition MAC+MRV explores
// orders of magnitude fewer nodes; on loose instances the cheap checks
// win on wall-clock.

#include <benchmark/benchmark.h>

#include "csp/backjump_solver.h"
#include "csp/sat_encoding.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

CspInstance Instance(int n, double tightness, uint64_t seed) {
  Rng rng(seed);
  return RandomBinaryCsp(n, 4, 2 * n, tightness, &rng);
}

void RunConfig(benchmark::State& state, Propagation propagation,
               bool mrv) {
  int n = static_cast<int>(state.range(0));
  double tightness = static_cast<double>(state.range(1)) / 100.0;
  CspInstance csp = Instance(n, tightness, 99);
  SolverOptions options;
  options.propagation = propagation;
  options.mrv = mrv;
  options.node_limit = 5000000;
  int64_t nodes = 0;
  int64_t solvable = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(csp, options);
    solvable += solver.Solve().has_value() ? 1 : 0;
    nodes = solver.stats().nodes;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
}

void BM_PlainStatic(benchmark::State& state) {
  RunConfig(state, Propagation::kNone, false);
}
void BM_PlainMrv(benchmark::State& state) {
  RunConfig(state, Propagation::kNone, true);
}
void BM_ForwardCheckingMrv(benchmark::State& state) {
  RunConfig(state, Propagation::kForwardChecking, true);
}
void BM_MacStatic(benchmark::State& state) {
  RunConfig(state, Propagation::kGac, false);
}
void BM_MacMrv(benchmark::State& state) {
  RunConfig(state, Propagation::kGac, true);
}

void BM_ConflictBackjumping(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  double tightness = static_cast<double>(state.range(1)) / 100.0;
  CspInstance csp = Instance(n, tightness, 99);
  int64_t nodes = 0, jumps = 0;
  int64_t solvable = 0;
  for (auto _ : state) {
    BackjumpSolver solver(csp);
    solvable += solver.Solve().has_value() ? 1 : 0;
    nodes = solver.stats().nodes;
    jumps = solver.stats().backjumps;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["backjumps"] = static_cast<double>(jumps);
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
}

void BM_DpllViaDirectEncoding(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  double tightness = static_cast<double>(state.range(1)) / 100.0;
  CspInstance csp = Instance(n, tightness, 99);
  int64_t decisions = 0;
  int64_t solvable = 0;
  for (auto _ : state) {
    DpllStats stats;
    solvable += SolveViaSat(csp, &stats).has_value() ? 1 : 0;
    decisions = stats.decisions;
  }
  state.counters["decisions"] = static_cast<double>(decisions);
  state.counters["solvable"] = solvable > 0 ? 1 : 0;
}

void AblationArgs(benchmark::internal::Benchmark* b) {
  for (int n : {10, 14}) {
    for (int tightness : {30, 50, 65}) {  // percent
      b->Args({n, tightness});
    }
  }
}

BENCHMARK(BM_PlainStatic)->Apply(AblationArgs);
BENCHMARK(BM_PlainMrv)->Apply(AblationArgs);
BENCHMARK(BM_ForwardCheckingMrv)->Apply(AblationArgs);
BENCHMARK(BM_MacStatic)->Apply(AblationArgs);
BENCHMARK(BM_MacMrv)->Apply(AblationArgs);
BENCHMARK(BM_ConflictBackjumping)->Apply(AblationArgs);
BENCHMARK(BM_DpllViaDirectEncoding)->Apply(AblationArgs);

}  // namespace
}  // namespace cspdb
