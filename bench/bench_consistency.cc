// Experiment E4 (Proposition 5.3, Theorem 5.6): establishing strong
// k-consistency via the largest winning strategy. Measures the establish
// procedure versus instance size for k = 2, 3, and arc consistency (the
// practical k = 2 workhorse) separately. Expected shape: polynomial
// growth with exponent increasing in k; GAC is near-linear in the number
// of constraint checks.

#include <benchmark/benchmark.h>

#include "consistency/arc_consistency.h"
#include "consistency/establish.h"
#include "csp/convert.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

void BM_EstablishStrongKConsistency(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Rng rng(17);
  Structure a = RandomDigraph(n, 2.0 / n, &rng);
  Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
  int64_t possible = 0;
  for (auto _ : state) {
    EstablishResult result = EstablishStrongKConsistency(a, b, k);
    possible += result.possible ? 1 : 0;
    benchmark::DoNotOptimize(result.csp.constraints().size());
  }
  state.counters["possible"] = possible > 0 ? 1 : 0;
}

void BM_EnforceGac(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(19);
  CspInstance csp = RandomBinaryCsp(n, 4, 2 * n, 0.45, &rng);
  int64_t revisions = 0;
  for (auto _ : state) {
    AcResult result = EnforceGac(csp);
    revisions = result.revisions;
    benchmark::DoNotOptimize(result.consistent);
  }
  state.counters["revisions"] = static_cast<double>(revisions);
}

void EstablishArgs(benchmark::internal::Benchmark* b) {
  for (int n : {6, 8, 10, 12}) b->Args({n, 2});
  for (int n : {6, 8, 10}) b->Args({n, 3});
}

BENCHMARK(BM_EstablishStrongKConsistency)->Apply(EstablishArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EnforceGac)->DenseRange(10, 50, 10);

}  // namespace
}  // namespace cspdb
