// Experiment E5 (Theorem 5.7 instances): templates whose complement is
// k-Datalog expressible are decided by establishing k-consistency.
// Measures the k-consistency decision against full backtracking search
// for 2-colorability and Horn-SAT instances. Expected shape: consistency
// decides in polynomial time and agrees with search; search degrades on
// unsatisfiable instances.

#include <benchmark/benchmark.h>

#include "boolean/cnf.h"
#include "boolean/hell_nesetril.h"
#include "consistency/establish.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "games/pebble_game.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

void BM_TwoColorabilityByConsistency(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(23);
  Structure g = RandomUndirectedGraph(n, 2.2 / n, &rng);
  Structure k2 = CliqueGraph(2);
  int64_t colorable = 0;
  for (auto _ : state) {
    colorable += KConsistencyDecides(g, k2, 3) ? 1 : 0;
  }
  state.counters["colorable"] = colorable > 0 ? 1 : 0;
}

void BM_TwoColorabilityBySearch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(23);
  Structure g = RandomUndirectedGraph(n, 2.2 / n, &rng);
  CspInstance csp = ToCspInstance(g, CliqueGraph(2));
  int64_t colorable = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(csp);
    colorable += solver.Solve().has_value() ? 1 : 0;
  }
  state.counters["colorable"] = colorable > 0 ? 1 : 0;
}

void BM_HornByArcConsistencyGame(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(29);
  CnfFormula phi = RandomHorn(n, 3 * n, 3, &rng);
  Vocabulary voc = HornVocabulary(3);
  Structure a = CnfToStructure(phi, voc);
  Structure b = HornTemplate(3);
  int64_t sat = 0;
  for (auto _ : state) {
    // Width-1 templates are decided by the existential 2-pebble game.
    sat += KConsistencyDecides(a, b, 2) ? 1 : 0;
  }
  state.counters["sat"] = sat > 0 ? 1 : 0;
}

void BM_HornBySearch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(29);
  CnfFormula phi = RandomHorn(n, 3 * n, 3, &rng);
  Vocabulary voc = HornVocabulary(3);
  Structure a = CnfToStructure(phi, voc);
  Structure b = HornTemplate(3);
  CspInstance csp = ToCspInstance(a, b);
  int64_t sat = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(csp);
    sat += solver.Solve().has_value() ? 1 : 0;
  }
  state.counters["sat"] = sat > 0 ? 1 : 0;
}

BENCHMARK(BM_TwoColorabilityByConsistency)->DenseRange(6, 14, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TwoColorabilityBySearch)->DenseRange(6, 14, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HornByArcConsistencyGame)->DenseRange(6, 12, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HornBySearch)->DenseRange(6, 12, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cspdb
