// Fixed-size work-stealing thread pool — the execution substrate behind
// the parallel GAC, join, and portfolio kernels. Each worker owns a deque:
// the owner pushes and pops at the back (LIFO, cache-warm), idle workers
// steal from the front of a victim's deque (FIFO, oldest first), so
// recursive fan-out (the Yannakakis subtree reducer) load-balances without
// a global queue bottleneck.
//
// Scheduling primitives:
//   * Submit(fn)            — fire-and-forget task.
//   * TaskGroup             — spawn tasks, Wait() for all; Wait() *helps*
//                             by draining pool tasks, so groups can be
//                             created and awaited from inside pool tasks
//                             (nested fork/join) without deadlock.
//   * ParallelFor(b, e, g)  — blocking data-parallel loop over [b, e) in
//                             chunks of `grain`; the caller participates,
//                             so a 1-thread pool degenerates to a plain
//                             serial loop.
//
// Tasks must not throw (the codebase reports failure via CSPDB_CHECK,
// which aborts). Cooperative cancellation and deadlines are handled above
// this layer with exec::CancellationToken — the pool itself never drops
// submitted work.
//
// Every worker registers a stable "exec.worker.<pool>.<i>" name with the
// tracer
// (obs/trace.h), so spans emitted from pool tasks land on readable,
// per-worker tracks in Perfetto.

#ifndef CSPDB_EXEC_THREAD_POOL_H_
#define CSPDB_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace cspdb::exec {

class TaskGroup;

/// A fixed-size pool of worker threads with per-worker work-stealing
/// deques. Construction spawns the workers; destruction drains nothing —
/// callers are expected to Wait() on their TaskGroups / ParallelFor calls
/// before dropping the pool (the destructor CHECKs the queues are empty).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. `num_threads <= 0` means one worker
  /// per hardware thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide default pool, sized to the hardware concurrency.
  /// Never destroyed (leaked singleton, like the obs registries).
  ///
  /// Exit-ordering contract (audited for the serving layer, ISSUE 5):
  /// because the pool is leaked, its workers survive static destruction
  /// and atexit, so objects with static storage duration may still drain
  /// work through Global() from their destructors — CspdbService relies
  /// on this to drain pending submissions whenever it is destroyed.
  /// Ordering with the tracer: TraceSession::Start registers an atexit
  /// flush; spans emitted by pool workers *after* that flush has run
  /// (e.g. during a later static destructor's drain) are silently
  /// dropped by the tracer's enabled-flag guard — never a crash, at
  /// worst missing tail spans. A locally constructed pool, by contrast,
  /// must outlive every object that submits to it (its destructor CHECKs
  /// the queues are empty), so declare the pool before the service.
  static ThreadPool& Global();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task on the least recently targeted
  /// worker deque. `fn` must not throw.
  ///
  /// Trace-context propagation: if the submitting thread has a non-zero
  /// obs::TraceContext installed (a request id), the task is wrapped so
  /// the same context is installed on the worker thread for the task's
  /// duration — request-scoped flow events keep working across the hop.
  void Submit(std::function<void()> fn);

  /// Tasks pushed and not yet popped, across every worker deque. A
  /// sampling gauge, not a synchronization primitive: the value is
  /// already stale when returned.
  int64_t queued() const { return queued_.load(std::memory_order_relaxed); }

  /// Runs `body(lo, hi)` over disjoint chunks covering [begin, end), each
  /// at most `grain` long. Blocks until every chunk completed. The calling
  /// thread executes chunks too, so this is safe (just serial) on a pool
  /// with one worker and safe to call from inside a pool task.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

 private:
  friend class TaskGroup;

  struct WorkerQueue {
    // Leaf lock in the pool: nothing else is acquired while holding it
    // (Submit releases it before touching idle_mu_).
    util::Mutex mu;
    std::deque<std::function<void()>> tasks CSPDB_GUARDED_BY(mu);
  };

  void WorkerLoop(int worker_index);

  // Pops a task preferring `home`'s deque back, then stealing from the
  // front of the others. Returns an empty function if no work was found.
  std::function<void()> TakeTask(int home);

  // Runs one pending task if any is available. Used by TaskGroup::Wait to
  // help instead of blocking. Returns false if every deque was empty.
  bool RunOneTask();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::vector<std::string> worker_names_;

  std::atomic<uint64_t> submit_cursor_{0};
  std::atomic<int64_t> queued_{0};  // tasks pushed, not yet popped
  std::atomic<bool> stop_{false};

  // Sleep/wake management for idle workers. Never held together with a
  // WorkerQueue::mu.
  util::Mutex idle_mu_;
  util::CondVar idle_cv_;

  // Startup latch: the constructor blocks until every worker has entered
  // its loop and registered its trace track.
  int started_ CSPDB_GUARDED_BY(idle_mu_) = 0;
  util::CondVar started_cv_;
};

/// A fork/join scope: Run() spawns tasks on the pool, Wait() blocks until
/// all of them (including tasks they spawned into the same group) have
/// finished. Wait() helps execute pending pool tasks while it waits, so
/// nested groups inside pool tasks cannot deadlock.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on the pool as part of this group. May be called from
  /// inside a task of the same group (the group stays open until every
  /// transitively spawned task finishes). `fn` must not throw.
  void Run(std::function<void()> fn);

  /// Blocks until every task Run() so far (and any they spawned) is done.
  void Wait();

 private:
  ThreadPool* pool_;
  // Acquired only after every pool lock is released (tasks run lock-free;
  // Wait helps via RunOneTask before touching mu_).
  util::Mutex mu_;
  util::CondVar cv_;
  int64_t pending_ CSPDB_GUARDED_BY(mu_) = 0;
};

}  // namespace cspdb::exec

#endif  // CSPDB_EXEC_THREAD_POOL_H_
