#include "exec/thread_pool.h"

#include <chrono>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace cspdb::exec {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  // Pool instances are numbered so worker track names stay unique even
  // when benchmarks spin up one pool per thread count.
  static std::atomic<int> next_pool_id{0};
  const int pool_id = next_pool_id.fetch_add(1, std::memory_order_relaxed);
  queues_.reserve(num_threads);
  worker_names_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
    worker_names_.push_back("exec.worker." + std::to_string(pool_id) + "." +
                            std::to_string(i));
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  // Wait until every worker has entered its loop (and registered its
  // trace track): callers may start a trace session or tear the pool
  // down immediately after construction, and both must observe fully
  // started workers.
  util::MutexLock lock(idle_mu_);
  while (started_ != num_threads) started_cv_.Wait(idle_mu_);
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(idle_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  idle_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
  // Every scheduling primitive is blocking or group-scoped, so a
  // destroyed pool must have drained; dropped tasks would be a bug.
  CSPDB_CHECK_MSG(queued_.load(std::memory_order_relaxed) == 0,
                  "ThreadPool destroyed with tasks still queued");
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void ThreadPool::Submit(std::function<void()> fn) {
  CSPDB_DCHECK(fn != nullptr);
  // Carry the submitter's request context across the thread hop. Only
  // wrap when a context is actually installed: the common engine-internal
  // fan-out (no request id) keeps the unwrapped fast path.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.request_id != 0) {
    fn = [ctx, inner = std::move(fn)] {
      obs::TraceContextScope scope(ctx);
      inner();
    };
  }
  const std::size_t target =
      submit_cursor_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    util::MutexLock lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Lock/unlock pairs with the worker's predicate check so a worker that
  // just found the queues empty cannot sleep through this submit.
  { util::MutexLock lock(idle_mu_); }
  idle_cv_.NotifyOne();
}

std::function<void()> ThreadPool::TakeTask(int home) {
  const int n = static_cast<int>(queues_.size());
  if (home >= 0) {
    WorkerQueue& own = *queues_[home];
    util::MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      std::function<void()> fn = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_acquire);
      return fn;
    }
  }
  for (int k = 0; k < n; ++k) {
    const int victim = (home < 0 ? k : (home + 1 + k) % n);
    if (victim == home) continue;
    WorkerQueue& q = *queues_[victim];
    util::MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      std::function<void()> fn = std::move(q.tasks.front());
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acquire);
      return fn;
    }
  }
  return nullptr;
}

bool ThreadPool::RunOneTask() {
  std::function<void()> fn = TakeTask(-1);
  if (fn == nullptr) return false;
  fn();
  return true;
}

void ThreadPool::WorkerLoop(int worker_index) {
  obs::TraceSession::SetCurrentThreadName(
      worker_names_[worker_index].c_str());
  {
    util::MutexLock lock(idle_mu_);
    ++started_;
  }
  started_cv_.NotifyOne();
  while (true) {
    std::function<void()> fn = TakeTask(worker_index);
    if (fn != nullptr) {
      fn();
      continue;
    }
    util::MutexLock lock(idle_mu_);
    while (!stop_.load(std::memory_order_relaxed) &&
           queued_.load(std::memory_order_acquire) <= 0) {
      idle_cv_.Wait(idle_mu_);
    }
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const int64_t chunks = (end - begin + grain - 1) / grain;
  if (chunks == 1 || num_threads() <= 1) {
    body(begin, end);
    return;
  }
  // Workers (and the caller) claim chunk indices from a shared cursor, so
  // the partition into chunks is fixed but the assignment of chunks to
  // threads load-balances dynamically.
  std::atomic<int64_t> next{0};
  auto drain = [&] {
    for (int64_t c = next.fetch_add(1, std::memory_order_relaxed);
         c < chunks; c = next.fetch_add(1, std::memory_order_relaxed)) {
      const int64_t lo = begin + c * grain;
      const int64_t hi = lo + grain < end ? lo + grain : end;
      body(lo, hi);
    }
  };
  const int64_t helpers =
      std::min<int64_t>(num_threads(), chunks) - 1;
  TaskGroup group(this);
  for (int64_t i = 0; i < helpers; ++i) group.Run(drain);
  drain();
  group.Wait();
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    util::MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    util::MutexLock lock(mu_);
    // Notify while still holding mu_: the moment the lock is released a
    // waiter may observe pending_ == 0 and destroy the group, so the
    // broadcast must finish first (cv destroy-while-notify race).
    if (--pending_ == 0) cv_.NotifyAll();
  });
}

void TaskGroup::Wait() {
  while (true) {
    {
      util::MutexLock lock(mu_);
      if (pending_ == 0) return;
    }
    // Help instead of blocking so nested Wait() inside pool tasks cannot
    // starve the pool; fall back to a short timed sleep when every queue
    // is empty (our tasks are in flight on other threads). A spurious
    // wake just loops back around to helping — no predicate needed.
    if (pool_->RunOneTask()) continue;
    util::MutexLock lock(mu_);
    if (pending_ == 0) return;
    cv_.WaitFor(mu_, std::chrono::milliseconds(1));
    if (pending_ == 0) return;
  }
}

}  // namespace cspdb::exec
