// Cooperative cancellation for the execution layer. A CancellationToken is
// a flag (plus an optional wall-clock deadline) that long-running kernels
// poll at safe points: parallel GAC between revisions, the solvers every
// few search nodes, the portfolio racer when a rival finishes first.
// Cancellation is always cooperative — nothing is interrupted mid-write,
// so cancelled kernels leave behind sound (if incomplete) state.
//
// Tokens can be linked into a tree with set_parent(): a child reports
// cancelled when either its own flag/deadline fires or any ancestor's
// does. The portfolio solver uses this to merge "a rival finished" with a
// caller-supplied external deadline.

#ifndef CSPDB_EXEC_CANCELLATION_H_
#define CSPDB_EXEC_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cspdb::exec {

/// A cooperative cancellation flag with optional deadline. Thread-safe:
/// any thread may request cancellation; any thread may poll.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Raises the flag. Idempotent.
  void RequestCancel() {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Arms a deadline `timeout` from now; polls after that instant report
  /// cancelled. A second call replaces the previous deadline.
  void CancelAfter(std::chrono::nanoseconds timeout) {
    deadline_ns_.store(NowNs() + timeout.count(), std::memory_order_relaxed);
  }

  /// Chains this token under `parent` (not owned; must outlive this
  /// token). Polls consult the whole ancestor chain.
  void set_parent(const CancellationToken* parent) { parent_ = parent; }

  /// True once cancellation was requested or a deadline passed. Latches:
  /// a deadline that fired keeps reporting cancelled even if the clock
  /// could be re-armed.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline && NowNs() >= deadline) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return parent_ != nullptr && parent_->cancelled();
  }

  /// Clears the flag and deadline (not the parent link). Test support.
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MIN;

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  mutable std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  const CancellationToken* parent_ = nullptr;
};

}  // namespace cspdb::exec

#endif  // CSPDB_EXEC_CANCELLATION_H_
