// Finite relational structures: the common substrate for the CSP and
// database views of constraint satisfaction (paper, Section 2).

#ifndef CSPDB_RELATIONAL_STRUCTURE_H_
#define CSPDB_RELATIONAL_STRUCTURE_H_

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "relational/vocabulary.h"

namespace cspdb {

/// A tuple of domain elements (element ids are dense ints).
using Tuple = std::vector<int>;

/// FNV-style hash for tuples, usable in unordered containers.
struct TupleHash {
  std::size_t operator()(const Tuple& t) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (int x : t) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

/// A set of tuples with O(1) membership.
using TupleSet = std::unordered_set<Tuple, TupleHash>;

/// A finite relational structure A over a vocabulary sigma: a domain
/// {0, ..., n-1} and, for each relation symbol, a finite set of tuples of
/// matching arity. Tuples are deduplicated; insertion order is preserved
/// for deterministic iteration.
class Structure {
 public:
  /// Creates a structure with the given vocabulary and domain size (>= 0).
  Structure(Vocabulary vocabulary, int domain_size);

  /// Adds `t` to relation `rel` (dense symbol index). Checks arity and
  /// element range; duplicate insertions are ignored.
  void AddTuple(int rel, Tuple t);

  /// Convenience overload addressing the relation by name.
  void AddTuple(const std::string& rel_name, Tuple t);

  /// True if `t` is in relation `rel`.
  bool HasTuple(int rel, const Tuple& t) const;

  /// All tuples of relation `rel`, in insertion order.
  const std::vector<Tuple>& tuples(int rel) const;

  /// Total number of tuples across all relations.
  int TotalTuples() const;

  /// Number of domain elements.
  int domain_size() const { return domain_size_; }

  const Vocabulary& vocabulary() const { return vocabulary_; }

  /// Optional human-readable name for element `e` (defaults to "e<i>").
  void SetElementName(int e, std::string name);
  std::string ElementName(int e) const;

  /// Structural equality: same vocabulary, domain size, and tuple sets.
  bool SameTuplesAs(const Structure& other) const;

  /// Multi-line dump for debugging and examples.
  std::string DebugString() const;

 private:
  Vocabulary vocabulary_;
  int domain_size_ = 0;
  std::vector<std::vector<Tuple>> relations_;  // insertion order
  std::vector<TupleSet> relation_sets_;        // membership
  std::vector<std::string> element_names_;
};

}  // namespace cspdb

#endif  // CSPDB_RELATIONAL_STRUCTURE_H_
