#include "relational/vocabulary.h"

#include <algorithm>

#include "util/check.h"

namespace cspdb {

Vocabulary::Vocabulary(std::vector<RelationSymbol> symbols) {
  for (const RelationSymbol& s : symbols) AddSymbol(s.name, s.arity);
}

int Vocabulary::AddSymbol(const std::string& name, int arity) {
  CSPDB_CHECK_MSG(arity >= 1, "arity must be positive for " + name);
  CSPDB_CHECK_MSG(index_.find(name) == index_.end(),
                  "duplicate relation symbol " + name);
  int id = static_cast<int>(symbols_.size());
  symbols_.push_back({name, arity});
  index_[name] = id;
  return id;
}

int Vocabulary::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

const RelationSymbol& Vocabulary::symbol(int i) const {
  CSPDB_CHECK(i >= 0 && i < size());
  return symbols_[i];
}

int Vocabulary::MaxArity() const {
  int m = 0;
  for (const RelationSymbol& s : symbols_) m = std::max(m, s.arity);
  return m;
}

}  // namespace cspdb
