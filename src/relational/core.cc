#include "relational/core.h"

#include <string>
#include <utility>
#include <vector>

#include "relational/homomorphism.h"
#include "relational/structure_ops.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Attempts one shrinking retraction: a homomorphism from `a` into the
// substructure induced by dropping some element. Returns the smaller
// structure, or nullopt if none exists.
std::optional<Structure> ShrinkOnce(const Structure& a) {
  int n = a.domain_size();
  for (int drop = 0; drop < n; ++drop) {
    std::vector<int> keep;
    keep.reserve(n - 1);
    for (int e = 0; e < n; ++e) {
      if (e != drop) keep.push_back(e);
    }
    Structure sub = InducedSubstructure(a, keep);
    if (FindHomomorphism(a, sub).has_value()) return sub;
  }
  return std::nullopt;
}

}  // namespace

bool IsCore(const Structure& a) { return !ShrinkOnce(a).has_value(); }

Structure CoreOf(const Structure& a) {
  Structure current = a;
  while (true) {
    std::optional<Structure> smaller = ShrinkOnce(current);
    if (!smaller.has_value()) return current;
    current = std::move(*smaller);
  }
}

ConjunctiveQuery MinimizeQuery(const ConjunctiveQuery& q) {
  Structure canonical = q.CanonicalDatabase();
  Structure core = CoreOf(canonical);
  // Rebuild the query: marker relations __P<i> give the head, everything
  // else the body.
  const Vocabulary& voc = core.vocabulary();
  std::vector<int> head(q.head().size(), -1);
  std::vector<Atom> body;
  for (int r = 0; r < voc.size(); ++r) {
    const std::string& name = voc.symbol(r).name;
    if (name.rfind("__P", 0) == 0) {
      int slot = std::stoi(name.substr(3));
      CSPDB_CHECK(core.tuples(r).size() == 1);
      head[slot] = core.tuples(r)[0][0];
    } else {
      for (const Tuple& t : core.tuples(r)) {
        body.push_back({name, std::vector<int>(t.begin(), t.end())});
      }
    }
  }
  for (int h : head) CSPDB_CHECK(h >= 0);
  return ConjunctiveQuery(core.domain_size(), std::move(head),
                          std::move(body));
}

}  // namespace cspdb
