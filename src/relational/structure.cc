#include "relational/structure.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace cspdb {

Structure::Structure(Vocabulary vocabulary, int domain_size)
    : vocabulary_(std::move(vocabulary)), domain_size_(domain_size) {
  CSPDB_CHECK(domain_size >= 0);
  relations_.resize(vocabulary_.size());
  relation_sets_.resize(vocabulary_.size());
}

void Structure::AddTuple(int rel, Tuple t) {
  CSPDB_CHECK(rel >= 0 && rel < vocabulary_.size());
  CSPDB_CHECK_MSG(
      static_cast<int>(t.size()) == vocabulary_.symbol(rel).arity,
      "tuple arity mismatch for " + vocabulary_.symbol(rel).name);
  for (int e : t) {
    CSPDB_CHECK_MSG(e >= 0 && e < domain_size_, "element out of range");
  }
  if (relation_sets_[rel].insert(t).second) {
    relations_[rel].push_back(std::move(t));
  }
}

void Structure::AddTuple(const std::string& rel_name, Tuple t) {
  int rel = vocabulary_.IndexOf(rel_name);
  CSPDB_CHECK_MSG(rel >= 0, "unknown relation " + rel_name);
  AddTuple(rel, std::move(t));
}

bool Structure::HasTuple(int rel, const Tuple& t) const {
  CSPDB_CHECK(rel >= 0 && rel < vocabulary_.size());
  return relation_sets_[rel].count(t) > 0;
}

const std::vector<Tuple>& Structure::tuples(int rel) const {
  CSPDB_CHECK(rel >= 0 && rel < vocabulary_.size());
  return relations_[rel];
}

int Structure::TotalTuples() const {
  int total = 0;
  for (const auto& r : relations_) total += static_cast<int>(r.size());
  return total;
}

void Structure::SetElementName(int e, std::string name) {
  CSPDB_CHECK(e >= 0 && e < domain_size_);
  if (element_names_.empty()) element_names_.resize(domain_size_);
  element_names_[e] = std::move(name);
}

std::string Structure::ElementName(int e) const {
  CSPDB_CHECK(e >= 0 && e < domain_size_);
  if (e < static_cast<int>(element_names_.size()) &&
      !element_names_[e].empty()) {
    return element_names_[e];
  }
  return "e" + std::to_string(e);
}

bool Structure::SameTuplesAs(const Structure& other) const {
  if (!(vocabulary_ == other.vocabulary_) ||
      domain_size_ != other.domain_size_) {
    return false;
  }
  for (int r = 0; r < vocabulary_.size(); ++r) {
    if (relation_sets_[r] != other.relation_sets_[r]) return false;
  }
  return true;
}

std::string Structure::DebugString() const {
  std::string out = "Structure(|dom|=" + std::to_string(domain_size_) + ")\n";
  for (int r = 0; r < vocabulary_.size(); ++r) {
    out += "  " + vocabulary_.symbol(r).name + " = {";
    bool first = true;
    for (const Tuple& t : relations_[r]) {
      if (!first) out += ", ";
      first = false;
      out += "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ",";
        out += ElementName(t[i]);
      }
      out += ")";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cspdb
