#include "relational/homomorphism.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "analysis/validate_csp.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Shared backtracking engine: enumerates homomorphisms from a to b and
// invokes `on_solution` for each; stops when on_solution returns false.
class HomSearch {
 public:
  HomSearch(const Structure& a, const Structure& b) : a_(a), b_(b) {
    int n = a.domain_size();
    // Order elements of A by decreasing degree (number of tuple slots).
    std::vector<int> degree(n, 0);
    for (int r = 0; r < a.vocabulary().size(); ++r) {
      for (const Tuple& t : a.tuples(r)) {
        for (int e : t) ++degree[e];
      }
    }
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(),
                     [&](int x, int y) { return degree[x] > degree[y]; });
    position_.assign(n, 0);
    for (int i = 0; i < n; ++i) position_[order_[i]] = i;
    // For each order position, the tuples that become fully assigned
    // exactly when that position is assigned.
    checks_.resize(n);
    for (int r = 0; r < a.vocabulary().size(); ++r) {
      for (const Tuple& t : a.tuples(r)) {
        int last = 0;
        for (int e : t) last = std::max(last, position_[e]);
        if (n > 0) checks_[last].push_back({r, &t});
      }
    }
  }

  // Enumerate. Returns true if enumeration was stopped early by the
  // callback (i.e., the callback returned false).
  template <typename Callback>
  bool Run(Callback&& on_solution, HomSearchStats* stats) {
    h_.assign(a_.domain_size(), kUnassigned);
    image_.clear();
    return Recurse(0, on_solution, stats);
  }

 private:
  template <typename Callback>
  bool Recurse(int pos, Callback&& on_solution, HomSearchStats* stats) {
    if (pos == static_cast<int>(order_.size())) {
      return !on_solution(h_);
    }
    int elem = order_[pos];
    for (int v = 0; v < b_.domain_size(); ++v) {
      h_[elem] = v;
      if (stats != nullptr) ++stats->nodes;
      if (Consistent(pos)) {
        if (Recurse(pos + 1, on_solution, stats)) return true;
      } else if (stats != nullptr) {
        ++stats->backtracks;
      }
    }
    h_[elem] = kUnassigned;
    return false;
  }

  bool Consistent(int pos) const {
    image_.clear();
    for (const auto& [rel, tuple] : checks_[pos]) {
      image_.resize(tuple->size());
      for (std::size_t i = 0; i < tuple->size(); ++i) {
        image_[i] = h_[(*tuple)[i]];
      }
      if (!b_.HasTuple(rel, image_)) return false;
    }
    return true;
  }

  const Structure& a_;
  const Structure& b_;
  std::vector<int> order_;
  std::vector<int> position_;
  std::vector<std::vector<std::pair<int, const Tuple*>>> checks_;
  std::vector<int> h_;
  mutable Tuple image_;
};

}  // namespace

bool IsHomomorphism(const Structure& a, const Structure& b,
                    const std::vector<int>& h) {
  CSPDB_CHECK(static_cast<int>(h.size()) == a.domain_size());
  for (int v : h) {
    if (v < 0 || v >= b.domain_size()) return false;
  }
  return IsPartialHomomorphism(a, b, h);
}

bool IsPartialHomomorphism(const Structure& a, const Structure& b,
                           const std::vector<int>& h) {
  CSPDB_CHECK(static_cast<int>(h.size()) == a.domain_size());
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  Tuple image;
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) {
      bool all_assigned = true;
      image.clear();
      for (int e : t) {
        if (h[e] == kUnassigned) {
          all_assigned = false;
          break;
        }
        image.push_back(h[e]);
      }
      if (all_assigned && !b.HasTuple(r, image)) return false;
    }
  }
  return true;
}

std::optional<std::vector<int>> FindHomomorphism(const Structure& a,
                                                 const Structure& b,
                                                 HomSearchStats* stats) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  if (a.domain_size() > 0 && b.domain_size() == 0) {
    return std::nullopt;
  }
  HomSearch search(a, b);
  std::optional<std::vector<int>> result;
  search.Run(
      [&](const std::vector<int>& h) {
        result = h;
        return false;  // stop
      },
      stats);
  if (result.has_value()) {
    CSPDB_AUDIT(AuditOrDie("homomorphism search witness",
                           ValidateHomomorphism(a, b, *result)));
  }
  return result;
}

int64_t CountHomomorphisms(const Structure& a, const Structure& b,
                           int64_t limit) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  if (a.domain_size() > 0 && b.domain_size() == 0) return 0;
  HomSearch search(a, b);
  int64_t count = 0;
  search.Run(
      [&](const std::vector<int>&) {
        ++count;
        return count < limit;  // keep going until limit
      },
      nullptr);
  return count;
}

int64_t ForEachHomomorphism(
    const Structure& a, const Structure& b,
    const std::function<bool(const std::vector<int>&)>& visit) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  if (a.domain_size() > 0 && b.domain_size() == 0) return 0;
  HomSearch search(a, b);
  int64_t count = 0;
  search.Run(
      [&](const std::vector<int>& h) {
        ++count;
        return visit(h);
      },
      nullptr);
  return count;
}

bool HomomorphicallyEquivalent(const Structure& a, const Structure& b) {
  return FindHomomorphism(a, b).has_value() &&
         FindHomomorphism(b, a).has_value();
}

}  // namespace cspdb
