#include "relational/structure_ops.h"

#include <unordered_map>
#include <vector>

#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {

Structure DisjointSum(const Structure& a, const Structure& b) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  const Vocabulary& sigma = a.vocabulary();
  Vocabulary sum_voc;
  for (int r = 0; r < sigma.size(); ++r) {
    sum_voc.AddSymbol(sigma.symbol(r).name + "_1", sigma.symbol(r).arity);
  }
  for (int r = 0; r < sigma.size(); ++r) {
    sum_voc.AddSymbol(sigma.symbol(r).name + "_2", sigma.symbol(r).arity);
  }
  int d1 = sum_voc.AddSymbol("D_1", 1);
  int d2 = sum_voc.AddSymbol("D_2", 1);

  int na = a.domain_size();
  Structure sum(sum_voc, na + b.domain_size());
  for (int r = 0; r < sigma.size(); ++r) {
    for (const Tuple& t : a.tuples(r)) sum.AddTuple(r, t);
    for (Tuple t : b.tuples(r)) {
      for (int& e : t) e += na;
      sum.AddTuple(sigma.size() + r, t);
    }
  }
  for (int e = 0; e < na; ++e) sum.AddTuple(d1, {e});
  for (int e = 0; e < b.domain_size(); ++e) sum.AddTuple(d2, {na + e});
  return sum;
}

Structure InducedSubstructure(const Structure& a,
                              const std::vector<int>& elements) {
  std::unordered_map<int, int> renumber;
  for (int e : elements) {
    CSPDB_CHECK(e >= 0 && e < a.domain_size());
    renumber.emplace(e, static_cast<int>(renumber.size()));
  }
  Structure sub(a.vocabulary(), static_cast<int>(renumber.size()));
  Tuple mapped;
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) {
      bool inside = true;
      mapped.clear();
      for (int e : t) {
        auto it = renumber.find(e);
        if (it == renumber.end()) {
          inside = false;
          break;
        }
        mapped.push_back(it->second);
      }
      if (inside) sub.AddTuple(r, mapped);
    }
  }
  return sub;
}

Structure DisjointUnion(const Structure& a, const Structure& b) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  int na = a.domain_size();
  Structure u(a.vocabulary(), na + b.domain_size());
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) u.AddTuple(r, t);
    for (Tuple t : b.tuples(r)) {
      for (int& e : t) e += na;
      u.AddTuple(r, t);
    }
  }
  return u;
}

namespace {

// Backtracking bijection search for AreIsomorphic.
bool ExtendIsomorphism(const Structure& a, const Structure& b,
                       std::vector<int>* map, std::vector<char>* used,
                       int next) {
  int n = a.domain_size();
  if (next == n) {
    // `map` is a bijective partial-hom both ways: check tuple counts per
    // relation match (then hom + bijection + equal counts => iso).
    Tuple image;
    for (int r = 0; r < a.vocabulary().size(); ++r) {
      for (const Tuple& t : a.tuples(r)) {
        image.clear();
        for (int e : t) image.push_back((*map)[e]);
        if (!b.HasTuple(r, image)) return false;
      }
      if (a.tuples(r).size() != b.tuples(r).size()) return false;
    }
    return true;
  }
  for (int target = 0; target < n; ++target) {
    if ((*used)[target]) continue;
    (*map)[next] = target;
    (*used)[target] = 1;
    // Prune: tuples fully assigned must map correctly.
    std::vector<int> partial(n, kUnassigned);
    for (int e = 0; e <= next; ++e) partial[e] = (*map)[e];
    if (IsPartialHomomorphism(a, b, partial) &&
        ExtendIsomorphism(a, b, map, used, next + 1)) {
      return true;
    }
    (*used)[target] = 0;
  }
  (*map)[next] = kUnassigned;
  return false;
}

}  // namespace

bool AreIsomorphic(const Structure& a, const Structure& b) {
  if (!(a.vocabulary() == b.vocabulary())) return false;
  if (a.domain_size() != b.domain_size()) return false;
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    if (a.tuples(r).size() != b.tuples(r).size()) return false;
  }
  std::vector<int> map(a.domain_size(), kUnassigned);
  std::vector<char> used(a.domain_size(), 0);
  return ExtendIsomorphism(a, b, &map, &used, 0);
}

Structure DirectProduct(const Structure& a, const Structure& b) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  int nb = b.domain_size();
  Structure prod(a.vocabulary(), a.domain_size() * nb);
  Tuple combined;
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& ta : a.tuples(r)) {
      for (const Tuple& tb : b.tuples(r)) {
        combined.resize(ta.size());
        for (std::size_t i = 0; i < ta.size(); ++i) {
          combined[i] = ta[i] * nb + tb[i];
        }
        prod.AddTuple(r, combined);
      }
    }
  }
  return prod;
}

}  // namespace cspdb
