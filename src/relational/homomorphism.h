// Homomorphisms between relational structures. By the Feder-Vardi
// observation (paper, Section 2), CSP solvability *is* the existence of a
// homomorphism, so this module is the semantic core of the library.

#ifndef CSPDB_RELATIONAL_HOMOMORPHISM_H_
#define CSPDB_RELATIONAL_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "relational/structure.h"

namespace cspdb {

/// Sentinel for an unassigned element in a partial mapping.
inline constexpr int kUnassigned = -1;

/// True if `h` (of size a.domain_size(), with every entry in B's domain)
/// maps every tuple of every relation of `a` into the corresponding
/// relation of `b`.
bool IsHomomorphism(const Structure& a, const Structure& b,
                    const std::vector<int>& h);

/// True if the partial map `h` (entries may be kUnassigned) is a partial
/// homomorphism: every tuple of `a` all of whose elements are assigned
/// maps into the corresponding relation of `b`.
bool IsPartialHomomorphism(const Structure& a, const Structure& b,
                           const std::vector<int>& h);

/// Counters reported by the homomorphism search.
struct HomSearchStats {
  int64_t nodes = 0;       ///< assignments tried
  int64_t backtracks = 0;  ///< failed assignments undone
};

/// Searches for a homomorphism from `a` to `b` by backtracking (elements
/// of `a` ordered by decreasing relational degree; consistency checked as
/// soon as a tuple becomes fully mapped). Returns the mapping, or
/// std::nullopt if none exists.
std::optional<std::vector<int>> FindHomomorphism(const Structure& a,
                                                 const Structure& b,
                                                 HomSearchStats* stats =
                                                     nullptr);

/// Counts homomorphisms from `a` to `b`, stopping once `limit` have been
/// found. Useful for property tests (e.g., product structures multiply
/// counts).
int64_t CountHomomorphisms(const Structure& a, const Structure& b,
                           int64_t limit = INT64_MAX);

/// Enumerates every homomorphism from `a` to `b`, invoking `visit` on
/// each; `visit` returns false to stop the enumeration early. Returns
/// the number of homomorphisms visited.
int64_t ForEachHomomorphism(
    const Structure& a, const Structure& b,
    const std::function<bool(const std::vector<int>&)>& visit);

/// True if a homomorphism exists in both directions (homomorphic
/// equivalence).
bool HomomorphicallyEquivalent(const Structure& a, const Structure& b);

}  // namespace cspdb

#endif  // CSPDB_RELATIONAL_HOMOMORPHISM_H_
