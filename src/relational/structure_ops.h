// Constructions on relational structures used throughout the paper:
// the disjoint-sum encoding A+B of Section 4, induced substructures
// (pebble-game positions), and direct products (homomorphism counting
// laws used by the property tests).

#ifndef CSPDB_RELATIONAL_STRUCTURE_OPS_H_
#define CSPDB_RELATIONAL_STRUCTURE_OPS_H_

#include <vector>

#include "relational/structure.h"

namespace cspdb {

/// The sigma1+sigma2 encoding of the pair (A, B) as a single structure
/// (paper, Section 4): for each symbol R of sigma the result has R_1 and
/// R_2, plus unary D_1 and D_2 marking the two domains. Elements of A keep
/// their ids; elements of B are shifted by a.domain_size().
Structure DisjointSum(const Structure& a, const Structure& b);

/// The substructure of `a` induced by `elements` (paper, Section 4: the
/// substructure pebbled in a game position). Elements are renumbered to
/// 0..k-1 in the order given; duplicates are collapsed.
Structure InducedSubstructure(const Structure& a,
                              const std::vector<int>& elements);

/// The direct (categorical) product A x B: domain is A's domain times B's
/// domain (pair (x, y) has id x * b.domain_size() + y); a tuple is in
/// R^{AxB} iff both projections are in R^A and R^B. Satisfies
/// hom(C, AxB) = hom(C, A) * hom(C, B).
Structure DirectProduct(const Structure& a, const Structure& b);

/// The disjoint union A + B over the *same* vocabulary (the category-
/// theoretic coproduct, not the sigma1+sigma2 encoding of DisjointSum):
/// B's elements are shifted by a.domain_size(). Satisfies
/// hom(A+B, C) iff hom(A, C) and hom(B, C).
Structure DisjointUnion(const Structure& a, const Structure& b);

/// True if some bijection maps A's tuples exactly onto B's (brute-force
/// backtracking; intended for small structures, e.g. checking that cores
/// are unique up to isomorphism).
bool AreIsomorphic(const Structure& a, const Structure& b);

}  // namespace cspdb

#endif  // CSPDB_RELATIONAL_STRUCTURE_OPS_H_
