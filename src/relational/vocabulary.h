// Relational vocabularies (signatures): named relation symbols with arities.

#ifndef CSPDB_RELATIONAL_VOCABULARY_H_
#define CSPDB_RELATIONAL_VOCABULARY_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace cspdb {

/// A relation symbol: a name together with an arity (>= 1).
struct RelationSymbol {
  std::string name;
  int arity = 0;

  friend bool operator==(const RelationSymbol&,
                         const RelationSymbol&) = default;
};

/// A finite relational vocabulary sigma: an ordered list of relation
/// symbols with distinct names. Symbols are addressed by dense index so
/// structures can store their relations in parallel vectors.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Constructs a vocabulary from a symbol list. Names must be distinct.
  explicit Vocabulary(std::vector<RelationSymbol> symbols);

  /// Appends a symbol and returns its index. The name must be fresh and
  /// the arity positive.
  int AddSymbol(const std::string& name, int arity);

  /// Index of the symbol with `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// The symbol at dense index `i`.
  const RelationSymbol& symbol(int i) const;

  /// Number of relation symbols.
  int size() const { return static_cast<int>(symbols_.size()); }

  /// Largest arity among the symbols; 0 for an empty vocabulary.
  int MaxArity() const;

  /// True if both vocabularies list the same symbols in the same order.
  friend bool operator==(const Vocabulary&, const Vocabulary&) = default;

 private:
  std::vector<RelationSymbol> symbols_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace cspdb

#endif  // CSPDB_RELATIONAL_VOCABULARY_H_
