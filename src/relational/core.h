// Homomorphic cores and conjunctive-query minimization. The
// Chandra-Merlin theorem behind Proposition 2.2 also yields the classical
// query-minimization procedure: the unique (up to isomorphism) minimal
// equivalent conjunctive query is the core of the canonical database.
// Cores are likewise the canonical representatives of the homomorphic-
// equivalence classes CSP templates live in.

#ifndef CSPDB_RELATIONAL_CORE_H_
#define CSPDB_RELATIONAL_CORE_H_

#include "db/conjunctive_query.h"
#include "relational/structure.h"

namespace cspdb {

/// True if every endomorphism of `a` is surjective (equivalently: `a`
/// retracts onto no proper substructure). Exponential-time check by
/// homomorphism search; intended for small structures.
bool IsCore(const Structure& a);

/// The core of `a`: an induced substructure that `a` retracts onto and
/// that admits no further proper retraction. Computed by repeatedly
/// searching for a homomorphism from the current structure into the
/// substructure induced by dropping one element. Homomorphically
/// equivalent to `a`; unique up to isomorphism.
Structure CoreOf(const Structure& a);

/// Minimizes a conjunctive query by taking the core of its canonical
/// database (head markers pin the distinguished variables, so they
/// survive). The result is equivalent to `q` with a minimal number of
/// body atoms.
ConjunctiveQuery MinimizeQuery(const ConjunctiveQuery& q);

}  // namespace cspdb

#endif  // CSPDB_RELATIONAL_CORE_H_
