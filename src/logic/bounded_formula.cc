#include "logic/bounded_formula.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>
#include <unordered_map>
#include <utility>

#include "db/algebra.h"
#include "db/relation.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "util/check.h"

namespace cspdb {

BoundedFormula BoundedFormula::Atom(int relation,
                                    std::vector<int> registers) {
  CSPDB_CHECK(relation >= 0);
  BoundedFormula f;
  f.kind_ = Kind::kAtom;
  f.relation_ = relation;
  f.registers_ = std::move(registers);
  return f;
}

BoundedFormula BoundedFormula::And(std::vector<BoundedFormula> children) {
  if (children.size() == 1) return std::move(children[0]);
  BoundedFormula f;
  f.kind_ = Kind::kAnd;
  f.children_ = std::move(children);
  return f;
}

BoundedFormula BoundedFormula::Exists(int reg, BoundedFormula child) {
  CSPDB_CHECK(reg >= 0);
  BoundedFormula f;
  f.kind_ = Kind::kExists;
  f.registers_ = {reg};
  f.children_.push_back(std::move(child));
  return f;
}

namespace {

void CollectRegisters(const BoundedFormula& f, std::set<int>* regs) {
  switch (f.kind()) {
    case BoundedFormula::Kind::kAtom:
      regs->insert(f.registers().begin(), f.registers().end());
      break;
    case BoundedFormula::Kind::kExists:
      regs->insert(f.quantified_register());
      CollectRegisters(f.children()[0], regs);
      break;
    case BoundedFormula::Kind::kAnd:
      for (const BoundedFormula& c : f.children()) {
        CollectRegisters(c, regs);
      }
      break;
  }
}

}  // namespace

int BoundedFormula::RegisterCount() const {
  std::set<int> regs;
  CollectRegisters(*this, &regs);
  return static_cast<int>(regs.size());
}

std::string BoundedFormula::ToString(const Vocabulary& voc) const {
  switch (kind_) {
    case Kind::kAtom: {
      std::string out = voc.symbol(relation_).name + "(";
      for (std::size_t i = 0; i < registers_.size(); ++i) {
        if (i > 0) out += ",";
        out += "x" + std::to_string(registers_[i]);
      }
      return out + ")";
    }
    case Kind::kExists:
      return "Ex" + std::to_string(registers_[0]) + "." +
             children_[0].ToString(voc);
    case Kind::kAnd: {
      if (children_.empty()) return "true";
      std::string out = "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " & ";
        out += children_[i].ToString(voc);
      }
      return out + ")";
    }
  }
  return "true";
}

BoundedFormula FormulaFromTreeDecomposition(const Structure& a,
                                            const TreeDecomposition& td) {
  CSPDB_CHECK_MSG(IsValidForStructure(a, td),
                  "decomposition must cover every tuple of the structure");
  int nodes = static_cast<int>(td.bags.size());
  int width = td.Width();
  int registers = width + 1;

  // Assign each tuple to one bag containing it.
  std::vector<std::vector<std::pair<int, const Tuple*>>> tuples_at(nodes);
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) {
      int home = -1;
      for (int n = 0; n < nodes && home < 0; ++n) {
        bool inside = true;
        for (int e : t) {
          if (!std::binary_search(td.bags[n].begin(), td.bags[n].end(),
                                  e)) {
            inside = false;
            break;
          }
        }
        if (inside) home = n;
      }
      CSPDB_CHECK(home >= 0);
      tuples_at[home].push_back({r, &t});
    }
  }

  // Rooted forest over decomposition nodes.
  std::vector<std::vector<int>> adj(nodes);
  for (const auto& [x, y] : td.edges) {
    adj[x].push_back(y);
    adj[y].push_back(x);
  }
  std::vector<int> parent(nodes, -2);  // -2 unvisited, -1 root

  // Recursive build: reg_of maps the current bag's vertices to registers.
  std::function<BoundedFormula(int, const std::unordered_map<int, int>&)>
      build = [&](int node,
                  const std::unordered_map<int, int>& reg_of)
      -> BoundedFormula {
    std::vector<BoundedFormula> parts;
    for (const auto& [rel, tuple] : tuples_at[node]) {
      std::vector<int> regs;
      regs.reserve(tuple->size());
      for (int e : *tuple) {
        auto it = reg_of.find(e);
        CSPDB_CHECK(it != reg_of.end());
        regs.push_back(it->second);
      }
      parts.push_back(BoundedFormula::Atom(rel, std::move(regs)));
    }
    for (int child : adj[node]) {
      if (parent[child] != -2) continue;  // the parent itself
      parent[child] = node;
      // Shared vertices keep their registers; new vertices recycle the
      // remaining ones.
      std::unordered_map<int, int> child_regs;
      std::vector<char> used(registers, 0);
      for (int v : td.bags[child]) {
        auto it = reg_of.find(v);
        if (it != reg_of.end()) {
          child_regs.emplace(v, it->second);
          used[it->second] = 1;
        }
      }
      std::vector<int> fresh;
      for (int v : td.bags[child]) {
        if (child_regs.count(v) > 0) continue;
        int reg = 0;
        while (used[reg]) ++reg;
        CSPDB_CHECK(reg < registers);
        used[reg] = 1;
        child_regs.emplace(v, reg);
        fresh.push_back(reg);
      }
      BoundedFormula sub = build(child, child_regs);
      for (auto it = fresh.rbegin(); it != fresh.rend(); ++it) {
        sub = BoundedFormula::Exists(*it, std::move(sub));
      }
      parts.push_back(std::move(sub));
    }
    return BoundedFormula::And(std::move(parts));
  };

  std::vector<BoundedFormula> roots;
  for (int n = 0; n < nodes; ++n) {
    if (parent[n] != -2) continue;
    parent[n] = -1;
    std::unordered_map<int, int> reg_of;
    for (std::size_t i = 0; i < td.bags[n].size(); ++i) {
      reg_of.emplace(td.bags[n][i], static_cast<int>(i));
    }
    BoundedFormula sub = build(n, reg_of);
    for (int i = static_cast<int>(td.bags[n].size()) - 1; i >= 0; --i) {
      sub = BoundedFormula::Exists(i, std::move(sub));
    }
    roots.push_back(std::move(sub));
  }
  return BoundedFormula::And(std::move(roots));
}

BoundedFormula FormulaForStructure(const Structure& a) {
  Graph gaifman = GaifmanGraph(a);
  TreeDecomposition td = MinFillDecomposition(gaifman);
  return FormulaFromTreeDecomposition(a, td);
}

namespace {

// Bottom-up evaluation: every subformula becomes a relation over its free
// registers (attribute = register id).
DbRelation EvalRelation(const BoundedFormula& f, const Structure& b) {
  switch (f.kind()) {
    case BoundedFormula::Kind::kAtom: {
      // Distinct registers of the atom, with equality selection on
      // repeats.
      std::vector<int> schema;
      std::vector<int> keep_pos;
      const std::vector<int>& regs = f.registers();
      for (std::size_t i = 0; i < regs.size(); ++i) {
        bool first = true;
        for (std::size_t j = 0; j < i; ++j) {
          if (regs[j] == regs[i]) {
            first = false;
            break;
          }
        }
        if (first) {
          schema.push_back(regs[i]);
          keep_pos.push_back(static_cast<int>(i));
        }
      }
      DbRelation out(schema);
      for (const Tuple& t : b.tuples(f.relation())) {
        bool agree = true;
        for (std::size_t i = 0; i < regs.size() && agree; ++i) {
          for (std::size_t j = 0; j < i; ++j) {
            if (regs[j] == regs[i] && t[j] != t[i]) {
              agree = false;
              break;
            }
          }
        }
        if (!agree) continue;
        Tuple row;
        row.reserve(keep_pos.size());
        for (int p : keep_pos) row.push_back(t[p]);
        out.AddRow(std::move(row));
      }
      return out;
    }
    case BoundedFormula::Kind::kAnd: {
      if (f.children().empty()) {
        DbRelation truth({});
        truth.AddRow(Tuple{});
        return truth;
      }
      DbRelation acc = EvalRelation(f.children()[0], b);
      for (std::size_t i = 1; i < f.children().size(); ++i) {
        acc = NaturalJoin(acc, EvalRelation(f.children()[i], b));
      }
      return acc;
    }
    case BoundedFormula::Kind::kExists: {
      DbRelation child = EvalRelation(f.children()[0], b);
      int reg = f.quantified_register();
      if (child.AttributePosition(reg) >= 0) {
        std::vector<int> keep;
        for (int a : child.schema()) {
          if (a != reg) keep.push_back(a);
        }
        return Project(child, keep);
      }
      // The register does not occur free below: Ex.phi == phi, provided
      // the domain is nonempty; over an empty domain Ex.phi is false.
      if (b.domain_size() > 0) return child;
      return DbRelation(child.schema());
    }
  }
  DbRelation empty({});
  return empty;
}

}  // namespace

bool EvaluateSentence(const BoundedFormula& formula, const Structure& b) {
  DbRelation result = EvalRelation(formula, b);
  CSPDB_CHECK_MSG(result.schema().empty(),
                  "EvaluateSentence requires a sentence (no free "
                  "registers)");
  return !result.empty();
}

}  // namespace cspdb
