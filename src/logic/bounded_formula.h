// Existential-positive bounded-variable formulas (the fragment
// ∃FO^{k+1}_{∧,+} of Section 6). Proposition 6.1: a structure A has
// treewidth k iff its canonical Boolean query phi_A is expressible with
// k+1 variables; the proof of Theorem 6.2 evaluates that bounded-variable
// formula in polynomial time. This module implements both directions
// executably: the parse-tree construction of the formula from a tree
// decomposition, and its polynomial bottom-up evaluation via relational
// algebra (join = conjunction, projection = existential quantification).

#ifndef CSPDB_LOGIC_BOUNDED_FORMULA_H_
#define CSPDB_LOGIC_BOUNDED_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/structure.h"
#include "treewidth/tree_decomposition.h"

namespace cspdb {

/// A formula of ∃FO_{∧,+} over a fixed vocabulary, using integer
/// "registers" as variables. Registers may be reused under quantifiers
/// (that is the whole point of the bounded-variable fragment); an
/// existential quantifier rebinds its register inside its scope.
class BoundedFormula {
 public:
  enum class Kind { kAtom, kAnd, kExists };

  /// Atom R(r_1, ..., r_n): relation index into the vocabulary plus
  /// register arguments (repeats allowed).
  static BoundedFormula Atom(int relation, std::vector<int> registers);

  /// Conjunction (empty conjunction is "true").
  static BoundedFormula And(std::vector<BoundedFormula> children);

  /// Existential quantification of one register.
  static BoundedFormula Exists(int reg, BoundedFormula child);

  Kind kind() const { return kind_; }
  int relation() const { return relation_; }
  const std::vector<int>& registers() const { return registers_; }
  int quantified_register() const { return registers_[0]; }
  const std::vector<BoundedFormula>& children() const { return children_; }

  /// Number of distinct registers mentioned anywhere (bound or free):
  /// the "number of variables" of the formula.
  int RegisterCount() const;

  /// Rendering such as "Ex0.(E(x0,x1) & Ex1.E(x1,x0))".
  std::string ToString(const Vocabulary& voc) const;

 private:
  Kind kind_ = Kind::kAnd;
  int relation_ = -1;
  std::vector<int> registers_;  // atom args, or [reg] for kExists
  std::vector<BoundedFormula> children_;
};

/// The Proposition 6.1 construction: given a structure A and a tree
/// decomposition of width w that is valid for A (every tuple inside some
/// bag — see IsValidForStructure), produces a sentence equivalent to
/// phi_A using at most w+1 registers. Registers are reused down the tree:
/// a child keeps the registers of the vertices it shares with its parent
/// and recycles the rest.
BoundedFormula FormulaFromTreeDecomposition(const Structure& a,
                                            const TreeDecomposition& td);

/// Convenience: min-fill decomposition of A's Gaifman graph (always valid
/// for A: every tuple is a clique of the Gaifman graph and every clique
/// is contained in some bag of a valid decomposition).
BoundedFormula FormulaForStructure(const Structure& a);

/// Evaluates a Boolean sentence (no free registers after quantification)
/// on structure B bottom-up: each subformula becomes a relation over its
/// free registers; conjunction joins, quantification projects. Polynomial
/// in |B|^(register count) — the Theorem 6.2 evaluation.
bool EvaluateSentence(const BoundedFormula& formula, const Structure& b);

}  // namespace cspdb

#endif  // CSPDB_LOGIC_BOUNDED_FORMULA_H_
