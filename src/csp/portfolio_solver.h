// Portfolio search: race several complete solver configurations (MAC,
// forward checking, conflict-directed backjumping, shuffled value orders)
// on the thread pool and take the first decisive finisher. Classic
// algorithm-portfolio idea: orderings have wildly different luck per
// instance, and the racer inherits the minimum runtime of the lineup.
//
// Correctness does not depend on which config wins: every config is a
// complete solver, a winning SAT answer is re-verified against the
// instance (CSPDB_CHECK(IsSolution)), and a winning UNSAT answer is a
// finished, un-aborted exhaustive search. Which config wins (and hence
// which solution is returned on instances with several) is a benign race;
// callers needing a canonical solution should run one solver directly.
//
// Cancellation: the racers share an internal token chained under the
// caller's optional external token — the first decisive finisher cancels
// the rivals, and an external cancel/deadline stops the whole race
// (result.complete == false when nobody finished decisively).

#ifndef CSPDB_CSP_PORTFOLIO_SOLVER_H_
#define CSPDB_CSP_PORTFOLIO_SOLVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "csp/instance.h"
#include "exec/cancellation.h"
#include "exec/thread_pool.h"

namespace cspdb {

struct PortfolioOptions {
  /// Pool to run on; nullptr means ThreadPool::Global().
  exec::ThreadPool* pool = nullptr;

  /// Optional external cancellation/deadline for the whole race.
  const exec::CancellationToken* cancel = nullptr;

  /// How many lineup entries to race, clamped to [1, kNumConfigs]. On a
  /// 1-thread pool only config 0 runs (serially).
  int num_configs = 4;

  /// Per-racer node budget (safety valve); -1 = unlimited.
  int64_t node_limit = -1;
};

struct PortfolioResult {
  /// The winning answer: a (verified) solution, or std::nullopt meaning
  /// UNSAT when complete, "no answer" when !complete.
  std::optional<std::vector<int>> solution;

  /// True iff some racer finished decisively (solved or exhausted its
  /// search without aborting).
  bool complete = false;

  /// Lineup index of the winning config (see PortfolioConfigName), or -1.
  int winner = -1;

  /// Search nodes summed across every racer (winner and cancelled rivals).
  int64_t total_nodes = 0;
};

/// Number of distinct configurations in the fixed lineup.
inline constexpr int kNumPortfolioConfigs = 5;

/// Human-readable name of lineup entry `index` (0..kNumPortfolioConfigs).
const char* PortfolioConfigName(int index);

/// Races the lineup and returns the first decisive answer.
PortfolioResult SolvePortfolio(const CspInstance& csp,
                               const PortfolioOptions& options = {});

}  // namespace cspdb

#endif  // CSPDB_CSP_PORTFOLIO_SOLVER_H_
