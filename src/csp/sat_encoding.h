// The direct encoding of CSP into SAT — the reduction the paper's
// Section 1 takes for granted when it calls Boolean satisfiability a
// constraint-satisfaction problem. One Boolean variable per
// (variable, value) pair; exactly-one clauses per CSP variable; one
// blocking clause per forbidden tuple of each constraint.

#ifndef CSPDB_CSP_SAT_ENCODING_H_
#define CSPDB_CSP_SAT_ENCODING_H_

#include <optional>
#include <vector>

#include "boolean/cnf.h"
#include "boolean/dpll.h"
#include "csp/instance.h"

namespace cspdb {

/// Builds the direct encoding. Boolean variable v * num_values + d means
/// "x_v = d". The encoding has num_variables * num_values Boolean
/// variables and is satisfiable iff the instance is solvable.
CnfFormula DirectEncoding(const CspInstance& csp);

/// Reads a CSP assignment back out of a model of DirectEncoding(csp).
std::vector<int> DecodeModel(const CspInstance& csp,
                             const std::vector<int>& model);

/// Round trip: encode, run DPLL, decode.
std::optional<std::vector<int>> SolveViaSat(const CspInstance& csp,
                                            DpllStats* stats = nullptr);

}  // namespace cspdb

#endif  // CSPDB_CSP_SAT_ENCODING_H_
