#include "csp/dual_encoding.h"

#include <algorithm>
#include <utility>

#include "csp/solver.h"
#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {

DualEncoding BuildDualEncoding(const CspInstance& csp) {
  DualEncoding encoding{CspInstance(0, 0), {}, csp.NormalizedDistinctScopes()};
  const auto& constraints = encoding.normalized.constraints();
  int m = static_cast<int>(constraints.size());
  // Dual domain: the largest allowed-tuple list; dual variable c takes
  // values 0..|allowed(c)|-1, padded values are forbidden by a unary
  // constraint.
  int domain = 0;
  for (const Constraint& c : constraints) {
    domain = std::max(domain, static_cast<int>(c.allowed.size()));
  }
  encoding.dual = CspInstance(m, domain);
  encoding.constraint_of.resize(m);
  for (int i = 0; i < m; ++i) encoding.constraint_of[i] = i;

  for (int i = 0; i < m; ++i) {
    std::vector<Tuple> in_range;
    for (int t = 0; t < static_cast<int>(constraints[i].allowed.size());
         ++t) {
      in_range.push_back({t});
    }
    encoding.dual.AddConstraint({i}, std::move(in_range));
  }

  // Agreement constraints for every pair of constraints sharing original
  // variables.
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      // Shared original variables and their positions.
      std::vector<std::pair<int, int>> shared;  // (pos in i, pos in j)
      for (std::size_t p = 0; p < constraints[i].scope.size(); ++p) {
        for (std::size_t q = 0; q < constraints[j].scope.size(); ++q) {
          if (constraints[i].scope[p] == constraints[j].scope[q]) {
            shared.push_back({static_cast<int>(p), static_cast<int>(q)});
          }
        }
      }
      if (shared.empty()) continue;
      std::vector<Tuple> allowed;
      for (int ti = 0; ti < static_cast<int>(constraints[i].allowed.size());
           ++ti) {
        for (int tj = 0;
             tj < static_cast<int>(constraints[j].allowed.size()); ++tj) {
          bool agree = true;
          for (const auto& [p, q] : shared) {
            if (constraints[i].allowed[ti][p] !=
                constraints[j].allowed[tj][q]) {
              agree = false;
              break;
            }
          }
          if (agree) allowed.push_back({ti, tj});
        }
      }
      encoding.dual.AddConstraint({i, j}, std::move(allowed));
    }
  }
  return encoding;
}

std::vector<int> DecodeDualSolution(const DualEncoding& encoding,
                                    const std::vector<int>& dual_solution) {
  const auto& constraints = encoding.normalized.constraints();
  CSPDB_CHECK(dual_solution.size() == constraints.size());
  std::vector<int> assignment(encoding.normalized.num_variables(),
                              kUnassigned);
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const Constraint& c = constraints[i];
    int choice = dual_solution[i];
    CSPDB_CHECK(choice >= 0 &&
                choice < static_cast<int>(c.allowed.size()));
    for (int p = 0; p < c.arity(); ++p) {
      int var = c.scope[p];
      int val = c.allowed[choice][p];
      CSPDB_CHECK_MSG(
          assignment[var] == kUnassigned || assignment[var] == val,
          "dual solution disagrees on a shared variable");
      assignment[var] = val;
    }
  }
  for (int v = 0; v < encoding.normalized.num_variables(); ++v) {
    if (assignment[v] == kUnassigned) assignment[v] = 0;
  }
  return assignment;
}

CspInstance HiddenVariableEncoding(const CspInstance& csp) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  const auto& constraints = normalized.constraints();
  int n = normalized.num_variables();
  int m = static_cast<int>(constraints.size());
  int domain = normalized.num_values();
  for (const Constraint& c : constraints) {
    domain = std::max(domain, static_cast<int>(c.allowed.size()));
  }
  CspInstance hidden(n + m, domain);

  // Original variables keep their value range.
  for (int v = 0; v < n; ++v) {
    std::vector<Tuple> in_range;
    for (int d = 0; d < normalized.num_values(); ++d) {
      in_range.push_back({d});
    }
    hidden.AddConstraint({v}, std::move(in_range));
  }
  for (int c = 0; c < m; ++c) {
    // Hidden variable range.
    std::vector<Tuple> in_range;
    for (int t = 0; t < static_cast<int>(constraints[c].allowed.size());
         ++t) {
      in_range.push_back({t});
    }
    hidden.AddConstraint({n + c}, std::move(in_range));
    // Tie each scope variable to the chosen tuple.
    for (int p = 0; p < constraints[c].arity(); ++p) {
      std::vector<Tuple> agree;
      for (int t = 0; t < static_cast<int>(constraints[c].allowed.size());
           ++t) {
        agree.push_back({t, constraints[c].allowed[t][p]});
      }
      hidden.AddConstraint({n + c, constraints[c].scope[p]},
                           std::move(agree));
    }
  }
  return hidden;
}

std::optional<std::vector<int>> SolveViaHiddenVariables(
    const CspInstance& csp) {
  if (csp.num_variables() > 0 && csp.num_values() == 0) return std::nullopt;
  CspInstance hidden = HiddenVariableEncoding(csp);
  BacktrackingSolver solver(hidden);
  auto extended = solver.Solve();
  if (!extended.has_value()) return std::nullopt;
  std::vector<int> assignment(extended->begin(),
                              extended->begin() + csp.num_variables());
  CSPDB_CHECK(csp.IsSolution(assignment));
  return assignment;
}

std::optional<std::vector<int>> SolveViaDual(const CspInstance& csp) {
  if (csp.num_variables() > 0 && csp.num_values() == 0) return std::nullopt;
  DualEncoding encoding = BuildDualEncoding(csp);
  if (encoding.normalized.constraints().empty()) {
    return std::vector<int>(csp.num_variables(), 0);
  }
  for (const Constraint& c : encoding.normalized.constraints()) {
    if (c.allowed.empty()) return std::nullopt;
  }
  BacktrackingSolver solver(encoding.dual);
  auto dual_solution = solver.Solve();
  if (!dual_solution.has_value()) return std::nullopt;
  std::vector<int> assignment = DecodeDualSolution(encoding,
                                                   *dual_solution);
  CSPDB_CHECK(csp.IsSolution(assignment));
  return assignment;
}

}  // namespace cspdb
