// The microstructure of a binary CSP instance: the graph whose vertices
// are (variable, value) pairs and whose edges connect compatible pairs of
// assignments. A CSP with n variables is solvable iff its microstructure
// contains an n-clique — the classical bridge between constraint
// satisfaction and graph theory that the paper's abstract lists.

#ifndef CSPDB_CSP_MICROSTRUCTURE_H_
#define CSPDB_CSP_MICROSTRUCTURE_H_

#include <optional>
#include <vector>

#include "csp/instance.h"
#include "treewidth/gaifman.h"

namespace cspdb {

/// The microstructure graph: vertex v * num_values + d stands for the
/// assignment x_v = d. Two vertices are adjacent iff they belong to
/// different variables and no binary (or unary, for self-compatibility)
/// constraint forbids the combination. Vertices whose value violates a
/// unary constraint are isolated. Requires a binary instance (arity <= 2
/// after normalization).
Graph Microstructure(const CspInstance& csp);

/// Searches the microstructure for an n-clique by branch-and-bound over
/// variables (which is, of course, just backtracking search in disguise —
/// that is the point). Returns the corresponding solution or std::nullopt.
std::optional<std::vector<int>> SolveViaMicrostructureClique(
    const CspInstance& csp);

}  // namespace cspdb

#endif  // CSPDB_CSP_MICROSTRUCTURE_H_
