#include "csp/instance.h"

#include <algorithm>
#include <utility>

#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {

CspInstance::CspInstance(int num_variables, int num_values)
    : num_variables_(num_variables), num_values_(num_values) {
  CSPDB_CHECK(num_variables >= 0);
  CSPDB_CHECK(num_values >= 0);
  constraints_on_.resize(num_variables);
}

int CspInstance::AddConstraint(std::vector<int> scope,
                               std::vector<Tuple> allowed) {
  CSPDB_CHECK_MSG(!scope.empty(), "constraint scope must be nonempty");
  for (int v : scope) {
    CSPDB_CHECK_MSG(v >= 0 && v < num_variables_, "variable out of range");
  }
  for (const Tuple& t : allowed) {
    CSPDB_CHECK_MSG(t.size() == scope.size(), "tuple arity mismatch");
    for (int d : t) {
      CSPDB_CHECK_MSG(d >= 0 && d < num_values_, "value out of range");
    }
  }

  auto it = scope_index_.find(scope);
  if (it != scope_index_.end()) {
    // Consolidate: intersect with the existing relation (Section 2).
    Constraint& c = constraints_[it->second];
    TupleSet incoming(allowed.begin(), allowed.end());
    std::vector<Tuple> kept;
    TupleSet kept_set;
    for (const Tuple& t : c.allowed) {
      if (incoming.count(t) > 0 && kept_set.insert(t).second) {
        kept.push_back(t);
      }
    }
    c.allowed = std::move(kept);
    c.allowed_set = std::move(kept_set);
    return it->second;
  }

  int id = static_cast<int>(constraints_.size());
  Constraint c;
  c.scope = scope;
  for (int q = 0; q < static_cast<int>(c.scope.size()); ++q) {
    bool first = true;
    for (int p = 0; p < q; ++p) {
      if (c.scope[p] == c.scope[q]) {
        first = false;
        break;
      }
    }
    if (first) c.distinct_slots.push_back(q);
  }
  for (Tuple& t : allowed) {
    if (c.allowed_set.insert(t).second) c.allowed.push_back(std::move(t));
  }
  constraints_.push_back(std::move(c));
  scope_index_.emplace(std::move(scope), id);
  // Register on each distinct variable once.
  std::vector<int> seen = constraints_[id].scope;
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  for (int v : seen) constraints_on_[v].push_back(id);
  return id;
}

const Constraint& CspInstance::constraint(int i) const {
  CSPDB_CHECK(i >= 0 && i < static_cast<int>(constraints_.size()));
  return constraints_[i];
}

const std::vector<int>& CspInstance::ConstraintsOn(int v) const {
  CSPDB_CHECK(v >= 0 && v < num_variables_);
  return constraints_on_[v];
}

bool CspInstance::IsSolution(const std::vector<int>& assignment) const {
  CSPDB_CHECK(static_cast<int>(assignment.size()) == num_variables_);
  for (int d : assignment) {
    if (d < 0 || d >= num_values_) return false;
  }
  return IsPartialSolution(assignment);
}

bool CspInstance::IsPartialSolution(const std::vector<int>& partial) const {
  CSPDB_CHECK(static_cast<int>(partial.size()) == num_variables_);
  Tuple image;
  for (const Constraint& c : constraints_) {
    bool all_assigned = true;
    image.clear();
    for (int v : c.scope) {
      if (partial[v] == kUnassigned) {
        all_assigned = false;
        break;
      }
      image.push_back(partial[v]);
    }
    if (all_assigned && c.allowed_set.count(image) == 0) return false;
  }
  return true;
}

CspInstance CspInstance::NormalizedDistinctScopes() const {
  CspInstance out(num_variables_, num_values_);
  for (const Constraint& c : constraints_) {
    // Positions of the first occurrence of each variable.
    std::vector<int> keep_pos;
    std::vector<int> new_scope;
    for (int i = 0; i < c.arity(); ++i) {
      bool first = true;
      for (int j = 0; j < i; ++j) {
        if (c.scope[j] == c.scope[i]) {
          first = false;
          break;
        }
      }
      if (first) {
        keep_pos.push_back(i);
        new_scope.push_back(c.scope[i]);
      }
    }
    std::vector<Tuple> new_allowed;
    for (const Tuple& t : c.allowed) {
      // Delete tuples whose repeated positions disagree.
      bool agree = true;
      for (int i = 0; i < c.arity() && agree; ++i) {
        for (int j = 0; j < i; ++j) {
          if (c.scope[j] == c.scope[i] && t[j] != t[i]) {
            agree = false;
            break;
          }
        }
      }
      if (!agree) continue;
      Tuple projected;
      projected.reserve(keep_pos.size());
      for (int p : keep_pos) projected.push_back(t[p]);
      new_allowed.push_back(std::move(projected));
    }
    out.AddConstraint(std::move(new_scope), std::move(new_allowed));
  }
  return out;
}

void CspInstance::SetVariableName(int v, std::string name) {
  CSPDB_CHECK(v >= 0 && v < num_variables_);
  if (variable_names_.empty()) variable_names_.resize(num_variables_);
  variable_names_[v] = std::move(name);
}

std::string CspInstance::VariableName(int v) const {
  CSPDB_CHECK(v >= 0 && v < num_variables_);
  if (v < static_cast<int>(variable_names_.size()) &&
      !variable_names_[v].empty()) {
    return variable_names_[v];
  }
  return "x" + std::to_string(v);
}

void CspInstance::SetValueName(int d, std::string name) {
  CSPDB_CHECK(d >= 0 && d < num_values_);
  if (value_names_.empty()) value_names_.resize(num_values_);
  value_names_[d] = std::move(name);
}

std::string CspInstance::ValueName(int d) const {
  CSPDB_CHECK(d >= 0 && d < num_values_);
  if (d < static_cast<int>(value_names_.size()) &&
      !value_names_[d].empty()) {
    return value_names_[d];
  }
  return "v" + std::to_string(d);
}

std::string CspInstance::DebugString() const {
  std::string out = "CspInstance(|V|=" + std::to_string(num_variables_) +
                    ", |D|=" + std::to_string(num_values_) + ")\n";
  for (const Constraint& c : constraints_) {
    out += "  (";
    for (int i = 0; i < c.arity(); ++i) {
      if (i > 0) out += ",";
      out += VariableName(c.scope[i]);
    }
    out += ") in {";
    bool first = true;
    for (const Tuple& t : c.allowed) {
      if (!first) out += ", ";
      first = false;
      out += "(";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ",";
        out += ValueName(t[i]);
      }
      out += ")";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cspdb
