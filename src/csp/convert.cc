#include "csp/convert.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cspdb {

HomInstance ToHomomorphismInstance(const CspInstance& csp) {
  // Identify distinct constraint relations by their canonical (sorted)
  // tuple lists. Arity is part of the key implicitly via tuple length.
  std::map<std::vector<Tuple>, int> relation_ids;
  std::vector<const Constraint*> by_constraint(csp.constraints().size());
  Vocabulary voc;
  std::vector<int> constraint_rel(csp.constraints().size());
  for (std::size_t i = 0; i < csp.constraints().size(); ++i) {
    const Constraint& c = csp.constraints()[i];
    std::vector<Tuple> canon = c.allowed;
    std::sort(canon.begin(), canon.end());
    auto [it, inserted] =
        relation_ids.emplace(std::move(canon), voc.size());
    if (inserted) {
      voc.AddSymbol("R" + std::to_string(it->second), c.arity());
    }
    constraint_rel[i] = it->second;
    by_constraint[i] = &c;
  }

  Structure a(voc, csp.num_variables());
  Structure b(voc, csp.num_values());
  for (std::size_t i = 0; i < csp.constraints().size(); ++i) {
    const Constraint& c = *by_constraint[i];
    a.AddTuple(constraint_rel[i], Tuple(c.scope.begin(), c.scope.end()));
    for (const Tuple& t : c.allowed) b.AddTuple(constraint_rel[i], t);
  }
  for (int v = 0; v < csp.num_variables(); ++v) {
    a.SetElementName(v, csp.VariableName(v));
  }
  for (int d = 0; d < csp.num_values(); ++d) {
    b.SetElementName(d, csp.ValueName(d));
  }
  return {std::move(a), std::move(b)};
}

CspInstance ToCspInstance(const Structure& a, const Structure& b) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  CspInstance csp(a.domain_size(), b.domain_size());
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    const std::vector<Tuple>& image = b.tuples(r);
    for (const Tuple& t : a.tuples(r)) {
      csp.AddConstraint(std::vector<int>(t.begin(), t.end()), image);
    }
  }
  for (int e = 0; e < a.domain_size(); ++e) {
    csp.SetVariableName(e, a.ElementName(e));
  }
  for (int e = 0; e < b.domain_size(); ++e) {
    csp.SetValueName(e, b.ElementName(e));
  }
  return csp;
}

}  // namespace cspdb
