#include "csp/support_masks.h"

#include <utility>

#include "util/check.h"
#include "util/simd.h"

namespace cspdb {

void ConstraintSupport::CollectUnsupported(const Bitset& valid,
                                           const Bitset& domain, int g,
                                           int num_values,
                                           std::vector<int>* out) const {
  CSPDB_DCHECK(valid.num_words() == words);
  const uint64_t* valid_words = valid.words();
  const uint64_t* rows =
      support.data() +
      static_cast<std::size_t>(g) * num_values * static_cast<std::size_t>(words);
  const std::size_t row_words = static_cast<std::size_t>(words);
  for (int val = domain.FindFirst(); val >= 0;
       val = domain.NextSetBit(val + 1)) {
    if (!simd::Intersects(valid_words,
                          rows + static_cast<std::size_t>(val) * row_words,
                          row_words)) {
      out->push_back(val);
    }
  }
}

SupportMasks::SupportMasks(const CspInstance& csp) {
  const int m = static_cast<int>(csp.constraints().size());
  const int num_values = csp.num_values();
  constraints.resize(m);
  for (int ci = 0; ci < m; ++ci) {
    const Constraint& c = csp.constraint(ci);
    ConstraintSupport& masks = constraints[ci];
    const int num_tuples = static_cast<int>(c.allowed.size());
    const bool has_dup =
        c.distinct_slots.size() != static_cast<std::size_t>(c.arity());
    std::vector<std::vector<int>> group_slots;
    for (int slot : c.distinct_slots) {
      masks.group_var.push_back(c.scope[slot]);
      std::vector<int> slots;
      for (int q = 0; q < c.arity(); ++q) {
        if (c.scope[q] == c.scope[slot]) slots.push_back(q);
      }
      group_slots.push_back(std::move(slots));
    }
    const std::size_t cells =
        masks.group_var.size() * static_cast<std::size_t>(num_values);
    masks.words = static_cast<int>(Bitset::NumWordsFor(num_tuples));
    const std::size_t words = static_cast<std::size_t>(masks.words);
    masks.support.assign(cells * words, 0);
    if (has_dup) masks.killer.assign(cells * words, 0);
    auto set_bit = [words](std::vector<uint64_t>& arena, std::size_t cell,
                           int ti) {
      arena[cell * words + (static_cast<std::size_t>(ti) >> 6)] |=
          uint64_t{1} << (ti & 63);
    };
    for (int ti = 0; ti < num_tuples; ++ti) {
      const Tuple& t = c.allowed[ti];
      for (std::size_t g = 0; g < masks.group_var.size(); ++g) {
        const std::vector<int>& slots = group_slots[g];
        const int val = t[slots[0]];
        bool agree = true;
        for (int q : slots) {
          if (t[q] != val) {
            agree = false;
            break;
          }
        }
        if (agree) {
          set_bit(masks.support, g * num_values + val, ti);
        }
        if (has_dup) {
          for (int q : slots) {
            set_bit(masks.killer, g * num_values + t[q], ti);
          }
        }
      }
    }
  }
  var_group.resize(csp.num_variables());
  for (int v = 0; v < csp.num_variables(); ++v) {
    for (int ci : csp.ConstraintsOn(v)) {
      int group = -1;
      const std::vector<int>& vars = constraints[ci].group_var;
      for (std::size_t g = 0; g < vars.size(); ++g) {
        if (vars[g] == v) {
          group = static_cast<int>(g);
          break;
        }
      }
      CSPDB_DCHECK(group >= 0);
      var_group[v].push_back(group);
    }
  }
}

}  // namespace cspdb
