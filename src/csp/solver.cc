#include "csp/solver.h"

#include <algorithm>
#include <utility>

#include <numeric>

#include "analysis/validate_csp.h"
#include "obs/obs.h"
#include "relational/homomorphism.h"
#include "util/check.h"
#include "util/rng.h"

namespace cspdb {

BacktrackingSolver::BacktrackingSolver(const CspInstance& csp,
                                       SolverOptions options)
    : csp_(csp), options_(options) {
  degree_.assign(csp_.num_variables(), 0);
  for (int v = 0; v < csp_.num_variables(); ++v) {
    degree_[v] = static_cast<int>(csp_.ConstraintsOn(v).size());
  }
}

void BacktrackingSolver::Reset() {
  stats_ = SolverStats{};
  revision_counts_.assign(csp_.constraints().size(), 0);
  value_order_.resize(csp_.num_values());
  std::iota(value_order_.begin(), value_order_.end(), 0);
  if (options_.value_order_seed != 0) {
    Rng rng(options_.value_order_seed);
    rng.Shuffle(&value_order_);
  }
  active_.assign(csp_.num_variables(), Bitset(csp_.num_values(), true));
  domain_size_.assign(csp_.num_variables(), csp_.num_values());
  assignment_.assign(csp_.num_variables(), kUnassigned);
  trail_.clear();
  word_trail_.clear();
  residues_.assign(csp_.constraints().size(), {});
  masks_.emplace(csp_);
  valid_.clear();
  valid_.reserve(csp_.constraints().size());
  for (const Constraint& c : csp_.constraints()) {
    valid_.emplace_back(static_cast<int>(c.allowed.size()), true);
  }
}

bool BacktrackingSolver::Prune(int var, int val) {
  if (!active_[var].Test(val)) return true;
  active_[var].Reset(val);
  --domain_size_[var];
  ++stats_.prunings;
  CSPDB_COUNT("csp.prunings");
  trail_.push_back({var, val});
  // Kill the tuples that assigned val to var, a word at a time, saving
  // each changed word on the trail for backtracking.
  const std::vector<int>& cons = csp_.ConstraintsOn(var);
  for (std::size_t k = 0; k < cons.size(); ++k) {
    const int ci = cons[k];
    const uint64_t* kw = masks_->constraints[ci].KillerMask(
        masks_->var_group[var][k], csp_.num_values(), val);
    uint64_t* vw = valid_[ci].mutable_words();
    for (int w = 0; w < valid_[ci].num_words(); ++w) {
      const uint64_t old_word = vw[w];
      const uint64_t new_word = old_word & ~kw[w];
      if (new_word != old_word) {
        word_trail_.push_back({ci, w, old_word});
        vw[w] = new_word;
      }
    }
  }
  return domain_size_[var] > 0;
}

void BacktrackingSolver::UndoTo(std::size_t value_mark,
                                std::size_t word_mark) {
  while (trail_.size() > value_mark) {
    auto [var, val] = trail_.back();
    trail_.pop_back();
    active_[var].Set(val);
    ++domain_size_[var];
  }
  // Reverse replay: if a word was saved more than once, the oldest value
  // is restored last.
  while (word_trail_.size() > word_mark) {
    const WordTrailEntry& e = word_trail_.back();
    valid_[e.constraint].mutable_words()[e.word] = e.old_word;
    word_trail_.pop_back();
  }
}

int BacktrackingSolver::GroupOf(int ci, int var) const {
  const std::vector<int>& vars = masks_->constraints[ci].group_var;
  for (std::size_t g = 0; g < vars.size(); ++g) {
    if (vars[g] == var) return static_cast<int>(g);
  }
  CSPDB_DCHECK(false);
  return -1;
}

bool BacktrackingSolver::CheckAssignedConstraints(int var) const {
  for (int ci : csp_.ConstraintsOn(var)) {
    const Constraint& c = csp_.constraint(ci);
    bool all_assigned = true;
    for (int v : c.scope) {
      if (assignment_[v] == kUnassigned) {
        all_assigned = false;
        break;
      }
    }
    // With every scope variable a singleton, the valid tuples are exactly
    // those matching the assignment — membership is a nonemptiness test.
    if (all_assigned && valid_[ci].None()) return false;
  }
  return true;
}

bool BacktrackingSolver::ForwardCheck(int var) {
  for (int ci : csp_.ConstraintsOn(var)) {
    const Constraint& c = csp_.constraint(ci);
    // Collect the single unassigned variable, if any.
    int open_var = kUnassigned;
    bool exactly_one = true;
    for (int v : c.scope) {
      if (assignment_[v] == kUnassigned) {
        if (open_var != kUnassigned && open_var != v) {
          exactly_one = false;
          break;
        }
        open_var = v;
      }
    }
    if (open_var == kUnassigned) {
      if (valid_[ci].None()) return false;  // fully assigned: membership
      continue;
    }
    if (!exactly_one) continue;
    // Prune unsupported values of open_var: supported iff some valid
    // tuple assigns val to every slot of open_var.
    const ConstraintSupport& masks = masks_->constraints[ci];
    const int g = GroupOf(ci, open_var);
    const Bitset& domain = active_[open_var];
    for (int val = domain.FindFirst(); val >= 0;
         val = domain.NextSetBit(val + 1)) {
      if (valid_[ci].IntersectsWords(
              masks.SupportMask(g, csp_.num_values(), val))) {
        continue;
      }
      if (!Prune(open_var, val)) return false;
    }
  }
  return true;
}

bool BacktrackingSolver::Revise(int ci, int group) {
  ++stats_.revisions;
  ++revision_counts_[ci];
  CSPDB_COUNT("csp.revisions");
  const ConstraintSupport& masks = masks_->constraints[ci];
  const int var = masks.group_var[group];
  const int num_values = csp_.num_values();
  std::vector<int>& residues = residues_[ci];
  if (residues.empty()) {
    residues.assign(
        masks.group_var.size() * static_cast<std::size_t>(num_values), -1);
  }
  bool changed = false;
  const Bitset& domain = active_[var];
  for (int val = domain.FindFirst(); val >= 0;
       val = domain.NextSetBit(val + 1)) {
    int& residue = residues[group * num_values + val];
    // A residue tuple permanently assigns val to var's slots, so it is a
    // support exactly while it stays in the valid mask.
    if (residue >= 0 && valid_[ci].Test(residue)) continue;
    const int found = valid_[ci].FirstCommonBitWords(
        masks.SupportMask(group, num_values, val));
    if (found >= 0) {
      residue = found;
      continue;
    }
    if (!Prune(var, val)) return false;
    changed = true;
  }
  last_revise_changed_ = changed;
  return true;
}

bool BacktrackingSolver::PropagateGac(
    const std::vector<int>& seed_constraints) {
  gac_queue_.assign(seed_constraints.begin(), seed_constraints.end());
  gac_queued_.assign(csp_.constraints().size(), 0);
  for (int c : gac_queue_) gac_queued_[c] = 1;
  while (!gac_queue_.empty()) {
    const int ci = gac_queue_.front();
    gac_queue_.pop_front();
    gac_queued_[ci] = 0;
    const ConstraintSupport& masks = masks_->constraints[ci];
    for (std::size_t g = 0; g < masks.group_var.size(); ++g) {
      last_revise_changed_ = false;
      if (!Revise(ci, static_cast<int>(g))) return false;
      if (last_revise_changed_) {
        for (int other : csp_.ConstraintsOn(masks.group_var[g])) {
          if (other != ci && !gac_queued_[other]) {
            gac_queue_.push_back(other);
            gac_queued_[other] = 1;
            CSPDB_GAUGE_MAX("csp.gac_queue_peak",
                            static_cast<int64_t>(gac_queue_.size()));
          }
        }
      }
    }
  }
  return true;
}

bool BacktrackingSolver::AssignAndPropagate(int var, int val) {
  assignment_[var] = val;
  for (int other = 0; other < csp_.num_values(); ++other) {
    if (other != val && !Prune(var, other)) return false;
  }
  switch (options_.propagation) {
    case Propagation::kNone:
      return CheckAssignedConstraints(var);
    case Propagation::kForwardChecking:
      return ForwardCheck(var);
    case Propagation::kGac:
      return PropagateGac(csp_.ConstraintsOn(var));
  }
  return false;
}

int BacktrackingSolver::PickVariable() const {
  int best = kUnassigned;
  for (int v = 0; v < csp_.num_variables(); ++v) {
    if (assignment_[v] != kUnassigned) continue;
    if (best == kUnassigned) {
      best = v;
      if (!options_.mrv) return best;  // static order
      continue;
    }
    if (domain_size_[v] < domain_size_[best] ||
        (domain_size_[v] == domain_size_[best] &&
         degree_[v] > degree_[best])) {
      best = v;
    }
  }
  return best;
}

template <typename Callback>
bool BacktrackingSolver::Recurse(Callback&& on_solution, bool* stopped) {
  int var = PickVariable();
  if (var == kUnassigned) {
    if (!on_solution(assignment_)) {
      *stopped = true;
      return true;
    }
    return false;
  }
  for (int val : value_order_) {
    if (!active_[var].Test(val)) continue;
    if (options_.node_limit >= 0 && stats_.nodes >= options_.node_limit) {
      stats_.aborted = true;
      *stopped = true;
      return true;
    }
    // Poll cancellation every 64 nodes — cheap enough to leave in the hot
    // loop, responsive enough for portfolio racing.
    if (options_.cancel != nullptr && (stats_.nodes & 63) == 0 &&
        options_.cancel->cancelled()) {
      stats_.aborted = true;
      *stopped = true;
      return true;
    }
    ++stats_.nodes;
    CSPDB_COUNT("csp.nodes");
    std::size_t value_mark = trail_.size();
    std::size_t word_mark = word_trail_.size();
    if (AssignAndPropagate(var, val)) {
      if (Recurse(on_solution, stopped)) return true;
    }
    assignment_[var] = kUnassigned;
    UndoTo(value_mark, word_mark);
    ++stats_.backtracks;
    CSPDB_COUNT("csp.backtracks");
  }
  return false;
}

template <typename Callback>
bool BacktrackingSolver::Search(Callback&& on_solution) {
  if (csp_.num_variables() > 0 && csp_.num_values() == 0) {
    stats_ = SolverStats{};
    return false;
  }
  // Empty-relation constraints are unsatisfiable outright.
  for (const Constraint& c : csp_.constraints()) {
    if (c.allowed.empty()) {
      stats_ = SolverStats{};
      return false;
    }
  }
  Reset();
  if (options_.propagation == Propagation::kGac) {
    std::vector<int> all(csp_.constraints().size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    if (!PropagateGac(all)) return false;
  }
  bool stopped = false;
  Recurse(on_solution, &stopped);
  return stopped;
}

std::optional<std::vector<int>> BacktrackingSolver::Solve() {
  CSPDB_TIMER_SCOPE("csp.solve");
  std::optional<std::vector<int>> result;
  Search([&](const std::vector<int>& a) {
    result = a;
    return false;  // stop at first solution
  });
  if (stats_.aborted) return std::nullopt;
  if (result.has_value()) {
    CSPDB_AUDIT(AuditOrDie("BacktrackingSolver solution",
                           ValidateSolution(csp_, *result)));
  }
  return result;
}

int64_t BacktrackingSolver::CountSolutions(int64_t limit) {
  CSPDB_TIMER_SCOPE("csp.count_solutions");
  int64_t count = 0;
  Search([&](const std::vector<int>&) {
    ++count;
    return count < limit;
  });
  return count;
}

}  // namespace cspdb
