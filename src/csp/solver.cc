#include "csp/solver.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "analysis/validate_csp.h"
#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {

BacktrackingSolver::BacktrackingSolver(const CspInstance& csp,
                                       SolverOptions options)
    : csp_(csp), options_(options) {
  degree_.assign(csp_.num_variables(), 0);
  for (int v = 0; v < csp_.num_variables(); ++v) {
    degree_[v] = static_cast<int>(csp_.ConstraintsOn(v).size());
  }
}

void BacktrackingSolver::Reset() {
  stats_ = SolverStats{};
  active_.assign(csp_.num_variables(),
                 std::vector<char>(csp_.num_values(), 1));
  domain_size_.assign(csp_.num_variables(), csp_.num_values());
  assignment_.assign(csp_.num_variables(), kUnassigned);
  trail_.clear();
  residues_.assign(csp_.constraints().size(), {});
}

bool BacktrackingSolver::Prune(int var, int val) {
  if (!active_[var][val]) return true;
  active_[var][val] = 0;
  --domain_size_[var];
  ++stats_.prunings;
  trail_.push_back({var, val});
  return domain_size_[var] > 0;
}

void BacktrackingSolver::UndoTo(std::size_t mark) {
  while (trail_.size() > mark) {
    auto [var, val] = trail_.back();
    trail_.pop_back();
    active_[var][val] = 1;
    ++domain_size_[var];
  }
}

bool BacktrackingSolver::TupleValid(const Constraint& c,
                                    const Tuple& t) const {
  for (int q = 0; q < c.arity(); ++q) {
    if (!active_[c.scope[q]][t[q]]) return false;
  }
  return true;
}

bool BacktrackingSolver::CheckAssignedConstraints(int var) const {
  Tuple image;
  for (int ci : csp_.ConstraintsOn(var)) {
    const Constraint& c = csp_.constraint(ci);
    bool all_assigned = true;
    image.clear();
    for (int v : c.scope) {
      if (assignment_[v] == kUnassigned) {
        all_assigned = false;
        break;
      }
      image.push_back(assignment_[v]);
    }
    if (all_assigned && c.allowed_set.count(image) == 0) return false;
  }
  return true;
}

bool BacktrackingSolver::ForwardCheck(int var) {
  for (int ci : csp_.ConstraintsOn(var)) {
    const Constraint& c = csp_.constraint(ci);
    // Collect the single unassigned variable, if any.
    int open_var = kUnassigned;
    bool exactly_one = true;
    for (int v : c.scope) {
      if (assignment_[v] == kUnassigned) {
        if (open_var != kUnassigned && open_var != v) {
          exactly_one = false;
          break;
        }
        open_var = v;
      }
    }
    if (open_var == kUnassigned) {
      // Fully assigned: membership check.
      Tuple image;
      image.reserve(c.arity());
      for (int v : c.scope) image.push_back(assignment_[v]);
      if (c.allowed_set.count(image) == 0) return false;
      continue;
    }
    if (!exactly_one) continue;
    // Prune unsupported values of open_var.
    for (int val = 0; val < csp_.num_values(); ++val) {
      if (!active_[open_var][val]) continue;
      bool supported = false;
      for (const Tuple& t : c.allowed) {
        bool match = true;
        for (int q = 0; q < c.arity(); ++q) {
          int expect =
              c.scope[q] == open_var ? val : assignment_[c.scope[q]];
          if (t[q] != expect) {
            match = false;
            break;
          }
        }
        if (match) {
          supported = true;
          break;
        }
      }
      if (!supported && !Prune(open_var, val)) return false;
    }
  }
  return true;
}

bool BacktrackingSolver::Revise(int ci, int slot) {
  const Constraint& c = csp_.constraint(ci);
  int var = c.scope[slot];
  std::vector<int>& residues = residues_[ci];
  if (residues.empty()) {
    residues.assign(static_cast<std::size_t>(c.arity()) * csp_.num_values(),
                    0);
  }
  // t supports (var, val) if t is valid under current domains and assigns
  // val to every position of var.
  auto supports = [&](const Tuple& t, int val) {
    for (int q = 0; q < c.arity(); ++q) {
      if (c.scope[q] == var ? (t[q] != val) : !active_[c.scope[q]][t[q]]) {
        return false;
      }
    }
    return true;
  };
  bool changed = false;
  for (int val = 0; val < csp_.num_values(); ++val) {
    if (!active_[var][val]) continue;
    int& residue = residues[slot * csp_.num_values() + val];
    if (residue < static_cast<int>(c.allowed.size()) &&
        supports(c.allowed[residue], val)) {
      continue;  // cached support still valid
    }
    bool supported = false;
    for (std::size_t i = 0; i < c.allowed.size(); ++i) {
      if (supports(c.allowed[i], val)) {
        residue = static_cast<int>(i);
        supported = true;
        break;
      }
    }
    if (!supported) {
      if (!Prune(var, val)) return false;
      changed = true;
    }
  }
  if (changed) {
    // Signal the caller via domain change; requeue handled there.
    last_revise_changed_ = true;
  }
  return true;
}

bool BacktrackingSolver::PropagateGac(
    const std::vector<int>& seed_constraints) {
  std::deque<int> queue(seed_constraints.begin(), seed_constraints.end());
  std::vector<char> queued(csp_.constraints().size(), 0);
  for (int c : queue) queued[c] = 1;
  while (!queue.empty()) {
    int ci = queue.front();
    queue.pop_front();
    queued[ci] = 0;
    const Constraint& c = csp_.constraint(ci);
    bool any_changed = false;
    for (int q = 0; q < c.arity(); ++q) {
      int var = c.scope[q];
      // Skip duplicate positions of the same variable.
      bool dup = false;
      for (int p = 0; p < q; ++p) {
        if (c.scope[p] == var) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      last_revise_changed_ = false;
      if (!Revise(ci, q)) return false;
      if (last_revise_changed_) {
        any_changed = true;
        for (int other : csp_.ConstraintsOn(var)) {
          if (other != ci && !queued[other]) {
            queue.push_back(other);
            queued[other] = 1;
          }
        }
      }
    }
    (void)any_changed;
  }
  return true;
}

bool BacktrackingSolver::AssignAndPropagate(int var, int val) {
  assignment_[var] = val;
  for (int other = 0; other < csp_.num_values(); ++other) {
    if (other != val && !Prune(var, other)) return false;
  }
  switch (options_.propagation) {
    case Propagation::kNone:
      return CheckAssignedConstraints(var);
    case Propagation::kForwardChecking:
      return ForwardCheck(var);
    case Propagation::kGac:
      return PropagateGac(csp_.ConstraintsOn(var));
  }
  return false;
}

int BacktrackingSolver::PickVariable() const {
  int best = kUnassigned;
  for (int v = 0; v < csp_.num_variables(); ++v) {
    if (assignment_[v] != kUnassigned) continue;
    if (best == kUnassigned) {
      best = v;
      if (!options_.mrv) return best;  // static order
      continue;
    }
    if (domain_size_[v] < domain_size_[best] ||
        (domain_size_[v] == domain_size_[best] &&
         degree_[v] > degree_[best])) {
      best = v;
    }
  }
  return best;
}

template <typename Callback>
bool BacktrackingSolver::Recurse(Callback&& on_solution, bool* stopped) {
  int var = PickVariable();
  if (var == kUnassigned) {
    if (!on_solution(assignment_)) {
      *stopped = true;
      return true;
    }
    return false;
  }
  for (int val = 0; val < csp_.num_values(); ++val) {
    if (!active_[var][val]) continue;
    if (options_.node_limit >= 0 && stats_.nodes >= options_.node_limit) {
      stats_.aborted = true;
      *stopped = true;
      return true;
    }
    ++stats_.nodes;
    std::size_t mark = trail_.size();
    if (AssignAndPropagate(var, val)) {
      if (Recurse(on_solution, stopped)) return true;
    }
    assignment_[var] = kUnassigned;
    UndoTo(mark);
    ++stats_.backtracks;
  }
  return false;
}

template <typename Callback>
bool BacktrackingSolver::Search(Callback&& on_solution) {
  Reset();
  if (csp_.num_variables() > 0 && csp_.num_values() == 0) return false;
  // Empty-relation constraints are unsatisfiable outright.
  for (const Constraint& c : csp_.constraints()) {
    if (c.allowed.empty()) return false;
  }
  if (options_.propagation == Propagation::kGac) {
    std::vector<int> all(csp_.constraints().size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    if (!PropagateGac(all)) return false;
  }
  bool stopped = false;
  Recurse(on_solution, &stopped);
  return stopped;
}

std::optional<std::vector<int>> BacktrackingSolver::Solve() {
  std::optional<std::vector<int>> result;
  Search([&](const std::vector<int>& a) {
    result = a;
    return false;  // stop at first solution
  });
  if (stats_.aborted) return std::nullopt;
  if (result.has_value()) {
    CSPDB_AUDIT(AuditOrDie("BacktrackingSolver solution",
                           ValidateSolution(csp_, *result)));
  }
  return result;
}

int64_t BacktrackingSolver::CountSolutions(int64_t limit) {
  int64_t count = 0;
  Search([&](const std::vector<int>&) {
    ++count;
    return count < limit;
  });
  return count;
}

}  // namespace cspdb
