// Static word-packed support masks over constraint tuples — the shared
// data structure behind the compact-table style propagation in both the
// standalone GAC pass (consistency/arc_consistency.cc) and the solver's
// maintained-GAC / forward-checking kernels (csp/solver.cc).
//
// For each constraint, tuples are indexed by their position in
// Constraint::allowed and the masks are Bitsets over those indices. A
// support probe for (variable, value) is then a word-parallel AND of the
// constraint's valid-tuple mask with the precomputed candidate mask, and
// pruning a value invalidates whole words of tuples at a time.

#ifndef CSPDB_CSP_SUPPORT_MASKS_H_
#define CSPDB_CSP_SUPPORT_MASKS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "csp/instance.h"
#include "util/bitset.h"

namespace cspdb {

/// Masks for one constraint. "Groups" are the constraint's distinct scope
/// variables in first-occurrence order (Constraint::distinct_slots), so
/// revision loops never rescan the scope for duplicates.
///
/// Rows are stored flat — one contiguous word arena per constraint with
/// `words` words per (group, value) row — so building the masks costs a
/// couple of allocations per constraint rather than one per cell. Bits
/// above the tuple count are never set, matching the Bitset invariant
/// required by the word-span operations.
struct ConstraintSupport {
  /// group_var[g]: the variable of group g.
  std::vector<int> group_var;

  /// Words per mask row (Bitset::NumWordsFor(#allowed tuples)).
  int words = 0;

  /// Row (g, val) at support[(g * num_values + val) * words]: tuples
  /// assigning val to EVERY slot of group g's variable — the candidate
  /// supports for (var, val).
  std::vector<uint64_t> support;

  /// Same layout: tuples assigning val to SOME slot of the variable —
  /// exactly the tuples invalidated when (var, val) is pruned. Empty
  /// (aliasing support) unless the scope repeats a variable, in which
  /// case the two differ on tuples whose repeated positions disagree.
  std::vector<uint64_t> killer;

  const uint64_t* SupportMask(int g, int num_values, int val) const {
    return support.data() +
           (static_cast<std::size_t>(g) * num_values + val) * words;
  }

  /// The compact-table revision sweep for group g: appends to `out`
  /// every value of `domain` (the packed domain of group g's variable)
  /// whose support row does not intersect `valid` — exactly the values a
  /// GAC revision must prune. `valid` is the constraint's live tuple
  /// mask; the probe per value is one SIMD testz pass over the row
  /// (util/simd.h), early-exiting on the first hit word. The sweep reads
  /// a snapshot: callers prune the returned values afterwards, which
  /// only shrinks `valid`, so every reported value stays unsupported.
  void CollectUnsupported(const Bitset& valid, const Bitset& domain, int g,
                          int num_values, std::vector<int>* out) const;
  const uint64_t* KillerMask(int g, int num_values, int val) const {
    const std::vector<uint64_t>& from = killer.empty() ? support : killer;
    return from.data() +
           (static_cast<std::size_t>(g) * num_values + val) * words;
  }
};

/// Masks for every constraint of an instance, plus the reverse map from
/// variables into constraint groups. Built once; the instance's
/// constraints must not change while the masks are in use.
struct SupportMasks {
  explicit SupportMasks(const CspInstance& csp);

  std::vector<ConstraintSupport> constraints;

  /// var_group[v][k]: group index of variable v inside constraint
  /// ConstraintsOn(v)[k] (parallel to that vector).
  std::vector<std::vector<int>> var_group;
};

}  // namespace cspdb

#endif  // CSPDB_CSP_SUPPORT_MASKS_H_
