// The classical AI formulation of constraint satisfaction (paper,
// Section 2): an instance (V, D, C) of variables, values, and constraints
// (t, R) pairing a tuple of variables with an allowed relation on values.

#ifndef CSPDB_CSP_INSTANCE_H_
#define CSPDB_CSP_INSTANCE_H_

#include <map>
#include <string>
#include <vector>

#include "relational/structure.h"

namespace cspdb {

/// One constraint (t, R): `scope` is the variable tuple t, `allowed` the
/// relation R of value tuples of the same arity.
struct Constraint {
  std::vector<int> scope;
  std::vector<Tuple> allowed;   ///< insertion order, deduplicated
  TupleSet allowed_set;         ///< same tuples, O(1) membership

  /// Slots holding the first occurrence of each scope variable, in scope
  /// order. Revision loops iterate these instead of rescanning the scope
  /// for duplicates on every pass (scopes are immutable once added).
  std::vector<int> distinct_slots;

  int arity() const { return static_cast<int>(scope.size()); }
};

/// A CSP instance (V, D, C). Variables are 0..num_variables-1 and values
/// 0..num_values-1. Constraints on an identical variable tuple are
/// consolidated by intersection, as the paper assumes w.l.o.g., so every
/// scope occurs at most once.
class CspInstance {
 public:
  CspInstance(int num_variables, int num_values);

  /// Adds the constraint (scope, allowed). If a constraint with the same
  /// scope already exists its relation is intersected with `allowed`.
  /// Returns the index of the (possibly pre-existing) constraint.
  int AddConstraint(std::vector<int> scope, std::vector<Tuple> allowed);

  int num_variables() const { return num_variables_; }
  int num_values() const { return num_values_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const Constraint& constraint(int i) const;

  /// Indices of constraints whose scope contains variable `v`.
  const std::vector<int>& ConstraintsOn(int v) const;

  /// True if the full assignment (size num_variables) satisfies every
  /// constraint.
  bool IsSolution(const std::vector<int>& assignment) const;

  /// True if the partial assignment (entries may be kUnassigned) satisfies
  /// every constraint whose scope is fully assigned. This is the notion of
  /// "partial solution" underlying i-consistency (paper, Definition 5.2).
  bool IsPartialSolution(const std::vector<int>& partial) const;

  /// The Section 2 normalization: returns an equivalent instance in which
  /// every constraint scope consists of distinct variables (tuples with
  /// disagreeing repeated positions are deleted and the repeated column
  /// projected out). Solutions are preserved exactly.
  CspInstance NormalizedDistinctScopes() const;

  /// Optional variable names for display.
  void SetVariableName(int v, std::string name);
  std::string VariableName(int v) const;

  /// Optional value names for display.
  void SetValueName(int d, std::string name);
  std::string ValueName(int d) const;

  /// Multi-line dump for debugging and examples.
  std::string DebugString() const;

 private:
  int num_variables_ = 0;
  int num_values_ = 0;
  std::vector<Constraint> constraints_;
  std::map<std::vector<int>, int> scope_index_;  // scope -> constraint id
  std::vector<std::vector<int>> constraints_on_;
  std::vector<std::string> variable_names_;
  std::vector<std::string> value_names_;
};

}  // namespace cspdb

#endif  // CSPDB_CSP_INSTANCE_H_
