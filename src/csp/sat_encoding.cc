#include "csp/sat_encoding.h"

#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {

CnfFormula DirectEncoding(const CspInstance& csp) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  int n = normalized.num_variables();
  int d = normalized.num_values();
  CnfFormula phi;
  phi.num_variables = n * d;
  auto boolean_var = [d](int var, int val) { return var * d + val; };

  // Exactly-one per CSP variable.
  for (int v = 0; v < n; ++v) {
    Clause at_least_one;
    for (int val = 0; val < d; ++val) {
      at_least_one.literals.push_back({boolean_var(v, val), true});
    }
    phi.clauses.push_back(std::move(at_least_one));
    for (int a = 0; a < d; ++a) {
      for (int b = a + 1; b < d; ++b) {
        phi.clauses.push_back(
            {{{boolean_var(v, a), false}, {boolean_var(v, b), false}}});
      }
    }
  }

  // Blocking clause per forbidden tuple.
  for (const Constraint& c : normalized.constraints()) {
    Tuple t(c.arity(), 0);
    if (d == 0) continue;  // handled by the empty at-least-one clauses
    while (true) {
      if (c.allowed_set.count(t) == 0) {
        Clause block;
        for (int q = 0; q < c.arity(); ++q) {
          block.literals.push_back({boolean_var(c.scope[q], t[q]), false});
        }
        phi.clauses.push_back(std::move(block));
      }
      int pos = c.arity() - 1;
      while (pos >= 0 && ++t[pos] == d) t[pos--] = 0;
      if (pos < 0) break;
    }
  }
  return phi;
}

std::vector<int> DecodeModel(const CspInstance& csp,
                             const std::vector<int>& model) {
  int d = csp.num_values();
  CSPDB_CHECK(static_cast<int>(model.size()) ==
              csp.num_variables() * d);
  std::vector<int> assignment(csp.num_variables(), kUnassigned);
  for (int v = 0; v < csp.num_variables(); ++v) {
    for (int val = 0; val < d; ++val) {
      if (model[v * d + val] == 1) {
        CSPDB_CHECK_MSG(assignment[v] == kUnassigned,
                        "model sets two values for one variable");
        assignment[v] = val;
      }
    }
    CSPDB_CHECK_MSG(assignment[v] != kUnassigned,
                    "model sets no value for a variable");
  }
  return assignment;
}

std::optional<std::vector<int>> SolveViaSat(const CspInstance& csp,
                                            DpllStats* stats) {
  CnfFormula phi = DirectEncoding(csp);
  auto model = SolveDpll(phi, stats);
  if (!model.has_value()) return std::nullopt;
  std::vector<int> assignment = DecodeModel(csp, *model);
  CSPDB_CHECK(csp.IsSolution(assignment));
  return assignment;
}

}  // namespace cspdb
