// Complete search for CSP instances: chronological backtracking with
// optional forward checking or full GAC (generalized arc consistency)
// maintenance, and MRV/degree variable ordering. This is the generic
// NP-complete baseline against which the paper's tractable cases
// (consistency methods, bounded treewidth, dichotomy classes) are
// measured.
//
// Domains and per-constraint valid-tuple sets are word-packed Bitsets
// (csp/support_masks.h): a revision probes supports with word-parallel
// ANDs, and backtracking restores valid-tuple words from a word trail
// instead of recomputing them.

#ifndef CSPDB_CSP_SOLVER_H_
#define CSPDB_CSP_SOLVER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "csp/instance.h"
#include "csp/support_masks.h"
#include "exec/cancellation.h"
#include "util/bitset.h"

namespace cspdb {

/// Constraint-propagation level maintained during search.
enum class Propagation {
  kNone,             ///< check constraints only when fully assigned
  kForwardChecking,  ///< prune neighbors of the just-assigned variable
  kGac,              ///< maintain generalized arc consistency (MAC)
};

/// Knobs for BacktrackingSolver.
struct SolverOptions {
  Propagation propagation = Propagation::kGac;
  bool mrv = true;  ///< dynamic minimum-remaining-values variable order
  int64_t node_limit = -1;  ///< abort after this many nodes; -1 = unlimited

  /// Seed for a per-run shuffle of the value try order; 0 keeps the
  /// natural 0..d-1 order. Diversifies the portfolio lineup.
  uint64_t value_order_seed = 0;

  /// Optional cooperative cancellation, polled every few search nodes.
  /// A cancelled run reports stats().aborted like a node-limit hit.
  const exec::CancellationToken* cancel = nullptr;
};

/// Counters reported by the search. Per-run view of the process-wide
/// "csp.*" metrics in obs/metrics.h (the registry accumulates across
/// runs; this struct resets per Solve/CountSolutions call).
struct SolverStats {
  int64_t nodes = 0;
  int64_t backtracks = 0;
  int64_t prunings = 0;
  int64_t revisions = 0;  ///< GAC (constraint, group) revision calls
  bool aborted = false;   ///< node limit hit before the search finished
};

/// A complete backtracking solver over a CspInstance. The instance must
/// outlive the solver.
class BacktrackingSolver {
 public:
  explicit BacktrackingSolver(const CspInstance& csp,
                              SolverOptions options = {});

  /// Finds one solution, or std::nullopt if the instance is unsolvable
  /// (or the node limit was hit — check stats().aborted).
  std::optional<std::vector<int>> Solve();

  /// Counts solutions up to `limit`. Restarts the search from scratch.
  int64_t CountSolutions(int64_t limit = INT64_MAX);

  const SolverStats& stats() const { return stats_; }

  /// Revisions performed per constraint during the last search (empty
  /// before the first Solve/CountSolutions). Feeds obs/explain.h.
  const std::vector<int64_t>& revision_counts() const {
    return revision_counts_;
  }

 private:
  void Reset();
  bool Prune(int var, int val);  // returns false if domain wiped out
  template <typename Callback>
  bool Search(Callback&& on_solution);  // true = stopped early
  template <typename Callback>
  bool Recurse(Callback&& on_solution, bool* stopped);
  bool AssignAndPropagate(int var, int val);
  bool CheckAssignedConstraints(int var) const;
  bool ForwardCheck(int var);
  bool PropagateGac(const std::vector<int>& seed_constraints);
  bool Revise(int c, int group);
  int GroupOf(int c, int var) const;
  int PickVariable() const;
  void UndoTo(std::size_t value_mark, std::size_t word_mark);

  const CspInstance& csp_;
  SolverOptions options_;
  SolverStats stats_;
  std::vector<int64_t> revision_counts_;  // [constraint] -> revisions

  std::vector<Bitset> active_;  // [var] -> packed surviving values
  std::vector<int> value_order_;  // try order for values (shuffled or id)
  std::vector<int> domain_size_;
  std::vector<int> assignment_;
  std::vector<std::pair<int, int>> trail_;  // pruned (var, val)
  std::vector<int> degree_;                 // static degree per variable
  bool last_revise_changed_ = false;        // out-param of Revise()

  // Support masks and the per-constraint mask of tuples still valid
  // under the current active domains (compact-table propagation).
  std::optional<SupportMasks> masks_;
  std::vector<Bitset> valid_;
  // Word-granular trail for valid_: (constraint, word index, old word),
  // replayed in reverse by UndoTo.
  struct WordTrailEntry {
    int constraint;
    int word;
    uint64_t old_word;
  };
  std::vector<WordTrailEntry> word_trail_;

  // Residual supports: residues_[c][group * num_values + val] is the
  // index of the last tuple found to support (group's variable, val) in
  // constraint c, or -1 (the classic GAC residue optimization; a residue
  // is stale exactly when it left the valid-tuple mask).
  std::vector<std::vector<int>> residues_;

  // Worklist scratch for PropagateGac, reused across calls.
  std::deque<int> gac_queue_;
  std::vector<char> gac_queued_;
};

}  // namespace cspdb

#endif  // CSPDB_CSP_SOLVER_H_
