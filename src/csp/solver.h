// Complete search for CSP instances: chronological backtracking with
// optional forward checking or full GAC (generalized arc consistency)
// maintenance, and MRV/degree variable ordering. This is the generic
// NP-complete baseline against which the paper's tractable cases
// (consistency methods, bounded treewidth, dichotomy classes) are
// measured.

#ifndef CSPDB_CSP_SOLVER_H_
#define CSPDB_CSP_SOLVER_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "csp/instance.h"

namespace cspdb {

/// Constraint-propagation level maintained during search.
enum class Propagation {
  kNone,             ///< check constraints only when fully assigned
  kForwardChecking,  ///< prune neighbors of the just-assigned variable
  kGac,              ///< maintain generalized arc consistency (MAC)
};

/// Knobs for BacktrackingSolver.
struct SolverOptions {
  Propagation propagation = Propagation::kGac;
  bool mrv = true;  ///< dynamic minimum-remaining-values variable order
  int64_t node_limit = -1;  ///< abort after this many nodes; -1 = unlimited
};

/// Counters reported by the search.
struct SolverStats {
  int64_t nodes = 0;
  int64_t backtracks = 0;
  int64_t prunings = 0;
  bool aborted = false;  ///< node limit hit before the search finished
};

/// A complete backtracking solver over a CspInstance. The instance must
/// outlive the solver.
class BacktrackingSolver {
 public:
  explicit BacktrackingSolver(const CspInstance& csp,
                              SolverOptions options = {});

  /// Finds one solution, or std::nullopt if the instance is unsolvable
  /// (or the node limit was hit — check stats().aborted).
  std::optional<std::vector<int>> Solve();

  /// Counts solutions up to `limit`. Restarts the search from scratch.
  int64_t CountSolutions(int64_t limit = INT64_MAX);

  const SolverStats& stats() const { return stats_; }

 private:
  void Reset();
  bool Prune(int var, int val);  // returns false if domain wiped out
  template <typename Callback>
  bool Search(Callback&& on_solution);  // true = stopped early
  template <typename Callback>
  bool Recurse(Callback&& on_solution, bool* stopped);
  bool AssignAndPropagate(int var, int val);
  bool CheckAssignedConstraints(int var) const;
  bool ForwardCheck(int var);
  bool PropagateGac(const std::vector<int>& seed_constraints);
  bool Revise(int c, int slot);
  bool TupleValid(const Constraint& c, const Tuple& t) const;
  int PickVariable() const;
  void UndoTo(std::size_t mark);

  const CspInstance& csp_;
  SolverOptions options_;
  SolverStats stats_;

  std::vector<std::vector<char>> active_;  // [var][val]
  std::vector<int> domain_size_;
  std::vector<int> assignment_;
  std::vector<std::pair<int, int>> trail_;  // pruned (var, val)
  std::vector<int> degree_;                 // static degree per variable
  bool last_revise_changed_ = false;        // out-param of Revise()
  // Residual supports: residues_[c][slot * num_values + val] is the index
  // of the last tuple found to support (scope[slot], val) in constraint c
  // (the classic GAC residue optimization; stale residues are re-checked).
  std::vector<std::vector<int>> residues_;
};

}  // namespace cspdb

#endif  // CSPDB_CSP_SOLVER_H_
