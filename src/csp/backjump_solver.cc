#include "csp/backjump_solver.h"

#include <algorithm>
#include <numeric>

#include "analysis/validate_csp.h"
#include "obs/obs.h"
#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {

BackjumpSolver::BackjumpSolver(const CspInstance& csp,
                               BackjumpOptions options)
    : csp_(csp), options_(options) {
  int n = csp.num_variables();
  std::vector<int> degree(n);
  for (int v = 0; v < n; ++v) {
    degree[v] = static_cast<int>(csp.ConstraintsOn(v).size());
  }
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(),
                   [&](int x, int y) { return degree[x] > degree[y]; });
  level_of_.assign(n, 0);
  for (int i = 0; i < n; ++i) level_of_[order_[i]] = i;
}

std::optional<std::vector<int>> BackjumpSolver::Solve() {
  CSPDB_TIMER_SCOPE("csp.backjump_solve");
  stats_ = BackjumpStats{};
  int n = csp_.num_variables();
  int d = csp_.num_values();
  if (n == 0) return std::vector<int>{};
  if (d == 0) return std::nullopt;
  for (const Constraint& c : csp_.constraints()) {
    if (c.allowed.empty()) return std::nullopt;
  }

  std::vector<int> assignment(n, kUnassigned);
  std::vector<int> next_value(n, 0);
  std::vector<std::vector<char>> conflict(n, std::vector<char>(n, 0));

  // Checks the constraints fully assigned at level L after giving
  // order_[L] a value; on violation, records the other scope levels in
  // conflict[L].
  auto consistent = [&](int level) {
    int var = order_[level];
    Tuple image;
    for (int ci : csp_.ConstraintsOn(var)) {
      const Constraint& c = csp_.constraint(ci);
      bool all_assigned = true;
      image.clear();
      for (int v : c.scope) {
        if (assignment[v] == kUnassigned) {
          all_assigned = false;
          break;
        }
        image.push_back(assignment[v]);
      }
      if (!all_assigned || c.allowed_set.count(image) > 0) continue;
      for (int v : c.scope) {
        if (v != var) conflict[level][level_of_[v]] = 1;
      }
      return false;
    }
    return true;
  };

  int level = 0;
  next_value[0] = 0;
  std::fill(conflict[0].begin(), conflict[0].end(), 0);
  while (true) {
    if (level == n) {
      CSPDB_CHECK(csp_.IsSolution(assignment));
      CSPDB_AUDIT(AuditOrDie("BackjumpSolver solution",
                             ValidateSolution(csp_, assignment)));
      return assignment;
    }
    int var = order_[level];
    bool advanced = false;
    for (int v = next_value[level]; v < d; ++v) {
      if (options_.node_limit >= 0 && stats_.nodes >= options_.node_limit) {
        stats_.aborted = true;
        assignment[var] = kUnassigned;
        return std::nullopt;
      }
      if (options_.cancel != nullptr && (stats_.nodes & 63) == 0 &&
          options_.cancel->cancelled()) {
        stats_.aborted = true;
        assignment[var] = kUnassigned;
        return std::nullopt;
      }
      ++stats_.nodes;
      CSPDB_COUNT("csp.backjump_nodes");
      assignment[var] = v;
      if (consistent(level)) {
        next_value[level] = v + 1;
        advanced = true;
        break;
      }
    }
    if (advanced) {
      ++level;
      if (level < n) {
        next_value[level] = 0;
        std::fill(conflict[level].begin(), conflict[level].end(), 0);
      }
      continue;
    }
    // Dead end: jump to the deepest conflicting level.
    assignment[var] = kUnassigned;
    ++stats_.backtracks;
    CSPDB_COUNT("csp.backjump_backtracks");
    int jump = -1;
    for (int l = level - 1; l >= 0; --l) {
      if (conflict[level][l]) {
        jump = l;
        break;
      }
    }
    if (jump < 0) return std::nullopt;
    if (jump < level - 1) {
      ++stats_.backjumps;
      CSPDB_COUNT("csp.backjumps");
    }
    // Merge this conflict set (minus the jump target) into the target's.
    for (int l = 0; l < jump; ++l) {
      if (conflict[level][l]) conflict[jump][l] = 1;
    }
    for (int l = jump + 1; l <= level; ++l) {
      assignment[order_[l]] = kUnassigned;
    }
    level = jump;
  }
}

}  // namespace cspdb
