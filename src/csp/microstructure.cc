#include "csp/microstructure.h"

#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {

Graph Microstructure(const CspInstance& csp) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  int n = normalized.num_variables();
  int d = normalized.num_values();
  Graph g(n * d);

  // Unary feasibility per assignment.
  std::vector<char> feasible(static_cast<std::size_t>(n) * d, 1);
  for (const Constraint& c : normalized.constraints()) {
    CSPDB_CHECK_MSG(c.arity() <= 2,
                    "microstructure requires a binary instance");
    if (c.arity() == 1) {
      for (int val = 0; val < d; ++val) {
        if (c.allowed_set.count({val}) == 0) {
          feasible[c.scope[0] * d + val] = 0;
        }
      }
    }
  }

  // Pairwise compatibility: allowed unless some binary constraint between
  // the two variables excludes the pair.
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      for (int a = 0; a < d; ++a) {
        if (!feasible[u * d + a]) continue;
        for (int b = 0; b < d; ++b) {
          if (!feasible[v * d + b]) continue;
          bool compatible = true;
          for (int ci : normalized.ConstraintsOn(u)) {
            const Constraint& c = normalized.constraint(ci);
            if (c.arity() != 2) continue;
            if (c.scope[0] == u && c.scope[1] == v) {
              compatible = c.allowed_set.count({a, b}) > 0;
            } else if (c.scope[0] == v && c.scope[1] == u) {
              compatible = c.allowed_set.count({b, a}) > 0;
            } else {
              continue;
            }
            if (!compatible) break;
          }
          if (compatible) g.AddEdge(u * d + a, v * d + b);
        }
      }
    }
  }
  return g;
}

std::optional<std::vector<int>> SolveViaMicrostructureClique(
    const CspInstance& csp) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  int n = normalized.num_variables();
  int d = normalized.num_values();
  if (n == 0) return std::vector<int>{};
  if (d == 0) return std::nullopt;
  Graph micro = Microstructure(csp);

  // Grow a clique one variable at a time.
  std::vector<int> chosen(n, kUnassigned);
  // Recursive lambda via explicit stack of value indices.
  std::vector<int> next(n, 0);
  int var = 0;
  while (var >= 0) {
    if (var == n) {
      CSPDB_CHECK(csp.IsSolution(chosen));
      return chosen;
    }
    bool advanced = false;
    for (int val = next[var]; val < d; ++val) {
      // Unary feasibility (isolated microstructure vertices only block
      // cliques when another variable exists).
      std::vector<int> unary_probe(n, kUnassigned);
      unary_probe[var] = val;
      if (!normalized.IsPartialSolution(unary_probe)) continue;
      bool clique = true;
      for (int prev = 0; prev < var; ++prev) {
        if (!micro.HasEdge(prev * d + chosen[prev], var * d + val)) {
          clique = false;
          break;
        }
      }
      if (clique) {
        chosen[var] = val;
        next[var] = val + 1;
        advanced = true;
        break;
      }
    }
    if (advanced) {
      ++var;
      if (var < n) next[var] = 0;
    } else {
      chosen[var] = kUnassigned;
      --var;
    }
  }
  return std::nullopt;
}

}  // namespace cspdb
