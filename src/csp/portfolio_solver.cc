#include "csp/portfolio_solver.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "csp/backjump_solver.h"
#include "csp/solver.h"
#include "obs/obs.h"
#include "util/check.h"

namespace cspdb {
namespace {

// One racer's decisive answer (only read for the winning index).
struct RacerOutcome {
  std::optional<std::vector<int>> solution;
  bool decided = false;
};

// Runs lineup entry `index` to completion or cancellation. Returns true
// iff the run was decisive (not aborted).
bool RunConfig(const CspInstance& csp, int index, int64_t node_limit,
               const exec::CancellationToken* cancel,
               std::optional<std::vector<int>>* solution, int64_t* nodes) {
  switch (index) {
    case 1: {
      BackjumpOptions options;
      options.node_limit = node_limit;
      options.cancel = cancel;
      BackjumpSolver solver(csp, options);
      *solution = solver.Solve();
      *nodes = solver.stats().nodes;
      return !solver.stats().aborted;
    }
    default: {
      SolverOptions options;
      options.node_limit = node_limit;
      options.cancel = cancel;
      switch (index) {
        case 0:  // MAC + MRV, natural value order
          break;
        case 2:
          options.propagation = Propagation::kForwardChecking;
          break;
        case 3:
          options.value_order_seed = 0x9e3779b97f4a7c15ull;
          break;
        case 4:
          options.propagation = Propagation::kForwardChecking;
          options.mrv = false;
          options.value_order_seed = 0xc2b2ae3d27d4eb4full;
          break;
        default:
          CSPDB_CHECK_MSG(false, "portfolio config index out of range");
      }
      BacktrackingSolver solver(csp, options);
      *solution = solver.Solve();
      *nodes = solver.stats().nodes;
      return !solver.stats().aborted;
    }
  }
}

}  // namespace

const char* PortfolioConfigName(int index) {
  switch (index) {
    case 0:
      return "mac+mrv";
    case 1:
      return "backjump";
    case 2:
      return "fc+mrv";
    case 3:
      return "mac+mrv+shuffle";
    case 4:
      return "fc+static+shuffle";
    default:
      return "unknown";
  }
}

PortfolioResult SolvePortfolio(const CspInstance& csp,
                               const PortfolioOptions& options) {
  CSPDB_TIMER_SCOPE("csp.portfolio");
  PortfolioResult result;
  exec::ThreadPool* pool =
      options.pool != nullptr ? options.pool : &exec::ThreadPool::Global();
  const int num_configs = std::clamp(options.num_configs, 1,
                                     kNumPortfolioConfigs);

  // The racers' shared stop signal: fires when a rival wins or when the
  // caller's external token (deadline included) does.
  exec::CancellationToken race_over;
  race_over.set_parent(options.cancel);

  if (pool->num_threads() <= 1 || num_configs == 1) {
    // Nothing to race against: run the strongest default serially.
    std::optional<std::vector<int>> solution;
    int64_t nodes = 0;
    const bool decided = RunConfig(csp, 0, options.node_limit, options.cancel,
                                   &solution, &nodes);
    result.total_nodes = nodes;
    if (decided) {
      result.solution = std::move(solution);
      result.complete = true;
      result.winner = 0;
    }
  } else {
    std::vector<RacerOutcome> outcomes(num_configs);
    std::atomic<int> winner{-1};
    std::atomic<int64_t> total_nodes{0};
    exec::TaskGroup group(pool);
    for (int i = 0; i < num_configs; ++i) {
      group.Run([&, i] {
        std::optional<std::vector<int>> solution;
        int64_t nodes = 0;
        const bool decided = RunConfig(csp, i, options.node_limit,
                                       &race_over, &solution, &nodes);
        total_nodes.fetch_add(nodes, std::memory_order_relaxed);
        if (!decided) return;
        outcomes[i].solution = std::move(solution);
        outcomes[i].decided = true;
        int expected = -1;
        if (winner.compare_exchange_strong(expected, i,
                                           std::memory_order_acq_rel)) {
          race_over.RequestCancel();  // first decisive finisher wins
          CSPDB_COUNT("csp.portfolio.wins");
          CSPDB_TRACE_INSTANT("csp.portfolio.winner");
        }
      });
    }
    group.Wait();
    result.total_nodes = total_nodes.load(std::memory_order_relaxed);
    const int w = winner.load(std::memory_order_acquire);
    if (w >= 0) {
      result.winner = w;
      result.complete = true;
      result.solution = std::move(outcomes[w].solution);
    }
  }

  if (result.complete && result.solution.has_value()) {
    // Trust no racer: a claimed solution must satisfy the instance.
    CSPDB_CHECK_MSG(csp.IsSolution(*result.solution),
                    "portfolio winner returned a non-solution");
  }
  return result;
}

}  // namespace cspdb
