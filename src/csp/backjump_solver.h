// Conflict-directed backjumping (Prosser's CBJ): a complete search that,
// on a dead end, jumps straight to the deepest variable actually involved
// in the conflict instead of backtracking chronologically. One of the
// classic AI search refinements the paper's Section 1 alludes to
// ("researchers in AI have pursued heuristics for CSP"); included for the
// solver-ablation experiments.

#ifndef CSPDB_CSP_BACKJUMP_SOLVER_H_
#define CSPDB_CSP_BACKJUMP_SOLVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "csp/instance.h"
#include "exec/cancellation.h"

namespace cspdb {

/// Knobs for BackjumpSolver (parity with SolverOptions where the
/// concepts apply — CBJ has no propagation or dynamic ordering knobs).
struct BackjumpOptions {
  int64_t node_limit = -1;  ///< abort after this many nodes; -1 = unlimited

  /// Optional cooperative cancellation, polled every few search nodes.
  /// A cancelled run reports stats().aborted like a node-limit hit.
  const exec::CancellationToken* cancel = nullptr;
};

/// Counters reported by the backjumping search.
struct BackjumpStats {
  int64_t nodes = 0;
  int64_t backjumps = 0;   ///< dead ends that skipped at least one level
  int64_t backtracks = 0;  ///< all dead ends
  bool aborted = false;    ///< node limit hit before the search finished
};

/// Complete CBJ search with static variable order (descending degree).
/// Checks constraints as soon as their scope is fully assigned and tracks,
/// per variable, the set of earlier levels that caused value rejections
/// (the conflict set); exhausting a domain jumps to the deepest conflict
/// level and merges conflict sets.
class BackjumpSolver {
 public:
  explicit BackjumpSolver(const CspInstance& csp,
                          BackjumpOptions options = {});

  /// Finds one solution or proves unsolvability (or hits the node limit —
  /// check stats().aborted before reading std::nullopt as unsolvable).
  std::optional<std::vector<int>> Solve();

  const BackjumpStats& stats() const { return stats_; }

 private:
  const CspInstance& csp_;
  BackjumpOptions options_;
  BackjumpStats stats_;
  std::vector<int> order_;     // level -> variable
  std::vector<int> level_of_;  // variable -> level
};

}  // namespace cspdb

#endif  // CSPDB_CSP_BACKJUMP_SOLVER_H_
