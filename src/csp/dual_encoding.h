// The dual encoding of a CSP: constraints become the variables. Each dual
// variable ranges over the allowed tuples of one original constraint;
// dual constraints demand agreement on shared original variables. A
// database-theoretic transformation at heart — it is exactly viewing the
// instance as its constraint relations (Proposition 2.1) and joining
// pairwise — and the standard way to make any CSP binary.

#ifndef CSPDB_CSP_DUAL_ENCODING_H_
#define CSPDB_CSP_DUAL_ENCODING_H_

#include <optional>
#include <vector>

#include "csp/instance.h"

namespace cspdb {

/// The dual instance plus the bookkeeping to map solutions back.
struct DualEncoding {
  CspInstance dual;  ///< binary CSP over the dual variables

  /// original constraint index of each dual variable (after
  /// normalization; identical to the normalized instance's order).
  std::vector<int> constraint_of;

  /// The normalized original instance the tuples index into.
  CspInstance normalized;
};

/// Builds the dual encoding. The original instance is normalized to
/// distinct-variable scopes first; instances with no constraints yield a
/// dual with no variables.
DualEncoding BuildDualEncoding(const CspInstance& csp);

/// Maps a dual solution (a choice of tuple per constraint) back to an
/// original assignment; variables in no constraint get value 0. The dual
/// constraints guarantee consistency of the shared variables.
std::vector<int> DecodeDualSolution(const DualEncoding& encoding,
                                    const std::vector<int>& dual_solution);

/// Solves the original instance through its dual (with the library's
/// MAC solver on the binary dual instance).
std::optional<std::vector<int>> SolveViaDual(const CspInstance& csp);

/// The hidden-variable encoding, the dual's sibling: keeps the original
/// variables and adds one hidden variable per constraint ranging over its
/// allowed tuples; binary constraints tie each hidden variable to the
/// original variables in its scope. Also always binary. Original
/// variables keep their ids; hidden variable for constraint c is
/// num_variables + c. Values 0..max(num_values, max tuple count)-1.
CspInstance HiddenVariableEncoding(const CspInstance& csp);

/// Solves through the hidden-variable encoding; the returned assignment
/// covers only the original variables.
std::optional<std::vector<int>> SolveViaHiddenVariables(
    const CspInstance& csp);

}  // namespace cspdb

#endif  // CSPDB_CSP_DUAL_ENCODING_H_
