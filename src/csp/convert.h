// The Feder-Vardi correspondence between CSP instances and homomorphism
// instances (paper, Section 2): every (V, D, C) yields structures
// (A_P, B_P) such that P is solvable iff A_P -> B_P, and conversely every
// pair (A, B) "breaks up" into a CSP instance CSP(A, B).

#ifndef CSPDB_CSP_CONVERT_H_
#define CSPDB_CSP_CONVERT_H_

#include "csp/instance.h"
#include "relational/structure.h"

namespace cspdb {

/// A pair of structures over a common vocabulary; the question is whether
/// a homomorphism A -> B exists.
struct HomInstance {
  Structure a;
  Structure b;
};

/// Builds the homomorphism instance (A_P, B_P) of a CSP instance P: the
/// domain of A_P is V, the domain of B_P is D, B_P's relations are the
/// *distinct* constraint relations occurring in C (constraints sharing the
/// same allowed-tuple set share a symbol), and R^{A_P} collects the
/// variable tuples constrained by R.
HomInstance ToHomomorphismInstance(const CspInstance& csp);

/// Builds the CSP instance CSP(A, B) of a homomorphism instance: each
/// tuple t in R^A becomes a constraint (t, R^B). Variables are A's
/// elements and values B's elements, so a solution *is* a homomorphism.
CspInstance ToCspInstance(const Structure& a, const Structure& b);

}  // namespace cspdb

#endif  // CSPDB_CSP_CONVERT_H_
