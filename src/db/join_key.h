// Shared join-key machinery for the serial (db/algebra.cc) and parallel
// (db/parallel_algebra.cc) relational kernels: shared-attribute position
// maps, key hashing/equality over flat rows, and the bucket-chained
// KeyIndex used as the build side of hash joins and semijoins.
//
// Kept in one header so the parallel kernels probe *exactly* the same
// index the serial kernels do — the bit-identical-output contract of the
// execution layer (DESIGN.md) depends on matching chain order.

#ifndef CSPDB_DB_JOIN_KEY_H_
#define CSPDB_DB_JOIN_KEY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "db/relation.h"

namespace cspdb::db_internal {

/// Fills `r_pos`/`s_pos` with the parallel position lists of the
/// attributes shared by r and s (in r-schema order).
inline void SharedPositions(const DbRelation& r, const DbRelation& s,
                            std::vector<int>* r_pos, std::vector<int>* s_pos) {
  r_pos->clear();
  s_pos->clear();
  for (std::size_t i = 0; i < r.schema().size(); ++i) {
    int p = s.AttributePosition(r.schema()[i]);
    if (p >= 0) {
      r_pos->push_back(static_cast<int>(i));
      s_pos->push_back(p);
    }
  }
}

/// FNV-style hash of the projection of `row` onto `positions`; same
/// mixing as DbRelation's row hash so key distributions match.
inline std::size_t HashKeyAt(const int* row,
                             const std::vector<int>& positions) {
  std::size_t h = 1469598103934665603ull;
  for (int p : positions) {
    h ^= static_cast<std::size_t>(row[p]) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

inline bool KeysEqual(const int* a, const std::vector<int>& a_pos,
                      const int* b, const std::vector<int>& b_pos) {
  for (std::size_t i = 0; i < a_pos.size(); ++i) {
    if (a[a_pos[i]] != b[b_pos[i]]) return false;
  }
  return true;
}

inline constexpr uint32_t kNoRow = 0xffffffffu;

/// A bucket-chained hash index over the key columns of a relation: no
/// per-key allocation, just two flat uint32 arrays (bucket heads + a next
/// chain threaded through row indices). Immutable once built, so many
/// probe threads may share one index.
class KeyIndex {
 public:
  KeyIndex(const DbRelation& rel, const std::vector<int>& key_pos)
      : rel_(rel), key_pos_(key_pos) {
    std::size_t buckets = 16;
    while (buckets < rel.size() + (rel.size() >> 1) + 1) buckets <<= 1;
    mask_ = buckets - 1;
    heads_.assign(buckets, kNoRow);
    next_.assign(rel.size(), kNoRow);
    const int arity = rel.arity();
    const int* data = rel.data().data();
    for (std::size_t i = 0; i < rel.size(); ++i) {
      std::size_t h =
          HashKeyAt(data + i * static_cast<std::size_t>(arity), key_pos_) &
          mask_;
      next_[i] = heads_[h];
      heads_[h] = static_cast<uint32_t>(i);
    }
  }

  /// First row of `rel_` whose key columns match `probe`'s `probe_pos`
  /// columns, or kNoRow. Continue the scan with NextMatch.
  uint32_t FirstMatch(const int* probe,
                      const std::vector<int>& probe_pos) const {
    std::size_t h = HashKeyAt(probe, probe_pos) & mask_;
    return NextInChain(heads_[h], probe, probe_pos);
  }

  uint32_t NextMatch(uint32_t row, const int* probe,
                     const std::vector<int>& probe_pos) const {
    return NextInChain(next_[row], probe, probe_pos);
  }

 private:
  uint32_t NextInChain(uint32_t candidate, const int* probe,
                       const std::vector<int>& probe_pos) const {
    const int arity = rel_.arity();
    const int* data = rel_.data().data();
    while (candidate != kNoRow) {
      const int* srow = data + candidate * static_cast<std::size_t>(arity);
      if (KeysEqual(probe, probe_pos, srow, key_pos_)) return candidate;
      candidate = next_[candidate];
    }
    return kNoRow;
  }

  const DbRelation& rel_;
  const std::vector<int>& key_pos_;
  std::size_t mask_;
  std::vector<uint32_t> heads_;
  std::vector<uint32_t> next_;
};

}  // namespace cspdb::db_internal

#endif  // CSPDB_DB_JOIN_KEY_H_
