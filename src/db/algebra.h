// Relational-algebra operators (natural join, projection, selection,
// semijoin) and the join-evaluation view of CSP solvability
// (paper, Proposition 2.1).

#ifndef CSPDB_DB_ALGEBRA_H_
#define CSPDB_DB_ALGEBRA_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "csp/instance.h"
#include "db/relation.h"

namespace cspdb {

/// Natural join of r and s on their shared attributes (hash join).
/// Result schema: r's schema followed by s's non-shared attributes.
DbRelation NaturalJoin(const DbRelation& r, const DbRelation& s);

/// Projection onto `attrs` (each must occur in r's schema); deduplicates.
DbRelation Project(const DbRelation& r, const std::vector<int>& attrs);

/// Rows of r satisfying `predicate`.
DbRelation Select(const DbRelation& r,
                  const std::function<bool(const Tuple&)>& predicate);

/// Rows of r where attribute `attr` equals `value`.
DbRelation SelectEquals(const DbRelation& r, int attr, int value);

/// Semijoin r ⋉ s: rows of r that agree with at least one row of s on the
/// shared attributes.
DbRelation Semijoin(const DbRelation& r, const DbRelation& s);

/// Left-to-right natural join of all relations. `peak_rows`, if non-null,
/// receives the largest intermediate-result cardinality (the quantity the
/// Yannakakis benchmark compares).
DbRelation JoinAll(const std::vector<DbRelation>& relations,
                   int64_t* peak_rows = nullptr);

/// Greedy join ordering: starts from the smallest relation and repeatedly
/// joins the relation sharing the most attributes with the accumulated
/// schema (smallest size as tie-break), avoiding cross products until
/// forced. Same result as JoinAll, typically far smaller intermediates —
/// the one-line query optimizer every join-evaluation story needs.
DbRelation JoinAllGreedy(const std::vector<DbRelation>& relations,
                         int64_t* peak_rows = nullptr);

/// The constraints of a CSP instance as database relations: the scope is
/// the schema, the allowed tuples are the rows. Requires distinct-variable
/// scopes (apply CspInstance::NormalizedDistinctScopes first if needed).
std::vector<DbRelation> ConstraintsAsRelations(const CspInstance& csp);

/// Proposition 2.1: a CSP instance is solvable iff the natural join of its
/// constraint relations is nonempty. Decides solvability by evaluating the
/// join; variables not covered by any constraint are unconstrained and
/// ignored. Normalizes scopes internally.
bool SolvableByJoin(const CspInstance& csp, int64_t* peak_rows = nullptr);

/// The full solution set of the instance as a relation over all
/// variables: the natural join of the constraint relations, crossed with
/// the complete domain for unconstrained variables. Exponential in the
/// worst case — this *is* the paper's point about join evaluation; use
/// for small instances and differential tests.
DbRelation SolutionsAsRelation(const CspInstance& csp);

}  // namespace cspdb

#endif  // CSPDB_DB_ALGEBRA_H_
