// Parallel relational kernels on the work-stealing pool: striped hash
// joins/semijoins and a task-graph full reducer over join forests.
//
// Determinism contract (DESIGN.md): every operator here returns output
// bit-identical to its serial twin in db/algebra.h / db/acyclic.h.
//   * NaturalJoinParallel / SemijoinParallel build the same KeyIndex the
//     serial kernels do (db/join_key.h — same chain order), split the
//     probe side into contiguous stripes, and concatenate the per-stripe
//     outputs in stripe order, which reproduces the serial row order
//     exactly.
//   * FullReducerParallel runs independent subtree semijoins concurrently.
//     Semijoin preserves probe-row order, so the several semijoins into
//     one parent commute exactly; a per-parent mutex serializes the writes
//     and the final contents are order-independent.
// These kernels are not cancellation points: each is a polynomial pass,
// and an interrupted join would be wrong rather than merely incomplete
// (unlike GAC pruning, which is sound to stop early).

#ifndef CSPDB_DB_PARALLEL_ALGEBRA_H_
#define CSPDB_DB_PARALLEL_ALGEBRA_H_

#include <cstddef>
#include <vector>

#include "db/acyclic.h"
#include "db/relation.h"
#include "exec/thread_pool.h"

namespace cspdb {

struct ParallelDbOptions {
  /// Pool to run on; nullptr means ThreadPool::Global().
  exec::ThreadPool* pool = nullptr;

  /// Probe sides smaller than this fall back to the serial kernel — the
  /// per-stripe buffer and fork/join overhead beats the win below it.
  std::size_t min_probe_rows = 2048;

  /// Forests smaller than this run the serial FullReducer.
  std::size_t min_forest_nodes = 4;
};

/// NaturalJoin(r, s) with the probe side (r) striped across the pool.
/// Bit-identical to the serial NaturalJoin, including row order.
DbRelation NaturalJoinParallel(const DbRelation& r, const DbRelation& s,
                               const ParallelDbOptions& options = {});

/// Semijoin(r, s) with the probe side (r) striped across the pool.
/// Bit-identical to the serial Semijoin, including row order.
DbRelation SemijoinParallel(const DbRelation& r, const DbRelation& s,
                            const ParallelDbOptions& options = {});

/// FullReducer with independent subtree semijoin passes run concurrently:
/// the upward pass folds a node into its parent as soon as all of the
/// node's own children have folded in; the downward pass fans out from the
/// roots. Final relation contents (and stats totals) are identical to the
/// serial FullReducer.
void FullReducerParallel(const JoinForest& forest,
                         std::vector<DbRelation>* relations,
                         const ParallelDbOptions& options = {},
                         YannakakisStats* stats = nullptr);

/// AcyclicJoinNonempty via FullReducerParallel.
bool AcyclicJoinNonemptyParallel(const JoinForest& forest,
                                 std::vector<DbRelation> relations,
                                 const ParallelDbOptions& options = {});

}  // namespace cspdb

#endif  // CSPDB_DB_PARALLEL_ALGEBRA_H_
