// Parallel relational kernels on the work-stealing pool: morsel-driven
// radix-partitioned hash joins/semijoins and a task-graph full reducer
// over join forests.
//
// Join design (DESIGN.md "Execution layer"): the build side is
// radix-partitioned by the top bits of the same FNV key hash the serial
// KeyIndex buckets with, giving one small, independently built KeyIndex
// per partition — workers never share a build structure, and each
// partition's chains stay cache-resident during probing. The probe side
// is NOT partitioned: workers pull fixed-size probe morsels from a
// shared atomic cursor, route each probe row to its partition's index
// (equal keys hash equally, so every match lives in that one
// partition), and buffer output per morsel.
//
// Determinism contract (inherited from the striped design of PR 4):
// every operator returns output bit-identical to its serial twin in
// db/algebra.h / db/acyclic.h.
//   * Within a partition the build scatter preserves original row order
//     (morsel-order concatenation per partition), so a partition-local
//     hash chain enumerates exactly the same matches in exactly the same
//     order as the serial KeyIndex chain.
//   * Per-morsel output buffers concatenate in morsel order, which is
//     probe-row order, which is the serial emission order.
//   * FullReducerParallel runs independent subtree semijoins
//     concurrently; semijoins into one parent commute exactly, so a
//     per-parent mutex suffices.
// These kernels are not cancellation points: each is a polynomial pass,
// and an interrupted join would be wrong rather than merely incomplete
// (unlike GAC pruning, which is sound to stop early).
//
// The previous striped-probe kernels (one shared KeyIndex, contiguous
// probe stripes) are kept as NaturalJoinStriped / SemijoinStriped: they
// are the contention baseline bench_parallel measures the partitioned
// design against, and extra differential oracles in tests.

#ifndef CSPDB_DB_PARALLEL_ALGEBRA_H_
#define CSPDB_DB_PARALLEL_ALGEBRA_H_

#include <cstddef>
#include <vector>

#include "db/acyclic.h"
#include "db/relation.h"
#include "exec/thread_pool.h"

namespace cspdb {

struct ParallelDbOptions {
  /// Pool to run on; nullptr means ThreadPool::Global().
  exec::ThreadPool* pool = nullptr;

  /// Probe sides smaller than this fall back to the serial kernel — the
  /// per-morsel buffer and fork/join overhead beats the win below it.
  std::size_t min_probe_rows = 2048;

  /// Forests smaller than this run the serial FullReducer.
  std::size_t min_forest_nodes = 4;

  /// Probe (and build-scatter) morsel size in rows. Workers claim one
  /// morsel at a time from a shared atomic cursor, so smaller morsels
  /// load-balance skewed match densities at the cost of more buffers.
  std::size_t morsel_rows = 2048;

  /// Number of radix partitions for the build side; 0 picks a power of
  /// two from the build size and worker count. Purely a performance
  /// knob: the output is bit-identical for every value.
  std::size_t num_partitions = 0;

  /// Testing hook: run the morsel-parallel three-pass partition build
  /// even where the heuristic would pick the fused serial build (small
  /// build sides, single-hardware-thread machines). Both builds produce
  /// bit-identical layouts; differential and tsan tests set this so the
  /// parallel build path is exercised on any machine.
  bool force_parallel_build = false;
};

/// NaturalJoin(r, s): build side s radix-partitioned into per-partition
/// KeyIndexes, probe side r morsel-driven across the pool.
/// Bit-identical to the serial NaturalJoin, including row order.
DbRelation NaturalJoinParallel(const DbRelation& r, const DbRelation& s,
                               const ParallelDbOptions& options = {});

/// Semijoin(r, s) with the same partitioned-build, morsel-probe design.
/// Bit-identical to the serial Semijoin, including row order.
DbRelation SemijoinParallel(const DbRelation& r, const DbRelation& s,
                            const ParallelDbOptions& options = {});

/// The pre-partitioning striped-probe join: one serially built shared
/// KeyIndex, probe side split into contiguous stripes. Kept as the
/// benchmark baseline for the partitioned design; same bit-identical
/// contract.
DbRelation NaturalJoinStriped(const DbRelation& r, const DbRelation& s,
                              const ParallelDbOptions& options = {});

/// Striped twin of SemijoinParallel (see NaturalJoinStriped).
DbRelation SemijoinStriped(const DbRelation& r, const DbRelation& s,
                           const ParallelDbOptions& options = {});

/// FullReducer with independent subtree semijoin passes run concurrently:
/// the upward pass folds a node into its parent as soon as all of the
/// node's own children have folded in; the downward pass fans out from the
/// roots. Final relation contents (and stats totals) are identical to the
/// serial FullReducer.
void FullReducerParallel(const JoinForest& forest,
                         std::vector<DbRelation>* relations,
                         const ParallelDbOptions& options = {},
                         YannakakisStats* stats = nullptr);

/// AcyclicJoinNonempty via FullReducerParallel.
bool AcyclicJoinNonemptyParallel(const JoinForest& forest,
                                 std::vector<DbRelation> relations,
                                 const ParallelDbOptions& options = {});

}  // namespace cspdb

#endif  // CSPDB_DB_PARALLEL_ALGEBRA_H_
