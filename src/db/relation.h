// Database relations with named (integer) attributes. Proposition 2.1 of
// the paper views every CSP variable as a relational attribute and every
// constraint as a relation over its scope; this module is that view.
//
// Storage is a single row-major contiguous int buffer (arity() values per
// row, no per-row heap allocation) plus an open-addressed hash index over
// row contents for O(1) membership and deduplication. The index is built
// lazily: bulk appends from the join kernels pay nothing until the next
// membership query.

#ifndef CSPDB_DB_RELATION_H_
#define CSPDB_DB_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "relational/structure.h"
#include "util/check.h"

namespace cspdb {

/// A relation instance: a schema of distinct attribute ids and a
/// deduplicated set of rows of matching arity. Arity 0 is allowed (the
/// result of a Boolean query): such a relation holds either zero rows
/// (false) or the single empty row (true).
class DbRelation {
 public:
  /// A non-owning view of one row: `arity()` consecutive ints inside the
  /// relation's flat buffer. Invalidated by any mutation of the relation.
  class RowRef {
   public:
    RowRef(const int* data, int arity) : data_(data), arity_(arity) {}

    int operator[](int i) const {
      CSPDB_DCHECK(i >= 0 && i < arity_);
      return data_[i];
    }
    int size() const { return arity_; }
    const int* data() const { return data_; }
    const int* begin() const { return data_; }
    const int* end() const { return data_ + arity_; }

    /// Materializes the row as an owning Tuple (cold paths only).
    Tuple ToTuple() const { return Tuple(data_, data_ + arity_); }

   private:
    const int* data_;
    int arity_;
  };

  /// Forward iterator over rows, yielding RowRef views. Index-based so
  /// arity-0 relations (empty flat buffer) iterate safely.
  class RowIterator {
   public:
    RowIterator(const int* base, int arity, std::size_t idx)
        : base_(base), arity_(arity), idx_(idx) {}
    RowRef operator*() const {
      return RowRef(base_ + idx_ * static_cast<std::size_t>(arity_), arity_);
    }
    RowIterator& operator++() {
      ++idx_;
      return *this;
    }
    bool operator==(const RowIterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const RowIterator& o) const { return idx_ != o.idx_; }

   private:
    const int* base_;
    int arity_;
    std::size_t idx_;
  };

  class RowRange {
   public:
    RowRange(const int* base, int arity, std::size_t num_rows)
        : base_(base), arity_(arity), num_rows_(num_rows) {}
    RowIterator begin() const { return RowIterator(base_, arity_, 0); }
    RowIterator end() const { return RowIterator(base_, arity_, num_rows_); }
    std::size_t size() const { return num_rows_; }

   private:
    const int* base_;
    int arity_;
    std::size_t num_rows_;
  };

  /// Creates an empty relation over `schema` (attributes must be
  /// distinct).
  explicit DbRelation(std::vector<int> schema);

  /// Adds a row; duplicates are ignored.
  void AddRow(const Tuple& row);

  /// Adds a row given as a span of arity() ints; duplicates are ignored.
  void AddRow(const int* row);

  /// Appends a row the caller knows is not yet present (e.g. natural-join
  /// outputs, which are duplicate-free by construction). Skips the
  /// membership probe; the lazy index is rebuilt on the next query.
  void AppendRowUnchecked(const int* row);

  /// Bulk AppendRowUnchecked: `num_rows` rows packed row-major in `rows`
  /// (the parallel join concatenates per-stripe outputs this way).
  void AppendRowsUnchecked(const int* rows, std::size_t num_rows);

  /// Forces the lazy row-hash index to be built now. HasRow is const but
  /// rebuilds the index on first use after a bulk append, so concurrent
  /// readers must call this (single-threaded) first; afterwards HasRow is
  /// safe from many threads as long as nobody mutates the relation.
  void PrepareIndex() const;

  const std::vector<int>& schema() const { return schema_; }

  /// Iterable view of all rows: `for (auto row : rel.rows())`.
  RowRange rows() const {
    return RowRange(data_.data(), arity(), num_rows_);
  }

  /// The i-th row (insertion order).
  RowRef row(std::size_t i) const {
    CSPDB_DCHECK(i < num_rows_);
    return RowRef(data_.data() + i * static_cast<std::size_t>(arity()),
                  arity());
  }

  /// The flat row-major value buffer (size() * arity() ints).
  const std::vector<int>& data() const { return data_; }

  bool HasRow(const Tuple& row) const;
  bool HasRow(const int* row) const;

  int arity() const { return static_cast<int>(schema_.size()); }
  std::size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Pre-allocates buffer space for `rows` rows.
  void Reserve(std::size_t rows);

  /// Position of attribute `attr` in the schema, or -1 if absent.
  int AttributePosition(int attr) const;

  /// Multi-line dump for debugging and examples.
  std::string DebugString() const;

 private:
  // Inserts `row` if absent; the index must be current. Returns true if
  // the row was added.
  bool InsertUnique(const int* row);
  // (Re)builds the open-addressed index from scratch if stale.
  void EnsureIndex() const;
  void RehashInto(std::size_t capacity) const;
  std::size_t HashRow(const int* row) const;
  bool RowEquals(std::size_t idx, const int* row) const;

  std::vector<int> schema_;
  std::vector<int> data_;  // row-major, arity() ints per row
  std::size_t num_rows_ = 0;

  // Open-addressed index: slot holds row index + 1, 0 = empty. Mutable +
  // lazily rebuilt so bulk appends stay index-free until the next lookup.
  mutable std::vector<uint32_t> slots_;
  mutable bool index_valid_ = true;  // empty relation: trivially valid
};

}  // namespace cspdb

#endif  // CSPDB_DB_RELATION_H_
