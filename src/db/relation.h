// Database relations with named (integer) attributes. Proposition 2.1 of
// the paper views every CSP variable as a relational attribute and every
// constraint as a relation over its scope; this module is that view.

#ifndef CSPDB_DB_RELATION_H_
#define CSPDB_DB_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/structure.h"

namespace cspdb {

/// A relation instance: a schema of distinct attribute ids and a
/// deduplicated set of rows of matching arity. Arity 0 is allowed (the
/// result of a Boolean query): such a relation holds either zero rows
/// (false) or the single empty row (true).
class DbRelation {
 public:
  /// Creates an empty relation over `schema` (attributes must be
  /// distinct).
  explicit DbRelation(std::vector<int> schema);

  /// Adds a row; duplicates are ignored.
  void AddRow(Tuple row);

  const std::vector<int>& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  bool HasRow(const Tuple& row) const { return row_set_.count(row) > 0; }

  int arity() const { return static_cast<int>(schema_.size()); }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Position of attribute `attr` in the schema, or -1 if absent.
  int AttributePosition(int attr) const;

  /// Multi-line dump for debugging and examples.
  std::string DebugString() const;

 private:
  std::vector<int> schema_;
  std::vector<Tuple> rows_;
  TupleSet row_set_;
};

}  // namespace cspdb

#endif  // CSPDB_DB_RELATION_H_
