#include "db/containment.h"

#include <string>
#include <vector>

#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Builds the canonical database of `q` over the joint vocabulary `voc`
// (which must contain all of q's body predicates and the head markers).
Structure CanonicalOver(const ConjunctiveQuery& q, const Vocabulary& voc) {
  Structure db(voc, q.num_variables());
  for (const Atom& atom : q.body()) {
    int rel = voc.IndexOf(atom.predicate);
    CSPDB_CHECK(rel >= 0);
    db.AddTuple(rel, Tuple(atom.args.begin(), atom.args.end()));
  }
  for (std::size_t i = 0; i < q.head().size(); ++i) {
    int rel = voc.IndexOf("__P" + std::to_string(i));
    CSPDB_CHECK(rel >= 0);
    db.AddTuple(rel, {q.head()[i]});
  }
  return db;
}

// Joint vocabulary: body predicates of both queries plus head markers.
Vocabulary JointVocabulary(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2) {
  Vocabulary voc = q1.body_vocabulary();
  const Vocabulary& v2 = q2.body_vocabulary();
  for (int r = 0; r < v2.size(); ++r) {
    int existing = voc.IndexOf(v2.symbol(r).name);
    if (existing < 0) {
      voc.AddSymbol(v2.symbol(r).name, v2.symbol(r).arity);
    } else {
      CSPDB_CHECK_MSG(voc.symbol(existing).arity == v2.symbol(r).arity,
                      "queries disagree on arity of " + v2.symbol(r).name);
    }
  }
  for (std::size_t i = 0; i < q1.head().size(); ++i) {
    voc.AddSymbol("__P" + std::to_string(i), 1);
  }
  return voc;
}

}  // namespace

bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  CSPDB_CHECK_MSG(q1.head().size() == q2.head().size(),
                  "containment requires equal head arity");
  Vocabulary voc = JointVocabulary(q1, q2);
  Structure d1 = CanonicalOver(q1, voc);
  Structure d2 = CanonicalOver(q2, voc);
  return FindHomomorphism(d2, d1).has_value();
}

bool IsContainedInViaEvaluation(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2) {
  CSPDB_CHECK_MSG(q1.head().size() == q2.head().size(),
                  "containment requires equal head arity");
  Structure d1 = q1.BodyStructure();
  DbRelation answers = Evaluate(q2, d1);
  return answers.HasRow(Tuple(q1.head().begin(), q1.head().end()));
}

bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return IsContainedIn(q1, q2) && IsContainedIn(q2, q1);
}

bool HomomorphismViaQueryEvaluation(const Structure& a, const Structure& b) {
  return BodySatisfiable(ConjunctiveQuery::FromStructure(a), b);
}

}  // namespace cspdb
