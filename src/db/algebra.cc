#include "db/algebra.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Positions of the attributes shared by r and s, as parallel vectors.
void SharedPositions(const DbRelation& r, const DbRelation& s,
                     std::vector<int>* r_pos, std::vector<int>* s_pos) {
  r_pos->clear();
  s_pos->clear();
  for (std::size_t i = 0; i < r.schema().size(); ++i) {
    int p = s.AttributePosition(r.schema()[i]);
    if (p >= 0) {
      r_pos->push_back(static_cast<int>(i));
      s_pos->push_back(p);
    }
  }
}

// FNV-style hash of the projection of `row` onto `positions`; same mixing
// as DbRelation's row hash so key distributions match.
std::size_t HashKeyAt(const int* row, const std::vector<int>& positions) {
  std::size_t h = 1469598103934665603ull;
  for (int p : positions) {
    h ^= static_cast<std::size_t>(row[p]) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

bool KeysEqual(const int* a, const std::vector<int>& a_pos, const int* b,
               const std::vector<int>& b_pos) {
  for (std::size_t i = 0; i < a_pos.size(); ++i) {
    if (a[a_pos[i]] != b[b_pos[i]]) return false;
  }
  return true;
}

constexpr uint32_t kNoRow = 0xffffffffu;

// A bucket-chained hash index over the key columns of a relation: no
// per-key allocation, just two flat uint32 arrays (bucket heads + a next
// chain threaded through row indices).
class KeyIndex {
 public:
  KeyIndex(const DbRelation& rel, const std::vector<int>& key_pos)
      : rel_(rel), key_pos_(key_pos) {
    std::size_t buckets = 16;
    while (buckets < rel.size() + (rel.size() >> 1) + 1) buckets <<= 1;
    mask_ = buckets - 1;
    heads_.assign(buckets, kNoRow);
    next_.assign(rel.size(), kNoRow);
    const int arity = rel.arity();
    const int* data = rel.data().data();
    for (std::size_t i = 0; i < rel.size(); ++i) {
      std::size_t h =
          HashKeyAt(data + i * static_cast<std::size_t>(arity), key_pos_) &
          mask_;
      next_[i] = heads_[h];
      heads_[h] = static_cast<uint32_t>(i);
    }
  }

  /// First row of `rel_` whose key columns match `probe`'s `probe_pos`
  /// columns, or kNoRow. Continue the scan with NextMatch.
  uint32_t FirstMatch(const int* probe,
                      const std::vector<int>& probe_pos) const {
    std::size_t h = HashKeyAt(probe, probe_pos) & mask_;
    return NextInChain(heads_[h], probe, probe_pos);
  }

  uint32_t NextMatch(uint32_t row, const int* probe,
                     const std::vector<int>& probe_pos) const {
    return NextInChain(next_[row], probe, probe_pos);
  }

 private:
  uint32_t NextInChain(uint32_t candidate, const int* probe,
                       const std::vector<int>& probe_pos) const {
    const int arity = rel_.arity();
    const int* data = rel_.data().data();
    while (candidate != kNoRow) {
      const int* srow = data + candidate * static_cast<std::size_t>(arity);
      if (KeysEqual(probe, probe_pos, srow, key_pos_)) return candidate;
      candidate = next_[candidate];
    }
    return kNoRow;
  }

  const DbRelation& rel_;
  const std::vector<int>& key_pos_;
  std::size_t mask_;
  std::vector<uint32_t> heads_;
  std::vector<uint32_t> next_;
};

}  // namespace

DbRelation NaturalJoin(const DbRelation& r, const DbRelation& s) {
  CSPDB_TRACE_SPAN("db.natural_join");
  CSPDB_COUNT("db.joins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);

  // Result schema: r's schema then s's non-shared attributes.
  std::vector<int> schema = r.schema();
  std::vector<int> s_extra_pos;
  for (std::size_t i = 0; i < s.schema().size(); ++i) {
    if (r.AttributePosition(s.schema()[i]) < 0) {
      schema.push_back(s.schema()[i]);
      s_extra_pos.push_back(static_cast<int>(i));
    }
  }
  const int r_arity = r.arity();
  const int s_arity = s.arity();
  const int out_arity = static_cast<int>(schema.size());
  DbRelation out(std::move(schema));
  if (r.empty() || s.empty()) return out;

  // Build side: hash s on its shared columns. Probe side: stream r.
  KeyIndex index(s, s_pos);
  const int* r_data = r.data().data();
  const int* s_data = s.data().data();
  std::vector<int> out_row(static_cast<std::size_t>(out_arity));
  for (std::size_t i = 0; i < r.size(); ++i) {
    const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
    for (uint32_t m = index.FirstMatch(rrow, r_pos); m != kNoRow;
         m = index.NextMatch(m, rrow, r_pos)) {
      const int* srow = s_data + m * static_cast<std::size_t>(s_arity);
      std::copy(rrow, rrow + r_arity, out_row.begin());
      for (std::size_t k = 0; k < s_extra_pos.size(); ++k) {
        out_row[static_cast<std::size_t>(r_arity) + k] = srow[s_extra_pos[k]];
      }
      // Join outputs of deduplicated inputs are duplicate-free: two build
      // rows matching the same probe row agree on the shared columns, so
      // they must differ on an emitted extra column.
      out.AppendRowUnchecked(out_row.data());
    }
  }
  CSPDB_COUNT_N("db.join.rows_out", static_cast<int64_t>(out.size()));
  CSPDB_GAUGE_MAX("db.join.peak_rows", static_cast<int64_t>(out.size()));
  return out;
}

DbRelation Project(const DbRelation& r, const std::vector<int>& attrs) {
  std::vector<int> positions;
  positions.reserve(attrs.size());
  for (int a : attrs) {
    int p = r.AttributePosition(a);
    CSPDB_CHECK_MSG(p >= 0, "projection attribute not in schema");
    positions.push_back(p);
  }
  DbRelation out(attrs);
  std::vector<int> key(positions.size());
  for (auto row : r.rows()) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      key[i] = row[positions[i]];
    }
    out.AddRow(key.data());
  }
  return out;
}

DbRelation Select(const DbRelation& r,
                  const std::function<bool(const Tuple&)>& predicate) {
  DbRelation out(r.schema());
  Tuple scratch;
  for (auto row : r.rows()) {
    scratch.assign(row.begin(), row.end());
    if (predicate(scratch)) out.AppendRowUnchecked(row.data());
  }
  return out;
}

DbRelation SelectEquals(const DbRelation& r, int attr, int value) {
  int p = r.AttributePosition(attr);
  CSPDB_CHECK_MSG(p >= 0, "selection attribute not in schema");
  DbRelation out(r.schema());
  for (auto row : r.rows()) {
    if (row[p] == value) out.AppendRowUnchecked(row.data());
  }
  return out;
}

DbRelation Semijoin(const DbRelation& r, const DbRelation& s) {
  CSPDB_COUNT("db.semijoins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);
  DbRelation out(r.schema());
  if (r.empty() || s.empty()) {
    CSPDB_COUNT_N("db.semijoin.rows_removed", static_cast<int64_t>(r.size()));
    return out;
  }
  KeyIndex index(s, s_pos);
  const int* r_data = r.data().data();
  const int r_arity = r.arity();
  for (std::size_t i = 0; i < r.size(); ++i) {
    const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
    if (index.FirstMatch(rrow, r_pos) != kNoRow) {
      out.AppendRowUnchecked(rrow);
    }
  }
  CSPDB_COUNT_N("db.semijoin.rows_removed",
                static_cast<int64_t>(r.size() - out.size()));
  return out;
}

DbRelation JoinAll(const std::vector<DbRelation>& relations,
                   int64_t* peak_rows) {
  CSPDB_TIMER_SCOPE("db.join_all");
  CSPDB_CHECK(!relations.empty());
  DbRelation acc = relations[0];
  int64_t peak = static_cast<int64_t>(acc.size());
  for (std::size_t i = 1; i < relations.size(); ++i) {
    acc = NaturalJoin(acc, relations[i]);
    peak = std::max(peak, static_cast<int64_t>(acc.size()));
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  return acc;
}

DbRelation JoinAllGreedy(const std::vector<DbRelation>& relations,
                         int64_t* peak_rows) {
  CSPDB_TIMER_SCOPE("db.join_all_greedy");
  CSPDB_CHECK(!relations.empty());
  std::vector<char> used(relations.size(), 0);
  // Start with the smallest relation.
  std::size_t first = 0;
  for (std::size_t i = 1; i < relations.size(); ++i) {
    if (relations[i].size() < relations[first].size()) first = i;
  }
  used[first] = 1;
  DbRelation acc = relations[first];
  int64_t peak = static_cast<int64_t>(acc.size());
  for (std::size_t step = 1; step < relations.size(); ++step) {
    int best = -1;
    int best_shared = -1;
    for (std::size_t i = 0; i < relations.size(); ++i) {
      if (used[i]) continue;
      int shared = 0;
      for (int attr : relations[i].schema()) {
        if (acc.AttributePosition(attr) >= 0) ++shared;
      }
      if (best < 0 || shared > best_shared ||
          (shared == best_shared &&
           relations[i].size() < relations[best].size())) {
        best = static_cast<int>(i);
        best_shared = shared;
      }
    }
    used[best] = 1;
    acc = NaturalJoin(acc, relations[best]);
    peak = std::max(peak, static_cast<int64_t>(acc.size()));
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  return acc;
}

std::vector<DbRelation> ConstraintsAsRelations(const CspInstance& csp) {
  std::vector<DbRelation> out;
  out.reserve(csp.constraints().size());
  for (const Constraint& c : csp.constraints()) {
    DbRelation r(c.scope);
    r.Reserve(c.allowed.size());
    for (const Tuple& t : c.allowed) r.AddRow(t);
    out.push_back(std::move(r));
  }
  return out;
}

DbRelation SolutionsAsRelation(const CspInstance& csp) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  std::vector<DbRelation> relations = ConstraintsAsRelations(normalized);
  // Unconstrained variables contribute their full domain.
  std::vector<char> covered(normalized.num_variables(), 0);
  for (const Constraint& c : normalized.constraints()) {
    for (int v : c.scope) covered[v] = 1;
  }
  for (int v = 0; v < normalized.num_variables(); ++v) {
    if (covered[v]) continue;
    DbRelation domain({v});
    for (int d = 0; d < normalized.num_values(); ++d) domain.AddRow({d});
    relations.push_back(std::move(domain));
  }
  if (relations.empty()) {
    DbRelation truth({});
    truth.AddRow(Tuple{});
    return truth;
  }
  DbRelation joined = JoinAll(relations);
  // Canonical column order 0..n-1.
  std::vector<int> order;
  for (int v = 0; v < normalized.num_variables(); ++v) order.push_back(v);
  return Project(joined, order);
}

bool SolvableByJoin(const CspInstance& csp, int64_t* peak_rows) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  if (normalized.constraints().empty()) {
    // No constraints: solvable as long as values exist for the variables.
    if (peak_rows != nullptr) *peak_rows = 0;
    return normalized.num_variables() == 0 || normalized.num_values() > 0;
  }
  std::vector<DbRelation> relations = ConstraintsAsRelations(normalized);
  return !JoinAll(relations, peak_rows).empty();
}

}  // namespace cspdb
