#include "db/algebra.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "db/join_key.h"
#include "obs/obs.h"
#include "util/check.h"

namespace cspdb {

using db_internal::KeyIndex;
using db_internal::kNoRow;
using db_internal::SharedPositions;

DbRelation NaturalJoin(const DbRelation& r, const DbRelation& s) {
  CSPDB_TRACE_SPAN("db.natural_join");
  CSPDB_COUNT("db.joins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);

  // Result schema: r's schema then s's non-shared attributes.
  std::vector<int> schema = r.schema();
  std::vector<int> s_extra_pos;
  for (std::size_t i = 0; i < s.schema().size(); ++i) {
    if (r.AttributePosition(s.schema()[i]) < 0) {
      schema.push_back(s.schema()[i]);
      s_extra_pos.push_back(static_cast<int>(i));
    }
  }
  const int r_arity = r.arity();
  const int s_arity = s.arity();
  const int out_arity = static_cast<int>(schema.size());
  DbRelation out(std::move(schema));
  if (r.empty() || s.empty()) return out;

  // Build side: hash s on its shared columns. Probe side: stream r.
  KeyIndex index(s, s_pos);
  const int* r_data = r.data().data();
  const int* s_data = s.data().data();
  std::vector<int> out_row(static_cast<std::size_t>(out_arity));
  for (std::size_t i = 0; i < r.size(); ++i) {
    const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
    for (uint32_t m = index.FirstMatch(rrow, r_pos); m != kNoRow;
         m = index.NextMatch(m, rrow, r_pos)) {
      const int* srow = s_data + m * static_cast<std::size_t>(s_arity);
      std::copy(rrow, rrow + r_arity, out_row.begin());
      for (std::size_t k = 0; k < s_extra_pos.size(); ++k) {
        out_row[static_cast<std::size_t>(r_arity) + k] = srow[s_extra_pos[k]];
      }
      // Join outputs of deduplicated inputs are duplicate-free: two build
      // rows matching the same probe row agree on the shared columns, so
      // they must differ on an emitted extra column.
      out.AppendRowUnchecked(out_row.data());
    }
  }
  CSPDB_COUNT_N("db.join.rows_out", static_cast<int64_t>(out.size()));
  CSPDB_GAUGE_MAX("db.join.peak_rows", static_cast<int64_t>(out.size()));
  return out;
}

DbRelation Project(const DbRelation& r, const std::vector<int>& attrs) {
  std::vector<int> positions;
  positions.reserve(attrs.size());
  for (int a : attrs) {
    int p = r.AttributePosition(a);
    CSPDB_CHECK_MSG(p >= 0, "projection attribute not in schema");
    positions.push_back(p);
  }
  DbRelation out(attrs);
  std::vector<int> key(positions.size());
  for (auto row : r.rows()) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      key[i] = row[positions[i]];
    }
    out.AddRow(key.data());
  }
  return out;
}

DbRelation Select(const DbRelation& r,
                  const std::function<bool(const Tuple&)>& predicate) {
  DbRelation out(r.schema());
  Tuple scratch;
  for (auto row : r.rows()) {
    scratch.assign(row.begin(), row.end());
    if (predicate(scratch)) out.AppendRowUnchecked(row.data());
  }
  return out;
}

DbRelation SelectEquals(const DbRelation& r, int attr, int value) {
  int p = r.AttributePosition(attr);
  CSPDB_CHECK_MSG(p >= 0, "selection attribute not in schema");
  DbRelation out(r.schema());
  for (auto row : r.rows()) {
    if (row[p] == value) out.AppendRowUnchecked(row.data());
  }
  return out;
}

DbRelation Semijoin(const DbRelation& r, const DbRelation& s) {
  CSPDB_COUNT("db.semijoins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);
  DbRelation out(r.schema());
  if (r.empty() || s.empty()) {
    CSPDB_COUNT_N("db.semijoin.rows_removed", static_cast<int64_t>(r.size()));
    return out;
  }
  KeyIndex index(s, s_pos);
  const int* r_data = r.data().data();
  const int r_arity = r.arity();
  for (std::size_t i = 0; i < r.size(); ++i) {
    const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
    if (index.FirstMatch(rrow, r_pos) != kNoRow) {
      out.AppendRowUnchecked(rrow);
    }
  }
  CSPDB_COUNT_N("db.semijoin.rows_removed",
                static_cast<int64_t>(r.size() - out.size()));
  return out;
}

DbRelation JoinAll(const std::vector<DbRelation>& relations,
                   int64_t* peak_rows) {
  CSPDB_TIMER_SCOPE("db.join_all");
  CSPDB_CHECK(!relations.empty());
  DbRelation acc = relations[0];
  int64_t peak = static_cast<int64_t>(acc.size());
  for (std::size_t i = 1; i < relations.size(); ++i) {
    acc = NaturalJoin(acc, relations[i]);
    peak = std::max(peak, static_cast<int64_t>(acc.size()));
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  return acc;
}

DbRelation JoinAllGreedy(const std::vector<DbRelation>& relations,
                         int64_t* peak_rows) {
  CSPDB_TIMER_SCOPE("db.join_all_greedy");
  CSPDB_CHECK(!relations.empty());
  std::vector<char> used(relations.size(), 0);
  // Start with the smallest relation.
  std::size_t first = 0;
  for (std::size_t i = 1; i < relations.size(); ++i) {
    if (relations[i].size() < relations[first].size()) first = i;
  }
  used[first] = 1;
  DbRelation acc = relations[first];
  int64_t peak = static_cast<int64_t>(acc.size());
  for (std::size_t step = 1; step < relations.size(); ++step) {
    int best = -1;
    int best_shared = -1;
    for (std::size_t i = 0; i < relations.size(); ++i) {
      if (used[i]) continue;
      int shared = 0;
      for (int attr : relations[i].schema()) {
        if (acc.AttributePosition(attr) >= 0) ++shared;
      }
      if (best < 0 || shared > best_shared ||
          (shared == best_shared &&
           relations[i].size() < relations[best].size())) {
        best = static_cast<int>(i);
        best_shared = shared;
      }
    }
    used[best] = 1;
    acc = NaturalJoin(acc, relations[best]);
    peak = std::max(peak, static_cast<int64_t>(acc.size()));
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  return acc;
}

std::vector<DbRelation> ConstraintsAsRelations(const CspInstance& csp) {
  std::vector<DbRelation> out;
  out.reserve(csp.constraints().size());
  for (const Constraint& c : csp.constraints()) {
    DbRelation r(c.scope);
    r.Reserve(c.allowed.size());
    for (const Tuple& t : c.allowed) r.AddRow(t);
    out.push_back(std::move(r));
  }
  return out;
}

DbRelation SolutionsAsRelation(const CspInstance& csp) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  std::vector<DbRelation> relations = ConstraintsAsRelations(normalized);
  // Unconstrained variables contribute their full domain.
  std::vector<char> covered(normalized.num_variables(), 0);
  for (const Constraint& c : normalized.constraints()) {
    for (int v : c.scope) covered[v] = 1;
  }
  for (int v = 0; v < normalized.num_variables(); ++v) {
    if (covered[v]) continue;
    DbRelation domain({v});
    for (int d = 0; d < normalized.num_values(); ++d) domain.AddRow({d});
    relations.push_back(std::move(domain));
  }
  if (relations.empty()) {
    DbRelation truth({});
    truth.AddRow(Tuple{});
    return truth;
  }
  DbRelation joined = JoinAll(relations);
  // Canonical column order 0..n-1.
  std::vector<int> order;
  for (int v = 0; v < normalized.num_variables(); ++v) order.push_back(v);
  return Project(joined, order);
}

bool SolvableByJoin(const CspInstance& csp, int64_t* peak_rows) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  if (normalized.constraints().empty()) {
    // No constraints: solvable as long as values exist for the variables.
    if (peak_rows != nullptr) *peak_rows = 0;
    return normalized.num_variables() == 0 || normalized.num_values() > 0;
  }
  std::vector<DbRelation> relations = ConstraintsAsRelations(normalized);
  return !JoinAll(relations, peak_rows).empty();
}

}  // namespace cspdb
