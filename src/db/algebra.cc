#include "db/algebra.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace cspdb {
namespace {

// Positions of the attributes shared by r and s, as parallel vectors.
void SharedPositions(const DbRelation& r, const DbRelation& s,
                     std::vector<int>* r_pos, std::vector<int>* s_pos) {
  r_pos->clear();
  s_pos->clear();
  for (std::size_t i = 0; i < r.schema().size(); ++i) {
    int p = s.AttributePosition(r.schema()[i]);
    if (p >= 0) {
      r_pos->push_back(static_cast<int>(i));
      s_pos->push_back(p);
    }
  }
}

Tuple KeyAt(const Tuple& row, const std::vector<int>& positions) {
  Tuple key;
  key.reserve(positions.size());
  for (int p : positions) key.push_back(row[p]);
  return key;
}

}  // namespace

DbRelation NaturalJoin(const DbRelation& r, const DbRelation& s) {
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);

  // Result schema: r's schema then s's non-shared attributes.
  std::vector<int> schema = r.schema();
  std::vector<int> s_extra_pos;
  for (std::size_t i = 0; i < s.schema().size(); ++i) {
    if (r.AttributePosition(s.schema()[i]) < 0) {
      schema.push_back(s.schema()[i]);
      s_extra_pos.push_back(static_cast<int>(i));
    }
  }
  DbRelation out(std::move(schema));

  // Hash s on the shared key.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
  for (const Tuple& row : s.rows()) {
    index[KeyAt(row, s_pos)].push_back(&row);
  }
  for (const Tuple& row : r.rows()) {
    auto it = index.find(KeyAt(row, r_pos));
    if (it == index.end()) continue;
    for (const Tuple* srow : it->second) {
      Tuple combined = row;
      for (int p : s_extra_pos) combined.push_back((*srow)[p]);
      out.AddRow(std::move(combined));
    }
  }
  return out;
}

DbRelation Project(const DbRelation& r, const std::vector<int>& attrs) {
  std::vector<int> positions;
  positions.reserve(attrs.size());
  for (int a : attrs) {
    int p = r.AttributePosition(a);
    CSPDB_CHECK_MSG(p >= 0, "projection attribute not in schema");
    positions.push_back(p);
  }
  DbRelation out(attrs);
  for (const Tuple& row : r.rows()) out.AddRow(KeyAt(row, positions));
  return out;
}

DbRelation Select(const DbRelation& r,
                  const std::function<bool(const Tuple&)>& predicate) {
  DbRelation out(r.schema());
  for (const Tuple& row : r.rows()) {
    if (predicate(row)) out.AddRow(row);
  }
  return out;
}

DbRelation SelectEquals(const DbRelation& r, int attr, int value) {
  int p = r.AttributePosition(attr);
  CSPDB_CHECK_MSG(p >= 0, "selection attribute not in schema");
  return Select(r, [p, value](const Tuple& row) { return row[p] == value; });
}

DbRelation Semijoin(const DbRelation& r, const DbRelation& s) {
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);
  TupleSet keys;
  for (const Tuple& row : s.rows()) keys.insert(KeyAt(row, s_pos));
  DbRelation out(r.schema());
  for (const Tuple& row : r.rows()) {
    if (keys.count(KeyAt(row, r_pos)) > 0) out.AddRow(row);
  }
  return out;
}

DbRelation JoinAll(const std::vector<DbRelation>& relations,
                   int64_t* peak_rows) {
  CSPDB_CHECK(!relations.empty());
  DbRelation acc = relations[0];
  int64_t peak = static_cast<int64_t>(acc.size());
  for (std::size_t i = 1; i < relations.size(); ++i) {
    acc = NaturalJoin(acc, relations[i]);
    peak = std::max(peak, static_cast<int64_t>(acc.size()));
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  return acc;
}

DbRelation JoinAllGreedy(const std::vector<DbRelation>& relations,
                         int64_t* peak_rows) {
  CSPDB_CHECK(!relations.empty());
  std::vector<char> used(relations.size(), 0);
  // Start with the smallest relation.
  std::size_t first = 0;
  for (std::size_t i = 1; i < relations.size(); ++i) {
    if (relations[i].size() < relations[first].size()) first = i;
  }
  used[first] = 1;
  DbRelation acc = relations[first];
  int64_t peak = static_cast<int64_t>(acc.size());
  for (std::size_t step = 1; step < relations.size(); ++step) {
    int best = -1;
    int best_shared = -1;
    for (std::size_t i = 0; i < relations.size(); ++i) {
      if (used[i]) continue;
      int shared = 0;
      for (int attr : relations[i].schema()) {
        if (acc.AttributePosition(attr) >= 0) ++shared;
      }
      if (best < 0 || shared > best_shared ||
          (shared == best_shared &&
           relations[i].size() < relations[best].size())) {
        best = static_cast<int>(i);
        best_shared = shared;
      }
    }
    used[best] = 1;
    acc = NaturalJoin(acc, relations[best]);
    peak = std::max(peak, static_cast<int64_t>(acc.size()));
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  return acc;
}

std::vector<DbRelation> ConstraintsAsRelations(const CspInstance& csp) {
  std::vector<DbRelation> out;
  out.reserve(csp.constraints().size());
  for (const Constraint& c : csp.constraints()) {
    DbRelation r(c.scope);
    for (const Tuple& t : c.allowed) r.AddRow(t);
    out.push_back(std::move(r));
  }
  return out;
}

DbRelation SolutionsAsRelation(const CspInstance& csp) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  std::vector<DbRelation> relations = ConstraintsAsRelations(normalized);
  // Unconstrained variables contribute their full domain.
  std::vector<char> covered(normalized.num_variables(), 0);
  for (const Constraint& c : normalized.constraints()) {
    for (int v : c.scope) covered[v] = 1;
  }
  for (int v = 0; v < normalized.num_variables(); ++v) {
    if (covered[v]) continue;
    DbRelation domain({v});
    for (int d = 0; d < normalized.num_values(); ++d) domain.AddRow({d});
    relations.push_back(std::move(domain));
  }
  if (relations.empty()) {
    DbRelation truth({});
    truth.AddRow({});
    return truth;
  }
  DbRelation joined = JoinAll(relations);
  // Canonical column order 0..n-1.
  std::vector<int> order;
  for (int v = 0; v < normalized.num_variables(); ++v) order.push_back(v);
  return Project(joined, order);
}

bool SolvableByJoin(const CspInstance& csp, int64_t* peak_rows) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  if (normalized.constraints().empty()) {
    // No constraints: solvable as long as values exist for the variables.
    if (peak_rows != nullptr) *peak_rows = 0;
    return normalized.num_variables() == 0 || normalized.num_values() > 0;
  }
  std::vector<DbRelation> relations = ConstraintsAsRelations(normalized);
  return !JoinAll(relations, peak_rows).empty();
}

}  // namespace cspdb
