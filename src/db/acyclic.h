// Acyclic joins: hypergraphs of relation schemas, GYO reduction,
// join forests, and the Yannakakis semijoin algorithm (paper, Section 6's
// discussion of acyclic joins and acyclic constraints [45, 32]).

#ifndef CSPDB_DB_ACYCLIC_H_
#define CSPDB_DB_ACYCLIC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "db/relation.h"

namespace cspdb {

/// A hypergraph: one hyperedge (set of attribute ids) per relation.
struct Hypergraph {
  std::vector<std::vector<int>> edges;
};

/// The hypergraph whose edges are the schemas of `relations`.
Hypergraph HypergraphOfSchemas(const std::vector<DbRelation>& relations);

/// A join forest over the edges of a hypergraph: `parent[i]` is the edge
/// that edge i semijoins into (-1 for roots), and `order` lists edges
/// children-before-parents (GYO removal order).
struct JoinForest {
  std::vector<int> parent;
  std::vector<int> order;
};

/// GYO ear removal. Returns a join forest if the hypergraph is
/// alpha-acyclic, std::nullopt otherwise.
std::optional<JoinForest> BuildJoinForest(const Hypergraph& h);

/// True iff the hypergraph is alpha-acyclic.
bool IsAlphaAcyclic(const Hypergraph& h);

/// Per-run statistics for the full reducer and Yannakakis evaluation —
/// the per-stage peak rows EXPERIMENTS.md E8 previously could only infer
/// from timings. Mirrored into the process-wide "db.*" metrics
/// (obs/metrics.h) in instrumented builds; rendered by obs/explain.h.
struct YannakakisStats {
  int64_t semijoin_passes = 0;  ///< semijoins applied by the full reducer
  int64_t rows_removed = 0;     ///< rows dropped across all those passes
  int64_t peak_reduced_rows = 0;  ///< largest relation after reduction
  int64_t peak_join_rows = 0;     ///< largest bottom-up join intermediate
  int64_t output_rows = 0;        ///< final result cardinality

  /// Per relation (indexed like the input vector): rows before reduction,
  /// rows after the full reducer, and the cardinality of the bottom-up
  /// join produced when this relation folded into its parent (-1 for
  /// roots, which are never folded). input_rows/reduced_rows are filled
  /// by FullReducer; fold_rows only by YannakakisEvaluate.
  std::vector<int64_t> input_rows;
  std::vector<int64_t> reduced_rows;
  std::vector<int64_t> fold_rows;
};

/// Full reducer: runs the child->parent and parent->child semijoin passes
/// over `relations` in place. After this, for an acyclic schema, the join
/// is nonempty iff every relation is nonempty.
void FullReducer(const JoinForest& forest, std::vector<DbRelation>* relations,
                 YannakakisStats* stats = nullptr);

/// Decides whether the natural join of acyclic `relations` is nonempty in
/// polynomial time (semijoin program only — no join is materialized).
bool AcyclicJoinNonempty(const JoinForest& forest,
                         std::vector<DbRelation> relations);

/// The Yannakakis algorithm: full reducer, then bottom-up joins projecting
/// onto `output_attrs` plus connector attributes, keeping every
/// intermediate result polynomial in input + output. `peak_rows`, if
/// non-null, receives the largest intermediate cardinality.
DbRelation YannakakisEvaluate(const JoinForest& forest,
                              std::vector<DbRelation> relations,
                              const std::vector<int>& output_attrs,
                              int64_t* peak_rows = nullptr,
                              YannakakisStats* stats = nullptr);

}  // namespace cspdb

#endif  // CSPDB_DB_ACYCLIC_H_
