// Acyclic joins: hypergraphs of relation schemas, GYO reduction,
// join forests, and the Yannakakis semijoin algorithm (paper, Section 6's
// discussion of acyclic joins and acyclic constraints [45, 32]).

#ifndef CSPDB_DB_ACYCLIC_H_
#define CSPDB_DB_ACYCLIC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "db/relation.h"

namespace cspdb {

/// A hypergraph: one hyperedge (set of attribute ids) per relation.
struct Hypergraph {
  std::vector<std::vector<int>> edges;
};

/// The hypergraph whose edges are the schemas of `relations`.
Hypergraph HypergraphOfSchemas(const std::vector<DbRelation>& relations);

/// A join forest over the edges of a hypergraph: `parent[i]` is the edge
/// that edge i semijoins into (-1 for roots), and `order` lists edges
/// children-before-parents (GYO removal order).
struct JoinForest {
  std::vector<int> parent;
  std::vector<int> order;
};

/// GYO ear removal. Returns a join forest if the hypergraph is
/// alpha-acyclic, std::nullopt otherwise.
std::optional<JoinForest> BuildJoinForest(const Hypergraph& h);

/// True iff the hypergraph is alpha-acyclic.
bool IsAlphaAcyclic(const Hypergraph& h);

/// Full reducer: runs the child->parent and parent->child semijoin passes
/// over `relations` in place. After this, for an acyclic schema, the join
/// is nonempty iff every relation is nonempty.
void FullReducer(const JoinForest& forest, std::vector<DbRelation>* relations);

/// Decides whether the natural join of acyclic `relations` is nonempty in
/// polynomial time (semijoin program only — no join is materialized).
bool AcyclicJoinNonempty(const JoinForest& forest,
                         std::vector<DbRelation> relations);

/// The Yannakakis algorithm: full reducer, then bottom-up joins projecting
/// onto `output_attrs` plus connector attributes, keeping every
/// intermediate result polynomial in input + output. `peak_rows`, if
/// non-null, receives the largest intermediate cardinality.
DbRelation YannakakisEvaluate(const JoinForest& forest,
                              std::vector<DbRelation> relations,
                              const std::vector<int>& output_attrs,
                              int64_t* peak_rows = nullptr);

}  // namespace cspdb

#endif  // CSPDB_DB_ACYCLIC_H_
