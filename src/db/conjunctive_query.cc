#include "db/conjunctive_query.h"

#include <utility>

#include "db/algebra.h"
#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {

ConjunctiveQuery::ConjunctiveQuery(int num_variables, std::vector<int> head,
                                   std::vector<Atom> body)
    : num_variables_(num_variables),
      head_(std::move(head)),
      body_(std::move(body)) {
  CSPDB_CHECK(num_variables >= 0);
  for (int h : head_) CSPDB_CHECK(h >= 0 && h < num_variables_);
  for (const Atom& atom : body_) {
    CSPDB_CHECK(!atom.args.empty());
    for (int v : atom.args) CSPDB_CHECK(v >= 0 && v < num_variables_);
    int existing = body_vocabulary_.IndexOf(atom.predicate);
    if (existing < 0) {
      body_vocabulary_.AddSymbol(atom.predicate,
                                 static_cast<int>(atom.args.size()));
    } else {
      CSPDB_CHECK_MSG(body_vocabulary_.symbol(existing).arity ==
                          static_cast<int>(atom.args.size()),
                      "inconsistent arity for predicate " + atom.predicate);
    }
  }
}

Structure ConjunctiveQuery::CanonicalDatabase() const {
  Vocabulary voc = body_vocabulary_;
  std::vector<int> head_marker(head_.size());
  for (std::size_t i = 0; i < head_.size(); ++i) {
    head_marker[i] = voc.AddSymbol("__P" + std::to_string(i), 1);
  }
  Structure db(voc, num_variables_);
  for (const Atom& atom : body_) {
    db.AddTuple(voc.IndexOf(atom.predicate),
                Tuple(atom.args.begin(), atom.args.end()));
  }
  for (std::size_t i = 0; i < head_.size(); ++i) {
    db.AddTuple(head_marker[i], {head_[i]});
  }
  return db;
}

Structure ConjunctiveQuery::BodyStructure() const {
  Structure db(body_vocabulary_, num_variables_);
  for (const Atom& atom : body_) {
    db.AddTuple(body_vocabulary_.IndexOf(atom.predicate),
                Tuple(atom.args.begin(), atom.args.end()));
  }
  return db;
}

ConjunctiveQuery ConjunctiveQuery::FromStructure(const Structure& a) {
  std::vector<Atom> body;
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) {
      body.push_back({a.vocabulary().symbol(r).name,
                      std::vector<int>(t.begin(), t.end())});
    }
  }
  return ConjunctiveQuery(a.domain_size(), {}, std::move(body));
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "Q(";
  for (std::size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ",";
    out += "x" + std::to_string(head_[i]);
  }
  out += ") :- ";
  for (std::size_t i = 0; i < body_.size(); ++i) {
    if (i > 0) out += ", ";
    out += body_[i].predicate + "(";
    for (std::size_t j = 0; j < body_[i].args.size(); ++j) {
      if (j > 0) out += ",";
      out += "x" + std::to_string(body_[i].args[j]);
    }
    out += ")";
  }
  return out;
}

DbRelation Evaluate(const ConjunctiveQuery& q, const Structure& db) {
  // Per-atom relations keyed by query-variable id (repeated arguments are
  // turned into equality selections followed by projection).
  std::vector<DbRelation> parts;
  bool impossible = false;
  for (const Atom& atom : q.body()) {
    std::vector<int> distinct_args;
    std::vector<int> keep_pos;
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      bool first = true;
      for (std::size_t j = 0; j < i; ++j) {
        if (atom.args[j] == atom.args[i]) {
          first = false;
          break;
        }
      }
      if (first) {
        distinct_args.push_back(atom.args[i]);
        keep_pos.push_back(static_cast<int>(i));
      }
    }
    DbRelation part(distinct_args);
    int rel = db.vocabulary().IndexOf(atom.predicate);
    if (rel < 0) {
      impossible = true;
    } else {
      CSPDB_CHECK_MSG(db.vocabulary().symbol(rel).arity ==
                          static_cast<int>(atom.args.size()),
                      "atom arity differs from database relation " +
                          atom.predicate);
      for (const Tuple& t : db.tuples(rel)) {
        bool agree = true;
        for (std::size_t i = 0; i < atom.args.size() && agree; ++i) {
          for (std::size_t j = 0; j < i; ++j) {
            if (atom.args[j] == atom.args[i] && t[j] != t[i]) {
              agree = false;
              break;
            }
          }
        }
        if (!agree) continue;
        Tuple row;
        row.reserve(keep_pos.size());
        for (int p : keep_pos) row.push_back(t[p]);
        part.AddRow(std::move(row));
      }
    }
    parts.push_back(std::move(part));
  }

  // Result schema: head positions 0..n-1 (attribute i = head slot i).
  std::vector<int> out_schema(q.head().size());
  for (std::size_t i = 0; i < out_schema.size(); ++i) {
    out_schema[i] = static_cast<int>(i);
  }
  DbRelation out(out_schema);
  if (impossible) return out;

  DbRelation joined = parts.empty() ? DbRelation({}) : JoinAll(parts);
  if (parts.empty()) joined.AddRow(Tuple{});  // empty body is trivially true

  std::vector<int> head_positions;
  head_positions.reserve(q.head().size());
  for (int h : q.head()) {
    int p = joined.AttributePosition(h);
    CSPDB_CHECK_MSG(p >= 0,
                    "unsafe query: head variable missing from the body");
    head_positions.push_back(p);
  }
  for (auto row : joined.rows()) {
    Tuple projected;
    projected.reserve(head_positions.size());
    for (int p : head_positions) projected.push_back(row[p]);
    out.AddRow(std::move(projected));
  }
  return out;
}

bool BodySatisfiable(const ConjunctiveQuery& q, const Structure& db) {
  // Align the body with the database vocabulary, then search for a
  // homomorphism (cheaper than materializing the full join).
  Structure body(db.vocabulary(), q.num_variables());
  for (const Atom& atom : q.body()) {
    int rel = db.vocabulary().IndexOf(atom.predicate);
    if (rel < 0) return false;
    CSPDB_CHECK_MSG(db.vocabulary().symbol(rel).arity ==
                        static_cast<int>(atom.args.size()),
                    "atom arity differs from database relation " +
                        atom.predicate);
    body.AddTuple(rel, Tuple(atom.args.begin(), atom.args.end()));
  }
  return FindHomomorphism(body, db).has_value();
}

}  // namespace cspdb
