// Conjunctive-query containment via the Chandra-Merlin homomorphism
// theorem (paper, Propositions 2.2 and 2.3).

#ifndef CSPDB_DB_CONTAINMENT_H_
#define CSPDB_DB_CONTAINMENT_H_

#include "db/conjunctive_query.h"
#include "relational/structure.h"

namespace cspdb {

/// Decides Q1 ⊆ Q2 (same head arity required) by searching for a
/// homomorphism D^{Q2} -> D^{Q1} between canonical databases (head
/// markers force distinguished variables onto distinguished variables).
bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// The same decision via Proposition 2.2's second formulation: evaluate Q2
/// on the canonical database of Q1 and test whether Q1's head tuple is in
/// the answer. Agrees with IsContainedIn; kept separate so the equivalence
/// is testable.
bool IsContainedInViaEvaluation(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2);

/// Q1 ⊆ Q2 and Q2 ⊆ Q1.
bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// Proposition 2.3: a homomorphism A -> B exists iff the Boolean query
/// phi_A is true in B. Decides homomorphism existence by query
/// evaluation (testable against FindHomomorphism).
bool HomomorphismViaQueryEvaluation(const Structure& a, const Structure& b);

}  // namespace cspdb

#endif  // CSPDB_DB_CONTAINMENT_H_
