#include "db/acyclic.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "db/algebra.h"
#include "obs/obs.h"
#include "util/check.h"

namespace cspdb {

Hypergraph HypergraphOfSchemas(const std::vector<DbRelation>& relations) {
  Hypergraph h;
  h.edges.reserve(relations.size());
  for (const DbRelation& r : relations) {
    std::vector<int> edge = r.schema();
    std::sort(edge.begin(), edge.end());
    h.edges.push_back(std::move(edge));
  }
  return h;
}

namespace {

// True if every vertex of `e` that also occurs in another active edge
// (other than e itself, index `ei`) is contained in edge `f`.
bool IsEarWithWitness(const Hypergraph& h, const std::vector<char>& active,
                      int ei, int fi) {
  const std::vector<int>& e = h.edges[ei];
  const std::vector<int>& f = h.edges[fi];
  for (int v : e) {
    bool shared = false;
    for (std::size_t j = 0; j < h.edges.size(); ++j) {
      if (static_cast<int>(j) == ei || !active[j]) continue;
      if (std::binary_search(h.edges[j].begin(), h.edges[j].end(), v)) {
        shared = true;
        break;
      }
    }
    if (shared && !std::binary_search(f.begin(), f.end(), v)) return false;
  }
  return true;
}

}  // namespace

std::optional<JoinForest> BuildJoinForest(const Hypergraph& input) {
  // Normalize: the ear test uses binary search within edges.
  Hypergraph h = input;
  for (std::vector<int>& edge : h.edges) {
    std::sort(edge.begin(), edge.end());
    edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
  }
  int m = static_cast<int>(h.edges.size());
  JoinForest forest;
  forest.parent.assign(m, -1);
  std::vector<char> active(m, 1);
  int remaining = m;
  while (remaining > 1) {
    bool removed = false;
    for (int e = 0; e < m && !removed; ++e) {
      if (!active[e]) continue;
      for (int f = 0; f < m; ++f) {
        if (f == e || !active[f]) continue;
        if (IsEarWithWitness(h, active, e, f)) {
          forest.parent[e] = f;
          forest.order.push_back(e);
          active[e] = 0;
          --remaining;
          removed = true;
          break;
        }
      }
    }
    if (!removed) return std::nullopt;  // cyclic
  }
  for (int e = 0; e < m; ++e) {
    if (active[e]) forest.order.push_back(e);  // root(s)
  }
  return forest;
}

bool IsAlphaAcyclic(const Hypergraph& h) {
  return BuildJoinForest(h).has_value();
}

void FullReducer(const JoinForest& forest,
                 std::vector<DbRelation>* relations,
                 YannakakisStats* stats) {
  CSPDB_TIMER_SCOPE("db.full_reducer");
  if (stats != nullptr) {
    stats->input_rows.clear();
    for (const DbRelation& r : *relations) {
      stats->input_rows.push_back(static_cast<int64_t>(r.size()));
    }
  }
  auto reduce = [&](int target, int with) {
    const int64_t before = static_cast<int64_t>((*relations)[target].size());
    (*relations)[target] =
        Semijoin((*relations)[target], (*relations)[with]);
    if (stats != nullptr) {
      ++stats->semijoin_passes;
      stats->rows_removed +=
          before - static_cast<int64_t>((*relations)[target].size());
    }
  };
  // Upward pass: children before parents (forest.order is removal order).
  for (int e : forest.order) {
    int f = forest.parent[e];
    if (f >= 0) reduce(f, e);
  }
  // Downward pass: parents before children.
  for (auto it = forest.order.rbegin(); it != forest.order.rend(); ++it) {
    int e = *it;
    int f = forest.parent[e];
    if (f >= 0) reduce(e, f);
  }
  if (stats != nullptr) {
    stats->reduced_rows.clear();
    for (const DbRelation& r : *relations) {
      const int64_t rows = static_cast<int64_t>(r.size());
      stats->reduced_rows.push_back(rows);
      stats->peak_reduced_rows = std::max(stats->peak_reduced_rows, rows);
    }
  }
}

bool AcyclicJoinNonempty(const JoinForest& forest,
                         std::vector<DbRelation> relations) {
  if (relations.empty()) return true;
  FullReducer(forest, &relations);
  for (const DbRelation& r : relations) {
    if (r.empty()) return false;
  }
  return true;
}

DbRelation YannakakisEvaluate(const JoinForest& forest,
                              std::vector<DbRelation> relations,
                              const std::vector<int>& output_attrs,
                              int64_t* peak_rows, YannakakisStats* stats) {
  CSPDB_TIMER_SCOPE("db.yannakakis");
  CSPDB_CHECK(!relations.empty());
  std::unordered_set<int> output(output_attrs.begin(), output_attrs.end());
  for (int a : output_attrs) {
    bool found = false;
    for (const DbRelation& r : relations) {
      if (r.AttributePosition(a) >= 0) {
        found = true;
        break;
      }
    }
    CSPDB_CHECK_MSG(found, "output attribute missing from every relation");
  }

  FullReducer(forest, &relations, stats);
  int64_t peak = 0;
  for (const DbRelation& r : relations) {
    peak = std::max(peak, static_cast<int64_t>(r.size()));
  }
  if (stats != nullptr) {
    stats->fold_rows.assign(relations.size(), -1);
  }

  // Bottom-up joins: fold each child into its parent, projecting onto the
  // parent's original schema plus any output attributes present.
  std::vector<DbRelation> result = relations;
  std::vector<DbRelation> roots;
  for (int e : forest.order) {
    int f = forest.parent[e];
    if (f < 0) {
      roots.push_back(result[e]);
      continue;
    }
    DbRelation joined = NaturalJoin(result[f], result[e]);
    peak = std::max(peak, static_cast<int64_t>(joined.size()));
    if (stats != nullptr) {
      stats->fold_rows[e] = static_cast<int64_t>(joined.size());
      stats->peak_join_rows = std::max(
          stats->peak_join_rows, static_cast<int64_t>(joined.size()));
    }
    std::vector<int> keep;
    for (int a : joined.schema()) {
      if (output.count(a) > 0 ||
          relations[f].AttributePosition(a) >= 0) {
        keep.push_back(a);
      }
    }
    result[f] = Project(joined, keep);
  }

  // Cross-combine the roots (schemas of distinct components are disjoint
  // except possibly on output attributes already projected).
  DbRelation acc = roots.front();
  for (std::size_t i = 1; i < roots.size(); ++i) {
    acc = NaturalJoin(acc, roots[i]);
    peak = std::max(peak, static_cast<int64_t>(acc.size()));
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  CSPDB_GAUGE_MAX("db.yannakakis.peak_rows", peak);
  DbRelation projected = Project(acc, output_attrs);
  if (stats != nullptr) {
    stats->peak_join_rows = std::max(stats->peak_join_rows, peak);
    stats->output_rows = static_cast<int64_t>(projected.size());
  }
  return projected;
}

}  // namespace cspdb
