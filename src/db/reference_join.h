// Frozen pre-optimization relational kernels: the row-per-Tuple relation
// store (one heap vector per row plus an unordered_set entry) and the
// Tuple-materializing hash join / semijoin / projection that db/algebra.cc
// shipped before the flat-storage rewrite. They are the trusted oracle
// for differential tests and the "before" side of BENCH_kernels.json.
// Do not optimize this file.

#ifndef CSPDB_DB_REFERENCE_JOIN_H_
#define CSPDB_DB_REFERENCE_JOIN_H_

#include <cstdint>
#include <vector>

#include "db/relation.h"
#include "relational/structure.h"

namespace cspdb {

/// The pre-change DbRelation storage layout: deduplicated rows, each its
/// own heap-allocated Tuple, membership via TupleSet.
struct ReferenceRelation {
  explicit ReferenceRelation(std::vector<int> schema_in)
      : schema(std::move(schema_in)) {}

  void AddRow(Tuple row) {
    if (row_set.insert(row).second) rows.push_back(std::move(row));
  }

  int AttributePosition(int attr) const {
    for (std::size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == attr) return static_cast<int>(i);
    }
    return -1;
  }

  std::size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  std::vector<int> schema;
  std::vector<Tuple> rows;
  TupleSet row_set;
};

/// Copies a flat-storage relation into the reference layout.
ReferenceRelation ToReferenceRelation(const DbRelation& r);

/// True if `r` and `ref` have the same schema and the same row set.
bool SameRows(const DbRelation& r, const ReferenceRelation& ref);

/// The pre-change hash join (Tuple keys, per-output-row allocation).
ReferenceRelation ReferenceNaturalJoin(const ReferenceRelation& r,
                                       const ReferenceRelation& s);

/// The pre-change projection with TupleSet deduplication.
ReferenceRelation ReferenceProject(const ReferenceRelation& r,
                                   const std::vector<int>& attrs);

/// The pre-change semijoin (materialized Tuple keys both sides).
ReferenceRelation ReferenceSemijoin(const ReferenceRelation& r,
                                    const ReferenceRelation& s);

/// The pre-change left-to-right join pipeline.
ReferenceRelation ReferenceJoinAll(
    const std::vector<ReferenceRelation>& relations,
    int64_t* peak_rows = nullptr);

}  // namespace cspdb

#endif  // CSPDB_DB_REFERENCE_JOIN_H_
