#include "db/parallel_algebra.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "db/algebra.h"
#include "db/join_key.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/sync.h"

namespace cspdb {
namespace {

using db_internal::KeyIndex;
using db_internal::kNoRow;
using db_internal::SharedPositions;

exec::ThreadPool* ResolvePool(const ParallelDbOptions& options) {
  return options.pool != nullptr ? options.pool : &exec::ThreadPool::Global();
}

// Stripe geometry for a probe side of `rows` rows: contiguous stripes of
// equal size (last one ragged), about 4 per worker so stealing can even
// out skewed match densities.
std::size_t StripeSize(std::size_t rows, int num_threads) {
  const std::size_t stripes =
      std::max<std::size_t>(1, static_cast<std::size_t>(num_threads) * 4);
  return std::max<std::size_t>(1, (rows + stripes - 1) / stripes);
}

}  // namespace

DbRelation NaturalJoinParallel(const DbRelation& r, const DbRelation& s,
                               const ParallelDbOptions& options) {
  exec::ThreadPool* pool = ResolvePool(options);
  if (pool->num_threads() <= 1 || r.size() < options.min_probe_rows ||
      s.empty()) {
    return NaturalJoin(r, s);
  }
  CSPDB_TRACE_SPAN("db.natural_join_parallel");
  CSPDB_COUNT("db.joins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);
  std::vector<int> schema = r.schema();
  std::vector<int> s_extra_pos;
  for (std::size_t i = 0; i < s.schema().size(); ++i) {
    if (r.AttributePosition(s.schema()[i]) < 0) {
      schema.push_back(s.schema()[i]);
      s_extra_pos.push_back(static_cast<int>(i));
    }
  }
  const int r_arity = r.arity();
  const int s_arity = s.arity();
  const int out_arity = static_cast<int>(schema.size());
  DbRelation out(std::move(schema));

  // Build serially (same index, hence same chain order, as the serial
  // kernel), probe in stripes.
  KeyIndex index(s, s_pos);
  const std::size_t stripe = StripeSize(r.size(), pool->num_threads());
  const std::size_t num_stripes = (r.size() + stripe - 1) / stripe;
  std::vector<std::vector<int>> buffers(num_stripes);
  const int* r_data = r.data().data();
  const int* s_data = s.data().data();
  pool->ParallelFor(
      0, static_cast<int64_t>(num_stripes), 1,
      [&](int64_t lo, int64_t hi) {
        std::vector<int> out_row(static_cast<std::size_t>(out_arity));
        for (int64_t si = lo; si < hi; ++si) {
          std::vector<int>& buf = buffers[static_cast<std::size_t>(si)];
          const std::size_t begin = static_cast<std::size_t>(si) * stripe;
          const std::size_t end = std::min(begin + stripe, r.size());
          for (std::size_t i = begin; i < end; ++i) {
            const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
            for (uint32_t m = index.FirstMatch(rrow, r_pos); m != kNoRow;
                 m = index.NextMatch(m, rrow, r_pos)) {
              const int* srow =
                  s_data + m * static_cast<std::size_t>(s_arity);
              std::copy(rrow, rrow + r_arity, out_row.begin());
              for (std::size_t k = 0; k < s_extra_pos.size(); ++k) {
                out_row[static_cast<std::size_t>(r_arity) + k] =
                    srow[s_extra_pos[k]];
              }
              buf.insert(buf.end(), out_row.begin(), out_row.end());
            }
          }
        }
      });
  // Stripe-ordered concatenation == probe-row order == serial row order.
  std::size_t total_rows = 0;
  for (const std::vector<int>& buf : buffers) {
    total_rows += buf.size() / static_cast<std::size_t>(out_arity);
  }
  out.Reserve(total_rows);
  for (const std::vector<int>& buf : buffers) {
    out.AppendRowsUnchecked(
        buf.data(), buf.size() / static_cast<std::size_t>(out_arity));
  }
  CSPDB_COUNT_N("db.join.rows_out", static_cast<int64_t>(out.size()));
  CSPDB_GAUGE_MAX("db.join.peak_rows", static_cast<int64_t>(out.size()));
  return out;
}

DbRelation SemijoinParallel(const DbRelation& r, const DbRelation& s,
                            const ParallelDbOptions& options) {
  exec::ThreadPool* pool = ResolvePool(options);
  if (pool->num_threads() <= 1 || r.size() < options.min_probe_rows ||
      s.empty()) {
    return Semijoin(r, s);
  }
  CSPDB_COUNT("db.semijoins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);
  DbRelation out(r.schema());
  KeyIndex index(s, s_pos);
  const int r_arity = r.arity();
  const std::size_t stripe = StripeSize(r.size(), pool->num_threads());
  const std::size_t num_stripes = (r.size() + stripe - 1) / stripe;
  std::vector<std::vector<int>> buffers(num_stripes);
  const int* r_data = r.data().data();
  pool->ParallelFor(
      0, static_cast<int64_t>(num_stripes), 1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t si = lo; si < hi; ++si) {
          std::vector<int>& buf = buffers[static_cast<std::size_t>(si)];
          const std::size_t begin = static_cast<std::size_t>(si) * stripe;
          const std::size_t end = std::min(begin + stripe, r.size());
          for (std::size_t i = begin; i < end; ++i) {
            const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
            if (index.FirstMatch(rrow, r_pos) != kNoRow) {
              buf.insert(buf.end(), rrow, rrow + r_arity);
            }
          }
        }
      });
  std::size_t total_rows = 0;
  for (const std::vector<int>& buf : buffers) {
    total_rows += buf.size() / static_cast<std::size_t>(r_arity);
  }
  out.Reserve(total_rows);
  for (const std::vector<int>& buf : buffers) {
    out.AppendRowsUnchecked(
        buf.data(), buf.size() / static_cast<std::size_t>(r_arity));
  }
  CSPDB_COUNT_N("db.semijoin.rows_removed",
                static_cast<int64_t>(r.size() - out.size()));
  return out;
}

void FullReducerParallel(const JoinForest& forest,
                         std::vector<DbRelation>* relations,
                         const ParallelDbOptions& options,
                         YannakakisStats* stats) {
  exec::ThreadPool* pool = ResolvePool(options);
  const int n = static_cast<int>(relations->size());
  if (pool->num_threads() <= 1 ||
      relations->size() < options.min_forest_nodes) {
    FullReducer(forest, relations, stats);
    return;
  }
  CSPDB_TIMER_SCOPE("db.full_reducer_parallel");
  if (stats != nullptr) {
    stats->input_rows.clear();
    for (const DbRelation& r : *relations) {
      stats->input_rows.push_back(static_cast<int64_t>(r.size()));
    }
  }
  std::vector<std::vector<int>> children(n);
  for (int e = 0; e < n; ++e) {
    if (forest.parent[e] >= 0) children[forest.parent[e]].push_back(e);
  }
  std::atomic<int64_t> passes{0};
  std::atomic<int64_t> removed{0};
  // Semijoins into the same parent commute exactly (Semijoin keeps probe
  // rows in order), so a per-parent mutex is enough for determinism.
  // Leaf locks: Semijoin acquires nothing, so no ordering constraint.
  std::vector<std::unique_ptr<util::Mutex>> node_mu(n);
  for (auto& mu : node_mu) mu = std::make_unique<util::Mutex>();
  auto reduce = [&](int target, int with) {
    util::MutexLock lock(*node_mu[target]);
    const int64_t before = static_cast<int64_t>((*relations)[target].size());
    (*relations)[target] =
        Semijoin((*relations)[target], (*relations)[with]);
    passes.fetch_add(1, std::memory_order_relaxed);
    removed.fetch_add(
        before - static_cast<int64_t>((*relations)[target].size()),
        std::memory_order_relaxed);
  };

  // Upward pass: node e may fold into its parent once all of e's own
  // children have folded into e.
  {
    std::vector<std::atomic<int>> pending(n);
    for (int e = 0; e < n; ++e) {
      pending[e].store(static_cast<int>(children[e].size()),
                       std::memory_order_relaxed);
    }
    exec::TaskGroup group(pool);
    std::function<void(int)> fold_up = [&](int e) {
      const int f = forest.parent[e];
      if (f < 0) return;
      reduce(f, e);
      if (pending[f].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        group.Run([&fold_up, f] { fold_up(f); });
      }
    };
    for (int e = 0; e < n; ++e) {
      if (children[e].empty()) {
        group.Run([&fold_up, e] { fold_up(e); });
      }
    }
    group.Wait();
  }

  // Downward pass: fan out from the roots; each task writes only its own
  // node and reads its (already final) parent — lock-free.
  {
    exec::TaskGroup group(pool);
    std::function<void(int)> fold_down = [&](int e) {
      for (int c : children[e]) {
        group.Run([&, c, e] {
          const int64_t before =
              static_cast<int64_t>((*relations)[c].size());
          (*relations)[c] = Semijoin((*relations)[c], (*relations)[e]);
          passes.fetch_add(1, std::memory_order_relaxed);
          removed.fetch_add(
              before - static_cast<int64_t>((*relations)[c].size()),
              std::memory_order_relaxed);
          fold_down(c);
        });
      }
    };
    for (int e = 0; e < n; ++e) {
      if (forest.parent[e] < 0) fold_down(e);
    }
    group.Wait();
  }

  if (stats != nullptr) {
    stats->semijoin_passes += passes.load(std::memory_order_relaxed);
    stats->rows_removed += removed.load(std::memory_order_relaxed);
    stats->reduced_rows.clear();
    for (const DbRelation& r : *relations) {
      const int64_t rows = static_cast<int64_t>(r.size());
      stats->reduced_rows.push_back(rows);
      stats->peak_reduced_rows = std::max(stats->peak_reduced_rows, rows);
    }
  }
}

bool AcyclicJoinNonemptyParallel(const JoinForest& forest,
                                 std::vector<DbRelation> relations,
                                 const ParallelDbOptions& options) {
  if (relations.empty()) return true;
  FullReducerParallel(forest, &relations, options);
  for (const DbRelation& r : relations) {
    if (r.empty()) return false;
  }
  return true;
}

}  // namespace cspdb
