#include "db/parallel_algebra.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "db/algebra.h"
#include "db/join_key.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/sync.h"

namespace cspdb {
namespace {

using db_internal::HashKeyAt;
using db_internal::KeyIndex;
using db_internal::KeysEqual;
using db_internal::kNoRow;
using db_internal::SharedPositions;

exec::ThreadPool* ResolvePool(const ParallelDbOptions& options) {
  return options.pool != nullptr ? options.pool : &exec::ThreadPool::Global();
}

// Runs fn(m) for every morsel index in [0, count): num_threads pool tasks
// plus the calling thread (TaskGroup::Wait helps) pull indices from a
// shared atomic cursor, so a slow morsel never strands the rest of its
// preassigned range the way static striping can.
void MorselFor(exec::ThreadPool* pool, int64_t count,
               const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  std::atomic<int64_t> cursor{0};
  auto drain = [&cursor, &fn, count] {
    for (int64_t m = cursor.fetch_add(1, std::memory_order_relaxed);
         m < count; m = cursor.fetch_add(1, std::memory_order_relaxed)) {
      fn(m);
    }
  };
  // Same fork shape as ThreadPool::ParallelFor: the caller drains inline
  // (so a helper that wakes late finds the cursor exhausted and exits)
  // and only min(threads, morsels) - 1 helpers are ever spawned.
  const int64_t helpers =
      std::min<int64_t>(std::max(1, pool->num_threads()), count) - 1;
  if (helpers <= 0) {
    drain();
    return;
  }
  exec::TaskGroup group(pool);
  for (int64_t t = 0; t < helpers; ++t) group.Run(drain);
  drain();
  group.Wait();
}

constexpr std::size_t kMinParallelBuildRows = 1 << 16;

// A morsel-parallel partition build only pays when the machine can
// actually run the passes concurrently: on a single hardware thread the
// histogram/prefix/scatter barriers are pure overhead over the fused
// serial build (which produces the identical layout).
bool UseParallelBuild(std::size_t rows, exec::ThreadPool* pool) {
  static const unsigned hw = std::thread::hardware_concurrency();
  return rows >= kMinParallelBuildRows && pool->num_threads() > 1 && hw > 1;
}

// Probe rows are hashed (and their buckets prefetched) this many at a
// time before any chain is walked — see PartitionedKeyIndex::PrefetchBucket.
constexpr std::size_t kProbeChunk = 256;

std::size_t RoundUpPow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

// Partition count heuristic, sized by the index's actual footprint:
// keys + payload columns, a next-chain slot, and ~1.5 bucket heads per
// build row. While the whole index is cache-resident partitioning
// cannot buy locality, so a single partition skips the routing cost
// entirely; past the threshold, aim for ~256KB per partition so a
// partition's chains stay hot during its probes, capped so huge builds
// don't drown in empty partitions. Exists-only probes (no payload)
// touch so few bytes per build row that cache covers much larger
// indexes before partitioning pays — their threshold is 8x higher.
// The choice never affects output.
std::size_t AutoPartitions(std::size_t build_rows, std::size_t key_arity,
                           std::size_t store_arity) {
  const std::size_t bytes_per_row =
      (key_arity + store_arity) * sizeof(int) + sizeof(uint32_t) +
      sizeof(uint32_t) * 3 / 2;
  const std::size_t footprint = build_rows * bytes_per_row;
  const std::size_t threshold = store_arity == 0 ? (8u << 20) : (1u << 20);
  if (footprint < threshold) return 1;
  return RoundUpPow2(std::min<std::size_t>(256, footprint >> 18));
}

// The build side of a partitioned join: per-partition column-grouped
// copies of the build rows (original order preserved) plus a
// bucket-chained index per partition. Key columns land contiguous per
// local row (dense chain compares), and the caller may ask for a second
// contiguous group of "payload" columns (`store_pos`, e.g. the
// non-shared columns a natural join emits) so output assembly is a
// straight range copy instead of a position-indirected gather.
//
// Two build paths produce bit-identical layouts:
//
//   - serial (below kMinParallelBuildRows or a 1-thread pool): pass A
//     hashes every row once and counts rows per partition; exact-size
//     allocation; pass B scatters keys/payloads with raw cursor writes
//     and threads the bucket chains inline while the hash is still in
//     register — one hash per row, no vector growth, no rehash;
//   - morsel-parallel: pass 1 hashes + per-(morsel, partition)
//     histograms; an exclusive prefix lays partition p's rows out in
//     morsel-then-row order (i.e. original row order); pass 2 scatters
//     keys/payloads/hashes into disjoint slices; pass 3 chains each
//     partition from the scattered hashes.
//
// Both paths place rows within a partition in original row order and
// push-front the chains like the serial KeyIndex, so a partition chain
// enumerates matches in descending original row index — exactly the
// serial KeyIndex order restricted to the partition, which holds every
// row that can match (equal keys hash equally). Neither the path taken
// nor the worker count affects the layout.
class PartitionedKeyIndex {
 public:
  /// Builds the partitioned index over `rel`'s `key_pos` columns,
  /// additionally copying the `store_pos` columns of each row into its
  /// partition as a contiguous payload (pass an empty vector — e.g. for
  /// a semijoin — to move key columns only).
  PartitionedKeyIndex(const DbRelation& rel, const std::vector<int>& key_pos,
                      const std::vector<int>& store_pos,
                      std::size_t num_partitions, std::size_t morsel_rows,
                      exec::ThreadPool* pool,
                      bool force_parallel_build = false)
      : key_pos_(key_pos),
        key_arity_(key_pos.size()),
        store_pos_(store_pos),
        store_arity_(store_pos.size()) {
    const std::size_t rows = rel.size();
    const std::size_t p_count = RoundUpPow2(std::max<std::size_t>(
        1, std::min(num_partitions, rows == 0 ? 1 : rows)));
    log2p_ = std::countr_zero(p_count);
    parts_.resize(p_count);
    if (rows == 0) return;

    const int* data = rel.data().data();
    const std::size_t arity = static_cast<std::size_t>(rel.arity());

    if (force_parallel_build || UseParallelBuild(rows, pool)) {
      BuildParallel(data, rows, arity, morsel_rows, pool);
    } else {
      BuildSerial(data, rows, arity);
    }
  }

  struct Partition {
    // Key columns of each local row, contiguous in key_pos order: chain
    // walks compare against these (dense 4-byte loads, no position
    // indirection) instead of the scattered full rows.
    std::vector<int> keys;
    // store_pos columns of each local row, contiguous: a match's output
    // payload is copied straight out of here.
    std::vector<int> payload;
    std::vector<uint32_t> heads;
    std::vector<uint32_t> next;
    std::size_t mask = 0;
    std::size_t num_rows = 0;
  };

  uint64_t HashProbe(const int* probe_row,
                     const std::vector<int>& probe_pos) const {
    return HashKeyAt(probe_row, probe_pos);
  }

  /// The partition `hash` routes to. Probe loops resolve this once per
  /// probe row and thread the reference through First/NextMatch — the
  /// chain walk then never re-derefs parts_.
  const Partition& PartitionFor(uint64_t hash) const {
    return parts_[PartitionOf(hash)];
  }

  /// True when the index is big enough that bucket-head loads are
  /// likely cache misses — the probe loops only pay for the
  /// hash-a-chunk-and-prefetch dance when it can hide miss latency;
  /// on an L2-resident index it is pure overhead.
  bool PrefetchWorthwhile() const {
    std::size_t bytes = 0;
    for (const Partition& part : parts_) {
      bytes += part.keys.capacity() * sizeof(int) +
               part.payload.capacity() * sizeof(int) +
               (part.heads.capacity() + part.next.capacity()) *
                   sizeof(uint32_t);
    }
    return bytes > (1u << 20);
  }

  /// Warms the cache line of `hash`'s bucket head. Probe loops hash a
  /// chunk of rows and prefetch their buckets before walking any chain,
  /// so the random head loads overlap instead of serializing.
  void PrefetchBucket(uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    const Partition& part = parts_[PartitionOf(hash)];
    if (part.num_rows != 0) {
      __builtin_prefetch(part.heads.data() + (hash & part.mask));
    }
#else
    (void)hash;
#endif
  }

  /// First local row of `part` matching `probe_row` given its
  /// precomputed key hash, or kNoRow. Iterate with NextMatch.
  uint32_t FirstMatch(const Partition& part, uint64_t hash,
                      const int* probe_row,
                      const std::vector<int>& probe_pos) const {
    if (part.num_rows == 0) return kNoRow;
    return NextInChain(part, part.heads[hash & part.mask], probe_row,
                       probe_pos);
  }

  uint32_t NextMatch(const Partition& part, uint32_t local,
                     const int* probe_row,
                     const std::vector<int>& probe_pos) const {
    return NextInChain(part, part.next[local], probe_row, probe_pos);
  }

  /// The contiguous store_pos columns of `local` in `part`.
  const int* Payload(const Partition& part, uint32_t local) const {
    return part.payload.data() +
           static_cast<std::size_t>(local) * store_arity_;
  }

 private:
  // Sizes a partition's bucket table and chain array for its final row
  // count (the serial KeyIndex load factor).
  static void SizeBuckets(Partition* part) {
    std::size_t buckets = 16;
    while (buckets < part->num_rows + (part->num_rows >> 1) + 1) {
      buckets <<= 1;
    }
    part->mask = buckets - 1;
    part->heads.assign(buckets, kNoRow);
    part->next.assign(part->num_rows, kNoRow);
  }

  void BuildSerial(const int* data, std::size_t rows, std::size_t arity) {
    if (parts_.size() == 1) {
      // Single partition: sizes are known up front, so one pass does it
      // all — the same hash+2-chain-writes per row as the serial
      // KeyIndex, plus the key/payload copy.
      Partition& part = parts_[0];
      part.num_rows = rows;
      part.keys.resize(rows * key_arity_);
      part.payload.resize(rows * store_arity_);
      SizeBuckets(&part);
      const int* row = data;
      for (std::size_t i = 0; i < rows; ++i, row += arity) {
        int* key_out = part.keys.data() + i * key_arity_;
        for (std::size_t j = 0; j < key_arity_; ++j) {
          key_out[j] = row[key_pos_[j]];
        }
        int* pay_out = part.payload.data() + i * store_arity_;
        for (std::size_t j = 0; j < store_arity_; ++j) {
          pay_out[j] = row[store_pos_[j]];
        }
        const std::size_t b = HashKeyAt(row, key_pos_) & part.mask;
        part.next[i] = part.heads[b];
        part.heads[b] = static_cast<uint32_t>(i);
      }
      return;
    }
    // Pass A: one hash per row (kept for pass B), exact per-partition
    // row counts.
    std::vector<uint64_t> row_hash(rows);
    const int* row = data;
    for (std::size_t i = 0; i < rows; ++i, row += arity) {
      const uint64_t h = HashKeyAt(row, key_pos_);
      row_hash[i] = h;
      ++parts_[PartitionOf(h)].num_rows;
    }
    for (Partition& part : parts_) {
      part.keys.resize(part.num_rows * key_arity_);
      part.payload.resize(part.num_rows * store_arity_);
      SizeBuckets(&part);
      part.num_rows = 0;  // reused as the scatter cursor below
    }
    // Pass B: scatter + chain in one sweep. Scanning i upward makes
    // partition-local order == original row order, and push-front here
    // is exactly what BuildChains would do afterwards.
    row = data;
    for (std::size_t i = 0; i < rows; ++i, row += arity) {
      const uint64_t h = row_hash[i];
      Partition& part = parts_[PartitionOf(h)];
      const std::size_t local = part.num_rows++;
      int* key_out = part.keys.data() + local * key_arity_;
      for (std::size_t j = 0; j < key_arity_; ++j) {
        key_out[j] = row[key_pos_[j]];
      }
      int* pay_out = part.payload.data() + local * store_arity_;
      for (std::size_t j = 0; j < store_arity_; ++j) {
        pay_out[j] = row[store_pos_[j]];
      }
      const std::size_t b = h & part.mask;
      part.next[local] = part.heads[b];
      part.heads[b] = static_cast<uint32_t>(local);
    }
  }

  void BuildParallel(const int* data, std::size_t rows, std::size_t arity,
                     std::size_t morsel_rows, exec::ThreadPool* pool) {
    const std::size_t p_count = parts_.size();
    const std::size_t morsel = std::max<std::size_t>(1, morsel_rows);
    const int64_t num_morsels =
        static_cast<int64_t>((rows + morsel - 1) / morsel);

    // Pass 1: hashes + per-(morsel, partition) histogram.
    std::vector<uint64_t> row_hash(rows);
    std::vector<uint32_t> cell(
        static_cast<std::size_t>(num_morsels) * p_count, 0);
    MorselFor(pool, num_morsels, [&](int64_t m) {
      const std::size_t begin = static_cast<std::size_t>(m) * morsel;
      const std::size_t end = std::min(begin + morsel, rows);
      uint32_t* counts = cell.data() + static_cast<std::size_t>(m) * p_count;
      for (std::size_t i = begin; i < end; ++i) {
        const uint64_t h = HashKeyAt(data + i * arity, key_pos_);
        row_hash[i] = h;
        ++counts[PartitionOf(h)];
      }
    });

    // Exclusive prefix over (partition, morsel): cell[m * P + p] becomes
    // the first local slot for morsel m's rows of partition p.
    std::vector<std::size_t> hash_base(p_count);
    std::size_t total = 0;
    for (std::size_t p = 0; p < p_count; ++p) {
      uint32_t running = 0;
      for (int64_t m = 0; m < num_morsels; ++m) {
        uint32_t* slot =
            cell.data() + static_cast<std::size_t>(m) * p_count + p;
        const uint32_t count = *slot;
        *slot = running;
        running += count;
      }
      Partition& part = parts_[p];
      part.num_rows = running;
      part.keys.resize(static_cast<std::size_t>(running) * key_arity_);
      part.payload.resize(static_cast<std::size_t>(running) * store_arity_);
      hash_base[p] = total;
      total += running;
    }

    // Pass 2: scatter keys, payloads, and hashes. Each task owns its
    // morsel's cursor cells, and the precomputed offsets make every
    // (morsel, partition) slice disjoint, so the writes race with
    // nothing and land in deterministic slots. Hashes go to a transient
    // partition-major array so pass 3 never rehashes.
    std::vector<uint64_t> scattered_hash(rows);
    MorselFor(pool, num_morsels, [&](int64_t m) {
      const std::size_t begin = static_cast<std::size_t>(m) * morsel;
      const std::size_t end = std::min(begin + morsel, rows);
      uint32_t* cursor = cell.data() + static_cast<std::size_t>(m) * p_count;
      for (std::size_t i = begin; i < end; ++i) {
        const int* row = data + i * arity;
        const uint64_t h = row_hash[i];
        const std::size_t p = PartitionOf(h);
        Partition& part = parts_[p];
        const std::size_t local = cursor[p]++;
        int* key_out = part.keys.data() + local * key_arity_;
        for (std::size_t j = 0; j < key_arity_; ++j) {
          key_out[j] = row[key_pos_[j]];
        }
        int* pay_out = part.payload.data() + local * store_arity_;
        for (std::size_t j = 0; j < store_arity_; ++j) {
          pay_out[j] = row[store_pos_[j]];
        }
        scattered_hash[hash_base[p] + local] = h;
      }
    });

    // Pass 3: bucket chains per partition, local order, push-front (the
    // serial KeyIndex recipe, so chain order matches it exactly).
    MorselFor(pool, static_cast<int64_t>(p_count), [&](int64_t pi) {
      Partition& part = parts_[static_cast<std::size_t>(pi)];
      SizeBuckets(&part);
      const uint64_t* hashes =
          scattered_hash.data() + hash_base[static_cast<std::size_t>(pi)];
      for (std::size_t j = 0; j < part.num_rows; ++j) {
        const std::size_t b = hashes[j] & part.mask;
        part.next[j] = part.heads[b];
        part.heads[b] = static_cast<uint32_t>(j);
      }
    });
  }

  std::size_t PartitionOf(uint64_t hash) const {
    // Top bits: the KeyIndex-style bucket mask uses the low bits, so
    // partitioning must not alias them or every partition would occupy
    // only 1/P of its buckets.
    return log2p_ == 0 ? 0 : static_cast<std::size_t>(hash >> (64 - log2p_));
  }

  uint32_t NextInChain(const Partition& part, uint32_t candidate,
                       const int* probe_row,
                       const std::vector<int>& probe_pos) const {
    if (key_arity_ == 1) {
      // Single-attribute joins (the common CSP case) walk the chain with
      // two dense loads per step — possible only because keys are
      // stored contiguously per partition.
      const int probe_key = probe_row[probe_pos[0]];
      const int* keys = part.keys.data();
      while (candidate != kNoRow && keys[candidate] != probe_key) {
        candidate = part.next[candidate];
      }
      return candidate;
    }
    while (candidate != kNoRow) {
      const int* key =
          part.keys.data() + static_cast<std::size_t>(candidate) * key_arity_;
      bool equal = true;
      for (std::size_t j = 0; j < key_arity_; ++j) {
        if (probe_row[probe_pos[j]] != key[j]) {
          equal = false;
          break;
        }
      }
      if (equal) return candidate;
      candidate = part.next[candidate];
    }
    return kNoRow;
  }

  const std::vector<int>& key_pos_;
  std::size_t key_arity_;
  const std::vector<int>& store_pos_;
  std::size_t store_arity_;
  int log2p_ = 0;
  std::vector<Partition> parts_;
};

// Stripe geometry for a probe side of `rows` rows: contiguous stripes of
// equal size (last one ragged), about 4 per worker so stealing can even
// out skewed match densities.
std::size_t StripeSize(std::size_t rows, int num_threads) {
  const std::size_t stripes =
      std::max<std::size_t>(1, static_cast<std::size_t>(num_threads) * 4);
  return std::max<std::size_t>(1, (rows + stripes - 1) / stripes);
}

// A grow-by-doubling flat int buffer for morsel outputs. Unlike
// vector::resize it never value-initializes the tail — growth is an
// allocation plus a copy of the live prefix, so emitting N ints costs
// ~N writes instead of ~3N (write + two memset passes over doubled
// capacity).
struct RowBuffer {
  std::unique_ptr<int[]> data;
  std::size_t len = 0;  // ints written
  std::size_t cap = 0;  // ints allocated

  // Returns the write cursor with room for at least `need` more ints.
  int* Room(std::size_t need) {
    if (len + need > cap) Grow(len + need);
    return data.get() + len;
  }

  void Grow(std::size_t need) {
    std::size_t new_cap = std::max<std::size_t>(cap * 2, 1024);
    while (new_cap < need) new_cap *= 2;
    std::unique_ptr<int[]> bigger(new int[new_cap]);
    std::copy(data.get(), data.get() + len, bigger.get());
    data = std::move(bigger);
    cap = new_cap;
  }
};

// Concatenates per-stripe row buffers (each a flat arity-strided int
// array) into `out` in stripe order — the striped kernels' variant.
void ConcatBuffers(const std::vector<std::vector<int>>& buffers, int arity,
                   DbRelation* out) {
  std::size_t total_rows = 0;
  for (const std::vector<int>& buf : buffers) {
    total_rows += buf.size() / static_cast<std::size_t>(arity);
  }
  out->Reserve(total_rows);
  for (const std::vector<int>& buf : buffers) {
    out->AppendRowsUnchecked(buf.data(),
                             buf.size() / static_cast<std::size_t>(arity));
  }
}

// Concatenates per-chunk row buffers (each a flat arity-strided int
// array) into `out` in chunk order.
void ConcatBuffers(const std::vector<RowBuffer>& buffers, int arity,
                   DbRelation* out) {
  std::size_t total_rows = 0;
  for (const RowBuffer& buf : buffers) {
    total_rows += buf.len / static_cast<std::size_t>(arity);
  }
  out->Reserve(total_rows);
  for (const RowBuffer& buf : buffers) {
    out->AppendRowsUnchecked(buf.data.get(),
                             buf.len / static_cast<std::size_t>(arity));
  }
}

}  // namespace

DbRelation NaturalJoinParallel(const DbRelation& r, const DbRelation& s,
                               const ParallelDbOptions& options) {
  exec::ThreadPool* pool = ResolvePool(options);
  if (pool->num_threads() <= 1 || r.size() < options.min_probe_rows ||
      s.empty()) {
    return NaturalJoin(r, s);
  }
  CSPDB_TRACE_SPAN("db.natural_join_parallel");
  CSPDB_COUNT("db.joins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);
  std::vector<int> schema = r.schema();
  std::vector<int> s_extra_pos;
  for (std::size_t i = 0; i < s.schema().size(); ++i) {
    if (r.AttributePosition(s.schema()[i]) < 0) {
      schema.push_back(s.schema()[i]);
      s_extra_pos.push_back(static_cast<int>(i));
    }
  }
  const int r_arity = r.arity();
  const int out_arity = static_cast<int>(schema.size());
  DbRelation out(std::move(schema));

  const std::size_t morsel = std::max<std::size_t>(1, options.morsel_rows);
  const std::size_t partitions =
      options.num_partitions != 0
          ? options.num_partitions
          : AutoPartitions(s.size(), s_pos.size(), s_extra_pos.size());
  PartitionedKeyIndex index(s, s_pos, s_extra_pos, partitions, morsel, pool,
                            options.force_parallel_build);

  const std::size_t n_extra = s_extra_pos.size();
  const int64_t num_morsels =
      static_cast<int64_t>((r.size() + morsel - 1) / morsel);
  std::vector<RowBuffer> buffers(static_cast<std::size_t>(num_morsels));
  const int* r_data = r.data().data();
  const bool chunked = index.PrefetchWorthwhile();
  MorselFor(pool, num_morsels, [&](int64_t m) {
    RowBuffer& buf = buffers[static_cast<std::size_t>(m)];
    const std::size_t begin = static_cast<std::size_t>(m) * morsel;
    const std::size_t end = std::min(begin + morsel, r.size());
    auto probe_one = [&](std::size_t i, uint64_t hash) {
      const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
      const PartitionedKeyIndex::Partition& part = index.PartitionFor(hash);
      for (uint32_t match = index.FirstMatch(part, hash, rrow, r_pos);
           match != kNoRow; match = index.NextMatch(part, match, rrow, r_pos)) {
        // The match's payload is the s-extra columns, already contiguous
        // in output order: the out row is two straight range copies into
        // the raw write cursor, no per-column gather.
        int* dst = buf.Room(static_cast<std::size_t>(out_arity));
        std::copy(rrow, rrow + r_arity, dst);
        const int* payload = index.Payload(part, match);
        std::copy(payload, payload + n_extra, dst + r_arity);
        buf.len += static_cast<std::size_t>(out_arity);
      }
    };
    if (chunked) {
      uint64_t hashes[kProbeChunk];
      for (std::size_t cb = begin; cb < end; cb += kProbeChunk) {
        const std::size_t ce = std::min(cb + kProbeChunk, end);
        for (std::size_t i = cb; i < ce; ++i) {
          const uint64_t h = index.HashProbe(
              r_data + i * static_cast<std::size_t>(r_arity), r_pos);
          hashes[i - cb] = h;
          index.PrefetchBucket(h);
        }
        for (std::size_t i = cb; i < ce; ++i) probe_one(i, hashes[i - cb]);
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        probe_one(i, index.HashProbe(
                         r_data + i * static_cast<std::size_t>(r_arity),
                         r_pos));
      }
    }
  });
  // Morsel-ordered concatenation == probe-row order == serial row order.
  ConcatBuffers(buffers, out_arity, &out);
  CSPDB_COUNT_N("db.join.rows_out", static_cast<int64_t>(out.size()));
  CSPDB_GAUGE_MAX("db.join.peak_rows", static_cast<int64_t>(out.size()));
  return out;
}

DbRelation SemijoinParallel(const DbRelation& r, const DbRelation& s,
                            const ParallelDbOptions& options) {
  exec::ThreadPool* pool = ResolvePool(options);
  if (pool->num_threads() <= 1 || r.size() < options.min_probe_rows ||
      s.empty()) {
    return Semijoin(r, s);
  }
  CSPDB_COUNT("db.semijoins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);
  DbRelation out(r.schema());
  const int r_arity = r.arity();

  const std::size_t morsel = std::max<std::size_t>(1, options.morsel_rows);
  const std::size_t partitions =
      options.num_partitions != 0
          ? options.num_partitions
          : AutoPartitions(s.size(), s_pos.size(), 0);
  const std::vector<int> no_payload;  // exists-only probe: keys suffice
  PartitionedKeyIndex index(s, s_pos, no_payload, partitions, morsel, pool,
                            options.force_parallel_build);

  const int64_t num_morsels =
      static_cast<int64_t>((r.size() + morsel - 1) / morsel);
  std::vector<RowBuffer> buffers(static_cast<std::size_t>(num_morsels));
  const int* r_data = r.data().data();
  const bool chunked = index.PrefetchWorthwhile();
  MorselFor(pool, num_morsels, [&](int64_t m) {
    RowBuffer& buf = buffers[static_cast<std::size_t>(m)];
    const std::size_t begin = static_cast<std::size_t>(m) * morsel;
    const std::size_t end = std::min(begin + morsel, r.size());
    auto probe_one = [&](std::size_t i, uint64_t hash) {
      const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
      const PartitionedKeyIndex::Partition& part = index.PartitionFor(hash);
      if (index.FirstMatch(part, hash, rrow, r_pos) != kNoRow) {
        std::copy(rrow, rrow + r_arity,
                  buf.Room(static_cast<std::size_t>(r_arity)));
        buf.len += static_cast<std::size_t>(r_arity);
      }
    };
    if (chunked) {
      uint64_t hashes[kProbeChunk];
      for (std::size_t cb = begin; cb < end; cb += kProbeChunk) {
        const std::size_t ce = std::min(cb + kProbeChunk, end);
        for (std::size_t i = cb; i < ce; ++i) {
          const uint64_t h = index.HashProbe(
              r_data + i * static_cast<std::size_t>(r_arity), r_pos);
          hashes[i - cb] = h;
          index.PrefetchBucket(h);
        }
        for (std::size_t i = cb; i < ce; ++i) probe_one(i, hashes[i - cb]);
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        probe_one(i, index.HashProbe(
                         r_data + i * static_cast<std::size_t>(r_arity),
                         r_pos));
      }
    }
  });
  ConcatBuffers(buffers, r_arity, &out);
  CSPDB_COUNT_N("db.semijoin.rows_removed",
                static_cast<int64_t>(r.size() - out.size()));
  return out;
}

DbRelation NaturalJoinStriped(const DbRelation& r, const DbRelation& s,
                              const ParallelDbOptions& options) {
  exec::ThreadPool* pool = ResolvePool(options);
  if (pool->num_threads() <= 1 || r.size() < options.min_probe_rows ||
      s.empty()) {
    return NaturalJoin(r, s);
  }
  CSPDB_TRACE_SPAN("db.natural_join_striped");
  CSPDB_COUNT("db.joins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);
  std::vector<int> schema = r.schema();
  std::vector<int> s_extra_pos;
  for (std::size_t i = 0; i < s.schema().size(); ++i) {
    if (r.AttributePosition(s.schema()[i]) < 0) {
      schema.push_back(s.schema()[i]);
      s_extra_pos.push_back(static_cast<int>(i));
    }
  }
  const int r_arity = r.arity();
  const int s_arity = s.arity();
  const int out_arity = static_cast<int>(schema.size());
  DbRelation out(std::move(schema));

  // Build serially (same index, hence same chain order, as the serial
  // kernel), probe in stripes.
  KeyIndex index(s, s_pos);
  const std::size_t stripe = StripeSize(r.size(), pool->num_threads());
  const std::size_t num_stripes = (r.size() + stripe - 1) / stripe;
  std::vector<std::vector<int>> buffers(num_stripes);
  const int* r_data = r.data().data();
  const int* s_data = s.data().data();
  pool->ParallelFor(
      0, static_cast<int64_t>(num_stripes), 1,
      [&](int64_t lo, int64_t hi) {
        std::vector<int> out_row(static_cast<std::size_t>(out_arity));
        for (int64_t si = lo; si < hi; ++si) {
          std::vector<int>& buf = buffers[static_cast<std::size_t>(si)];
          const std::size_t begin = static_cast<std::size_t>(si) * stripe;
          const std::size_t end = std::min(begin + stripe, r.size());
          for (std::size_t i = begin; i < end; ++i) {
            const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
            for (uint32_t m = index.FirstMatch(rrow, r_pos); m != kNoRow;
                 m = index.NextMatch(m, rrow, r_pos)) {
              const int* srow =
                  s_data + m * static_cast<std::size_t>(s_arity);
              std::copy(rrow, rrow + r_arity, out_row.begin());
              for (std::size_t k = 0; k < s_extra_pos.size(); ++k) {
                out_row[static_cast<std::size_t>(r_arity) + k] =
                    srow[s_extra_pos[k]];
              }
              buf.insert(buf.end(), out_row.begin(), out_row.end());
            }
          }
        }
      });
  // Stripe-ordered concatenation == probe-row order == serial row order.
  ConcatBuffers(buffers, out_arity, &out);
  CSPDB_COUNT_N("db.join.rows_out", static_cast<int64_t>(out.size()));
  CSPDB_GAUGE_MAX("db.join.peak_rows", static_cast<int64_t>(out.size()));
  return out;
}

DbRelation SemijoinStriped(const DbRelation& r, const DbRelation& s,
                           const ParallelDbOptions& options) {
  exec::ThreadPool* pool = ResolvePool(options);
  if (pool->num_threads() <= 1 || r.size() < options.min_probe_rows ||
      s.empty()) {
    return Semijoin(r, s);
  }
  CSPDB_COUNT("db.semijoins");
  std::vector<int> r_pos, s_pos;
  SharedPositions(r, s, &r_pos, &s_pos);
  DbRelation out(r.schema());
  KeyIndex index(s, s_pos);
  const int r_arity = r.arity();
  const std::size_t stripe = StripeSize(r.size(), pool->num_threads());
  const std::size_t num_stripes = (r.size() + stripe - 1) / stripe;
  std::vector<std::vector<int>> buffers(num_stripes);
  const int* r_data = r.data().data();
  pool->ParallelFor(
      0, static_cast<int64_t>(num_stripes), 1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t si = lo; si < hi; ++si) {
          std::vector<int>& buf = buffers[static_cast<std::size_t>(si)];
          const std::size_t begin = static_cast<std::size_t>(si) * stripe;
          const std::size_t end = std::min(begin + stripe, r.size());
          for (std::size_t i = begin; i < end; ++i) {
            const int* rrow = r_data + i * static_cast<std::size_t>(r_arity);
            if (index.FirstMatch(rrow, r_pos) != kNoRow) {
              buf.insert(buf.end(), rrow, rrow + r_arity);
            }
          }
        }
      });
  ConcatBuffers(buffers, r_arity, &out);
  CSPDB_COUNT_N("db.semijoin.rows_removed",
                static_cast<int64_t>(r.size() - out.size()));
  return out;
}

void FullReducerParallel(const JoinForest& forest,
                         std::vector<DbRelation>* relations,
                         const ParallelDbOptions& options,
                         YannakakisStats* stats) {
  exec::ThreadPool* pool = ResolvePool(options);
  const int n = static_cast<int>(relations->size());
  if (pool->num_threads() <= 1 ||
      relations->size() < options.min_forest_nodes) {
    FullReducer(forest, relations, stats);
    return;
  }
  CSPDB_TIMER_SCOPE("db.full_reducer_parallel");
  if (stats != nullptr) {
    stats->input_rows.clear();
    for (const DbRelation& r : *relations) {
      stats->input_rows.push_back(static_cast<int64_t>(r.size()));
    }
  }
  std::vector<std::vector<int>> children(n);
  for (int e = 0; e < n; ++e) {
    if (forest.parent[e] >= 0) children[forest.parent[e]].push_back(e);
  }
  std::atomic<int64_t> passes{0};
  std::atomic<int64_t> removed{0};
  // Semijoins into the same parent commute exactly (Semijoin keeps probe
  // rows in order), so a per-parent mutex is enough for determinism.
  // Leaf locks: Semijoin acquires nothing, so no ordering constraint.
  std::vector<std::unique_ptr<util::Mutex>> node_mu(n);
  for (auto& mu : node_mu) mu = std::make_unique<util::Mutex>();
  auto reduce = [&](int target, int with) {
    util::MutexLock lock(*node_mu[target]);
    const int64_t before = static_cast<int64_t>((*relations)[target].size());
    (*relations)[target] =
        Semijoin((*relations)[target], (*relations)[with]);
    passes.fetch_add(1, std::memory_order_relaxed);
    removed.fetch_add(
        before - static_cast<int64_t>((*relations)[target].size()),
        std::memory_order_relaxed);
  };

  // Upward pass: node e may fold into its parent once all of e's own
  // children have folded into e.
  {
    std::vector<std::atomic<int>> pending(n);
    for (int e = 0; e < n; ++e) {
      pending[e].store(static_cast<int>(children[e].size()),
                       std::memory_order_relaxed);
    }
    exec::TaskGroup group(pool);
    std::function<void(int)> fold_up = [&](int e) {
      const int f = forest.parent[e];
      if (f < 0) return;
      reduce(f, e);
      if (pending[f].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        group.Run([&fold_up, f] { fold_up(f); });
      }
    };
    for (int e = 0; e < n; ++e) {
      if (children[e].empty()) {
        group.Run([&fold_up, e] { fold_up(e); });
      }
    }
    group.Wait();
  }

  // Downward pass: fan out from the roots; each task writes only its own
  // node and reads its (already final) parent — lock-free.
  {
    exec::TaskGroup group(pool);
    std::function<void(int)> fold_down = [&](int e) {
      for (int c : children[e]) {
        group.Run([&, c, e] {
          const int64_t before =
              static_cast<int64_t>((*relations)[c].size());
          (*relations)[c] = Semijoin((*relations)[c], (*relations)[e]);
          passes.fetch_add(1, std::memory_order_relaxed);
          removed.fetch_add(
              before - static_cast<int64_t>((*relations)[c].size()),
              std::memory_order_relaxed);
          fold_down(c);
        });
      }
    };
    for (int e = 0; e < n; ++e) {
      if (forest.parent[e] < 0) fold_down(e);
    }
    group.Wait();
  }

  if (stats != nullptr) {
    stats->semijoin_passes += passes.load(std::memory_order_relaxed);
    stats->rows_removed += removed.load(std::memory_order_relaxed);
    stats->reduced_rows.clear();
    for (const DbRelation& r : *relations) {
      const int64_t rows = static_cast<int64_t>(r.size());
      stats->reduced_rows.push_back(rows);
      stats->peak_reduced_rows = std::max(stats->peak_reduced_rows, rows);
    }
  }
}

bool AcyclicJoinNonemptyParallel(const JoinForest& forest,
                                 std::vector<DbRelation> relations,
                                 const ParallelDbOptions& options) {
  if (relations.empty()) return true;
  FullReducerParallel(forest, &relations, options);
  for (const DbRelation& r : relations) {
    if (r.empty()) return false;
  }
  return true;
}

}  // namespace cspdb
