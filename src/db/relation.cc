#include "db/relation.h"

#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace cspdb {

DbRelation::DbRelation(std::vector<int> schema)
    : schema_(std::move(schema)) {
  std::unordered_set<int> seen;
  for (int a : schema_) {
    CSPDB_CHECK_MSG(seen.insert(a).second,
                    "duplicate attribute in relation schema");
  }
}

void DbRelation::AddRow(Tuple row) {
  CSPDB_CHECK_MSG(row.size() == schema_.size(), "row arity mismatch");
  if (row_set_.insert(row).second) rows_.push_back(std::move(row));
}

int DbRelation::AttributePosition(int attr) const {
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

std::string DbRelation::DebugString() const {
  std::string out = "DbRelation[";
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (i > 0) out += ",";
    out += "a" + std::to_string(schema_[i]);
  }
  out += "] (" + std::to_string(rows_.size()) + " rows)\n";
  for (const Tuple& r : rows_) {
    out += "  (";
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(r[i]);
    }
    out += ")\n";
  }
  return out;
}

}  // namespace cspdb
