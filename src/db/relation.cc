#include "db/relation.h"

#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace cspdb {
namespace {

constexpr std::size_t kMinIndexCapacity = 16;

// Smallest power of two >= n (and >= kMinIndexCapacity).
std::size_t IndexCapacityFor(std::size_t rows) {
  // Row counts are capped below 2^32, so the doubling cannot overflow a
  // 64-bit capacity; the audit guards the cap against future changes.
  CSPDB_DCHECK(rows < 0xffffffffull);
  // Target load factor ~0.7.
  std::size_t needed = rows + (rows >> 1) + 1;
  std::size_t cap = kMinIndexCapacity;
  while (cap < needed) cap <<= 1;
  return cap;
}

}  // namespace

DbRelation::DbRelation(std::vector<int> schema)
    : schema_(std::move(schema)) {
  std::unordered_set<int> seen;
  for (int a : schema_) {
    CSPDB_CHECK_MSG(seen.insert(a).second,
                    "duplicate attribute in relation schema");
  }
}

std::size_t DbRelation::HashRow(const int* row) const {
  std::size_t h = 1469598103934665603ull;
  for (int i = 0; i < arity(); ++i) {
    h ^= static_cast<std::size_t>(row[i]) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

bool DbRelation::RowEquals(std::size_t idx, const int* row) const {
  const int* stored = data_.data() + idx * static_cast<std::size_t>(arity());
  for (int i = 0; i < arity(); ++i) {
    if (stored[i] != row[i]) return false;
  }
  return true;
}

void DbRelation::RehashInto(std::size_t capacity) const {
  // The open-addressed probe sequence masks with capacity-1: a zero
  // capacity would underflow the mask and a non-power-of-two would skip
  // slots, so both are hard errors rather than silent corruption.
  CSPDB_CHECK_MSG(capacity >= kMinIndexCapacity &&
                      (capacity & (capacity - 1)) == 0,
                  "row-hash capacity must be a power of two >= 16");
  CSPDB_CHECK_MSG(num_rows_ + (num_rows_ >> 1) < capacity,
                  "row-hash capacity too small for row count");
  slots_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::size_t r = 0; r < num_rows_; ++r) {
    std::size_t i =
        HashRow(data_.data() + r * static_cast<std::size_t>(arity())) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<uint32_t>(r) + 1;
  }
}

void DbRelation::EnsureIndex() const {
  if (index_valid_ && slots_.size() >= IndexCapacityFor(num_rows_)) return;
  RehashInto(IndexCapacityFor(num_rows_));
  index_valid_ = true;
}

bool DbRelation::InsertUnique(const int* row) {
  CSPDB_CHECK_MSG(num_rows_ < 0xfffffffeu, "relation exceeds 2^32-2 rows");
  EnsureIndex();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = HashRow(row) & mask;
  while (slots_[i] != 0) {
    if (RowEquals(slots_[i] - 1, row)) return false;
    i = (i + 1) & mask;
  }
  slots_[i] = static_cast<uint32_t>(num_rows_) + 1;
  data_.insert(data_.end(), row, row + arity());
  ++num_rows_;
  // Grow before the load factor degrades lookups.
  if (slots_.size() < IndexCapacityFor(num_rows_)) {
    RehashInto(IndexCapacityFor(num_rows_));
  }
  return true;
}

void DbRelation::AddRow(const Tuple& row) {
  CSPDB_CHECK_MSG(static_cast<int>(row.size()) == arity(),
                  "row arity mismatch");
  InsertUnique(row.data());
}

void DbRelation::AddRow(const int* row) { InsertUnique(row); }

void DbRelation::AppendRowUnchecked(const int* row) {
  CSPDB_CHECK_MSG(num_rows_ < 0xfffffffeu, "relation exceeds 2^32-2 rows");
  data_.insert(data_.end(), row, row + arity());
  ++num_rows_;
  index_valid_ = false;
}

void DbRelation::AppendRowsUnchecked(const int* rows, std::size_t num_rows) {
  if (num_rows == 0) return;
  CSPDB_CHECK_MSG(num_rows_ + num_rows < 0xfffffffeu,
                  "relation exceeds 2^32-2 rows");
  data_.insert(data_.end(), rows,
               rows + num_rows * static_cast<std::size_t>(arity()));
  num_rows_ += num_rows;
  index_valid_ = false;
}

void DbRelation::PrepareIndex() const { EnsureIndex(); }

bool DbRelation::HasRow(const Tuple& row) const {
  CSPDB_CHECK_MSG(static_cast<int>(row.size()) == arity(),
                  "row arity mismatch");
  return HasRow(row.data());
}

bool DbRelation::HasRow(const int* row) const {
  if (num_rows_ == 0) return false;
  EnsureIndex();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = HashRow(row) & mask;
  while (slots_[i] != 0) {
    if (RowEquals(slots_[i] - 1, row)) return true;
    i = (i + 1) & mask;
  }
  return false;
}

void DbRelation::Reserve(std::size_t rows) {
  data_.reserve(rows * static_cast<std::size_t>(arity()));
}

int DbRelation::AttributePosition(int attr) const {
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

std::string DbRelation::DebugString() const {
  std::string out = "DbRelation[";
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (i > 0) out += ",";
    out += "a" + std::to_string(schema_[i]);
  }
  out += "] (" + std::to_string(num_rows_) + " rows)\n";
  for (auto r : rows()) {
    out += "  (";
    for (int i = 0; i < r.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(r[i]);
    }
    out += ")\n";
  }
  return out;
}

}  // namespace cspdb
