// Frozen copy of the pre-optimization db/algebra.cc operators, retargeted
// at ReferenceRelation (the pre-change storage layout). See
// reference_join.h.

#include "db/reference_join.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace cspdb {
namespace {

void ReferenceSharedPositions(const ReferenceRelation& r,
                              const ReferenceRelation& s,
                              std::vector<int>* r_pos,
                              std::vector<int>* s_pos) {
  r_pos->clear();
  s_pos->clear();
  for (std::size_t i = 0; i < r.schema.size(); ++i) {
    int p = s.AttributePosition(r.schema[i]);
    if (p >= 0) {
      r_pos->push_back(static_cast<int>(i));
      s_pos->push_back(p);
    }
  }
}

Tuple ReferenceKeyAt(const Tuple& row, const std::vector<int>& positions) {
  Tuple key;
  key.reserve(positions.size());
  for (int p : positions) key.push_back(row[p]);
  return key;
}

}  // namespace

ReferenceRelation ToReferenceRelation(const DbRelation& r) {
  ReferenceRelation out(r.schema());
  for (std::size_t i = 0; i < r.size(); ++i) {
    out.AddRow(r.row(i).ToTuple());
  }
  return out;
}

bool SameRows(const DbRelation& r, const ReferenceRelation& ref) {
  if (r.schema() != ref.schema) return false;
  if (r.size() != ref.rows.size()) return false;
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (ref.row_set.count(r.row(i).ToTuple()) == 0) return false;
  }
  return true;
}

ReferenceRelation ReferenceNaturalJoin(const ReferenceRelation& r,
                                       const ReferenceRelation& s) {
  std::vector<int> r_pos, s_pos;
  ReferenceSharedPositions(r, s, &r_pos, &s_pos);

  // Result schema: r's schema then s's non-shared attributes.
  std::vector<int> schema = r.schema;
  std::vector<int> s_extra_pos;
  for (std::size_t i = 0; i < s.schema.size(); ++i) {
    if (r.AttributePosition(s.schema[i]) < 0) {
      schema.push_back(s.schema[i]);
      s_extra_pos.push_back(static_cast<int>(i));
    }
  }
  ReferenceRelation out(std::move(schema));

  // Hash s on the shared key.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
  for (const Tuple& row : s.rows) {
    index[ReferenceKeyAt(row, s_pos)].push_back(&row);
  }
  for (const Tuple& row : r.rows) {
    auto it = index.find(ReferenceKeyAt(row, r_pos));
    if (it == index.end()) continue;
    for (const Tuple* srow : it->second) {
      Tuple combined = row;
      for (int p : s_extra_pos) combined.push_back((*srow)[p]);
      out.AddRow(std::move(combined));
    }
  }
  return out;
}

ReferenceRelation ReferenceProject(const ReferenceRelation& r,
                                   const std::vector<int>& attrs) {
  std::vector<int> positions;
  positions.reserve(attrs.size());
  for (int a : attrs) {
    int p = r.AttributePosition(a);
    CSPDB_CHECK_MSG(p >= 0, "projection attribute not in schema");
    positions.push_back(p);
  }
  ReferenceRelation out(attrs);
  for (const Tuple& row : r.rows) out.AddRow(ReferenceKeyAt(row, positions));
  return out;
}

ReferenceRelation ReferenceSemijoin(const ReferenceRelation& r,
                                    const ReferenceRelation& s) {
  std::vector<int> r_pos, s_pos;
  ReferenceSharedPositions(r, s, &r_pos, &s_pos);
  TupleSet keys;
  for (const Tuple& row : s.rows) keys.insert(ReferenceKeyAt(row, s_pos));
  ReferenceRelation out(r.schema);
  for (const Tuple& row : r.rows) {
    if (keys.count(ReferenceKeyAt(row, r_pos)) > 0) out.AddRow(row);
  }
  return out;
}

ReferenceRelation ReferenceJoinAll(
    const std::vector<ReferenceRelation>& relations, int64_t* peak_rows) {
  CSPDB_CHECK(!relations.empty());
  ReferenceRelation acc = relations[0];
  int64_t peak = static_cast<int64_t>(acc.size());
  for (std::size_t i = 1; i < relations.size(); ++i) {
    acc = ReferenceNaturalJoin(acc, relations[i]);
    peak = std::max(peak, static_cast<int64_t>(acc.size()));
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  return acc;
}

}  // namespace cspdb
