// Conjunctive queries, their evaluation (as join evaluation), and the
// canonical database D^Q (paper, Section 2).

#ifndef CSPDB_DB_CONJUNCTIVE_QUERY_H_
#define CSPDB_DB_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "db/relation.h"
#include "relational/structure.h"

namespace cspdb {

/// One subgoal R(x_1, ..., x_k) of a conjunctive-query body. Arguments are
/// query-variable ids; repeats are allowed.
struct Atom {
  std::string predicate;
  std::vector<int> args;
};

/// A conjunctive query written as a rule
///   Q(X_{h1}, ..., X_{hn}) :- body.
/// Variables are 0..num_variables-1; `head` lists the distinguished
/// variables (repeats allowed); every variable in `head` and in each
/// atom must be < num_variables.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery(int num_variables, std::vector<int> head,
                   std::vector<Atom> body);

  int num_variables() const { return num_variables_; }
  const std::vector<int>& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }

  /// The vocabulary of the body predicates (in first-occurrence order,
  /// with arities taken from the first occurrence; consistent arity is
  /// checked).
  const Vocabulary& body_vocabulary() const { return body_vocabulary_; }

  /// The canonical database D^Q: domain = the query's variables, one fact
  /// per subgoal, plus a fresh unary predicate "__P<i>" holding the i-th
  /// distinguished variable (paper, Section 2).
  Structure CanonicalDatabase() const;

  /// The body of the query as a structure over body_vocabulary() (the
  /// canonical database *without* the head markers). Homomorphisms from
  /// this structure into a database are exactly the satisfying
  /// assignments.
  Structure BodyStructure() const;

  /// The Boolean query phi_A of a structure A (paper, Proposition 2.3):
  /// one existential variable per element, one subgoal per fact, no
  /// distinguished variables.
  static ConjunctiveQuery FromStructure(const Structure& a);

  /// Rule-style rendering, e.g. "Q(x0,x1) :- E(x0,x2), E(x2,x1)".
  std::string ToString() const;

 private:
  int num_variables_;
  std::vector<int> head_;
  std::vector<Atom> body_;
  Vocabulary body_vocabulary_;
};

/// Evaluates Q on the database `db` by joining the subgoal relations and
/// projecting onto the head (the classical CQ = join-evaluation link).
/// Database predicates are matched to atom predicates by name; an atom
/// over a predicate absent from `db` yields an empty result. The result
/// schema lists head positions 0..n-1.
DbRelation Evaluate(const ConjunctiveQuery& q, const Structure& db);

/// True if the Boolean query "exists a satisfying assignment of Q's body"
/// holds in `db` (ignores the head).
bool BodySatisfiable(const ConjunctiveQuery& q, const Structure& db);

}  // namespace cspdb

#endif  // CSPDB_DB_CONJUNCTIVE_QUERY_H_
