// Canonical request fingerprints for the serving layer (ISSUE 5 /
// DESIGN.md "Serving layer"). A fingerprint is a deterministic 128-bit
// digest of a *canonicalized* request: CSP instances and query bodies are
// relabeled by an individualization–refinement pass over their constraint
// hypergraph, so two requests that differ only by variable renaming,
// constraint reordering, or tuple reordering digest identically — the
// per-structure artifact reuse that HyperBench-style repetitive workloads
// reward (PAPERS.md).
//
// Soundness contract (the cache key argument in DESIGN.md): when
// `exact` is true, the digest hashes the *complete* canonical encoding —
// every scope, every tuple, every domain bound — so two exact fingerprints
// collide only if the requests are isomorphic (identical up to variable
// relabeling) or on a 2^-128 hash collision. Isomorphic requests share
// answers *after* un-relabeling, which is why CanonicalCsp carries the
// permutation. When the individualization search exceeds its budget
// (pathologically symmetric instances), the fingerprint is flagged
// `exact = false` and salted with a process-unique nonce so it never
// matches anything: the serving layer degrades to uncached execution
// instead of risking an unsound key.

#ifndef CSPDB_SERVICE_FINGERPRINT_H_
#define CSPDB_SERVICE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "csp/instance.h"
#include "datalog/program.h"
#include "db/conjunctive_query.h"
#include "relational/structure.h"

namespace cspdb::service {

/// A 128-bit digest. `exact` distinguishes sound cache keys from
/// budget-exhausted fallbacks (see file comment).
struct Fingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool exact = true;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi && a.exact == b.exact;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }

  /// 32 hex digits, hi word first.
  std::string ToHex() const;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const noexcept {
    return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ull));
  }
};

/// A CSP instance in canonical variable order. `perm[v]` is the canonical
/// index of original variable `v`; `canonical` is the instance relabeled
/// by `perm` with constraints in canonical order. An answer computed on
/// `canonical` maps back to the original via
///   original_solution[v] = canonical_solution[perm[v]].
struct CanonicalCsp {
  Fingerprint fingerprint;
  std::vector<int> perm;
  CspInstance canonical;
};

/// Canonicalizes `csp` (see file comment). Deterministic; invariant under
/// variable renaming, constraint reordering, and tuple reordering when
/// fingerprint.exact. The instance should already have consolidated
/// scopes (CspInstance::AddConstraint guarantees this).
CanonicalCsp CanonicalizeCsp(const CspInstance& csp);

/// Fingerprint of a conjunctive query: head variables are individualized
/// by head position (the output schema is positional), existential
/// variables canonically relabeled, body atoms hashed as a multiset.
/// Invariant under renaming of existential variables and body reordering.
Fingerprint FingerprintQuery(const ConjunctiveQuery& q);

/// Fingerprint of a ground database / EDB: domain size, vocabulary, and
/// each relation's tuples hashed as a multiset (insertion-order
/// independent). Elements are constants, so no relabeling applies.
Fingerprint FingerprintStructure(const Structure& s);

/// Fingerprint of a Datalog program plus goal: each rule's variables are
/// canonically relabeled (head first), rules hashed as a multiset.
Fingerprint FingerprintProgram(const DatalogProgram& program);

/// Order-sensitive combination of fingerprints (for request = engine salt
/// + component digests). Inexactness is contagious.
Fingerprint CombineFingerprints(uint64_t salt,
                                const std::vector<Fingerprint>& parts);

}  // namespace cspdb::service

#endif  // CSPDB_SERVICE_FINGERPRINT_H_
