#include "service/workload.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "csp/instance.h"
#include "datalog/program.h"
#include "db/conjunctive_query.h"
#include "gen/generators.h"
#include "relational/structure.h"
#include "util/check.h"
#include "util/rng.h"

namespace cspdb::service {
namespace {

// A random conjunctive query over the digraph vocabulary {E/2}:
// `num_atoms` subgoals E(x, y) with uniformly drawn variables, and a head
// of `head_arity` uniformly drawn variables. Every variable is forced to
// appear in the body (safety) by padding with extra atoms if needed.
ConjunctiveQuery RandomCq(int num_variables, int num_atoms, int head_arity,
                          Rng* rng) {
  CSPDB_CHECK(num_variables >= 1);
  std::vector<Atom> body;
  std::vector<bool> used(num_variables, false);
  for (int i = 0; i < num_atoms; ++i) {
    const int u = rng->UniformInt(0, num_variables - 1);
    const int v = rng->UniformInt(0, num_variables - 1);
    used[u] = used[v] = true;
    body.push_back({"E", {u, v}});
  }
  for (int v = 0; v < num_variables; ++v) {
    if (!used[v]) body.push_back({"E", {v, rng->UniformInt(0, num_variables - 1)}});
  }
  std::vector<int> head;
  head.reserve(head_arity);
  for (int i = 0; i < head_arity; ++i) {
    head.push_back(rng->UniformInt(0, num_variables - 1));
  }
  return ConjunctiveQuery(num_variables, std::move(head), std::move(body));
}

// A small family of Datalog programs: the Section 4 non-2-colorability
// program, plus reachability variants with a random goal-marker EDB shape.
DatalogProgram RandomDatalogProgram(Rng* rng) {
  if (rng->Bernoulli(0.5)) return NonTwoColorabilityProgram();
  // Transitive closure with a Boolean goal "some vertex reaches itself in
  // >= 1 step" or "edge closure nonempty", depending on a coin flip.
  DatalogProgram p;
  p.AddRule({{"T", {0, 1}}, {{"E", {0, 1}}}, 2});
  p.AddRule({{"T", {0, 1}}, {{"T", {0, 2}}, {"E", {2, 1}}}, 3});
  if (rng->Bernoulli(0.5)) {
    p.AddRule({{"G", {}}, {{"T", {0, 0}}}, 1});
  } else {
    p.AddRule({{"G", {}}, {{"T", {0, 1}}, {"T", {1, 0}}}, 2});
  }
  p.SetGoal("G");
  return p;
}

}  // namespace

std::vector<ServiceRequest> GenerateRequestStream(
    const WorkloadOptions& options) {
  CSPDB_CHECK(options.pool_size >= 1);
  CSPDB_CHECK(options.num_requests >= 0);
  Rng rng(options.seed);

  // Base pools, one per request kind.
  std::vector<SolveCspRequest> csp_pool;
  std::vector<EvalCqRequest> cq_pool;
  std::vector<DatalogFixpointRequest> datalog_pool;
  std::vector<CheckContainmentRequest> contain_pool;
  for (int i = 0; i < options.pool_size; ++i) {
    csp_pool.push_back({RandomBinaryCsp(options.csp_variables,
                                        options.csp_values,
                                        options.csp_constraints,
                                        options.csp_tightness, &rng)});
    cq_pool.push_back(
        {RandomCq(options.cq_variables, options.cq_atoms, /*head_arity=*/2,
                  &rng),
         RandomDigraph(options.db_nodes, options.db_edge_prob, &rng)});
    datalog_pool.push_back(
        {RandomDatalogProgram(&rng),
         RandomDigraph(options.db_nodes, options.db_edge_prob, &rng)});
    // Containment pairs share head arity (required by IsContainedIn);
    // drawing both queries over the same variable budget keeps the
    // canonical-database homomorphism checks small.
    contain_pool.push_back(
        {RandomCq(options.cq_variables, options.cq_atoms, /*head_arity=*/2,
                  &rng),
         RandomCq(options.cq_variables, options.cq_atoms, /*head_arity=*/2,
                  &rng)});
  }

  // Kind mix: cumulative weights, drawn per request.
  double w[kNumRequestKinds] = {
      std::max(0.0, options.weight_solve_csp),
      std::max(0.0, options.weight_eval_cq),
      std::max(0.0, options.weight_datalog),
      std::max(0.0, options.weight_containment)};
  double total_weight = w[0] + w[1] + w[2] + w[3];
  if (total_weight <= 0.0) {
    w[0] = total_weight = 1.0;
  }

  // One Zipfian index stream per kind so each kind's pool has the same
  // skew profile regardless of the mix.
  std::vector<std::vector<int>> zipf(kNumRequestKinds);
  for (int k = 0; k < kNumRequestKinds; ++k) {
    zipf[k] = ZipfianIndices(options.pool_size, options.num_requests,
                             options.zipf_s, &rng);
  }
  std::vector<int> cursor(kNumRequestKinds, 0);

  std::vector<ServiceRequest> stream;
  stream.reserve(options.num_requests);
  for (int i = 0; i < options.num_requests; ++i) {
    double roll = rng.UniformDouble() * total_weight;
    int kind = 0;
    while (kind + 1 < kNumRequestKinds && roll >= w[kind]) {
      roll -= w[kind];
      ++kind;
    }
    const int idx = zipf[kind][cursor[kind]++];
    const bool mutate =
        options.mutation_prob > 0.0 && rng.Bernoulli(options.mutation_prob);
    switch (static_cast<RequestKind>(kind)) {
      case RequestKind::kSolveCsp: {
        SolveCspRequest r = csp_pool[idx];
        if (mutate) r.instance = MutateCsp(r.instance, &rng);
        stream.emplace_back(std::move(r));
        break;
      }
      case RequestKind::kEvalCq: {
        EvalCqRequest r = cq_pool[idx];
        if (mutate) {
          r.database =
              RandomDigraph(options.db_nodes, options.db_edge_prob, &rng);
        }
        stream.emplace_back(std::move(r));
        break;
      }
      case RequestKind::kDatalogFixpoint: {
        DatalogFixpointRequest r = datalog_pool[idx];
        if (mutate) {
          r.edb = RandomDigraph(options.db_nodes, options.db_edge_prob, &rng);
        }
        stream.emplace_back(std::move(r));
        break;
      }
      case RequestKind::kCheckContainment: {
        CheckContainmentRequest r = contain_pool[idx];
        if (mutate) {
          r.q2 = RandomCq(options.cq_variables, options.cq_atoms,
                          /*head_arity=*/2, &rng);
        }
        stream.emplace_back(std::move(r));
        break;
      }
    }
  }
  return stream;
}

}  // namespace cspdb::service
