#include "service/fingerprint.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <utility>

#include "util/check.h"

namespace cspdb::service {

namespace {

// splitmix64 finalizer: the 64-bit mixing primitive under everything here.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Two independently mixed 64-bit lanes; order-sensitive accumulation.
class Hash128 {
 public:
  void Add(uint64_t x) {
    lo_ = Mix64(lo_ ^ x);
    hi_ = Mix64(hi_ + x * 0xc2b2ae3d27d4eb4full);
  }

  void AddString(const std::string& s) {
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) h = (h ^ c) * 1099511628211ull;
    Add(h);
    Add(s.size());
  }

  Fingerprint Digest() const { return Fingerprint{lo_, hi_, true}; }

 private:
  uint64_t lo_ = 0x243f6a8885a308d3ull;  // pi digits: arbitrary fixed seeds
  uint64_t hi_ = 0x13198a2e03707344ull;
};

// A vertex-colored hypergraph with ordered, content-carrying edges — the
// common abstraction behind CSP instances (edges = constraints, content =
// relation hash) and query bodies (edges = atoms, content = predicate
// hash). Canonicalization is invariant under any permutation of the
// vertex ids and any reordering of the edge list.
struct LabeledGraph {
  struct Edge {
    uint64_t content_lo = 0;  // 128-bit edge content: collisions between
    uint64_t content_hi = 0;  // distinct contents need both words to clash
    std::vector<int> verts;   // ordered; repeats allowed
  };
  int n = 0;
  std::vector<uint64_t> init_colors;  // size n
  std::vector<Edge> edges;
};

struct CanonResult {
  std::vector<int> perm;           // original vertex -> canonical index
  std::vector<uint64_t> encoding;  // canonical serialization of the graph
  bool exact = true;
};

// One round of color refinement. `colors` are arbitrary 64-bit values;
// returns the refined colors normalized to class ranks (rank by hash
// value — a renaming-invariant order since the hashes are computed from
// renaming-invariant data).
std::vector<uint64_t> RefineOnce(const LabeledGraph& g,
                                 const std::vector<uint64_t>& colors,
                                 int* num_classes) {
  std::vector<uint64_t> sig(g.n);
  for (int v = 0; v < g.n; ++v) sig[v] = Mix64(colors[v]);

  // Per-edge signature from content and in-order endpoint colors, then a
  // per-(edge, vertex) contribution folding in the occurrence positions.
  std::vector<std::vector<uint64_t>> contrib(g.n);
  for (const LabeledGraph::Edge& e : g.edges) {
    uint64_t esig = Mix64(e.content_lo ^ Mix64(e.content_hi));
    for (int v : e.verts) esig = Mix64(esig ^ colors[v]);
    for (std::size_t j = 0; j < e.verts.size(); ++j) {
      contrib[e.verts[j]].push_back(Mix64(esig + j * 0x9e3779b97f4a7c15ull));
    }
  }
  for (int v = 0; v < g.n; ++v) {
    std::sort(contrib[v].begin(), contrib[v].end());
    for (uint64_t c : contrib[v]) sig[v] = Mix64(sig[v] ^ c);
  }

  // Normalize to ranks.
  std::vector<uint64_t> sorted = sig;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (int v = 0; v < g.n; ++v) {
    sig[v] = static_cast<uint64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), sig[v]) -
        sorted.begin());
  }
  *num_classes = static_cast<int>(sorted.size());
  return sig;
}

// Refines to a fixed point (the partition stops splitting).
std::vector<uint64_t> RefineToFixpoint(const LabeledGraph& g,
                                       std::vector<uint64_t> colors,
                                       int* num_classes) {
  int classes = 0;
  {
    // Normalize the input colors to ranks first so `classes` is right
    // even when the loop below exits immediately.
    std::vector<uint64_t> sorted = colors;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    classes = static_cast<int>(sorted.size());
    for (uint64_t& c : colors) {
      c = static_cast<uint64_t>(
          std::lower_bound(sorted.begin(), sorted.end(), c) - sorted.begin());
    }
  }
  while (classes < g.n) {
    int next_classes = 0;
    std::vector<uint64_t> next = RefineOnce(g, colors, &next_classes);
    if (next_classes <= classes) break;  // stable (splits only, never merges)
    colors = std::move(next);
    classes = next_classes;
  }
  *num_classes = classes;
  return colors;
}

// Serializes the graph under `perm`: vertex count, canonically ordered
// init colors, then edges sorted by their relabeled serialization.
std::vector<uint64_t> EncodeUnder(const LabeledGraph& g,
                                  const std::vector<int>& perm) {
  std::vector<uint64_t> out;
  out.push_back(static_cast<uint64_t>(g.n));
  std::vector<uint64_t> colors_by_canon(g.n);
  for (int v = 0; v < g.n; ++v) colors_by_canon[perm[v]] = g.init_colors[v];
  out.insert(out.end(), colors_by_canon.begin(), colors_by_canon.end());

  std::vector<std::vector<uint64_t>> edge_codes;
  edge_codes.reserve(g.edges.size());
  for (const LabeledGraph::Edge& e : g.edges) {
    std::vector<uint64_t> code;
    code.reserve(e.verts.size() + 3);
    code.push_back(e.content_lo);
    code.push_back(e.content_hi);
    code.push_back(e.verts.size());
    for (int v : e.verts) code.push_back(static_cast<uint64_t>(perm[v]));
    edge_codes.push_back(std::move(code));
  }
  std::sort(edge_codes.begin(), edge_codes.end());
  out.push_back(static_cast<uint64_t>(edge_codes.size()));
  for (const auto& code : edge_codes) {
    out.insert(out.end(), code.begin(), code.end());
  }
  return out;
}

// Individualization–refinement canonical labeling: refine; if the
// partition is not discrete, individualize every vertex of the first
// non-singleton class in turn and recurse, keeping the lexicographically
// smallest encoding. Exponential in the worst case, so leaves are
// budgeted; blowing the budget flags the result inexact.
class CanonSearch {
 public:
  explicit CanonSearch(const LabeledGraph& g, int leaf_budget)
      : g_(g), leaf_budget_(leaf_budget) {}

  CanonResult Run() {
    Recurse(g_.init_colors);
    CanonResult result;
    result.exact = exact_;
    if (have_best_) {
      result.perm = std::move(best_perm_);
      result.encoding = std::move(best_encoding_);
    } else {
      // Budget exhausted before any leaf (massive symmetric instance):
      // fall back to an arbitrary-but-deterministic order. The caller
      // salts inexact digests uniquely, so this encoding never keys a
      // cache entry.
      int classes = 0;
      std::vector<uint64_t> colors =
          RefineToFixpoint(g_, g_.init_colors, &classes);
      result.perm = OrderByColorThenIndex(colors);
      result.encoding = EncodeUnder(g_, result.perm);
      result.exact = false;
    }
    return result;
  }

 private:
  std::vector<int> OrderByColorThenIndex(
      const std::vector<uint64_t>& colors) const {
    std::vector<int> verts(g_.n);
    for (int v = 0; v < g_.n; ++v) verts[v] = v;
    std::sort(verts.begin(), verts.end(), [&](int a, int b) {
      return colors[a] != colors[b] ? colors[a] < colors[b] : a < b;
    });
    std::vector<int> perm(g_.n);
    for (int i = 0; i < g_.n; ++i) perm[verts[i]] = i;
    return perm;
  }

  void Recurse(std::vector<uint64_t> colors) {
    if (!exact_) return;
    int classes = 0;
    colors = RefineToFixpoint(g_, std::move(colors), &classes);
    if (classes == g_.n) {
      if (leaves_used_ >= leaf_budget_) {
        exact_ = false;
        return;
      }
      ++leaves_used_;
      // Discrete partition: the class ranks are the canonical indices.
      std::vector<int> perm(g_.n);
      for (int v = 0; v < g_.n; ++v) perm[v] = static_cast<int>(colors[v]);
      std::vector<uint64_t> encoding = EncodeUnder(g_, perm);
      if (!have_best_ || encoding < best_encoding_) {
        best_encoding_ = std::move(encoding);
        best_perm_ = std::move(perm);
        have_best_ = true;
      }
      return;
    }
    // First non-singleton class, by class rank.
    std::vector<int> cell_count(classes, 0);
    for (int v = 0; v < g_.n; ++v) ++cell_count[colors[v]];
    uint64_t target = 0;
    while (cell_count[target] == 1) ++target;
    for (int v = 0; v < g_.n && exact_; ++v) {
      if (colors[v] != target) continue;
      std::vector<uint64_t> branch = colors;
      branch[v] = static_cast<uint64_t>(classes);  // fresh singleton class
      Recurse(std::move(branch));
    }
  }

  const LabeledGraph& g_;
  const int leaf_budget_;
  int leaves_used_ = 0;
  bool exact_ = true;
  bool have_best_ = false;
  std::vector<int> best_perm_;
  std::vector<uint64_t> best_encoding_;
};

constexpr int kLeafBudget = 512;

// Engine salts keep digests of different request shapes disjoint.
constexpr uint64_t kSaltCsp = 0x637370'01;
constexpr uint64_t kSaltQuery = 0x6371'02;
constexpr uint64_t kSaltStructure = 0x737472'03;
constexpr uint64_t kSaltRule = 0x72756c'04;
constexpr uint64_t kSaltProgram = 0x70726f'05;

// Process-unique nonce for inexact digests: they must never match
// anything, including each other, so inexact requests bypass the cache
// and single-flight instead of sharing an unsound key.
void SaltInexact(Fingerprint* fp) {
  static std::atomic<uint64_t> nonce{1};
  const uint64_t n = nonce.fetch_add(1, std::memory_order_relaxed);
  fp->lo = Mix64(fp->lo ^ n);
  fp->hi = Mix64(fp->hi + n);
  fp->exact = false;
}

// 128-bit content hash of a constraint relation: arity plus the sorted
// tuple multiset (tuple-order independent).
std::pair<uint64_t, uint64_t> RelationContentHash(
    const std::vector<Tuple>& tuples, int arity) {
  std::vector<Tuple> sorted = tuples;
  std::sort(sorted.begin(), sorted.end());
  Hash128 h;
  h.Add(static_cast<uint64_t>(arity));
  h.Add(sorted.size());
  for (const Tuple& t : sorted) {
    for (int x : t) h.Add(static_cast<uint64_t>(static_cast<int64_t>(x)));
  }
  const Fingerprint d = h.Digest();
  return {d.lo, d.hi};
}

Fingerprint DigestEncoding(uint64_t salt,
                           const std::vector<uint64_t>& encoding,
                           const std::vector<uint64_t>& extra) {
  Hash128 h;
  h.Add(salt);
  for (uint64_t x : extra) h.Add(x);
  h.Add(encoding.size());
  for (uint64_t x : encoding) h.Add(x);
  return h.Digest();
}

}  // namespace

std::string Fingerprint::ToHex() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx%s",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo), exact ? "" : "~");
  return buf;
}

CanonicalCsp CanonicalizeCsp(const CspInstance& csp) {
  LabeledGraph g;
  g.n = csp.num_variables();
  g.init_colors.assign(g.n, 0);
  g.edges.reserve(csp.constraints().size());
  for (const Constraint& c : csp.constraints()) {
    LabeledGraph::Edge e;
    std::tie(e.content_lo, e.content_hi) =
        RelationContentHash(c.allowed, c.arity());
    e.verts = c.scope;
    g.edges.push_back(std::move(e));
  }

  CanonResult canon = CanonSearch(g, kLeafBudget).Run();

  CanonicalCsp out{Fingerprint{},
                   std::move(canon.perm),
                   CspInstance(csp.num_variables(), csp.num_values())};
  // Relabel scopes and add constraints in canonical (sorted) order so the
  // canonical instance is identical across isomorphic inputs.
  struct Pending {
    std::vector<int> scope;
    const Constraint* source;
  };
  std::vector<Pending> pending;
  pending.reserve(csp.constraints().size());
  for (const Constraint& c : csp.constraints()) {
    Pending p;
    p.scope.reserve(c.scope.size());
    for (int v : c.scope) p.scope.push_back(out.perm[v]);
    p.source = &c;
    pending.push_back(std::move(p));
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              return a.scope < b.scope;  // scopes are unique (consolidated)
            });
  for (const Pending& p : pending) {
    std::vector<Tuple> tuples = p.source->allowed;
    std::sort(tuples.begin(), tuples.end());
    out.canonical.AddConstraint(p.scope, std::move(tuples));
  }

  out.fingerprint = DigestEncoding(
      kSaltCsp, canon.encoding,
      {static_cast<uint64_t>(csp.num_variables()),
       static_cast<uint64_t>(csp.num_values())});
  // The graph encoding carries only the 128-bit relation content hashes;
  // fold the full tuple data in as well so the digest depends on every
  // value of every tuple directly (scope-sorted order is canonical).
  {
    Hash128 h;
    h.Add(out.fingerprint.lo);
    h.Add(out.fingerprint.hi);
    for (const Constraint& c : out.canonical.constraints()) {
      for (int v : c.scope) h.Add(static_cast<uint64_t>(v));
      std::vector<Tuple> tuples = c.allowed;
      std::sort(tuples.begin(), tuples.end());
      for (const Tuple& t : tuples) {
        for (int x : t) h.Add(static_cast<uint64_t>(static_cast<int64_t>(x)));
      }
    }
    out.fingerprint = h.Digest();
  }
  if (!canon.exact) SaltInexact(&out.fingerprint);
  return out;
}

Fingerprint FingerprintQuery(const ConjunctiveQuery& q) {
  LabeledGraph g;
  g.n = q.num_variables();
  g.init_colors.assign(g.n, 0);
  // Individualize head variables by their (sorted) head-position sets:
  // the output schema is positional, so head roles are not renameable.
  for (std::size_t i = 0; i < q.head().size(); ++i) {
    const int v = q.head()[i];
    g.init_colors[v] = Mix64(g.init_colors[v] ^ Mix64(i + 1));
  }
  g.edges.reserve(q.body().size());
  for (const Atom& a : q.body()) {
    LabeledGraph::Edge e;
    Hash128 h;
    h.AddString(a.predicate);
    const Fingerprint d = h.Digest();
    e.content_lo = d.lo;
    e.content_hi = d.hi;
    e.verts = a.args;
    g.edges.push_back(std::move(e));
  }
  CanonResult canon = CanonSearch(g, kLeafBudget).Run();
  Fingerprint fp = DigestEncoding(
      kSaltQuery, canon.encoding,
      {static_cast<uint64_t>(q.num_variables()),
       static_cast<uint64_t>(q.head().size())});
  if (!canon.exact) SaltInexact(&fp);
  return fp;
}

Fingerprint FingerprintStructure(const Structure& s) {
  Hash128 h;
  h.Add(kSaltStructure);
  h.Add(static_cast<uint64_t>(s.domain_size()));
  h.Add(static_cast<uint64_t>(s.vocabulary().size()));
  for (int r = 0; r < s.vocabulary().size(); ++r) {
    const RelationSymbol& sym = s.vocabulary().symbol(r);
    h.AddString(sym.name);
    h.Add(static_cast<uint64_t>(sym.arity));
    std::vector<Tuple> tuples = s.tuples(r);
    std::sort(tuples.begin(), tuples.end());
    h.Add(tuples.size());
    for (const Tuple& t : tuples) {
      for (int x : t) h.Add(static_cast<uint64_t>(static_cast<int64_t>(x)));
    }
  }
  return h.Digest();
}

Fingerprint FingerprintProgram(const DatalogProgram& program) {
  // Canonicalize each rule's variables (head args are positional roles),
  // then hash the rules as a multiset.
  std::vector<std::pair<uint64_t, uint64_t>> rule_digests;
  bool exact = true;
  rule_digests.reserve(program.rules().size());
  for (const DatalogRule& rule : program.rules()) {
    LabeledGraph g;
    g.n = rule.num_variables;
    g.init_colors.assign(g.n, 0);
    for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
      const int v = rule.head.args[i];
      g.init_colors[v] = Mix64(g.init_colors[v] ^ Mix64(i + 1));
    }
    g.edges.reserve(rule.body.size() + 1);
    {
      LabeledGraph::Edge e;
      Hash128 h;
      h.Add(0x68656164ull);  // "head"
      h.AddString(rule.head.predicate);
      const Fingerprint d = h.Digest();
      e.content_lo = d.lo;
      e.content_hi = d.hi;
      e.verts = rule.head.args;
      g.edges.push_back(std::move(e));
    }
    for (const DatalogAtom& a : rule.body) {
      LabeledGraph::Edge e;
      Hash128 h;
      h.AddString(a.predicate);
      const Fingerprint d = h.Digest();
      e.content_lo = d.lo;
      e.content_hi = d.hi;
      e.verts = a.args;
      g.edges.push_back(std::move(e));
    }
    CanonResult canon = CanonSearch(g, kLeafBudget).Run();
    exact = exact && canon.exact;
    const Fingerprint fp = DigestEncoding(
        kSaltRule, canon.encoding,
        {static_cast<uint64_t>(rule.num_variables)});
    rule_digests.emplace_back(fp.lo, fp.hi);
  }
  std::sort(rule_digests.begin(), rule_digests.end());
  Hash128 h;
  h.Add(kSaltProgram);
  h.AddString(program.goal());
  h.Add(rule_digests.size());
  for (const auto& [lo, hi] : rule_digests) {
    h.Add(lo);
    h.Add(hi);
  }
  Fingerprint fp = h.Digest();
  if (!exact) SaltInexact(&fp);
  return fp;
}

Fingerprint CombineFingerprints(uint64_t salt,
                                const std::vector<Fingerprint>& parts) {
  Hash128 h;
  h.Add(salt);
  bool exact = true;
  for (const Fingerprint& p : parts) {
    h.Add(p.lo);
    h.Add(p.hi);
    exact = exact && p.exact;
  }
  Fingerprint fp = h.Digest();
  fp.exact = exact;
  return fp;
}

}  // namespace cspdb::service
