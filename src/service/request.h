// Typed requests and responses for CspdbService. Each request kind maps
// onto one engine (solver, CQ evaluation, Datalog fixpoint, containment);
// the response carries a deterministic, canonically ordered answer plus
// serving metadata (status, cache provenance, latency).

#ifndef CSPDB_SERVICE_REQUEST_H_
#define CSPDB_SERVICE_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "csp/instance.h"
#include "datalog/program.h"
#include "db/conjunctive_query.h"
#include "relational/structure.h"

namespace cspdb::service {

/// Request kinds, also the invalidation/TTL granularity of the cache.
enum class RequestKind {
  kSolveCsp = 0,
  kEvalCq = 1,
  kDatalogFixpoint = 2,
  kCheckContainment = 3,
};
inline constexpr int kNumRequestKinds = 4;

/// Human-readable kind name ("solve_csp", ...).
const char* RequestKindName(RequestKind kind);

struct SolveCspRequest {
  CspInstance instance;
};

struct EvalCqRequest {
  ConjunctiveQuery query;
  Structure database;
};

struct DatalogFixpointRequest {
  DatalogProgram program;
  Structure edb;
};

struct CheckContainmentRequest {
  ConjunctiveQuery q1;  // decides q1 ⊆ q2
  ConjunctiveQuery q2;
};

using ServiceRequest = std::variant<SolveCspRequest, EvalCqRequest,
                                    DatalogFixpointRequest,
                                    CheckContainmentRequest>;

/// The kind of a request variant (indices match the variant order).
RequestKind KindOf(const ServiceRequest& request);

/// Response status. kOk responses carry an answer; the shed statuses are
/// the overload contract: an overwhelmed service answers *something*
/// for every request instead of queuing unboundedly.
enum class StatusCode {
  kOk = 0,
  kDeadlineExceeded = 1,  ///< deadline passed while queued or mid-engine
  kRejected = 2,          ///< admission queue full; retry later
};

const char* StatusCodeName(StatusCode status);

/// Answer to a SolveCsp request. `solution`, when present, is indexed by
/// the *requester's* variable order (canonical-space cache entries are
/// mapped back through the request's relabeling before they reach the
/// response).
struct CspAnswer {
  std::optional<std::vector<int>> solution;
  bool complete = true;  ///< false only on an aborted (shed) search
};

/// Answer rows in canonical (lexicographic) order, flattened row-major.
/// Used for EvalCq (head arity columns) and the Datalog goal relation.
struct RowsAnswer {
  int arity = 0;
  int64_t num_rows = 0;
  std::vector<int> rows;  ///< num_rows * arity values
};

struct DatalogAnswer {
  bool goal_derived = false;
  RowsAnswer goal_facts;      ///< derived facts of the goal predicate
  int64_t total_idb_facts = 0;
};

struct BoolAnswer {
  bool value = false;
};

/// The engine-level answer stored in the result cache (canonical space)
/// and embedded in responses (request space).
using EngineAnswer =
    std::variant<CspAnswer, RowsAnswer, DatalogAnswer, BoolAnswer>;

/// Approximate heap + inline footprint of an answer, for the cache's byte
/// accounting.
std::size_t AnswerApproxBytes(const EngineAnswer& answer);

struct Response {
  StatusCode status = StatusCode::kOk;
  RequestKind kind = RequestKind::kSolveCsp;
  EngineAnswer answer;     ///< meaningful only when status == kOk
  bool cache_hit = false;  ///< served from the result cache
  bool coalesced = false;  ///< served by another request's in-flight run
  bool served_remotely = false;  ///< answered by a peer node's shard (set
                                 ///< by the net-tier router, never by
                                 ///< CspdbService itself)
  int64_t latency_ns = 0;  ///< Handle() wall time (excludes queue wait
                           ///< for async submissions)
  int64_t queue_wait_ns = 0;  ///< enqueue -> task-start wait for async
                              ///< Submit(); 0 on the synchronous path.
                              ///< End-to-end latency as the caller saw
                              ///< it is queue_wait_ns + latency_ns.
};

}  // namespace cspdb::service

#endif  // CSPDB_SERVICE_REQUEST_H_
