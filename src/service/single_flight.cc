#include "service/single_flight.h"

#include <chrono>
#include <utility>

#include "obs/obs.h"

namespace cspdb::service {

namespace {

std::chrono::steady_clock::time_point ToTimePoint(int64_t deadline_ns) {
  return std::chrono::steady_clock::time_point(
      std::chrono::nanoseconds(deadline_ns));
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SingleFlight::Outcome SingleFlight::Do(
    const Fingerprint& key, int64_t deadline_ns,
    const std::function<std::shared_ptr<const EngineAnswer>()>& compute) {
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    util::MutexLock lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      leader = true;  // Flight::running starts true
    } else {
      flight = it->second;
    }
  }

  auto run_as_leader = [&]() -> Outcome {
    std::shared_ptr<const EngineAnswer> result = compute();
    if (result != nullptr) {
      // Success: retire the flight *before* publishing so a late joiner
      // either sees the published result or starts fresh (and then hits
      // the cache the compute callback populated).
      {
        util::MutexLock table_lock(mu_);
        auto it = flights_.find(key);
        if (it != flights_.end() && it->second == flight) {
          flights_.erase(it);
        }
      }
      util::MutexLock lock(flight->mu);
      flight->result = result;
      flight->done = true;
      flight->running = false;
      flight->cv.NotifyAll();
      return Outcome{std::move(result), /*leader=*/true, /*coalesced=*/false,
                     /*timed_out=*/false};
    }
    // Failure (deadline-aborted engine): hand the flight to a waiting
    // follower for promotion, or retire it if nobody is waiting.
    // Audited lock-order site: table lock (mu_) first, then flight->mu.
    {
      util::MutexLock table_lock(mu_);
      util::MutexLock lock(flight->mu);
      flight->running = false;
      if (flight->waiters == 0) {
        auto it = flights_.find(key);
        if (it != flights_.end() && it->second == flight) {
          flights_.erase(it);
        }
      } else {
        flight->cv.NotifyAll();
        CSPDB_COUNT("service.single_flight.handoff");
      }
    }
    return Outcome{nullptr, /*leader=*/true, /*coalesced=*/false,
                   /*timed_out=*/false};
  };

  if (leader) return run_as_leader();

  // Follower: wait for a published result, a promotion slot, or our own
  // deadline. Explicit Lock/Unlock (rather than RAII) because the exits
  // release at different points; the thread-safety analysis still checks
  // that every path unlocks exactly once.
  flight->mu.Lock();
  ++flight->waiters;
  for (;;) {
    if (flight->done) {
      --flight->waiters;
      std::shared_ptr<const EngineAnswer> result = flight->result;
      flight->mu.Unlock();
      CSPDB_COUNT("service.single_flight.coalesced");
      return Outcome{std::move(result), /*leader=*/false, /*coalesced=*/true,
                     /*timed_out=*/false};
    }
    // Deadline before promotion: an expired follower must time out, not
    // become a doomed leader whose engine run immediately aborts and
    // hands the flight down a chain of equally-expired waiters.
    if (deadline_ns > 0 && NowNs() >= deadline_ns) {
      --flight->waiters;
      const bool abandoned =
          flight->waiters == 0 && !flight->running && !flight->done;
      flight->mu.Unlock();
      if (abandoned) {
        // Last one out retires a dead flight (failed leader, no heir).
        // Audited lock-order site: mu_ first, then flight->mu.
        util::MutexLock table_lock(mu_);
        util::MutexLock relock(flight->mu);
        if (flight->waiters == 0 && !flight->running && !flight->done) {
          auto it = flights_.find(key);
          if (it != flights_.end() && it->second == flight) {
            flights_.erase(it);
          }
        }
      }
      return Outcome{nullptr, /*leader=*/false, /*coalesced=*/false,
                     /*timed_out=*/true};
    }
    if (!flight->running) {
      // The previous leader failed; promote ourselves.
      flight->running = true;
      --flight->waiters;
      flight->mu.Unlock();
      CSPDB_COUNT("service.single_flight.promoted");
      return run_as_leader();
    }
    if (deadline_ns > 0) {
      flight->cv.WaitUntil(flight->mu, ToTimePoint(deadline_ns));
    } else {
      flight->cv.Wait(flight->mu);
    }
  }
}

}  // namespace cspdb::service
