// Seeded request-stream generation for the serving layer: a pool of base
// requests per engine kind, replayed with Zipfian repetition (the skewed
// repeat profile of real CQ workloads — HyperBench, PAPERS.md) and an
// optional mutation knob that injects never-before-seen variants. Streams
// are fully determined by the options, so cache hit-rate benchmarks and
// the serving smoke tests are reproducible run to run.

#ifndef CSPDB_SERVICE_WORKLOAD_H_
#define CSPDB_SERVICE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "service/request.h"

namespace cspdb::service {

struct WorkloadOptions {
  uint64_t seed = 1;

  int num_requests = 1000;

  /// Distinct base requests per engine kind in the pool.
  int pool_size = 16;

  /// Zipfian exponent of the repetition distribution (0 = uniform).
  double zipf_s = 1.1;

  /// Probability that a drawn request is replaced by a fresh mutant of
  /// the drawn base (a guaranteed-ish cache miss). 0 disables mutation.
  double mutation_prob = 0.0;

  /// Relative weights of the four request kinds in the stream (need not
  /// sum to 1; all-zero falls back to SolveCsp only).
  double weight_solve_csp = 0.4;
  double weight_eval_cq = 0.3;
  double weight_datalog = 0.2;
  double weight_containment = 0.1;

  /// Instance size knobs for the generated pools.
  int csp_variables = 12;
  int csp_values = 4;
  int csp_constraints = 18;
  double csp_tightness = 0.3;
  int db_nodes = 14;
  double db_edge_prob = 0.25;
  int cq_variables = 4;
  int cq_atoms = 4;
};

/// Generates a reproducible request stream (see file comment).
std::vector<ServiceRequest> GenerateRequestStream(
    const WorkloadOptions& options);

}  // namespace cspdb::service

#endif  // CSPDB_SERVICE_WORKLOAD_H_
