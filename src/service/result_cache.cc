#include "service/result_cache.h"

#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace cspdb::service {

namespace {
// Accounted per-entry overhead beyond the answer payload: list node,
// index slot, key. A round constant keeps the arithmetic obvious.
constexpr std::size_t kEntryOverhead = 128;
}  // namespace

ResultCache::ResultCache(CacheConfig config) : config_(config) {
  if (config_.num_shards < 1) config_.num_shards = 1;
  shards_.reserve(config_.num_shards);
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = config_.max_bytes / shards_.size();
}

std::shared_ptr<const EngineAnswer> ResultCache::Lookup(
    const Fingerprint& key, RequestKind kind, int64_t now_ns) {
  if (!key.exact) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const uint64_t current_gen =
      generations_[static_cast<int>(kind)].load(std::memory_order_acquire);
  const int64_t ttl = config_.ttl_ns[static_cast<int>(kind)];
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Entry& entry = *it->second;
  if (entry.kind != kind) {
    // Cross-kind fingerprint collision (the kind salts make this a
    // 128-bit event, but Insert replaces whatever holds the key): never
    // serve an answer variant the caller did not ask for.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const bool stale = entry.generation != current_gen ||
                     (ttl > 0 && now_ns - entry.inserted_ns >= ttl);
  if (stale) {
    RemoveLocked(shard, it->second);
    expirations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("service.cache.hit");
  return entry.answer;
}

void ResultCache::Insert(const Fingerprint& key, RequestKind kind,
                         std::shared_ptr<const EngineAnswer> answer,
                         int64_t now_ns) {
  CSPDB_DCHECK(answer != nullptr);
  if (!key.exact) return;
  const std::size_t bytes = AnswerApproxBytes(*answer) + kEntryOverhead;
  if (bytes > shard_budget_) return;  // would evict a whole shard: skip
  Entry entry;
  entry.key = key;
  entry.kind = kind;
  entry.answer = std::move(answer);
  entry.bytes = bytes;
  entry.inserted_ns = now_ns;
  entry.generation =
      generations_[static_cast<int>(kind)].load(std::memory_order_acquire);

  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) RemoveLocked(shard, it->second);
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("service.cache.insert");
  EvictLocked(shard);
}

void ResultCache::InvalidateKind(RequestKind kind) {
  generations_[static_cast<int>(kind)].fetch_add(1,
                                                 std::memory_order_acq_rel);
  CSPDB_COUNT("service.cache.invalidate_kind");
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.expirations = expirations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    s.bytes += shard->bytes;
    s.entries += static_cast<int64_t>(shard->lru.size());
  }
  return s;
}

void ResultCache::RemoveLocked(Shard& shard,
                               std::list<Entry>::iterator it) {
  shard.bytes -= it->bytes;
  shard.index.erase(it->key);
  shard.lru.erase(it);
}

void ResultCache::EvictLocked(Shard& shard) {
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    auto last = std::prev(shard.lru.end());
    RemoveLocked(shard, last);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CSPDB_COUNT("service.cache.evict");
  }
}

}  // namespace cspdb::service
