// Single-flight request coalescing: concurrent requests with the same
// canonical fingerprint share one engine invocation. The first arrival
// becomes the *leader* and computes; the rest become *followers* and
// block (with their own deadlines) for the leader's published answer.
//
// Failure semantics: a leader whose deadline expires mid-engine publishes
// failure instead of an answer; one waiting follower is then *promoted*
// to leader and recomputes under its own (longer) deadline, so a caller
// with a generous deadline is never poisoned by a stranger's tight one.
// A follower whose own deadline passes while waiting gives up with
// timed_out — load-shedding at the coalescing layer.
//
// Thread safety: fully thread-safe; the table mutex is never held while
// `compute` runs.

#ifndef CSPDB_SERVICE_SINGLE_FLIGHT_H_
#define CSPDB_SERVICE_SINGLE_FLIGHT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "service/fingerprint.h"
#include "service/request.h"
#include "util/sync.h"

namespace cspdb::service {

class SingleFlight {
 public:
  struct Outcome {
    /// The shared answer; nullptr when every attempted leader failed or
    /// the caller timed out waiting.
    std::shared_ptr<const EngineAnswer> answer;
    bool leader = false;     ///< this call ran `compute` (possibly promoted)
    bool coalesced = false;  ///< served by another caller's computation
    bool timed_out = false;  ///< own deadline expired while waiting
  };

  /// Runs `compute` for `key`, coalescing with concurrent identical
  /// calls. `compute` returns the answer (after making it durable, e.g.
  /// inserting it into the result cache) or nullptr on failure
  /// (deadline-aborted engine). `deadline_ns` is a steady-clock absolute
  /// deadline; <= 0 means none.
  Outcome Do(const Fingerprint& key, int64_t deadline_ns,
             const std::function<std::shared_ptr<const EngineAnswer>()>&
                 compute);

 private:
  struct Flight {
    // Lock order: when held together with the table lock SingleFlight::
    // mu_, mu is always acquired second (retire paths). Clang's
    // acquired_after cannot name a member of a different object, so the
    // order is documented here and enforced by the two audited sites in
    // single_flight.cc.
    util::Mutex mu;
    util::CondVar cv;
    bool running CSPDB_GUARDED_BY(mu) = true;  ///< a leader is computing
    bool done CSPDB_GUARDED_BY(mu) = false;    ///< result published
    std::shared_ptr<const EngineAnswer> result CSPDB_GUARDED_BY(mu);
    int waiters CSPDB_GUARDED_BY(mu) = 0;  ///< followers blocked on cv
  };

  // Guards flights_ only; acquired before any Flight::mu (see above).
  util::Mutex mu_;
  std::unordered_map<Fingerprint, std::shared_ptr<Flight>, FingerprintHash>
      flights_ CSPDB_GUARDED_BY(mu_);
};

}  // namespace cspdb::service

#endif  // CSPDB_SERVICE_SINGLE_FLIGHT_H_
