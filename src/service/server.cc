#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "csp/solver.h"
#include "datalog/eval.h"
#include "db/containment.h"
#include "db/relation.h"
#include "obs/obs.h"
#include "util/check.h"

namespace cspdb::service {

namespace {

constexpr uint64_t kSaltEvalCq = 0x65766171ull;
constexpr uint64_t kSaltDatalog = 0x646c6f67ull;
constexpr uint64_t kSaltContainment = 0x636f6e74ull;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t AbsoluteDeadline(int64_t timeout_ns, int64_t default_timeout_ns) {
  const int64_t t = timeout_ns > 0 ? timeout_ns : default_timeout_ns;
  return t > 0 ? NowNs() + t : -1;
}

bool DeadlinePassed(int64_t deadline_ns) {
  return deadline_ns > 0 && NowNs() >= deadline_ns;
}

// Sorts `tuples` lexicographically and flattens into a RowsAnswer — the
// canonical answer order that makes responses byte-identical regardless
// of evaluation path.
RowsAnswer CanonicalRows(std::vector<Tuple> tuples, int arity) {
  std::sort(tuples.begin(), tuples.end());
  RowsAnswer out;
  out.arity = arity;
  out.num_rows = static_cast<int64_t>(tuples.size());
  out.rows.reserve(tuples.size() * static_cast<std::size_t>(arity));
  for (const Tuple& t : tuples) {
    out.rows.insert(out.rows.end(), t.begin(), t.end());
  }
  return out;
}

}  // namespace

CspdbService::CspdbService(ServiceOptions options)
    : options_(options),
      pool_(options.pool != nullptr ? options.pool
                                    : &exec::ThreadPool::Global()),
      cache_(options.cache),
      stats_store_(options.stats_store) {}

CspdbService::~CspdbService() {
  util::MutexLock lock(drain_mu_);
  while (pending_.load(std::memory_order_acquire) != 0) {
    drain_cv_.Wait(drain_mu_);
  }
}

Response CspdbService::Handle(const ServiceRequest& request,
                              int64_t timeout_ns) {
  return HandleAbsolute(
      request, AbsoluteDeadline(timeout_ns, options_.default_timeout_ns));
}

std::future<Response> CspdbService::Submit(ServiceRequest request,
                                           int64_t timeout_ns) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  const int64_t start_ns = NowNs();
  const int64_t deadline_ns =
      AbsoluteDeadline(timeout_ns, options_.default_timeout_ns);

  const int admitted = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (options_.max_pending > 0 && admitted >= options_.max_pending) {
    {
      // Decrement under drain_mu_ with a notify, like the task path: a
      // rejected Submit racing the last completing task used to drop
      // pending_ to zero silently, leaving a draining destructor waiting
      // on a notification that never comes.
      util::MutexLock lock(drain_mu_);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        drain_cv_.NotifyAll();
      }
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    CSPDB_COUNT("service.shed.rejected");
    Response response;
    response.status = StatusCode::kRejected;
    response.kind = KindOf(request);
    // Stamp latency like every finish() path does, so rejections are
    // distinguishable from genuinely-zero-latency responses in replays.
    response.latency_ns = NowNs() - start_ns;
    promise->set_value(std::move(response));
    return future;
  }

  // Request id for flow tracing and the stats store. Allocated only for
  // *admitted* submissions: a flow start with no matching end (e.g. on a
  // rejected request) would be a dangling arrow, which
  // tools/validate_trace.py treats as an error.
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const int64_t enqueue_ns = NowNs();
  {
    // The flow start must sit inside an open span on this thread (it
    // binds to the enclosing slice); the submit span also makes queue
    // time visible as the gap to the worker's service.handle span.
    CSPDB_TRACE_SPAN("service.submit");
    CSPDB_TRACE_FLOW_BEGIN("service.request", request_id);
    // Install the request context for the duration of the enqueue:
    // ThreadPool::Submit captures it and re-installs it in the task
    // wrapper, carrying the request identity across the thread hop.
    obs::TraceContextScope context_scope(obs::TraceContext{request_id});
    pool_->Submit([this, promise, request = std::move(request), deadline_ns,
                   request_id, enqueue_ns] {
      try {
        promise->set_value(HandleAbsolute(request, deadline_ns, request_id,
                                          NowNs() - enqueue_ns));
      } catch (...) {
        // The future must always complete and pending_ must always drop,
        // or Submit callers hang and the destructor's drain never
        // finishes.
        promise->set_exception(std::current_exception());
      }
      // Decrement and notify while holding drain_mu_: the destructor may
      // destroy drain_mu_/drain_cv_ the moment its wait observes
      // pending_ == 0, so the zero transition and the notify must both
      // happen before it can re-acquire the lock and return.
      util::MutexLock lock(drain_mu_);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        drain_cv_.NotifyAll();
      }
    });
  }
  return future;
}

void CspdbService::Submit(ServiceRequest request, int64_t timeout_ns,
                          std::function<void(Response)> done) {
  const int64_t start_ns = NowNs();
  const int64_t deadline_ns =
      AbsoluteDeadline(timeout_ns, options_.default_timeout_ns);

  const int admitted = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (options_.max_pending > 0 && admitted >= options_.max_pending) {
    {
      // Same protocol as the future path: decrement under drain_mu_ with
      // a notify so a draining destructor cannot miss the zero
      // transition.
      util::MutexLock lock(drain_mu_);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        drain_cv_.NotifyAll();
      }
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    CSPDB_COUNT("service.shed.rejected");
    Response response;
    response.status = StatusCode::kRejected;
    response.kind = KindOf(request);
    response.latency_ns = NowNs() - start_ns;
    done(std::move(response));
    return;
  }

  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const int64_t enqueue_ns = NowNs();
  {
    CSPDB_TRACE_SPAN("service.submit");
    CSPDB_TRACE_FLOW_BEGIN("service.request", request_id);
    obs::TraceContextScope context_scope(obs::TraceContext{request_id});
    pool_->Submit([this, done = std::move(done),
                   request = std::move(request), deadline_ns, request_id,
                   enqueue_ns] {
      Response response;
      try {
        response = HandleAbsolute(request, deadline_ns, request_id,
                                  NowNs() - enqueue_ns);
      } catch (...) {
        response.status = StatusCode::kRejected;
        response.kind = KindOf(request);
      }
      done(std::move(response));
      util::MutexLock lock(drain_mu_);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        drain_cv_.NotifyAll();
      }
    });
  }
}

std::optional<Response> CspdbService::Probe(const ServiceRequest& request,
                                            Fingerprint* fingerprint) {
  CSPDB_TIMER_SCOPE("service.probe");
  const int64_t start_ns = NowNs();
  const CanonicalRequest canon = Canonicalize(request);
  if (fingerprint != nullptr) *fingerprint = canon.fingerprint;
  if (!options_.enable_cache || !canon.fingerprint.exact) {
    return std::nullopt;
  }
  std::shared_ptr<const EngineAnswer> cached =
      cache_.Lookup(canon.fingerprint, KindOf(request), NowNs());
  if (cached == nullptr) return std::nullopt;

  requests_.fetch_add(1, std::memory_order_relaxed);
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  ok_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("service.requests");

  Response response;
  response.status = StatusCode::kOk;
  response.kind = KindOf(request);
  response.cache_hit = true;
  response.answer = MapBack(*cached, canon);
  response.latency_ns = NowNs() - start_ns;
  CSPDB_HISTO_NS("service.handle_ns", response.latency_ns);

  obs::RequestOutcome outcome;
  outcome.kind = static_cast<int32_t>(response.kind);
  outcome.status = static_cast<int32_t>(StatusCode::kOk);
  outcome.cache_disposition = static_cast<int32_t>(CacheDisposition::kHit);
  outcome.work_items = 0;
  outcome.wall_ns = response.latency_ns;
  outcome.queue_wait_ns = 0;
  stats_store_.Record({canon.fingerprint.lo, canon.fingerprint.hi}, outcome);
  return response;
}

ServiceStats CspdbService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.engine_invocations =
      engine_invocations_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  return s;
}

void CspdbService::InvalidateKind(RequestKind kind) {
  cache_.InvalidateKind(kind);
}

CspdbService::CanonicalRequest CspdbService::Canonicalize(
    const ServiceRequest& request) const {
  CSPDB_TIMER_SCOPE("service.canonicalize");
  CanonicalRequest canon;
  switch (KindOf(request)) {
    case RequestKind::kSolveCsp: {
      canon.csp = CanonicalizeCsp(std::get<SolveCspRequest>(request).instance);
      canon.fingerprint = canon.csp->fingerprint;
      break;
    }
    case RequestKind::kEvalCq: {
      const auto& req = std::get<EvalCqRequest>(request);
      canon.fingerprint = CombineFingerprints(
          kSaltEvalCq,
          {FingerprintQuery(req.query), FingerprintStructure(req.database)});
      break;
    }
    case RequestKind::kDatalogFixpoint: {
      const auto& req = std::get<DatalogFixpointRequest>(request);
      canon.fingerprint = CombineFingerprints(
          kSaltDatalog,
          {FingerprintProgram(req.program), FingerprintStructure(req.edb)});
      break;
    }
    case RequestKind::kCheckContainment: {
      const auto& req = std::get<CheckContainmentRequest>(request);
      canon.fingerprint = CombineFingerprints(
          kSaltContainment,
          {FingerprintQuery(req.q1), FingerprintQuery(req.q2)});
      break;
    }
  }
  return canon;
}

std::shared_ptr<const EngineAnswer> CspdbService::RunEngine(
    const ServiceRequest& request, const CanonicalRequest& canon,
    int64_t deadline_ns, int64_t* work_items) {
  engine_invocations_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("service.engine_invocations");
  CSPDB_HISTO_SCOPE("service.engine_ns");
  *work_items = 0;
  switch (KindOf(request)) {
    case RequestKind::kSolveCsp: {
      CSPDB_TIMER_SCOPE("service.engine.solve_csp");
      exec::CancellationToken cancel;
      if (deadline_ns > 0) {
        cancel.CancelAfter(std::chrono::nanoseconds(deadline_ns - NowNs()));
      }
      SolverOptions solver_options;
      solver_options.node_limit = options_.solver_node_limit;
      solver_options.cancel = &cancel;
      // Always solved in canonical space: every isomorphic request maps
      // onto the same deterministic engine run.
      BacktrackingSolver solver(canon.csp->canonical, solver_options);
      CspAnswer answer;
      answer.solution = solver.Solve();
      *work_items = solver.stats().nodes;
      if (solver.stats().aborted) return nullptr;  // deadline / node budget
      answer.complete = true;
      return std::make_shared<const EngineAnswer>(std::move(answer));
    }
    case RequestKind::kEvalCq: {
      CSPDB_TIMER_SCOPE("service.engine.eval_cq");
      const auto& req = std::get<EvalCqRequest>(request);
      const DbRelation result = Evaluate(req.query, req.database);
      *work_items = static_cast<int64_t>(result.size());
      std::vector<Tuple> tuples;
      tuples.reserve(result.size());
      for (auto row : result.rows()) tuples.push_back(row.ToTuple());
      return std::make_shared<const EngineAnswer>(
          CanonicalRows(std::move(tuples), result.arity()));
    }
    case RequestKind::kDatalogFixpoint: {
      CSPDB_TIMER_SCOPE("service.engine.datalog_fixpoint");
      const auto& req = std::get<DatalogFixpointRequest>(request);
      const DatalogResult result = EvaluateSemiNaive(req.program, req.edb);
      DatalogAnswer answer;
      answer.goal_derived = result.GoalDerived(req.program);
      const TupleSet& goal_facts = result.Facts(req.program.goal());
      std::vector<Tuple> tuples(goal_facts.begin(), goal_facts.end());
      const int goal_arity =
          std::max(0, req.program.ArityOf(req.program.goal()));
      answer.goal_facts = CanonicalRows(std::move(tuples), goal_arity);
      answer.total_idb_facts = 0;
      for (const auto& [predicate, facts] : result.idb) {
        answer.total_idb_facts += static_cast<int64_t>(facts.size());
      }
      *work_items = answer.total_idb_facts;
      return std::make_shared<const EngineAnswer>(std::move(answer));
    }
    case RequestKind::kCheckContainment: {
      CSPDB_TIMER_SCOPE("service.engine.check_containment");
      const auto& req = std::get<CheckContainmentRequest>(request);
      BoolAnswer answer;
      answer.value = IsContainedIn(req.q1, req.q2);
      *work_items = 1;
      return std::make_shared<const EngineAnswer>(answer);
    }
  }
  return nullptr;
}

EngineAnswer CspdbService::MapBack(const EngineAnswer& canonical,
                                   const CanonicalRequest& canon) const {
  if (!canon.csp.has_value()) return canonical;
  const CspAnswer& in = std::get<CspAnswer>(canonical);
  CspAnswer out;
  out.complete = in.complete;
  if (in.solution.has_value()) {
    const std::vector<int>& perm = canon.csp->perm;
    std::vector<int> solution(perm.size());
    for (std::size_t v = 0; v < perm.size(); ++v) {
      solution[v] = (*in.solution)[perm[v]];
    }
    out.solution = std::move(solution);
  }
  return EngineAnswer(std::move(out));
}

Response CspdbService::HandleAbsolute(const ServiceRequest& request,
                                      int64_t deadline_ns,
                                      uint64_t request_id,
                                      int64_t queue_wait_ns) {
  CSPDB_TIMER_SCOPE("service.handle");
  // Close the submit-side flow arrow first thing inside the handle span,
  // so even requests shed before canonicalization complete their flow
  // (every started id must be finished — validate_trace.py checks).
  if (request_id != 0) {
    CSPDB_TRACE_FLOW_END("service.request", request_id);
  }
  const int64_t start_ns = NowNs();
  requests_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("service.requests");

  Response response;
  response.kind = KindOf(request);
  response.queue_wait_ns = queue_wait_ns;

  // Engaged once the request has been canonicalized; stats-store records
  // are keyed by the canonical fingerprint, so requests shed earlier
  // (deadline passed while queued) leave no record.
  std::optional<Fingerprint> recorded_fingerprint;
  int64_t work_items = 0;

  auto finish = [&](StatusCode status) -> Response {
    response.status = status;
    response.latency_ns = NowNs() - start_ns;
    CSPDB_HISTO_NS("service.handle_ns", response.latency_ns);
    if (request_id != 0) {
      CSPDB_HISTO_NS("service.queue_wait_ns", queue_wait_ns);
    }
    if (status == StatusCode::kOk) {
      ok_.fetch_add(1, std::memory_order_relaxed);
    } else if (status == StatusCode::kDeadlineExceeded) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      CSPDB_COUNT("service.shed.deadline");
    }
    if (recorded_fingerprint.has_value()) {
      CacheDisposition disposition = CacheDisposition::kMiss;
      if (!recorded_fingerprint->exact) {
        disposition = CacheDisposition::kBypass;
      } else if (response.cache_hit) {
        disposition = CacheDisposition::kHit;
      } else if (response.coalesced) {
        disposition = CacheDisposition::kCoalesced;
      }
      obs::RequestOutcome outcome;
      outcome.kind = static_cast<int32_t>(response.kind);
      outcome.status = static_cast<int32_t>(status);
      outcome.cache_disposition = static_cast<int32_t>(disposition);
      outcome.work_items = work_items;
      outcome.wall_ns = response.latency_ns;
      outcome.queue_wait_ns = queue_wait_ns;
      stats_store_.Record(
          {recorded_fingerprint->lo, recorded_fingerprint->hi}, outcome);
    }
    return response;
  };

  // Shed before paying for canonicalization or an engine: a request whose
  // deadline passed while queued gets its explicit status immediately.
  if (DeadlinePassed(deadline_ns)) return finish(StatusCode::kDeadlineExceeded);

  const CanonicalRequest canon = Canonicalize(request);
  recorded_fingerprint = canon.fingerprint;
  const bool cacheable = options_.enable_cache && canon.fingerprint.exact;
  if (!canon.fingerprint.exact) {
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    CSPDB_COUNT("service.uncacheable");
  }

  if (cacheable) {
    std::shared_ptr<const EngineAnswer> cached =
        cache_.Lookup(canon.fingerprint, response.kind, NowNs());
    if (cached != nullptr) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      response.cache_hit = true;
      response.answer = MapBack(*cached, canon);
      return finish(StatusCode::kOk);
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    CSPDB_COUNT("service.cache.miss");
  }

  if (DeadlinePassed(deadline_ns)) return finish(StatusCode::kDeadlineExceeded);

  // The compute path: run the engine and make the answer durable before
  // it is published to coalesced waiters.
  auto compute = [&]() -> std::shared_ptr<const EngineAnswer> {
    std::shared_ptr<const EngineAnswer> answer =
        RunEngine(request, canon, deadline_ns, &work_items);
    if (answer != nullptr && cacheable) {
      cache_.Insert(canon.fingerprint, response.kind, answer, NowNs());
    }
    return answer;
  };

  std::shared_ptr<const EngineAnswer> answer;
  if (options_.enable_single_flight && canon.fingerprint.exact) {
    SingleFlight::Outcome outcome =
        single_flight_.Do(canon.fingerprint, deadline_ns, compute);
    if (outcome.coalesced) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      CSPDB_COUNT("service.coalesced");
      response.coalesced = true;
    }
    answer = std::move(outcome.answer);
  } else {
    answer = compute();
  }

  if (answer == nullptr) return finish(StatusCode::kDeadlineExceeded);
  response.answer = MapBack(*answer, canon);
  return finish(StatusCode::kOk);
}

}  // namespace cspdb::service
