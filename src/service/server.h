// CspdbService: the deadline-aware serving layer over the CSP/query
// engines (tentpole of ISSUE 5; DESIGN.md "Serving layer"). A request
// flows through four stages:
//
//   canonicalize -> result cache -> single-flight -> engine
//
// 1. The request is canonically fingerprinted (service/fingerprint.h);
//    SolveCsp requests are additionally relabeled so the engine always
//    sees the canonical instance and the cache stores canonical-space
//    answers, mapped back through each requester's own permutation.
// 2. The sharded LRU result cache (service/result_cache.h) answers
//    repeats — including negative answers (UNSAT, empty, not-contained).
// 3. Concurrent identical misses coalesce onto one engine run
//    (service/single_flight.h).
// 4. The engine runs under a CancellationToken armed with the request
//    deadline (the CSP solver cancels mid-search; the other engines
//    observe deadlines at request boundaries).
//
// Overload behaviour: Submit() maps requests onto the shared thread pool
// behind a bounded admission count — beyond it requests are REJECTED
// immediately, and requests whose deadline passes while queued are shed
// with DEADLINE_EXCEEDED before touching an engine. The service never
// queues unboundedly and never blocks a caller past its deadline.
//
// Determinism contract (verified by tests/service_differential_test.cc):
// for a fixed request, the response answer is byte-identical whether it
// was computed cold, served from cache, or coalesced onto another
// caller's run — answers are deterministic functions of the canonical
// request (rows in lexicographic order; the solver run on the canonical
// instance with default options).

#ifndef CSPDB_SERVICE_SERVER_H_
#define CSPDB_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>

#include "exec/cancellation.h"
#include "exec/thread_pool.h"
#include "obs/stats_store.h"
#include "service/fingerprint.h"
#include "service/request.h"
#include "service/result_cache.h"
#include "service/single_flight.h"
#include "util/sync.h"

namespace cspdb::service {

struct ServiceOptions {
  /// Pool for async Submit() work; nullptr means ThreadPool::Global().
  exec::ThreadPool* pool = nullptr;

  CacheConfig cache;
  bool enable_cache = true;
  bool enable_single_flight = true;

  /// Admission bound for Submit(): requests beyond this many concurrently
  /// pending (queued or executing) are REJECTED. <= 0 disables admission
  /// control (unbounded; not recommended under load).
  int max_pending = 1024;

  /// Default per-request timeout when the caller passes none; <= 0 means
  /// unlimited.
  int64_t default_timeout_ns = -1;

  /// Safety-valve node budget for the CSP solver; -1 = unlimited. A
  /// budget-aborted search is reported as DEADLINE_EXCEEDED.
  int64_t solver_node_limit = -1;

  /// Capacity of the fingerprint-keyed runtime-stats store (bounded LRU;
  /// see obs/stats_store.h).
  obs::StatsStoreOptions stats_store;
};

/// Always-compiled service counters (a per-service view of the
/// "service.*" obs metrics, which are absent in CSPDB_OBS=OFF builds).
struct ServiceStats {
  int64_t requests = 0;        ///< everything submitted, any outcome
  int64_t ok = 0;              ///< responses with StatusCode::kOk
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;    ///< exact-key lookups that missed
  int64_t coalesced = 0;       ///< served by another request's engine run
  int64_t engine_invocations = 0;
  int64_t shed_deadline = 0;   ///< DEADLINE_EXCEEDED responses
  int64_t rejected = 0;        ///< REJECTED at admission
  int64_t uncacheable = 0;     ///< inexact fingerprint: cache bypassed
};

/// How a request's answer was produced, as recorded in the stats store's
/// RequestOutcome::cache_disposition (obs/ keeps the field an opaque
/// int32; this enum is its service-side meaning).
enum class CacheDisposition {
  kMiss = 0,       ///< computed by an engine run this request paid for
  kHit = 1,        ///< served from the result cache
  kCoalesced = 2,  ///< served by another request's in-flight engine run
  kBypass = 3,     ///< inexact fingerprint: cache not consulted
};

class CspdbService {
 public:
  explicit CspdbService(ServiceOptions options = {});

  /// Blocks until every async submission has completed.
  ~CspdbService();

  CspdbService(const CspdbService&) = delete;
  CspdbService& operator=(const CspdbService&) = delete;

  /// Synchronous path: handles the request on the calling thread (the
  /// engines may still fan out onto the pool internally). `timeout_ns`
  /// is relative; <= 0 uses options.default_timeout_ns.
  Response Handle(const ServiceRequest& request, int64_t timeout_ns = -1);

  /// Asynchronous path through the admission queue and thread pool.
  /// Returns a future that always completes: with kRejected immediately
  /// when the admission bound is hit, with kDeadlineExceeded if the
  /// deadline passes while queued, with the handled response otherwise.
  std::future<Response> Submit(ServiceRequest request,
                               int64_t timeout_ns = -1);

  /// Callback flavor of the async path, for callers that must not block
  /// on a future (the net tier's event loop). `done` is invoked exactly
  /// once with the final response: inline when the request is rejected at
  /// admission, on a pool thread otherwise. An exception escaping the
  /// handler is converted into a kRejected response rather than
  /// propagated (there is no future to carry it).
  void Submit(ServiceRequest request, int64_t timeout_ns,
              std::function<void(Response)> done);

  /// Cache-only probe: canonicalizes `request`, reports its fingerprint
  /// through *fingerprint (always, hit or miss), and returns the
  /// mapped-back cached response on a hit — counted as a served request
  /// and cache hit, exactly like a Handle() that hit. On a miss nothing
  /// is counted and std::nullopt is returned; the caller follows up with
  /// Handle()/Submit(), which does its own accounting. This is the
  /// net-tier router's "is it already here?" question, asked before
  /// deciding whether to consult the owner shard.
  std::optional<Response> Probe(const ServiceRequest& request,
                                Fingerprint* fingerprint);

  ServiceStats stats() const;

  /// Drops every cached answer of `kind` (per-engine invalidation hook).
  void InvalidateKind(RequestKind kind);

  ResultCache& cache() { return cache_; }

  /// Per-fingerprint outcome history: every canonicalized request records
  /// its outcome here keyed by its canonical fingerprint, so callers (and
  /// a future adaptive dispatcher) can ask how identical prior requests
  /// behaved. Bounded LRU — see obs/stats_store.h.
  const obs::StatsStore& stats_store() const { return stats_store_; }

  /// Async submissions currently queued or executing (sampling view for
  /// gauges; already stale when returned).
  int pending() const { return pending_.load(std::memory_order_relaxed); }

 private:
  // Canonical form of a request: the cache/single-flight key, plus the
  // relabeling data SolveCsp needs to map answers back.
  struct CanonicalRequest {
    Fingerprint fingerprint;
    std::optional<CanonicalCsp> csp;  // engaged for kSolveCsp
  };

  CanonicalRequest Canonicalize(const ServiceRequest& request) const;

  // `request_id` is nonzero only on the async path (it closes the
  // submit-side flow arrow and tags the stats-store record);
  // `queue_wait_ns` is the enqueue -> task-start wait stamped by Submit.
  Response HandleAbsolute(const ServiceRequest& request, int64_t deadline_ns,
                          uint64_t request_id = 0, int64_t queue_wait_ns = 0);

  // Runs the engine for `request` (canonical instance for SolveCsp).
  // Returns nullptr iff the run was deadline/budget-aborted. On success
  // `*work_items` is set to the engine-specific work size (search nodes,
  // result rows, derived facts, ...) for the stats store.
  std::shared_ptr<const EngineAnswer> RunEngine(
      const ServiceRequest& request, const CanonicalRequest& canon,
      int64_t deadline_ns, int64_t* work_items);

  // Converts a canonical-space answer into request space (identity for
  // all kinds except SolveCsp, which un-relabels the solution).
  EngineAnswer MapBack(const EngineAnswer& canonical,
                       const CanonicalRequest& canon) const;

  ServiceOptions options_;
  exec::ThreadPool* pool_;
  ResultCache cache_;
  SingleFlight single_flight_;
  obs::StatsStore stats_store_;

  // Flow-event / stats-store request ids; 0 is reserved for "no request".
  std::atomic<uint64_t> next_request_id_{1};

  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> ok_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> coalesced_{0};
  std::atomic<int64_t> engine_invocations_{0};
  std::atomic<int64_t> shed_deadline_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> uncacheable_{0};

  // pending_ stays an atomic (Submit's admission check is a lock-free
  // fetch_add), but every decrement happens under drain_mu_ so the
  // destructor's drain wait cannot miss the zero transition.
  std::atomic<int> pending_{0};
  util::Mutex drain_mu_;
  util::CondVar drain_cv_;
};

}  // namespace cspdb::service

#endif  // CSPDB_SERVICE_SERVER_H_
