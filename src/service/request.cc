#include "service/request.h"

namespace cspdb::service {

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSolveCsp:
      return "solve_csp";
    case RequestKind::kEvalCq:
      return "eval_cq";
    case RequestKind::kDatalogFixpoint:
      return "datalog_fixpoint";
    case RequestKind::kCheckContainment:
      return "check_containment";
  }
  return "unknown";
}

RequestKind KindOf(const ServiceRequest& request) {
  return static_cast<RequestKind>(request.index());
}

const char* StatusCodeName(StatusCode status) {
  switch (status) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kRejected:
      return "REJECTED";
  }
  return "unknown";
}

std::size_t AnswerApproxBytes(const EngineAnswer& answer) {
  struct Sizer {
    std::size_t operator()(const CspAnswer& a) const {
      return sizeof(a) +
             (a.solution ? a.solution->capacity() * sizeof(int) : 0);
    }
    std::size_t operator()(const RowsAnswer& a) const {
      return sizeof(a) + a.rows.capacity() * sizeof(int);
    }
    std::size_t operator()(const DatalogAnswer& a) const {
      return sizeof(a) + a.goal_facts.rows.capacity() * sizeof(int);
    }
    std::size_t operator()(const BoolAnswer& a) const { return sizeof(a); }
  };
  return std::visit(Sizer{}, answer);
}

}  // namespace cspdb::service
