// Fingerprint-keyed result cache: a sharded LRU with a byte-accounted
// memory budget. Keys are canonical fingerprints (service/fingerprint.h),
// values are engine answers in canonical space, so every request
// isomorphic to a cached one hits regardless of its variable labeling.
//
// Negative results (UNSAT instances, empty answer sets, false
// containments) are cached like any other complete answer — repetitive
// workloads repeat their misses too.
//
// Invalidation: each request kind carries a generation counter; bumping
// it (InvalidateKind) makes every older entry of that kind a miss, and a
// per-kind TTL ages entries out on lookup. Both exist for engines whose
// answers may be recomputed under changed configuration; the entries are
// reclaimed lazily by LRU eviction.
//
// Thread safety: fully thread-safe. Shard mutexes are leaf locks (nothing
// is called while holding one), keyed by the fingerprint's low word.

#ifndef CSPDB_SERVICE_RESULT_CACHE_H_
#define CSPDB_SERVICE_RESULT_CACHE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "service/fingerprint.h"
#include "service/request.h"
#include "util/sync.h"

namespace cspdb::service {

struct CacheConfig {
  /// Total byte budget across all shards. Eviction keeps the accounted
  /// footprint (answer bytes + per-entry overhead) at or under this.
  std::size_t max_bytes = 64u << 20;

  /// Shard count (clamped to >= 1). More shards, less lock contention.
  int num_shards = 16;

  /// Per-kind time-to-live in nanoseconds; <= 0 means entries never
  /// expire. Indexed by RequestKind.
  std::array<int64_t, kNumRequestKinds> ttl_ns = {-1, -1, -1, -1};
};

/// Point-in-time counters (monotonic except bytes/entries).
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;       ///< budget-driven removals
  int64_t expirations = 0;     ///< TTL / generation removals on lookup
  std::size_t bytes = 0;       ///< currently accounted bytes
  int64_t entries = 0;         ///< currently resident entries
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached answer for `key`, or nullptr on miss. `now_ns` is
  /// a steady-clock timestamp for TTL checks. Refreshes LRU position.
  /// Inexact fingerprints never hit (they are process-unique by
  /// construction, but the fast-path check keeps intent explicit).
  std::shared_ptr<const EngineAnswer> Lookup(const Fingerprint& key,
                                             RequestKind kind,
                                             int64_t now_ns);

  /// Inserts (or replaces) the entry for `key`. Entries larger than the
  /// whole budget are dropped on the floor. Inexact keys are not stored.
  void Insert(const Fingerprint& key, RequestKind kind,
              std::shared_ptr<const EngineAnswer> answer, int64_t now_ns);

  /// Invalidates every current entry of `kind` (lazily: entries stop
  /// hitting immediately and are reclaimed by LRU pressure or lookup).
  void InvalidateKind(RequestKind kind);

  /// Drops every entry.
  void Clear();

  CacheStats stats() const;
  std::size_t max_bytes() const { return config_.max_bytes; }

 private:
  struct Entry {
    Fingerprint key;
    RequestKind kind;
    std::shared_ptr<const EngineAnswer> answer;
    std::size_t bytes = 0;
    int64_t inserted_ns = 0;
    uint64_t generation = 0;
  };

  struct Shard {
    // Leaf lock in the serving layer's hierarchy: single-flight and
    // engine code may call into the cache, but nothing is called while
    // a shard is held.
    util::Mutex mu;
    std::list<Entry> lru CSPDB_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<Fingerprint, std::list<Entry>::iterator,
                       FingerprintHash>
        index CSPDB_GUARDED_BY(mu);
    std::size_t bytes CSPDB_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const Fingerprint& key) {
    return *shards_[key.lo % shards_.size()];
  }
  // Removes `it` from `shard`.
  void RemoveLocked(Shard& shard, std::list<Entry>::iterator it)
      CSPDB_REQUIRES(shard.mu);
  // Evicts LRU entries until the shard is within its budget share.
  void EvictLocked(Shard& shard) CSPDB_REQUIRES(shard.mu);

  CacheConfig config_;
  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<std::atomic<uint64_t>, kNumRequestKinds> generations_{};

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> expirations_{0};
};

}  // namespace cspdb::service

#endif  // CSPDB_SERVICE_RESULT_CACHE_H_
