// Bottom-up least-fixpoint evaluation of Datalog programs over an EDB
// database given as a relational structure (paper, Section 4: "the
// bottom-up evaluation of the least fixed-point of the program terminates
// within a polynomial number of steps").

#ifndef CSPDB_DATALOG_EVAL_H_
#define CSPDB_DATALOG_EVAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/program.h"
#include "relational/structure.h"

namespace cspdb {

/// Derived IDB facts plus evaluation counters.
struct DatalogResult {
  /// Facts per IDB predicate (EDB predicates are not duplicated here).
  std::unordered_map<std::string, TupleSet> idb;

  int64_t iterations = 0;   ///< fixpoint rounds
  int64_t derivations = 0;  ///< rule firings (including duplicates)

  /// New facts admitted per fixpoint round (delta_sizes[i] is round i's
  /// count; sums to the total IDB size). The shape counter behind the
  /// semi-naive-vs-naive ablation; mirrored to "datalog.delta_facts".
  std::vector<int64_t> delta_sizes;

  /// Facts derived for `predicate` (empty set if none).
  const TupleSet& Facts(const std::string& predicate) const;

  /// True if the program's goal predicate derived any fact. For a 0-ary
  /// goal this is the Boolean answer.
  bool GoalDerived(const DatalogProgram& program) const;
};

/// Naive evaluation: every rule re-fired on all facts each round until no
/// new fact appears.
DatalogResult EvaluateNaive(const DatalogProgram& program,
                            const Structure& edb);

/// Semi-naive evaluation: after the first round, each rule is fired once
/// per body IDB atom with that atom restricted to the previous round's
/// delta. Produces the same facts as EvaluateNaive with fewer firings.
DatalogResult EvaluateSemiNaive(const DatalogProgram& program,
                                const Structure& edb);

}  // namespace cspdb

#endif  // CSPDB_DATALOG_EVAL_H_
