#include "datalog/program.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/check.h"

namespace cspdb {
namespace {

int DistinctVars(const std::vector<int>& vars) {
  std::set<int> s(vars.begin(), vars.end());
  return static_cast<int>(s.size());
}

std::string AtomToString(const DatalogAtom& atom) {
  std::string out = atom.predicate;
  out += "(";
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ",";
    out += "x" + std::to_string(atom.args[i]);
  }
  out += ")";
  return out;
}

}  // namespace

int DatalogRule::BodyWidth() const {
  std::set<int> vars;
  for (const DatalogAtom& atom : body) {
    vars.insert(atom.args.begin(), atom.args.end());
  }
  return static_cast<int>(vars.size());
}

int DatalogRule::HeadWidth() const { return DistinctVars(head.args); }

std::string DatalogRule::ToString() const {
  std::string out = AtomToString(head) + " :- ";
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToString(body[i]);
  }
  return out;
}

void DatalogProgram::NoteAtom(const DatalogAtom& atom) {
  auto it = arity_.find(atom.predicate);
  if (it == arity_.end()) {
    arity_.emplace(atom.predicate, static_cast<int>(atom.args.size()));
    is_idb_.emplace(atom.predicate, false);
    predicates_.push_back(atom.predicate);
  } else {
    CSPDB_CHECK_MSG(it->second == static_cast<int>(atom.args.size()),
                    "inconsistent arity for predicate " + atom.predicate);
  }
}

void DatalogProgram::AddRule(DatalogRule rule) {
  // Range-check variables and enforce safety.
  std::set<int> body_vars;
  for (const DatalogAtom& atom : rule.body) {
    for (int v : atom.args) {
      CSPDB_CHECK(v >= 0 && v < rule.num_variables);
      body_vars.insert(v);
    }
  }
  for (int v : rule.head.args) {
    CSPDB_CHECK(v >= 0 && v < rule.num_variables);
    CSPDB_CHECK_MSG(body_vars.count(v) > 0,
                    "unsafe rule: head variable not in body: " +
                        rule.ToString());
  }
  NoteAtom(rule.head);
  for (const DatalogAtom& atom : rule.body) NoteAtom(atom);
  is_idb_[rule.head.predicate] = true;
  rules_.push_back(std::move(rule));
}

void DatalogProgram::SetGoal(const std::string& predicate) {
  CSPDB_CHECK_MSG(IsIdb(predicate), "goal must be an IDB predicate");
  goal_ = predicate;
}

bool DatalogProgram::IsIdb(const std::string& predicate) const {
  auto it = is_idb_.find(predicate);
  return it != is_idb_.end() && it->second;
}

int DatalogProgram::ArityOf(const std::string& predicate) const {
  auto it = arity_.find(predicate);
  return it == arity_.end() ? -1 : it->second;
}

bool DatalogProgram::IsKDatalog(int k) const {
  for (const DatalogRule& rule : rules_) {
    if (rule.BodyWidth() > k || rule.HeadWidth() > k) return false;
  }
  return true;
}

int DatalogProgram::Width() const {
  int w = 0;
  for (const DatalogRule& rule : rules_) {
    w = std::max({w, rule.BodyWidth(), rule.HeadWidth()});
  }
  return w;
}

std::string DatalogProgram::ToString() const {
  std::string out;
  for (const DatalogRule& rule : rules_) {
    out += rule.ToString() + "\n";
  }
  if (!goal_.empty()) out += "goal: " + goal_ + "\n";
  return out;
}

DatalogProgram NonTwoColorabilityProgram() {
  DatalogProgram program;
  // P(X,Y) :- E(X,Y)      with X=0, Y=1
  program.AddRule({{"P", {0, 1}}, {{"E", {0, 1}}}, 2});
  // P(X,Y) :- P(X,Z), E(Z,W), E(W,Y)   with X=0, Y=1, Z=2, W=3
  program.AddRule(
      {{"P", {0, 1}}, {{"P", {0, 2}}, {"E", {2, 3}}, {"E", {3, 1}}}, 4});
  // Q :- P(X,X)           with X=0
  program.AddRule({{"Q", {}}, {{"P", {0, 0}}}, 1});
  program.SetGoal("Q");
  return program;
}

}  // namespace cspdb
