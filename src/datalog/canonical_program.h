// The canonical k-Datalog program rho_B of Theorem 4.5(3): for a fixed
// finite structure B and fixed k, a k-Datalog program over B's vocabulary
// whose goal is derivable on input A iff the Spoiler wins the existential
// k-pebble game on (A, B). Combined with Theorem 4.6, rho_B is the
// k-Datalog program for ¬CSP(B) whenever one exists.
//
// Construction (following Kolaitis-Vardi). IDB predicates:
//   adom/1            — the active domain of A;
//   L_{b1..bi}/i      — for 1 <= i <= k-1 and each tuple over B's domain:
//                       "the Duplicator loses from the position mapping
//                        the arguments to b1..bi";
//   __goal/0          — the Spoiler wins from the empty position.
// Rules:
//   (adom)   adom(x_j) :- R(x_1..x_r)          for every EDB R, slot j;
//   (weaken) L_{b}(x)  :- L_{b|T}(x|T), adom padding
//                        — losing positions are upward closed: the
//                          Spoiler may simply remove the extra pebbles;
//   (extend) head :- for every b in B one "witness" conjunct, where a
//            witness for b is either an EDB atom over the position's
//            variables plus the pivot y whose image under (b-tuple, b) is
//            NOT in the corresponding relation of B (the extension is an
//            immediate loss), or L_{b|S, b}(x|S, y) for a kept subset S of
//            size <= k-2 (the Duplicator's reply b leads to a position
//            with a losing sub-position containing y).
//
// The program sees only A's active domain; elements of A occurring in no
// tuple never matter when B is nonempty (any partial map extends to them
// freely), and the B-empty case is special-cased by the wrapper.
//
// The rule set is exponential in |B| and k (both fixed); keep |B| small
// (<= 4) and k <= 3 in practice.

#ifndef CSPDB_DATALOG_CANONICAL_PROGRAM_H_
#define CSPDB_DATALOG_CANONICAL_PROGRAM_H_

#include "datalog/program.h"
#include "relational/structure.h"

namespace cspdb {

/// Builds rho_B for the given template and k (requires k >= 1, k-ary
/// vocabulary, and B nonempty; the B-empty game is handled by
/// SpoilerWinsViaDatalog).
DatalogProgram CanonicalKDatalogProgram(const Structure& b, int k);

/// Decides "does the Spoiler win the existential k-pebble game on (A,B)?"
/// by evaluating rho_B on A (semi-naive). Must agree with
/// !PebbleGame(a, b, k).DuplicatorWins() — the differential tests rely on
/// this.
bool SpoilerWinsViaDatalog(const Structure& a, const Structure& b, int k);

}  // namespace cspdb

#endif  // CSPDB_DATALOG_CANONICAL_PROGRAM_H_
