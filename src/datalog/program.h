// Datalog programs (paper, Section 4): finite sets of rules over
// intensional (IDB) and extensional (EDB) predicates, with a designated
// goal. Evaluation lives in datalog/eval.h.

#ifndef CSPDB_DATALOG_PROGRAM_H_
#define CSPDB_DATALOG_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace cspdb {

/// An atom R(x_1, ..., x_n) in a rule; arguments are rule-local variable
/// ids. Arity 0 is allowed (Boolean goal predicates).
struct DatalogAtom {
  std::string predicate;
  std::vector<int> args;
};

/// A rule head :- body. Variables are rule-local, numbered
/// 0..num_variables-1. Safety (every head variable occurs in the body) is
/// enforced when the rule is added to a program.
struct DatalogRule {
  DatalogAtom head;
  std::vector<DatalogAtom> body;
  int num_variables = 0;

  /// Number of distinct variables occurring in the body.
  int BodyWidth() const;

  /// Number of distinct variables occurring in the head.
  int HeadWidth() const;

  /// "H(x0) :- E(x0,x1), P(x1)" rendering.
  std::string ToString() const;
};

/// A Datalog program: rules plus a goal predicate. Predicates occurring
/// in rule heads are IDBs; all others are EDBs.
class DatalogProgram {
 public:
  DatalogProgram() = default;

  /// Adds a rule. Checks safety and arity consistency with previous uses
  /// of the predicates involved.
  void AddRule(DatalogRule rule);

  /// Designates the goal predicate (must already occur in some head).
  void SetGoal(const std::string& predicate);

  const std::vector<DatalogRule>& rules() const { return rules_; }
  const std::string& goal() const { return goal_; }

  /// True if `predicate` occurs in some rule head.
  bool IsIdb(const std::string& predicate) const;

  /// Arity of `predicate` as used in this program; -1 if never seen.
  int ArityOf(const std::string& predicate) const;

  /// All predicate names seen, in first-use order.
  const std::vector<std::string>& predicates() const { return predicates_; }

  /// True if this is a k-Datalog program: every rule's body and head have
  /// at most k distinct variables (paper, Section 4).
  bool IsKDatalog(int k) const;

  /// The least k for which IsKDatalog(k) holds.
  int Width() const;

  std::string ToString() const;

 private:
  void NoteAtom(const DatalogAtom& atom);

  std::vector<DatalogRule> rules_;
  std::string goal_;
  std::unordered_map<std::string, int> arity_;
  std::unordered_map<std::string, bool> is_idb_;
  std::vector<std::string> predicates_;
};

/// The Section 4 example: the 4-Datalog program whose goal Q expresses
/// Non-2-Colorability (an odd cycle exists) over EDB E:
///   P(X,Y) :- E(X,Y)
///   P(X,Y) :- P(X,Z), E(Z,W), E(W,Y)
///   Q      :- P(X,X)
DatalogProgram NonTwoColorabilityProgram();

}  // namespace cspdb

#endif  // CSPDB_DATALOG_PROGRAM_H_
