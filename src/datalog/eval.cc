#include "datalog/eval.h"

#include <utility>

#include "analysis/validate_datalog.h"
#include "obs/obs.h"
#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Mutable fact store for one evaluation.
struct FactStore {
  const DatalogProgram& program;
  const Structure& edb;
  std::unordered_map<std::string, std::vector<Tuple>> idb_vec;
  std::unordered_map<std::string, TupleSet> idb_set;

  explicit FactStore(const DatalogProgram& p, const Structure& e)
      : program(p), edb(e) {}

  const std::vector<Tuple>* Candidates(const std::string& pred) const {
    if (program.IsIdb(pred)) {
      auto it = idb_vec.find(pred);
      return it == idb_vec.end() ? nullptr : &it->second;
    }
    int rel = edb.vocabulary().IndexOf(pred);
    if (rel < 0) return nullptr;
    CSPDB_CHECK_MSG(edb.vocabulary().symbol(rel).arity ==
                        program.ArityOf(pred),
                    "EDB arity mismatch for " + pred);
    return &edb.tuples(rel);
  }

  bool Known(const std::string& pred, const Tuple& fact) const {
    auto it = idb_set.find(pred);
    return it != idb_set.end() && it->second.count(fact) > 0;
  }

  void Add(const std::string& pred, Tuple fact) {
    if (idb_set[pred].insert(fact).second) {
      idb_vec[pred].push_back(std::move(fact));
    }
  }
};

// Matches the body of `rule` against the store; the atom at position
// `delta_pos` (if >= 0) draws candidates from `delta` instead. Calls
// `emit(head_fact)` for every satisfying binding.
//
// Atoms are matched in a bound-first order (sideways information
// passing): the delta atom leads, then greedily the atom sharing the
// most already-bound variables — a static join-order optimization that
// never changes the result set.
class RuleMatcher {
 public:
  RuleMatcher(const DatalogRule& rule, const FactStore& store,
              int delta_pos, const std::vector<Tuple>* delta)
      : rule_(rule), store_(store), delta_pos_(delta_pos), delta_(delta) {
    bindings_.assign(rule.num_variables, kUnassigned);
    // Plan the matching order.
    std::vector<char> placed(rule.body.size(), 0);
    std::vector<char> bound(rule.num_variables, 0);
    auto place = [&](std::size_t i) {
      order_.push_back(static_cast<int>(i));
      placed[i] = 1;
      for (int v : rule.body[i].args) bound[v] = 1;
    };
    if (delta_pos >= 0) place(static_cast<std::size_t>(delta_pos));
    while (order_.size() < rule.body.size()) {
      int best = -1;
      int best_bound = -1;
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        if (placed[i]) continue;
        int bound_count = 0;
        for (int v : rule.body[i].args) bound_count += bound[v];
        if (bound_count > best_bound) {
          best = static_cast<int>(i);
          best_bound = bound_count;
        }
      }
      place(static_cast<std::size_t>(best));
    }
  }

  template <typename Emit>
  void Run(Emit&& emit) {
    Recurse(0, emit);
  }

 private:
  template <typename Emit>
  void Recurse(std::size_t order_idx, Emit&& emit) {
    if (order_idx == order_.size()) {
      Tuple head;
      head.reserve(rule_.head.args.size());
      for (int v : rule_.head.args) {
        CSPDB_CHECK(bindings_[v] != kUnassigned);  // safety guarantees this
        head.push_back(bindings_[v]);
      }
      emit(std::move(head));
      return;
    }
    int atom_idx = order_[order_idx];
    const DatalogAtom& atom = rule_.body[atom_idx];
    const std::vector<Tuple>* candidates =
        atom_idx == delta_pos_ ? delta_
                               : store_.Candidates(atom.predicate);
    if (candidates == nullptr) return;
    for (const Tuple& t : *candidates) {
      // Try to unify atom args with t.
      std::vector<int> newly_bound;
      bool ok = true;
      for (std::size_t i = 0; i < atom.args.size(); ++i) {
        int v = atom.args[i];
        if (bindings_[v] == kUnassigned) {
          bindings_[v] = t[i];
          newly_bound.push_back(v);
        } else if (bindings_[v] != t[i]) {
          ok = false;
          break;
        }
      }
      if (ok) Recurse(order_idx + 1, emit);
      for (int v : newly_bound) bindings_[v] = kUnassigned;
    }
  }

  const DatalogRule& rule_;
  const FactStore& store_;
  int delta_pos_;
  const std::vector<Tuple>* delta_;
  std::vector<int> bindings_;
  std::vector<int> order_;
};

}  // namespace

const TupleSet& DatalogResult::Facts(const std::string& predicate) const {
  static const TupleSet* empty = new TupleSet();
  auto it = idb.find(predicate);
  return it == idb.end() ? *empty : it->second;
}

bool DatalogResult::GoalDerived(const DatalogProgram& program) const {
  CSPDB_CHECK_MSG(!program.goal().empty(), "program has no goal");
  return !Facts(program.goal()).empty();
}

DatalogResult EvaluateNaive(const DatalogProgram& program,
                            const Structure& edb) {
  CSPDB_TIMER_SCOPE("datalog.naive");
  FactStore store(program, edb);
  DatalogResult result;
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    CSPDB_COUNT("datalog.iterations");
    std::vector<std::pair<std::string, Tuple>> pending;
    for (const DatalogRule& rule : program.rules()) {
      RuleMatcher matcher(rule, store, -1, nullptr);
      matcher.Run([&](Tuple head) {
        ++result.derivations;
        CSPDB_COUNT("datalog.derivations");
        if (!store.Known(rule.head.predicate, head)) {
          pending.push_back({rule.head.predicate, std::move(head)});
        }
      });
    }
    int64_t admitted = 0;
    for (auto& [pred, fact] : pending) {
      if (!store.Known(pred, fact)) {
        store.Add(pred, std::move(fact));
        changed = true;
        ++admitted;
      }
    }
    result.delta_sizes.push_back(admitted);
    CSPDB_COUNT_N("datalog.delta_facts", admitted);
    CSPDB_TRACE_COUNTER("datalog.delta", admitted);
  }
  result.idb = std::move(store.idb_set);
  CSPDB_AUDIT(AuditOrDie("naive Datalog fixpoint",
                         ValidateDatalogResult(program, edb, result)));
  return result;
}

DatalogResult EvaluateSemiNaive(const DatalogProgram& program,
                                const Structure& edb) {
  CSPDB_TIMER_SCOPE("datalog.semi_naive");
  FactStore store(program, edb);
  DatalogResult result;

  // Round 0: all rules against the (empty-IDB) store.
  std::unordered_map<std::string, std::vector<Tuple>> delta;
  ++result.iterations;
  CSPDB_COUNT("datalog.iterations");
  for (const DatalogRule& rule : program.rules()) {
    RuleMatcher matcher(rule, store, -1, nullptr);
    matcher.Run([&](Tuple head) {
      ++result.derivations;
      CSPDB_COUNT("datalog.derivations");
      delta[rule.head.predicate].push_back(std::move(head));
    });
  }

  while (true) {
    // Merge the delta, deduplicating against known facts.
    std::unordered_map<std::string, std::vector<Tuple>> fresh;
    int64_t admitted = 0;
    for (auto& [pred, facts] : delta) {
      for (Tuple& fact : facts) {
        if (!store.Known(pred, fact)) {
          fresh[pred].push_back(fact);
          store.Add(pred, std::move(fact));
          ++admitted;
        }
      }
    }
    result.delta_sizes.push_back(admitted);
    CSPDB_COUNT_N("datalog.delta_facts", admitted);
    CSPDB_TRACE_COUNTER("datalog.delta", admitted);
    if (fresh.empty()) break;
    ++result.iterations;
    CSPDB_COUNT("datalog.iterations");

    // Fire each rule once per IDB body position, with that position
    // restricted to the fresh facts.
    std::unordered_map<std::string, std::vector<Tuple>> next_delta;
    for (const DatalogRule& rule : program.rules()) {
      for (std::size_t p = 0; p < rule.body.size(); ++p) {
        const std::string& pred = rule.body[p].predicate;
        if (!program.IsIdb(pred)) continue;
        auto it = fresh.find(pred);
        if (it == fresh.end()) continue;
        RuleMatcher matcher(rule, store, static_cast<int>(p), &it->second);
        matcher.Run([&](Tuple head) {
          ++result.derivations;
          CSPDB_COUNT("datalog.derivations");
          if (!store.Known(rule.head.predicate, head)) {
            next_delta[rule.head.predicate].push_back(std::move(head));
          }
        });
      }
    }
    delta = std::move(next_delta);
  }
  result.idb = std::move(store.idb_set);
  CSPDB_AUDIT(AuditOrDie("semi-naive Datalog fixpoint",
                         ValidateDatalogResult(program, edb, result)));
  return result;
}

}  // namespace cspdb
