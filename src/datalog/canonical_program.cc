#include "datalog/canonical_program.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/validate_datalog.h"
#include "datalog/eval.h"
#include "util/check.h"

namespace cspdb {
namespace {

constexpr char kAdom[] = "adom";
constexpr char kGoal[] = "__goal";

std::string LossPredicate(const Tuple& bs) {
  std::string name = "L[";
  for (std::size_t i = 0; i < bs.size(); ++i) {
    if (i > 0) name += ",";
    name += std::to_string(bs[i]);
  }
  name += "]";
  return name;
}

// All tuples over [0, m) of length len, in lexicographic order.
std::vector<Tuple> AllTuples(int m, int len) {
  std::vector<Tuple> out;
  Tuple current(len, 0);
  if (len == 0) {
    out.push_back(current);
    return out;
  }
  if (m == 0) return out;
  while (true) {
    out.push_back(current);
    int pos = len - 1;
    while (pos >= 0 && ++current[pos] == m) current[pos--] = 0;
    if (pos < 0) break;
  }
  return out;
}

// All subsets of {0, ..., n-1} with size <= max_size.
std::vector<std::vector<int>> Subsets(int n, int max_size) {
  std::vector<std::vector<int>> out;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<int> s;
    for (int j = 0; j < n; ++j) {
      if (mask & (1 << j)) s.push_back(j);
    }
    if (static_cast<int>(s.size()) <= max_size) out.push_back(std::move(s));
  }
  return out;
}

// One witness conjunct: an atom over variables {0..i-1} + pivot i.
struct Witness {
  DatalogAtom atom;
};

// Helper accumulating a rule body without duplicate atoms.
class BodyBuilder {
 public:
  void Add(const DatalogAtom& atom) {
    std::string key = atom.predicate;
    for (int v : atom.args) key += "," + std::to_string(v);
    if (seen_.insert(key).second) body_.push_back(atom);
  }

  std::vector<DatalogAtom> Take() { return std::move(body_); }

 private:
  std::set<std::string> seen_;
  std::vector<DatalogAtom> body_;
};

class ProgramBuilder {
 public:
  ProgramBuilder(const Structure& b, int k) : b_(b), k_(k) {}

  DatalogProgram Build() {
    AddAdomRules();
    AddWeakenRules();
    AddExtendRules();
    if (!goal_present_) {
      // No position is ever losing; keep the goal predicate defined with
      // an unsatisfiable rule (the EDB predicate __never never holds).
      program_.AddRule({{kGoal, {}}, {{"__never", {0}}}, 1});
    }
    program_.SetGoal(kGoal);
    return std::move(program_);
  }

 private:
  void AddRuleDeduped(DatalogRule rule) {
    if (rule_strings_.insert(rule.ToString()).second) {
      program_.AddRule(std::move(rule));
    }
  }

  void AddAdomRules() {
    const Vocabulary& voc = b_.vocabulary();
    for (int r = 0; r < voc.size(); ++r) {
      int arity = voc.symbol(r).arity;
      CSPDB_CHECK_MSG(arity <= k_, "vocabulary must be k-ary");
      DatalogAtom body_atom{voc.symbol(r).name, {}};
      for (int j = 0; j < arity; ++j) body_atom.args.push_back(j);
      for (int j = 0; j < arity; ++j) {
        AddRuleDeduped({{kAdom, {j}}, {body_atom}, arity});
      }
    }
  }

  void AddWeakenRules() {
    for (int i = 2; i <= k_ - 1; ++i) {
      for (const Tuple& bs : AllTuples(b_.domain_size(), i)) {
        for (const std::vector<int>& kept : Subsets(i, i - 1)) {
          if (kept.empty()) continue;
          Tuple sub_bs;
          DatalogAtom sub_atom{"", {}};
          for (int j : kept) {
            sub_bs.push_back(bs[j]);
            sub_atom.args.push_back(j);
          }
          sub_atom.predicate = LossPredicate(sub_bs);
          BodyBuilder body;
          body.Add(sub_atom);
          for (int j = 0; j < i; ++j) {
            bool in_kept = false;
            for (int x : kept) {
              if (x == j) {
                in_kept = true;
                break;
              }
            }
            if (!in_kept) body.Add({kAdom, {j}});
          }
          DatalogAtom head{LossPredicate(bs), {}};
          for (int j = 0; j < i; ++j) head.args.push_back(j);
          AddRuleDeduped({head, body.Take(), i});
        }
      }
    }
  }

  // Witness options for Duplicator reply `b` at position (x0..x_{i-1} ->
  // bs) with pivot variable i.
  std::vector<Witness> WitnessOptions(const Tuple& bs, int b) const {
    int i = static_cast<int>(bs.size());
    std::vector<Witness> options;
    const Vocabulary& voc = b_.vocabulary();
    // (a) EDB atoms over {x0..x_{i-1}, y} containing y whose image under
    // (bs, b) is not a tuple of B.
    for (int r = 0; r < voc.size(); ++r) {
      int arity = voc.symbol(r).arity;
      for (const Tuple& pattern : AllTuples(i + 1, arity)) {
        bool has_pivot = false;
        Tuple image(pattern.size());
        for (std::size_t j = 0; j < pattern.size(); ++j) {
          if (pattern[j] == i) {
            has_pivot = true;
            image[j] = b;
          } else {
            image[j] = bs[pattern[j]];
          }
        }
        if (!has_pivot) continue;
        if (!b_.HasTuple(r, image)) {
          options.push_back(
              {{voc.symbol(r).name,
                std::vector<int>(pattern.begin(), pattern.end())}});
        }
      }
    }
    // (b) Recursion into a losing sub-position containing the pivot.
    for (const std::vector<int>& kept : Subsets(i, k_ - 2)) {
      Tuple sub_bs;
      DatalogAtom atom{"", {}};
      for (int j : kept) {
        sub_bs.push_back(bs[j]);
        atom.args.push_back(j);
      }
      sub_bs.push_back(b);
      atom.args.push_back(i);  // the pivot
      atom.predicate = LossPredicate(sub_bs);
      options.push_back({atom});
    }
    return options;
  }

  void AddExtendRules() {
    int m = b_.domain_size();
    for (int i = 0; i <= k_ - 1; ++i) {
      for (const Tuple& bs : AllTuples(m, i)) {
        // Witness options per Duplicator reply.
        std::vector<std::vector<Witness>> per_reply;
        bool feasible = true;
        for (int b = 0; b < m; ++b) {
          per_reply.push_back(WitnessOptions(bs, b));
          if (per_reply.back().empty()) {
            feasible = false;
            break;
          }
        }
        if (!feasible) continue;
        // Cartesian product of choices, one rule per combination.
        std::vector<int> choice(per_reply.size(), 0);
        while (true) {
          BodyBuilder body;
          for (std::size_t b = 0; b < per_reply.size(); ++b) {
            body.Add(per_reply[b][choice[b]].atom);
          }
          std::vector<DatalogAtom> atoms = body.Take();
          // adom padding for any head variable (or the pivot) missing.
          std::set<int> covered;
          for (const DatalogAtom& atom : atoms) {
            covered.insert(atom.args.begin(), atom.args.end());
          }
          BodyBuilder final_body;
          for (const DatalogAtom& atom : atoms) final_body.Add(atom);
          for (int j = 0; j <= i; ++j) {
            if (covered.count(j) == 0) final_body.Add({kAdom, {j}});
          }
          DatalogAtom head{i == 0 ? kGoal : LossPredicate(bs), {}};
          for (int j = 0; j < i; ++j) head.args.push_back(j);
          if (i == 0) goal_present_ = true;
          AddRuleDeduped({head, final_body.Take(), i + 1});
          // Advance the product counter.
          std::size_t pos = 0;
          while (pos < choice.size()) {
            if (++choice[pos] < static_cast<int>(per_reply[pos].size())) {
              break;
            }
            choice[pos] = 0;
            ++pos;
          }
          if (pos == choice.size()) break;
          if (per_reply.empty()) break;
        }
        if (per_reply.empty()) {
          // No Duplicator replies exist (B empty) — excluded by Build's
          // precondition; defensive only.
          continue;
        }
      }
    }
  }

  const Structure& b_;
  int k_;
  DatalogProgram program_;
  std::set<std::string> rule_strings_;
  bool goal_present_ = false;
};

}  // namespace

DatalogProgram CanonicalKDatalogProgram(const Structure& b, int k) {
  CSPDB_CHECK(k >= 1);
  CSPDB_CHECK_MSG(b.domain_size() > 0,
                  "empty templates are handled by SpoilerWinsViaDatalog");
  DatalogProgram program = ProgramBuilder(b, k).Build();
  CSPDB_AUDIT(AuditOrDie("canonical k-Datalog program",
                         ValidateDatalogProgram(program)));
  return program;
}

bool SpoilerWinsViaDatalog(const Structure& a, const Structure& b, int k) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  if (b.domain_size() == 0) {
    // The Spoiler wins by placing any pebble; the Duplicator has no reply.
    return a.domain_size() > 0;
  }
  DatalogProgram program = CanonicalKDatalogProgram(b, k);
  DatalogResult result = EvaluateSemiNaive(program, a);
  return result.GoalDerived(program);
}

}  // namespace cspdb
