// Validation of Datalog programs and evaluation results. The paper's
// Section 4 machinery (k-Datalog, canonical programs rho_B) only makes
// sense for safe, range-restricted, negation-free programs with
// consistent predicate arities; ValidateDatalogProgram re-checks those
// conditions on a finished program — independent of the incremental
// checks DatalogProgram::AddRule performs — so generated programs (the
// exponential rho_B construction in particular) can be audited wholesale.

#ifndef CSPDB_ANALYSIS_VALIDATE_DATALOG_H_
#define CSPDB_ANALYSIS_VALIDATE_DATALOG_H_

#include "analysis/diagnostics.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "relational/structure.h"

namespace cspdb {

/// Checks one rule in isolation:
///  - argument variable ids are within [0, num_variables);
///  - safety / range restriction: every head variable occurs in the body
///    (a rule with an empty body must have a variable-free head);
///  - every declared variable occurs somewhere (warning otherwise).
/// Predicate-arity consistency is a program-level property and checked by
/// ValidateDatalogProgram.
Diagnostics ValidateDatalogRule(const DatalogRule& rule);

/// Checks a whole program:
///  - every rule passes ValidateDatalogRule;
///  - every use of a predicate has one consistent arity;
///  - the goal, if set, occurs in some rule head (is an IDB);
///  - the program's IDB/EDB classification matches the rules (a
///    predicate is an IDB iff it occurs in a head). The programs here are
///    negation-free, so every program is trivially stratified; this
///    validator is where a stratification check would land if negation
///    were added.
Diagnostics ValidateDatalogProgram(const DatalogProgram& program);

/// Checks an evaluation result against its program and EDB:
///  - facts are recorded only for IDB predicates;
///  - every fact has its predicate's arity and uses elements of the EDB's
///    domain;
///  - the result is a model of the program on `edb`: no rule has an
///    instantiation with a satisfied body and an underived head. (The
///    fixpoint property — every derived fact is justified — is not
///    checkable from the result alone; closure under the rules is.)
Diagnostics ValidateDatalogResult(const DatalogProgram& program,
                                  const Structure& edb,
                                  const DatalogResult& result);

}  // namespace cspdb

#endif  // CSPDB_ANALYSIS_VALIDATE_DATALOG_H_
