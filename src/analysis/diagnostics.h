// Structured diagnostics for the invariant-audit layer (src/analysis).
//
// Validators inspect a finished artifact — a structure, a CSP instance, a
// decomposition, a Datalog program, a solver certificate — and report
// every violated invariant as a Diagnostic instead of aborting on the
// first one. Callers decide what to do with the list: tests assert on
// specific diagnostics, the CSPDB_AUDIT call sites in producers abort via
// AuditOrDie, and tools can print the whole report.

#ifndef CSPDB_ANALYSIS_DIAGNOSTICS_H_
#define CSPDB_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

namespace cspdb {

/// How bad a violated invariant is. Errors mean the artifact is unusable
/// (a theorem's hypothesis is false); warnings flag suspicious but
/// technically legal states (e.g. an empty constraint relation).
enum class Severity {
  kWarning,
  kError,
};

/// One violated (or suspicious) invariant. File-free: `location` is a
/// position inside the artifact ("constraint 3", "bag 7/vertex 2"), not a
/// source location.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string component;  ///< validator that produced it, e.g. "csp_instance"
  std::string location;   ///< position inside the artifact; may be empty
  std::string message;    ///< human-readable description of the violation

  /// "error[csp_instance] constraint 3: scope variable 9 out of range"
  std::string ToString() const;
};

/// The result of running a validator.
using Diagnostics = std::vector<Diagnostic>;

/// True if any diagnostic has Severity::kError.
bool HasErrors(const Diagnostics& diagnostics);

/// Number of diagnostics with Severity::kError.
int CountErrors(const Diagnostics& diagnostics);

/// One line per diagnostic (ToString), newline-terminated; empty string
/// for an empty list.
std::string FormatDiagnostics(const Diagnostics& diagnostics);

/// Appends diagnostics for one component. Validators create one sink per
/// artifact and call Error/Warning as they find violations.
class DiagnosticSink {
 public:
  /// `out` must outlive the sink.
  DiagnosticSink(std::string component, Diagnostics* out);

  void Error(std::string location, std::string message);
  void Warning(std::string location, std::string message);

  /// Number of errors emitted through this sink so far.
  int errors() const { return errors_; }

 private:
  std::string component_;
  Diagnostics* out_;
  int errors_ = 0;
};

/// Prints the diagnostics to stderr and aborts if any is an error; quiet
/// no-op otherwise. `what` names the audited artifact in the failure
/// banner. This is the funnel used by CSPDB_AUDIT call sites: producers
/// audit their own output in Debug/sanitizer builds and crash loudly on
/// a violated invariant rather than returning a corrupt certificate.
void AuditOrDie(const char* what, const Diagnostics& diagnostics);

}  // namespace cspdb

#endif  // CSPDB_ANALYSIS_DIAGNOSTICS_H_
