#include "analysis/validate_decomposition.h"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

namespace cspdb {
namespace {

// Union-find for forest checks.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  // Returns false if x and y were already connected (a cycle).
  bool Union(int x, int y) {
    int rx = Find(x), ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<int> parent_;
};

bool BagContains(const std::vector<int>& bag, int v) {
  return std::binary_search(bag.begin(), bag.end(), v);
}

std::string TupleString(const Tuple& t) {
  std::string s = "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(t[i]);
  }
  s += ")";
  return s;
}

// Checks one node-list of tree edges for validity and acyclicity.
// Returns the adjacency lists; emits diagnostics through `sink`.
std::vector<std::vector<int>> CheckForest(
    int nodes, const std::vector<std::pair<int, int>>& edges,
    DiagnosticSink* sink) {
  std::vector<std::vector<int>> adj(nodes);
  UnionFind uf(nodes);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    auto [x, y] = edges[i];
    const std::string at = "tree edge " + std::to_string(i);
    if (x < 0 || x >= nodes || y < 0 || y >= nodes) {
      sink->Error(at, "endpoint outside node range [0, " +
                          std::to_string(nodes) + ")");
      continue;
    }
    if (x == y) {
      sink->Error(at, "self-loop at node " + std::to_string(x));
      continue;
    }
    if (!uf.Union(x, y)) {
      sink->Error(at, "closes a cycle (decomposition is not a forest)");
      continue;
    }
    adj[x].push_back(y);
    adj[y].push_back(x);
  }
  return adj;
}

// Checks that the nodes whose bag contains `v` induce a connected
// subgraph of the decomposition tree (running intersection).
void CheckVertexConnected(int v, const std::vector<std::vector<int>>& bags,
                          const std::vector<std::vector<int>>& adj,
                          bool require_occurrence, DiagnosticSink* sink) {
  int nodes = static_cast<int>(bags.size());
  std::vector<int> holders;
  for (int i = 0; i < nodes; ++i) {
    if (BagContains(bags[i], v)) holders.push_back(i);
  }
  const std::string at = "vertex " + std::to_string(v);
  if (holders.empty()) {
    if (require_occurrence) sink->Error(at, "occurs in no bag");
    return;
  }
  std::vector<char> is_holder(nodes, 0);
  for (int h : holders) is_holder[h] = 1;
  std::vector<char> seen(nodes, 0);
  std::deque<int> queue{holders[0]};
  seen[holders[0]] = 1;
  int reached = 0;
  while (!queue.empty()) {
    int x = queue.front();
    queue.pop_front();
    ++reached;
    for (int y : adj[x]) {
      if (is_holder[y] && !seen[y]) {
        seen[y] = 1;
        queue.push_back(y);
      }
    }
  }
  if (reached != static_cast<int>(holders.size())) {
    sink->Error(at, "bags containing it induce " +
                        std::to_string(holders.size() - reached + 1) +
                        " components (running intersection violated)");
  }
}

// Bag well-formedness shared by both decomposition kinds. `allow_empty`
// covers hypertree bags, which may legitimately be empty after dropping
// unconstrained vertices.
void CheckBags(const std::vector<std::vector<int>>& bags, int num_vertices,
               bool allow_empty, DiagnosticSink* sink) {
  for (std::size_t i = 0; i < bags.size(); ++i) {
    const std::vector<int>& bag = bags[i];
    const std::string at = "bag " + std::to_string(i);
    if (bag.empty() && !allow_empty) {
      sink->Error(at, "empty bag");
      continue;
    }
    if (!std::is_sorted(bag.begin(), bag.end())) {
      sink->Error(at, "not sorted");
      continue;
    }
    for (std::size_t q = 0; q < bag.size(); ++q) {
      if (bag[q] < 0 || bag[q] >= num_vertices) {
        sink->Error(at, "vertex " + std::to_string(bag[q]) +
                            " outside [0, " + std::to_string(num_vertices) +
                            ")");
      }
      if (q > 0 && bag[q] == bag[q - 1]) {
        sink->Error(at, "duplicate vertex " + std::to_string(bag[q]));
      }
    }
  }
}

void CheckClaimedWidth(int claimed, int actual, DiagnosticSink* sink) {
  if (claimed >= 0 && claimed != actual) {
    sink->Error("width", "claimed width " + std::to_string(claimed) +
                             " but actual width is " + std::to_string(actual));
  }
}

}  // namespace

Diagnostics ValidateTreeDecomposition(const Graph& g,
                                      const TreeDecomposition& td,
                                      int claimed_width) {
  Diagnostics diagnostics;
  DiagnosticSink sink("tree_decomposition", &diagnostics);
  if (td.bags.empty()) {
    if (g.n != 0) {
      sink.Error("", "empty decomposition for a graph with " +
                         std::to_string(g.n) + " vertices");
    }
    CheckClaimedWidth(claimed_width, td.Width(), &sink);
    return diagnostics;
  }
  CheckBags(td.bags, g.n, /*allow_empty=*/false, &sink);
  auto adj = CheckForest(static_cast<int>(td.bags.size()), td.edges, &sink);

  for (int u = 0; u < g.n; ++u) {
    for (int v : g.adj[u]) {
      if (v < u) continue;
      bool covered = false;
      for (const auto& bag : td.bags) {
        if (BagContains(bag, u) && BagContains(bag, v)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        sink.Error("edge {" + std::to_string(u) + "," + std::to_string(v) +
                       "}",
                   "no bag contains both endpoints");
      }
    }
  }
  for (int v = 0; v < g.n; ++v) {
    CheckVertexConnected(v, td.bags, adj, /*require_occurrence=*/true, &sink);
  }
  CheckClaimedWidth(claimed_width, td.Width(), &sink);
  return diagnostics;
}

Diagnostics ValidateTreeDecompositionForStructure(const Structure& a,
                                                  const TreeDecomposition& td,
                                                  int claimed_width) {
  Diagnostics diagnostics;
  DiagnosticSink sink("tree_decomposition", &diagnostics);
  if (td.bags.empty()) {
    if (a.domain_size() != 0) {
      sink.Error("", "empty decomposition for a structure with " +
                         std::to_string(a.domain_size()) + " elements");
    }
    CheckClaimedWidth(claimed_width, td.Width(), &sink);
    return diagnostics;
  }
  CheckBags(td.bags, a.domain_size(), /*allow_empty=*/false, &sink);
  auto adj = CheckForest(static_cast<int>(td.bags.size()), td.edges, &sink);

  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) {
      bool covered = false;
      for (const auto& bag : td.bags) {
        bool inside = true;
        for (int e : t) {
          if (!BagContains(bag, e)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        sink.Error("relation '" + a.vocabulary().symbol(r).name + "' tuple " +
                       TupleString(t),
                   "contained in no bag");
      }
    }
  }
  for (int v = 0; v < a.domain_size(); ++v) {
    CheckVertexConnected(v, td.bags, adj, /*require_occurrence=*/true, &sink);
  }
  CheckClaimedWidth(claimed_width, td.Width(), &sink);
  return diagnostics;
}

Diagnostics ValidateHypertreeDecomposition(const Hypergraph& h,
                                           const HypertreeDecomposition& htd,
                                           int claimed_width) {
  Diagnostics diagnostics;
  DiagnosticSink sink("hypertree_decomposition", &diagnostics);
  int nodes = static_cast<int>(htd.chi.size());
  if (htd.lambda.size() != htd.chi.size()) {
    sink.Error("", "chi has " + std::to_string(htd.chi.size()) +
                       " nodes, lambda has " +
                       std::to_string(htd.lambda.size()));
    return diagnostics;
  }

  int num_vertices = 0;
  for (const auto& edge : h.edges) {
    for (int v : edge) num_vertices = std::max(num_vertices, v + 1);
  }
  for (const auto& bag : htd.chi) {
    for (int v : bag) num_vertices = std::max(num_vertices, v + 1);
  }
  CheckBags(htd.chi, num_vertices, /*allow_empty=*/true, &sink);
  auto adj = CheckForest(nodes, htd.edges, &sink);

  // Guard coverage: chi(t) must be inside the union of lambda(t)'s edges.
  for (int t = 0; t < nodes; ++t) {
    const std::string at = "node " + std::to_string(t);
    std::unordered_set<int> covered;
    for (int e : htd.lambda[t]) {
      if (e < 0 || e >= static_cast<int>(h.edges.size())) {
        sink.Error(at, "guard references nonexistent hyperedge " +
                           std::to_string(e));
        continue;
      }
      covered.insert(h.edges[e].begin(), h.edges[e].end());
    }
    for (int v : htd.chi[t]) {
      if (covered.count(v) == 0) {
        sink.Error(at, "bag vertex " + std::to_string(v) +
                           " not covered by the guard's hyperedges");
      }
    }
  }

  // Constraint coverage: every hyperedge inside some bag.
  for (std::size_t e = 0; e < h.edges.size(); ++e) {
    bool found = false;
    for (int t = 0; t < nodes && !found; ++t) {
      bool inside = true;
      for (int v : h.edges[e]) {
        if (!BagContains(htd.chi[t], v)) {
          inside = false;
          break;
        }
      }
      found = inside;
    }
    if (!found) {
      sink.Error("hyperedge " + std::to_string(e),
                 "contained in no bag (constraint uncovered)");
    }
  }

  // Running intersection over the vertices that occur in some hyperedge.
  std::unordered_set<int> vertices;
  for (const auto& edge : h.edges) {
    vertices.insert(edge.begin(), edge.end());
  }
  std::vector<int> sorted_vertices(vertices.begin(), vertices.end());
  std::sort(sorted_vertices.begin(), sorted_vertices.end());
  for (int v : sorted_vertices) {
    CheckVertexConnected(v, htd.chi, adj, /*require_occurrence=*/false,
                         &sink);
  }
  CheckClaimedWidth(claimed_width, htd.Width(), &sink);
  return diagnostics;
}

}  // namespace cspdb
