// Validation of CSP instances and solver certificates. ValidateSolution
// is the audit behind every tractability theorem the repo reproduces:
// whatever route produced an assignment (search, bucket elimination,
// hypertree join, consistency + greedy extension), it is re-checked as a
// genuine satisfying assignment against the original instance — tuple
// membership in each constraint's relation — never against solver state.

#ifndef CSPDB_ANALYSIS_VALIDATE_CSP_H_
#define CSPDB_ANALYSIS_VALIDATE_CSP_H_

#include <vector>

#include "analysis/diagnostics.h"
#include "csp/instance.h"
#include "relational/structure.h"

namespace cspdb {

/// Checks `csp` against the instance invariants:
///  - every constraint scope references declared variables (in
///    [0, num_variables)) and matches its relation's arity;
///  - every allowed tuple uses declared values (in [0, num_values)) and
///    has the scope's arity;
///  - the insertion-order tuple list is duplicate-free and agrees with
///    the O(1)-membership set;
///  - scopes are unique across constraints (the Section 2 w.l.o.g.
///    consolidation) and the per-variable constraint index
///    (ConstraintsOn) is exact.
/// Emits a warning for an empty constraint relation (trivially
/// unsolvable) and for an empty scope.
Diagnostics ValidateCspInstance(const CspInstance& csp);

/// Checks that `assignment` is a genuine solution of `csp`: one value per
/// variable, every value declared, and for every constraint the projected
/// value tuple is a member of the constraint's relation. Reports each
/// violated constraint separately.
Diagnostics ValidateSolution(const CspInstance& csp,
                             const std::vector<int>& assignment);

/// Checks that `h` (one image per element of `a`) is a genuine
/// homomorphism from `a` to `b`: the structures share a vocabulary, every
/// image is an element of `b`, and every tuple of every relation of `a`
/// maps into the corresponding relation of `b`.
Diagnostics ValidateHomomorphism(const Structure& a, const Structure& b,
                                 const std::vector<int>& h);

}  // namespace cspdb

#endif  // CSPDB_ANALYSIS_VALIDATE_CSP_H_
