#include "analysis/validate_datalog.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/homomorphism.h"

namespace cspdb {
namespace {

std::string TupleString(const Tuple& t) {
  std::string s = "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(t[i]);
  }
  s += ")";
  return s;
}

// Read-only fact lookup for the closure check: IDB facts from the
// result, EDB facts from the structure. A predicate absent from both is
// an empty relation (matching the evaluator's convention).
class FactView {
 public:
  FactView(const DatalogProgram& program, const Structure& edb,
           const DatalogResult& result)
      : program_(program), edb_(edb), result_(result) {}

  const std::vector<Tuple>& Candidates(const std::string& pred) const {
    auto it = cache_.find(pred);
    if (it != cache_.end()) return it->second;
    std::vector<Tuple> facts;
    if (program_.IsIdb(pred)) {
      const TupleSet& set = result_.Facts(pred);
      facts.assign(set.begin(), set.end());
    } else {
      int rel = edb_.vocabulary().IndexOf(pred);
      if (rel >= 0) facts = edb_.tuples(rel);
    }
    return cache_.emplace(pred, std::move(facts)).first->second;
  }

  bool Has(const std::string& pred, const Tuple& fact) const {
    if (program_.IsIdb(pred)) {
      return result_.Facts(pred).count(fact) > 0;
    }
    int rel = edb_.vocabulary().IndexOf(pred);
    return rel >= 0 && edb_.HasTuple(rel, fact);
  }

 private:
  const DatalogProgram& program_;
  const Structure& edb_;
  const DatalogResult& result_;
  mutable std::unordered_map<std::string, std::vector<Tuple>> cache_;
};

// Enumerates satisfying bindings of the rule body and reports rule
// instantiations whose head fact is missing from the view. Reports at
// most one violation per rule to keep the diagnostics readable.
void CheckRuleClosed(const DatalogRule& rule, int rule_index,
                     const FactView& view, DiagnosticSink* sink) {
  std::vector<int> binding(rule.num_variables, kUnassigned);
  bool reported = false;

  // Bound-first matching order (greedily pick the atom sharing the most
  // already-bound variables), mirroring the evaluator's join-order
  // optimization so auditing a program costs about one naive round.
  std::vector<int> order;
  {
    std::vector<char> placed(rule.body.size(), 0);
    std::vector<char> bound(std::max(rule.num_variables, 0), 0);
    while (order.size() < rule.body.size()) {
      int best = -1;
      int best_bound = -1;
      for (std::size_t i = 0; i < rule.body.size(); ++i) {
        if (placed[i]) continue;
        int bound_count = 0;
        for (int v : rule.body[i].args) bound_count += bound[v];
        if (bound_count > best_bound) {
          best = static_cast<int>(i);
          best_bound = bound_count;
        }
      }
      placed[best] = 1;
      for (int v : rule.body[best].args) bound[v] = 1;
      order.push_back(best);
    }
  }

  auto match = [&](auto&& self, std::size_t step) -> void {
    if (reported) return;
    if (step == rule.body.size()) {
      Tuple head_fact;
      head_fact.reserve(rule.head.args.size());
      for (int v : rule.head.args) head_fact.push_back(binding[v]);
      if (!view.Has(rule.head.predicate, head_fact)) {
        sink->Error("rule " + std::to_string(rule_index),
                    "body satisfiable but head fact " + rule.head.predicate +
                        TupleString(head_fact) +
                        " underived (result not closed under the rules)");
        reported = true;
      }
      return;
    }
    const DatalogAtom& atom = rule.body[order[step]];
    for (const Tuple& fact : view.Candidates(atom.predicate)) {
      if (fact.size() != atom.args.size()) continue;
      std::vector<int> touched;
      bool ok = true;
      for (std::size_t q = 0; q < atom.args.size(); ++q) {
        int v = atom.args[q];
        if (binding[v] == kUnassigned) {
          binding[v] = fact[q];
          touched.push_back(v);
        } else if (binding[v] != fact[q]) {
          ok = false;
          break;
        }
      }
      if (ok) self(self, step + 1);
      for (int v : touched) binding[v] = kUnassigned;
      if (reported) return;
    }
  };
  match(match, 0);
}

}  // namespace

Diagnostics ValidateDatalogRule(const DatalogRule& rule) {
  Diagnostics diagnostics;
  DiagnosticSink sink("datalog_rule", &diagnostics);
  std::vector<char> in_body(std::max(rule.num_variables, 0), 0);
  std::vector<char> occurs(std::max(rule.num_variables, 0), 0);

  for (std::size_t i = 0; i < rule.body.size(); ++i) {
    for (int v : rule.body[i].args) {
      if (v < 0 || v >= rule.num_variables) {
        sink.Error("body atom " + std::to_string(i),
                   "variable id " + std::to_string(v) + " outside [0, " +
                       std::to_string(rule.num_variables) + ")");
        continue;
      }
      in_body[v] = 1;
      occurs[v] = 1;
    }
  }
  for (int v : rule.head.args) {
    if (v < 0 || v >= rule.num_variables) {
      sink.Error("head", "variable id " + std::to_string(v) +
                             " outside [0, " +
                             std::to_string(rule.num_variables) + ")");
      continue;
    }
    occurs[v] = 1;
    if (!in_body[v]) {
      sink.Error("head", "variable " + std::to_string(v) +
                             " does not occur in the body (rule unsafe / "
                             "not range-restricted)");
    }
  }
  for (int v = 0; v < rule.num_variables; ++v) {
    if (!occurs[v]) {
      sink.Warning("", "declared variable " + std::to_string(v) +
                           " occurs in no atom");
    }
  }
  return diagnostics;
}

Diagnostics ValidateDatalogProgram(const DatalogProgram& program) {
  Diagnostics diagnostics;
  DiagnosticSink sink("datalog_program", &diagnostics);

  std::unordered_map<std::string, int> arity;
  std::unordered_map<std::string, bool> in_head;
  auto note = [&](const DatalogAtom& atom, const std::string& at) {
    auto [it, fresh] =
        arity.insert({atom.predicate, static_cast<int>(atom.args.size())});
    if (!fresh && it->second != static_cast<int>(atom.args.size())) {
      sink.Error(at, "predicate " + atom.predicate + " used with arity " +
                         std::to_string(atom.args.size()) +
                         " after earlier arity " + std::to_string(it->second));
    }
  };

  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    const DatalogRule& rule = program.rules()[i];
    const std::string at = "rule " + std::to_string(i);
    for (const Diagnostic& d : ValidateDatalogRule(rule)) {
      diagnostics.push_back(Diagnostic{
          d.severity, "datalog_program",
          at + (d.location.empty() ? "" : " " + d.location), d.message});
    }
    note(rule.head, at);
    in_head[rule.head.predicate] = true;
    for (const DatalogAtom& atom : rule.body) note(atom, at);
  }

  for (const auto& [pred, a] : arity) {
    int declared = program.ArityOf(pred);
    if (declared != a) {
      sink.Error("predicate " + pred,
                 "program declares arity " + std::to_string(declared) +
                     " but rules use arity " + std::to_string(a));
    }
    bool is_head = in_head.count(pred) > 0 && in_head[pred];
    if (program.IsIdb(pred) != is_head) {
      sink.Error("predicate " + pred,
                 program.IsIdb(pred)
                     ? "classified IDB but occurs in no rule head"
                     : "occurs in a rule head but not classified IDB");
    }
  }

  if (!program.goal().empty()) {
    if (in_head.count(program.goal()) == 0) {
      sink.Error("goal", "goal predicate " + program.goal() +
                             " occurs in no rule head");
    }
  } else if (!program.rules().empty()) {
    sink.Warning("goal", "program has rules but no designated goal");
  }
  return diagnostics;
}

Diagnostics ValidateDatalogResult(const DatalogProgram& program,
                                  const Structure& edb,
                                  const DatalogResult& result) {
  Diagnostics diagnostics;
  DiagnosticSink sink("datalog_result", &diagnostics);

  for (const auto& [pred, facts] : result.idb) {
    const std::string at = "predicate " + pred;
    if (!program.IsIdb(pred)) {
      sink.Error(at, "result records facts for a non-IDB predicate");
      continue;
    }
    int a = program.ArityOf(pred);
    for (const Tuple& fact : facts) {
      if (static_cast<int>(fact.size()) != a) {
        sink.Error(at, "fact " + TupleString(fact) + " has arity " +
                           std::to_string(fact.size()) + ", expected " +
                           std::to_string(a));
        continue;
      }
      for (int e : fact) {
        if (e < 0 || e >= edb.domain_size()) {
          sink.Error(at, "fact " + TupleString(fact) + " element " +
                             std::to_string(e) +
                             " outside the EDB domain [0, " +
                             std::to_string(edb.domain_size()) + ")");
        }
      }
    }
  }
  if (sink.errors() > 0) return diagnostics;

  // The closure check instantiates rule bodies, so it requires a
  // well-formed program (in-range variable ids in particular).
  if (HasErrors(ValidateDatalogProgram(program))) {
    sink.Error("", "program fails ValidateDatalogProgram; closure under the "
                   "rules not checked");
    return diagnostics;
  }
  FactView view(program, edb, result);
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    CheckRuleClosed(program.rules()[i], static_cast<int>(i), view, &sink);
  }
  return diagnostics;
}

}  // namespace cspdb
