// Structural validation of relational structures: every stored tuple
// respects its symbol's arity and the domain bounds, and the dual
// vector/set representation is consistent. These are the invariants the
// Feder-Vardi correspondence (paper, Section 2) silently assumes whenever
// a structure is handed to the homomorphism, game, or Datalog machinery.

#ifndef CSPDB_ANALYSIS_VALIDATE_STRUCTURE_H_
#define CSPDB_ANALYSIS_VALIDATE_STRUCTURE_H_

#include "analysis/diagnostics.h"
#include "relational/structure.h"

namespace cspdb {

/// Checks `a` against the relational-structure invariants:
///  - the vocabulary's symbols have distinct names and positive arities;
///  - every tuple of relation R has exactly arity(R) entries;
///  - every tuple entry is a domain element in [0, domain_size);
///  - the insertion-order tuple list is duplicate-free and agrees with
///    the membership set (same tuples, same count).
/// Emits a warning (not an error) for a relation with no tuples.
Diagnostics ValidateStructure(const Structure& a);

}  // namespace cspdb

#endif  // CSPDB_ANALYSIS_VALIDATE_STRUCTURE_H_
