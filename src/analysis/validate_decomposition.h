// Validation of tree and (generalized) hypertree decompositions against
// the artifacts they decompose. These are the mechanical forms of the
// paper's Section 6 definitions — vertex/tuple coverage, running
// intersection (per-vertex connected subtrees), tree-ness — plus the
// Gottlob-Leone-Scarcello guard-coverage condition for hypertrees, and an
// optional check of a claimed width against the decomposition's actual
// width. Unlike the boolean IsValid* predicates in src/treewidth/, each
// violated condition is reported as its own Diagnostic.

#ifndef CSPDB_ANALYSIS_VALIDATE_DECOMPOSITION_H_
#define CSPDB_ANALYSIS_VALIDATE_DECOMPOSITION_H_

#include "analysis/diagnostics.h"
#include "db/acyclic.h"
#include "relational/structure.h"
#include "treewidth/gaifman.h"
#include "treewidth/hypertree.h"
#include "treewidth/tree_decomposition.h"

namespace cspdb {

/// Checks `td` against the tree-decomposition conditions for graph `g`:
///  - bags are nonempty, sorted, duplicate-free subsets of the vertex set;
///  - the tree edges connect valid nodes and form a forest (no cycles);
///  - every vertex occurs in some bag;
///  - both endpoints of every graph edge share a bag;
///  - the bags containing any given vertex induce a connected subtree
///    (running intersection);
///  - if `claimed_width` >= 0, it equals td.Width().
Diagnostics ValidateTreeDecomposition(const Graph& g,
                                      const TreeDecomposition& td,
                                      int claimed_width = -1);

/// The structure form: as above, but tuple coverage replaces edge
/// coverage — every tuple of every relation of `a` must be contained in a
/// single bag (strictly stronger than covering the Gaifman edges).
Diagnostics ValidateTreeDecompositionForStructure(const Structure& a,
                                                  const TreeDecomposition& td,
                                                  int claimed_width = -1);

/// Checks `htd` against the generalized-hypertree-decomposition
/// conditions for hypergraph `h`:
///  - chi/lambda have one entry per node; bags are sorted and
///    duplicate-free; guard indices reference real hyperedges;
///  - the tree edges form a forest over valid nodes;
///  - every hyperedge is contained in some bag (constraint coverage);
///  - every bag is covered by the union of its guard's hyperedges;
///  - per-vertex bags induce connected subtrees (running intersection);
///  - if `claimed_width` >= 0, it equals htd.Width().
Diagnostics ValidateHypertreeDecomposition(const Hypergraph& h,
                                           const HypertreeDecomposition& htd,
                                           int claimed_width = -1);

}  // namespace cspdb

#endif  // CSPDB_ANALYSIS_VALIDATE_DECOMPOSITION_H_
