#include "analysis/diagnostics.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace cspdb {

std::string Diagnostic::ToString() const {
  std::string s = severity == Severity::kError ? "error[" : "warning[";
  s += component;
  s += "]";
  if (!location.empty()) {
    s += " ";
    s += location;
  }
  s += ": ";
  s += message;
  return s;
}

bool HasErrors(const Diagnostics& diagnostics) {
  return CountErrors(diagnostics) > 0;
}

int CountErrors(const Diagnostics& diagnostics) {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string FormatDiagnostics(const Diagnostics& diagnostics) {
  std::string s;
  for (const Diagnostic& d : diagnostics) {
    s += d.ToString();
    s += "\n";
  }
  return s;
}

DiagnosticSink::DiagnosticSink(std::string component, Diagnostics* out)
    : component_(std::move(component)), out_(out) {}

void DiagnosticSink::Error(std::string location, std::string message) {
  out_->push_back(Diagnostic{Severity::kError, component_,
                             std::move(location), std::move(message)});
  ++errors_;
}

void DiagnosticSink::Warning(std::string location, std::string message) {
  out_->push_back(Diagnostic{Severity::kWarning, component_,
                             std::move(location), std::move(message)});
}

void AuditOrDie(const char* what, const Diagnostics& diagnostics) {
  if (!HasErrors(diagnostics)) return;
  std::fprintf(stderr, "CSPDB_AUDIT failed: %s\n%s", what,
               FormatDiagnostics(diagnostics).c_str());
  std::abort();
}

}  // namespace cspdb
