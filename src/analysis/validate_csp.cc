#include "analysis/validate_csp.h"

#include <algorithm>
#include <map>
#include <string>

namespace cspdb {
namespace {

std::string TupleString(const Tuple& t) {
  std::string s = "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(t[i]);
  }
  s += ")";
  return s;
}

}  // namespace

Diagnostics ValidateCspInstance(const CspInstance& csp) {
  Diagnostics diagnostics;
  DiagnosticSink sink("csp_instance", &diagnostics);
  const int n = csp.num_variables();
  const int d = csp.num_values();
  if (n < 0) sink.Error("", "negative variable count " + std::to_string(n));
  if (d < 0) sink.Error("", "negative value count " + std::to_string(d));
  if (sink.errors() > 0) return diagnostics;

  std::map<std::vector<int>, int> seen_scopes;
  for (std::size_t ci = 0; ci < csp.constraints().size(); ++ci) {
    const Constraint& c = csp.constraints()[ci];
    const std::string at = "constraint " + std::to_string(ci);
    if (c.scope.empty()) sink.Warning(at, "empty scope");
    for (int v : c.scope) {
      if (v < 0 || v >= n) {
        sink.Error(at, "scope variable " + std::to_string(v) +
                           " outside [0, " + std::to_string(n) + ")");
      }
    }
    auto [it, fresh] = seen_scopes.insert({c.scope, static_cast<int>(ci)});
    if (!fresh) {
      sink.Error(at, "scope duplicates constraint " +
                         std::to_string(it->second) +
                         " (scopes must be consolidated)");
    }
    if (c.allowed.empty()) {
      sink.Warning(at, "empty relation (instance trivially unsolvable)");
    }
    TupleSet list_set;
    for (const Tuple& t : c.allowed) {
      if (t.size() != c.scope.size()) {
        sink.Error(at, "tuple " + TupleString(t) + " has arity " +
                           std::to_string(t.size()) + ", scope has arity " +
                           std::to_string(c.scope.size()));
        continue;
      }
      for (int val : t) {
        if (val < 0 || val >= d) {
          sink.Error(at, "tuple " + TupleString(t) + " value " +
                             std::to_string(val) + " outside [0, " +
                             std::to_string(d) + ")");
        }
      }
      if (!list_set.insert(t).second) {
        sink.Error(at, "duplicate tuple " + TupleString(t) +
                           " in insertion-order list");
      }
      if (c.allowed_set.count(t) == 0) {
        sink.Error(at, "tuple " + TupleString(t) +
                           " in insertion-order list but missing from the "
                           "membership set");
      }
    }
    if (c.allowed_set.size() != list_set.size()) {
      sink.Error(at, "membership set has " +
                         std::to_string(c.allowed_set.size()) +
                         " tuples, insertion-order list has " +
                         std::to_string(list_set.size()));
    }
  }

  // The per-variable index must list exactly the constraints whose scope
  // mentions the variable (each exactly once).
  for (int v = 0; v < n; ++v) {
    const std::string at = "variable " + std::to_string(v);
    std::vector<int> indexed = csp.ConstraintsOn(v);
    std::sort(indexed.begin(), indexed.end());
    if (std::adjacent_find(indexed.begin(), indexed.end()) != indexed.end()) {
      sink.Error(at, "ConstraintsOn lists a constraint twice");
    }
    std::vector<int> expected;
    for (std::size_t ci = 0; ci < csp.constraints().size(); ++ci) {
      const auto& scope = csp.constraints()[ci].scope;
      if (std::find(scope.begin(), scope.end(), v) != scope.end()) {
        expected.push_back(static_cast<int>(ci));
      }
    }
    if (indexed != expected) {
      sink.Error(at, "ConstraintsOn index disagrees with constraint scopes");
    }
  }
  return diagnostics;
}

Diagnostics ValidateSolution(const CspInstance& csp,
                             const std::vector<int>& assignment) {
  Diagnostics diagnostics;
  DiagnosticSink sink("solution", &diagnostics);
  const int n = csp.num_variables();
  if (static_cast<int>(assignment.size()) != n) {
    sink.Error("", "assignment has " + std::to_string(assignment.size()) +
                       " entries, instance has " + std::to_string(n) +
                       " variables");
    return diagnostics;
  }
  for (int v = 0; v < n; ++v) {
    if (assignment[v] < 0 || assignment[v] >= csp.num_values()) {
      sink.Error("variable " + std::to_string(v),
                 "value " + std::to_string(assignment[v]) + " outside [0, " +
                     std::to_string(csp.num_values()) + ")");
    }
  }
  if (sink.errors() > 0) return diagnostics;

  Tuple image;
  for (std::size_t ci = 0; ci < csp.constraints().size(); ++ci) {
    const Constraint& c = csp.constraints()[ci];
    image.clear();
    for (int v : c.scope) image.push_back(assignment[v]);
    if (c.allowed_set.count(image) == 0) {
      sink.Error("constraint " + std::to_string(ci),
                 "assigned tuple " + TupleString(image) +
                     " not in the allowed relation");
    }
  }
  return diagnostics;
}

Diagnostics ValidateHomomorphism(const Structure& a, const Structure& b,
                                 const std::vector<int>& h) {
  Diagnostics diagnostics;
  DiagnosticSink sink("homomorphism", &diagnostics);
  if (!(a.vocabulary() == b.vocabulary())) {
    sink.Error("", "structures have different vocabularies");
    return diagnostics;
  }
  if (static_cast<int>(h.size()) != a.domain_size()) {
    sink.Error("", "map has " + std::to_string(h.size()) +
                       " entries, source domain has " +
                       std::to_string(a.domain_size()));
    return diagnostics;
  }
  for (int e = 0; e < a.domain_size(); ++e) {
    if (h[e] < 0 || h[e] >= b.domain_size()) {
      sink.Error("element " + std::to_string(e),
                 "image " + std::to_string(h[e]) + " outside [0, " +
                     std::to_string(b.domain_size()) + ")");
    }
  }
  if (sink.errors() > 0) return diagnostics;

  for (int r = 0; r < a.vocabulary().size(); ++r) {
    const std::string rel = "relation '" + a.vocabulary().symbol(r).name + "'";
    for (const Tuple& t : a.tuples(r)) {
      Tuple image;
      image.reserve(t.size());
      for (int e : t) image.push_back(h[e]);
      if (!b.HasTuple(r, image)) {
        sink.Error(rel, "tuple " + TupleString(t) + " maps to " +
                            TupleString(image) +
                            ", which is not in the target relation");
      }
    }
  }
  return diagnostics;
}

}  // namespace cspdb
