// Umbrella header for the invariant-audit layer: structured diagnostics
// plus the deep validators for every checkable artifact the library
// produces. Producers include this and wrap calls in CSPDB_AUDIT (see
// util/check.h) so audits run in Debug/sanitizer builds and cost nothing
// in Release.

#ifndef CSPDB_ANALYSIS_ANALYSIS_H_
#define CSPDB_ANALYSIS_ANALYSIS_H_

#include "analysis/diagnostics.h"          // IWYU pragma: export
#include "analysis/validate_csp.h"         // IWYU pragma: export
#include "analysis/validate_datalog.h"     // IWYU pragma: export
#include "analysis/validate_decomposition.h"  // IWYU pragma: export
#include "analysis/validate_structure.h"   // IWYU pragma: export

#endif  // CSPDB_ANALYSIS_ANALYSIS_H_
