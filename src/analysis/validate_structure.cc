#include "analysis/validate_structure.h"

#include <string>
#include <unordered_set>

namespace cspdb {
namespace {

std::string TupleString(const Tuple& t) {
  std::string s = "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(t[i]);
  }
  s += ")";
  return s;
}

}  // namespace

Diagnostics ValidateStructure(const Structure& a) {
  Diagnostics diagnostics;
  DiagnosticSink sink("structure", &diagnostics);
  const Vocabulary& voc = a.vocabulary();

  std::unordered_set<std::string> names;
  for (int r = 0; r < voc.size(); ++r) {
    const RelationSymbol& sym = voc.symbol(r);
    if (!names.insert(sym.name).second) {
      sink.Error("symbol " + std::to_string(r),
                 "duplicate relation name '" + sym.name + "'");
    }
    if (sym.arity <= 0) {
      sink.Error("symbol " + std::to_string(r),
                 "non-positive arity " + std::to_string(sym.arity) +
                     " for relation '" + sym.name + "'");
    }
  }
  if (a.domain_size() < 0) {
    sink.Error("", "negative domain size " + std::to_string(a.domain_size()));
    return diagnostics;
  }

  for (int r = 0; r < voc.size(); ++r) {
    const RelationSymbol& sym = voc.symbol(r);
    const std::string rel = "relation '" + sym.name + "'";
    TupleSet seen;
    if (a.tuples(r).empty()) {
      sink.Warning(rel, "empty relation");
    }
    for (const Tuple& t : a.tuples(r)) {
      if (static_cast<int>(t.size()) != sym.arity) {
        sink.Error(rel, "tuple " + TupleString(t) + " has arity " +
                            std::to_string(t.size()) + ", expected " +
                            std::to_string(sym.arity));
        continue;
      }
      for (int e : t) {
        if (e < 0 || e >= a.domain_size()) {
          sink.Error(rel, "tuple " + TupleString(t) + " element " +
                              std::to_string(e) +
                              " outside domain [0, " +
                              std::to_string(a.domain_size()) + ")");
        }
      }
      if (!seen.insert(t).second) {
        sink.Error(rel, "duplicate tuple " + TupleString(t) +
                            " in insertion-order list");
      }
      if (!a.HasTuple(r, t)) {
        sink.Error(rel, "tuple " + TupleString(t) +
                            " in insertion-order list but missing from the "
                            "membership set");
      }
    }
  }
  return diagnostics;
}

}  // namespace cspdb
