// Binary wire protocol for the networked serving tier (DESIGN.md "Wire
// format"). Frames are length-prefixed with a fixed 20-byte header:
//
//   offset  size  field
//        0     4  magic      0x42445043 ("CPDB", little-endian)
//        4     1  version    kWireVersion (currently 1)
//        5     1  type       FrameType
//        6     2  flags      FrameFlags bitmask; unknown bits must be 0
//        8     8  request id caller-chosen correlation id, echoed back
//       16     4  payload    byte length of the payload that follows
//
// All integers are little-endian. The payload encodes one value per
// frame type: a ServiceRequest (kRequest), a service::Response
// (kResponse), or a UTF-8 diagnostic string (kError). kPing/kPong carry
// an empty payload. Payloads are bounded by kMaxPayloadBytes; a header
// announcing more is a protocol error, not an allocation.
//
// Versioning rules: the magic and the version byte never move. A decoder
// that sees an unknown version must fail the frame (and the connection)
// rather than guess — payload layouts may change arbitrarily between
// versions. Within a version, unknown frame types and unknown flag bits
// are protocol errors; new request kinds extend the payload's kind byte
// and bump the version.
//
// Decoding is strict and total: every read is bounds-checked, every
// count is validated against the bytes remaining (so a hostile length
// cannot drive allocation), and every decoded structure is semantically
// validated (variable ranges, arities, rule safety) *before* any
// engine-side constructor runs — the constructors CSPDB_CHECK-abort on
// malformed input, which must never be reachable from the network.
// tests/wire_test.cc fuzzes truncations, flips, and garbage under the
// ASan/UBSan CI tiers to hold that line.

#ifndef CSPDB_NET_WIRE_H_
#define CSPDB_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "service/request.h"

namespace cspdb::net {

inline constexpr uint32_t kWireMagic = 0x42445043u;  // "CPDB"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;

/// Hard ceiling on a frame payload. Large enough for any workload this
/// repo generates; small enough that a hostile length prefix cannot
/// balloon a connection buffer.
inline constexpr std::size_t kMaxPayloadBytes = 16u << 20;  // 16 MiB

enum class FrameType : uint8_t {
  kRequest = 1,   ///< payload: ServiceRequest
  kResponse = 2,  ///< payload: service::Response
  kError = 3,     ///< payload: diagnostic string; sender closes after
  kPing = 4,      ///< empty payload; peer answers kPong, same request id
  kPong = 5,
};

enum FrameFlags : uint16_t {
  /// Request must be answered by the receiving node itself — set on
  /// peer-to-peer forwards so a ring mis-configuration (two nodes that
  /// disagree about ownership) degrades to an extra hop, never a loop.
  kFlagNoForward = 1u << 0,
};
inline constexpr uint16_t kKnownFlagsMask = kFlagNoForward;

struct Frame {
  FrameType type = FrameType::kPing;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Serializes `frame` (header + payload) onto `out`.
void AppendFrame(const Frame& frame, std::vector<uint8_t>* out);

// --- payload encoders -------------------------------------------------------

void EncodeRequestPayload(const service::ServiceRequest& request,
                          std::vector<uint8_t>* out);
void EncodeResponsePayload(const service::Response& response,
                           std::vector<uint8_t>* out);
void EncodeErrorPayload(const std::string& message, std::vector<uint8_t>* out);

/// Encodes only the (status, kind, answer) triple — the deterministic
/// part of a response. Two responses to the same request must produce
/// identical AnswerBytes regardless of which node, cache, or engine run
/// produced them (the differential contract the two-node tests check).
std::vector<uint8_t> AnswerBytes(const service::Response& response);

// --- payload decoders -------------------------------------------------------
// Decoders return std::nullopt and fill *error on any structural or
// semantic violation. They never throw and never abort.

std::optional<service::ServiceRequest> DecodeRequestPayload(
    const uint8_t* data, std::size_t size, std::string* error);
std::optional<service::Response> DecodeResponsePayload(const uint8_t* data,
                                                       std::size_t size,
                                                       std::string* error);
std::optional<std::string> DecodeErrorPayload(const uint8_t* data,
                                              std::size_t size,
                                              std::string* error);

// --- frame reassembly -------------------------------------------------------

/// Incremental frame parser over a byte stream: hand it every chunk the
/// socket yields (in any split) and poll Next() for completed frames.
/// Once a protocol violation is seen the assembler is poisoned — Next()
/// reports the error until Reset() — because a stream that lied about
/// one header cannot be re-synchronized.
class FrameAssembler {
 public:
  enum class Status {
    kFrame,       ///< *frame filled with the next complete frame
    kNeedMore,    ///< no complete frame buffered yet
    kProtocolError,  ///< stream is poisoned; see error()
  };

  /// Appends raw bytes from the stream.
  void Feed(const uint8_t* data, std::size_t size);

  /// Extracts the next complete frame, if any.
  Status Next(Frame* frame);

  const std::string& error() const { return error_; }

  /// Bytes currently buffered (for backpressure accounting).
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  void Reset();

 private:
  std::vector<uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix already handed out as frames
  std::string error_;
  bool poisoned_ = false;
};

}  // namespace cspdb::net

#endif  // CSPDB_NET_WIRE_H_
