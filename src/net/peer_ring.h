// Consistent-hash ownership ring over canonical fingerprints. Each node
// (self included) is placed on a 64-bit ring at kVirtualNodes points;
// a fingerprint is owned by the first node clockwise from its hash.
// Because fingerprints are isomorphism-sound (service/fingerprint.h),
// ownership is a pure function of the *canonical form* of a request —
// every node maps a structurally-identical request to the same owner,
// which is what makes "ask the owner before running the engine" find
// cluster-wide cache hits without any coordination protocol.

#ifndef CSPDB_NET_PEER_RING_H_
#define CSPDB_NET_PEER_RING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/fingerprint.h"

namespace cspdb::net {

/// One cluster member. `id` is the stable ring identity (host:port of its
/// listen address); nodes must agree on every member's id for ownership
/// to agree.
struct PeerId {
  std::string id;
  friend bool operator==(const PeerId&, const PeerId&) = default;
};

class PeerRing {
 public:
  static constexpr int kVirtualNodes = 64;

  /// Builds the ring over `members` (order-insensitive: the ring layout
  /// depends only on the member id strings). Duplicate ids collapse.
  explicit PeerRing(std::vector<PeerId> members);

  /// The id owning `fingerprint`. The ring must be nonempty.
  const std::string& OwnerOf(const service::Fingerprint& fingerprint) const;

  /// Number of distinct members.
  int size() const { return static_cast<int>(members_.size()); }

  const std::vector<std::string>& members() const { return members_; }

  /// Deterministic 64-bit point hash used for ring placement; exposed so
  /// tests can verify the layout is order- and process-independent.
  static uint64_t PointHash(const std::string& label);

 private:
  struct Point {
    uint64_t position;
    int member;  // index into members_
  };

  std::vector<std::string> members_;
  std::vector<Point> points_;  // sorted by position
};

}  // namespace cspdb::net

#endif  // CSPDB_NET_PEER_RING_H_
