// A single-threaded, non-blocking epoll event loop. All fd handlers run
// on the loop thread; other threads interact only through Post() (a
// task queue drained on the loop thread, woken via an eventfd) and
// Stop(). This is the only concurrency rule in the net tier: sockets,
// buffers, and connection state are loop-thread-owned and need no locks.

#ifndef CSPDB_NET_EVENT_LOOP_H_
#define CSPDB_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/sync.h"

namespace cspdb::net {

class EventLoop {
 public:
  /// Called with the ready epoll event mask (EPOLLIN/EPOLLOUT/...).
  using FdHandler = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- loop-thread-only fd registry -----------------------------------------

  /// Registers `fd` for `events`; `handler` fires on the loop thread.
  /// The loop never closes registered fds — owners do, after RemoveFd.
  void AddFd(int fd, uint32_t events, FdHandler handler);

  /// Changes the interest mask of a registered fd.
  void UpdateFd(int fd, uint32_t events);

  /// Unregisters `fd`. Safe to call from inside its own handler.
  void RemoveFd(int fd);

  // --- cross-thread entry points --------------------------------------------

  /// Enqueues `task` to run on the loop thread; wakes the loop if it is
  /// blocked in epoll_wait. Callable from any thread, including the loop
  /// thread itself (the task still runs from the queue, not inline).
  void Post(std::function<void()> task);

  /// Asks the loop to return from Run(). Callable from any thread.
  void Stop();

  // --- driving --------------------------------------------------------------

  /// Runs until Stop(). `tick` (optional) fires roughly every
  /// `tick_interval_ms` on the loop thread — the hook idle-timeout and
  /// retry bookkeeping hang off. Posted tasks are always drained before
  /// the loop blocks again, so a Stop() posted from a task takes effect
  /// immediately.
  void Run(int64_t tick_interval_ms = 0,
           std::function<void()> tick = nullptr);

 private:
  void DrainPosted();
  void DrainWakeFd();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; written by Post()/Stop()

  // Registrations are keyed by a never-reused token, and the token (not
  // the fd) is what epoll hands back with each event. Kernels queue
  // events per registration, so within one epoll_wait batch a handler
  // can close an fd and a later handler can accept a new connection
  // that reuses the same fd number; fd-keyed dispatch would route the
  // old socket's stale queued event to the new connection. Loop thread
  // only.
  uint64_t next_token_ = 1;
  std::unordered_map<uint64_t, FdHandler> handlers_;  // token -> handler
  std::unordered_map<int, uint64_t> tokens_;          // fd -> live token

  util::Mutex mu_;
  std::vector<std::function<void()>> posted_ CSPDB_GUARDED_BY(mu_);
  bool stop_requested_ CSPDB_GUARDED_BY(mu_) = false;
};

}  // namespace cspdb::net

#endif  // CSPDB_NET_EVENT_LOOP_H_
