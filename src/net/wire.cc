#include "net/wire.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace cspdb::net {
namespace {

using service::BoolAnswer;
using service::CheckContainmentRequest;
using service::CspAnswer;
using service::DatalogAnswer;
using service::DatalogFixpointRequest;
using service::EngineAnswer;
using service::EvalCqRequest;
using service::RequestKind;
using service::Response;
using service::RowsAnswer;
using service::ServiceRequest;
using service::SolveCspRequest;
using service::StatusCode;

// Sanity ceilings. Workloads this repo generates sit orders of magnitude
// below them; anything above is either corruption or an attack, and the
// ceilings keep a hostile count from meaning a giant allocation even
// when it is consistent with the payload length. kMaxDomain is a
// network-facing ceiling, deliberately far below what the engines can
// handle in-process: CspInstance's constructor allocates per-variable
// bookkeeping before any constraint bytes are read, so this bound (not
// the payload length) is what caps how much allocation a small hostile
// header can drive.
constexpr int kMaxDomain = 1 << 16;      // variables / values / elements
constexpr int kMaxArity = 64;            // constraint scopes, relations
constexpr int kMaxRuleVariables = 4096;  // rule-local datalog variables
constexpr std::size_t kMaxNameBytes = 256;
constexpr std::size_t kMaxErrorBytes = 64 << 10;

// --- primitive writer -------------------------------------------------------

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI32(int32_t v, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

void PutI32Span(const std::vector<int>& v, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(v.size()), out);
  for (int x : v) PutI32(x, out);
}

// --- primitive reader -------------------------------------------------------

// Bounds-checked cursor over the payload. Every Read* returns false once
// the reader has failed; decode functions bail on the first failure and
// surface reader.error(). No Read* ever touches bytes past `size`.
class Reader {
 public:
  Reader(const uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::size_t remaining() const { return size_ - pos_; }

  bool Fail(const std::string& message) {
    if (ok_) {
      ok_ = false;
      error_ = message;
    }
    return false;
  }

  bool ReadU8(uint8_t* v) {
    if (!Require(1)) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (!Require(2)) return false;
    *v = static_cast<uint16_t>(data_[pos_] |
                               (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (!Require(4)) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (!Require(8)) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }

  bool ReadI32(int* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool ReadBool(bool* v) {
    uint8_t b = 0;
    if (!ReadU8(&b)) return false;
    if (b > 1) return Fail("boolean byte not 0 or 1");
    *v = b != 0;
    return true;
  }

  /// Length-prefixed count whose elements occupy at least
  /// `min_bytes_per_element` each: bounds the count by the bytes left so
  /// a lying prefix cannot drive a reserve().
  bool ReadCount(std::size_t min_bytes_per_element, std::size_t max_count,
                 std::size_t* count) {
    uint32_t raw = 0;
    if (!ReadU32(&raw)) return false;
    if (raw > max_count) return Fail("count exceeds protocol maximum");
    if (min_bytes_per_element > 0 &&
        static_cast<std::size_t>(raw) > remaining() / min_bytes_per_element) {
      return Fail("count exceeds remaining payload bytes");
    }
    *count = raw;
    return true;
  }

  bool ReadString(std::size_t max_bytes, std::string* s) {
    std::size_t len = 0;
    if (!ReadCount(1, max_bytes, &len)) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  /// u32 count + that many i32s, each validated into [lo, hi].
  bool ReadI32Array(int lo, int hi, std::size_t max_count,
                    std::vector<int>* out) {
    std::size_t count = 0;
    if (!ReadCount(4, max_count, &count)) return false;
    out->clear();
    out->reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      int v = 0;
      if (!ReadI32(&v)) return false;
      if (v < lo || v > hi) return Fail("array element out of range");
      out->push_back(v);
    }
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  bool Require(std::size_t bytes) {
    if (remaining() < bytes) return Fail("payload truncated");
    return true;
  }

  const uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// --- CSP instances ----------------------------------------------------------

void EncodeCsp(const CspInstance& csp, std::vector<uint8_t>* out) {
  PutI32(csp.num_variables(), out);
  PutI32(csp.num_values(), out);
  PutU32(static_cast<uint32_t>(csp.constraints().size()), out);
  for (const Constraint& c : csp.constraints()) {
    PutI32Span(c.scope, out);
    PutU32(static_cast<uint32_t>(c.allowed.size()), out);
    for (const Tuple& t : c.allowed) {
      for (int v : t) PutI32(v, out);
    }
  }
}

bool DecodeCsp(Reader* r, std::optional<CspInstance>* out) {
  int num_variables = 0;
  int num_values = 0;
  if (!r->ReadI32(&num_variables) || !r->ReadI32(&num_values)) return false;
  if (num_variables < 0 || num_variables > kMaxDomain) {
    return r->Fail("csp variable count out of range");
  }
  if (num_values < 0 || num_values > kMaxDomain) {
    return r->Fail("csp value count out of range");
  }
  // CspInstance(num_variables, ...) resizes a per-variable vector before
  // a single constraint byte is decoded. Every useful variable occurs in
  // some constraint scope (4 bytes each), so bounding the count by the
  // bytes actually sent keeps a ~30-byte hostile header from driving a
  // large allocation while rejecting no instance a real client encodes.
  if (static_cast<std::size_t>(num_variables) > r->remaining()) {
    return r->Fail("csp variable count exceeds remaining payload bytes");
  }
  std::size_t num_constraints = 0;
  // A constraint is at least a scope length + tuple count (8 bytes).
  if (!r->ReadCount(8, 1u << 20, &num_constraints)) return false;
  out->emplace(num_variables, num_values);
  for (std::size_t i = 0; i < num_constraints; ++i) {
    std::vector<int> scope;
    if (!r->ReadI32Array(0, num_variables - 1, kMaxArity, &scope)) {
      return false;
    }
    if (scope.empty()) return r->Fail("constraint scope is empty");
    const std::size_t arity = scope.size();
    std::size_t num_tuples = 0;
    if (!r->ReadCount(4 * arity, 1u << 24, &num_tuples)) return false;
    std::vector<Tuple> allowed;
    allowed.reserve(num_tuples);
    for (std::size_t t = 0; t < num_tuples; ++t) {
      Tuple tuple(arity);
      for (std::size_t k = 0; k < arity; ++k) {
        if (!r->ReadI32(&tuple[k])) return false;
        if (tuple[k] < 0 || tuple[k] >= num_values) {
          return r->Fail("constraint tuple value out of range");
        }
      }
      allowed.push_back(std::move(tuple));
    }
    (*out)->AddConstraint(std::move(scope), std::move(allowed));
  }
  return true;
}

// --- structures -------------------------------------------------------------

void EncodeStructure(const Structure& s, std::vector<uint8_t>* out) {
  const Vocabulary& voc = s.vocabulary();
  PutU32(static_cast<uint32_t>(voc.size()), out);
  for (int i = 0; i < voc.size(); ++i) {
    PutString(voc.symbol(i).name, out);
    PutI32(voc.symbol(i).arity, out);
  }
  PutI32(s.domain_size(), out);
  for (int rel = 0; rel < voc.size(); ++rel) {
    const std::vector<Tuple>& tuples = s.tuples(rel);
    PutU32(static_cast<uint32_t>(tuples.size()), out);
    for (const Tuple& t : tuples) {
      for (int e : t) PutI32(e, out);
    }
  }
}

bool DecodeStructure(Reader* r, std::optional<Structure>* out) {
  std::size_t num_symbols = 0;
  // name length + arity is at least 8 bytes per symbol.
  if (!r->ReadCount(8, 1u << 16, &num_symbols)) return false;
  Vocabulary voc;
  std::unordered_set<std::string> names;
  std::vector<int> arities;
  arities.reserve(num_symbols);
  for (std::size_t i = 0; i < num_symbols; ++i) {
    std::string name;
    int arity = 0;
    if (!r->ReadString(kMaxNameBytes, &name) || !r->ReadI32(&arity)) {
      return false;
    }
    if (name.empty()) return r->Fail("relation symbol name is empty");
    if (arity < 1 || arity > kMaxArity) {
      return r->Fail("relation arity out of range");
    }
    if (!names.insert(name).second) {
      return r->Fail("duplicate relation symbol name");
    }
    voc.AddSymbol(name, arity);
    arities.push_back(arity);
  }
  int domain_size = 0;
  if (!r->ReadI32(&domain_size)) return false;
  if (domain_size < 0 || domain_size > kMaxDomain) {
    return r->Fail("structure domain size out of range");
  }
  out->emplace(std::move(voc), domain_size);
  for (std::size_t rel = 0; rel < num_symbols; ++rel) {
    const std::size_t arity = static_cast<std::size_t>(arities[rel]);
    std::size_t num_tuples = 0;
    if (!r->ReadCount(4 * arity, 1u << 24, &num_tuples)) return false;
    for (std::size_t t = 0; t < num_tuples; ++t) {
      Tuple tuple(arity);
      for (std::size_t k = 0; k < arity; ++k) {
        if (!r->ReadI32(&tuple[k])) return false;
        if (tuple[k] < 0 || tuple[k] >= domain_size) {
          return r->Fail("structure tuple element out of range");
        }
      }
      (*out)->AddTuple(static_cast<int>(rel), std::move(tuple));
    }
  }
  return true;
}

// --- conjunctive queries ----------------------------------------------------

void EncodeQuery(const ConjunctiveQuery& q, std::vector<uint8_t>* out) {
  PutI32(q.num_variables(), out);
  PutI32Span(q.head(), out);
  PutU32(static_cast<uint32_t>(q.body().size()), out);
  for (const Atom& atom : q.body()) {
    PutString(atom.predicate, out);
    PutI32Span(atom.args, out);
  }
}

bool DecodeQuery(Reader* r, std::optional<ConjunctiveQuery>* out) {
  int num_variables = 0;
  if (!r->ReadI32(&num_variables)) return false;
  if (num_variables < 0 || num_variables > kMaxDomain) {
    return r->Fail("query variable count out of range");
  }
  std::vector<int> head;
  if (!r->ReadI32Array(0, num_variables - 1, 1u << 16, &head)) return false;
  std::size_t num_atoms = 0;
  // predicate length + args length is at least 8 bytes per atom.
  if (!r->ReadCount(8, 1u << 20, &num_atoms)) return false;
  std::vector<Atom> body;
  body.reserve(num_atoms);
  std::unordered_map<std::string, std::size_t> arity_of;
  for (std::size_t i = 0; i < num_atoms; ++i) {
    Atom atom;
    if (!r->ReadString(kMaxNameBytes, &atom.predicate)) return false;
    if (atom.predicate.empty()) return r->Fail("atom predicate is empty");
    if (!r->ReadI32Array(0, num_variables - 1, kMaxArity, &atom.args)) {
      return false;
    }
    if (atom.args.empty()) return r->Fail("atom argument list is empty");
    auto [it, inserted] = arity_of.emplace(atom.predicate, atom.args.size());
    if (!inserted && it->second != atom.args.size()) {
      return r->Fail("inconsistent arity for predicate " + atom.predicate);
    }
    body.push_back(std::move(atom));
  }
  out->emplace(num_variables, std::move(head), std::move(body));
  return true;
}

// --- datalog programs -------------------------------------------------------

void EncodeDatalogAtom(const DatalogAtom& atom, std::vector<uint8_t>* out) {
  PutString(atom.predicate, out);
  PutI32Span(atom.args, out);
}

void EncodeProgram(const DatalogProgram& program, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(program.rules().size()), out);
  for (const DatalogRule& rule : program.rules()) {
    EncodeDatalogAtom(rule.head, out);
    PutU32(static_cast<uint32_t>(rule.body.size()), out);
    for (const DatalogAtom& atom : rule.body) EncodeDatalogAtom(atom, out);
    PutI32(rule.num_variables, out);
  }
  PutString(program.goal(), out);
}

bool DecodeDatalogAtom(Reader* r, int num_variables, DatalogAtom* atom) {
  if (!r->ReadString(kMaxNameBytes, &atom->predicate)) return false;
  if (atom->predicate.empty()) return r->Fail("datalog predicate is empty");
  // Arity 0 is legal in datalog (Boolean goal predicates).
  return r->ReadI32Array(0, num_variables - 1, kMaxArity, &atom->args);
}

bool DecodeProgram(Reader* r, std::optional<DatalogProgram>* out) {
  std::size_t num_rules = 0;
  if (!r->ReadCount(16, 1u << 16, &num_rules)) return false;
  // Structural pass first: DatalogProgram::AddRule aborts on violations,
  // so safety, ranges, and arity consistency are all proven here.
  struct PendingRule {
    DatalogRule rule;
  };
  std::vector<PendingRule> pending;
  pending.reserve(num_rules);
  std::unordered_map<std::string, std::size_t> arity_of;
  std::unordered_set<std::string> head_predicates;
  for (std::size_t i = 0; i < num_rules; ++i) {
    DatalogRule rule;
    // num_variables arrives after the atoms; read atoms with the widest
    // bound and re-validate below.
    if (!DecodeDatalogAtom(r, kMaxRuleVariables, &rule.head)) return false;
    std::size_t body_len = 0;
    if (!r->ReadCount(8, 1u << 16, &body_len)) return false;
    rule.body.resize(body_len);
    for (std::size_t b = 0; b < body_len; ++b) {
      if (!DecodeDatalogAtom(r, kMaxRuleVariables, &rule.body[b])) {
        return false;
      }
    }
    if (!r->ReadI32(&rule.num_variables)) return false;
    if (rule.num_variables < 0 || rule.num_variables > kMaxRuleVariables) {
      return r->Fail("datalog rule variable count out of range");
    }
    std::unordered_set<int> body_vars;
    for (const DatalogAtom& atom : rule.body) {
      for (int v : atom.args) {
        if (v >= rule.num_variables) {
          return r->Fail("datalog body variable out of range");
        }
        body_vars.insert(v);
      }
    }
    for (int v : rule.head.args) {
      if (v >= rule.num_variables) {
        return r->Fail("datalog head variable out of range");
      }
      if (body_vars.count(v) == 0) {
        return r->Fail("unsafe datalog rule: head variable not in body");
      }
    }
    for (const DatalogAtom* atom : [&] {
           std::vector<const DatalogAtom*> atoms{&rule.head};
           for (const DatalogAtom& a : rule.body) atoms.push_back(&a);
           return atoms;
         }()) {
      auto [it, inserted] =
          arity_of.emplace(atom->predicate, atom->args.size());
      if (!inserted && it->second != atom->args.size()) {
        return r->Fail("inconsistent arity for predicate " + atom->predicate);
      }
    }
    head_predicates.insert(rule.head.predicate);
    pending.push_back({std::move(rule)});
  }
  std::string goal;
  if (!r->ReadString(kMaxNameBytes, &goal)) return false;
  if (!goal.empty() && head_predicates.count(goal) == 0) {
    return r->Fail("datalog goal is not an IDB predicate");
  }
  out->emplace();
  for (PendingRule& p : pending) (*out)->AddRule(std::move(p.rule));
  if (!goal.empty()) (*out)->SetGoal(goal);
  return true;
}

// --- answers ----------------------------------------------------------------

void EncodeRows(const RowsAnswer& rows, std::vector<uint8_t>* out) {
  PutI32(rows.arity, out);
  PutI64(rows.num_rows, out);
  PutI32Span(rows.rows, out);
}

bool DecodeRows(Reader* r, RowsAnswer* rows) {
  if (!r->ReadI32(&rows->arity) || !r->ReadI64(&rows->num_rows)) return false;
  if (rows->arity < 0 || rows->arity > 1 << 16) {
    return r->Fail("rows arity out of range");
  }
  if (rows->num_rows < 0) return r->Fail("negative row count");
  std::size_t count = 0;
  if (!r->ReadCount(4, 1u << 26, &count)) return false;
  if (rows->arity > 0) {
    // Check via division: num_rows * arity is a product of two
    // attacker-controlled values and can wrap mod 2^64 into agreement
    // with count (e.g. arity 2^16, num_rows 2^48, count 0).
    const uint64_t arity = static_cast<uint64_t>(rows->arity);
    if (count % arity != 0 ||
        static_cast<uint64_t>(rows->num_rows) != count / arity) {
      return r->Fail("row payload does not match num_rows * arity");
    }
  } else if (count != 0) {
    return r->Fail("arity-0 rows must carry no values");
  }
  rows->rows.clear();
  rows->rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    int v = 0;
    if (!r->ReadI32(&v)) return false;
    rows->rows.push_back(v);
  }
  return true;
}

void EncodeAnswer(const EngineAnswer& answer, std::vector<uint8_t>* out) {
  PutU8(static_cast<uint8_t>(answer.index()), out);
  struct Encoder {
    std::vector<uint8_t>* out;
    void operator()(const CspAnswer& a) const {
      PutU8(a.solution.has_value() ? 1 : 0, out);
      if (a.solution.has_value()) PutI32Span(*a.solution, out);
      PutU8(a.complete ? 1 : 0, out);
    }
    void operator()(const RowsAnswer& a) const { EncodeRows(a, out); }
    void operator()(const DatalogAnswer& a) const {
      PutU8(a.goal_derived ? 1 : 0, out);
      EncodeRows(a.goal_facts, out);
      PutI64(a.total_idb_facts, out);
    }
    void operator()(const BoolAnswer& a) const {
      PutU8(a.value ? 1 : 0, out);
    }
  };
  std::visit(Encoder{out}, answer);
}

bool DecodeAnswer(Reader* r, EngineAnswer* answer) {
  uint8_t index = 0;
  if (!r->ReadU8(&index)) return false;
  switch (index) {
    case 0: {
      CspAnswer a;
      bool has_solution = false;
      if (!r->ReadBool(&has_solution)) return false;
      if (has_solution) {
        std::vector<int> solution;
        if (!r->ReadI32Array(0, kMaxDomain, 1u << 22, &solution)) {
          return false;
        }
        a.solution = std::move(solution);
      }
      if (!r->ReadBool(&a.complete)) return false;
      *answer = std::move(a);
      return true;
    }
    case 1: {
      RowsAnswer a;
      if (!DecodeRows(r, &a)) return false;
      *answer = std::move(a);
      return true;
    }
    case 2: {
      DatalogAnswer a;
      if (!r->ReadBool(&a.goal_derived)) return false;
      if (!DecodeRows(r, &a.goal_facts)) return false;
      if (!r->ReadI64(&a.total_idb_facts)) return false;
      if (a.total_idb_facts < 0) return r->Fail("negative fact count");
      *answer = std::move(a);
      return true;
    }
    case 3: {
      BoolAnswer a;
      if (!r->ReadBool(&a.value)) return false;
      *answer = a;
      return true;
    }
    default:
      return r->Fail("unknown answer variant");
  }
}

}  // namespace

// --- public encoders --------------------------------------------------------

void EncodeRequestPayload(const ServiceRequest& request,
                          std::vector<uint8_t>* out) {
  PutU8(static_cast<uint8_t>(KindOf(request)), out);
  struct Encoder {
    std::vector<uint8_t>* out;
    void operator()(const SolveCspRequest& r) const {
      EncodeCsp(r.instance, out);
    }
    void operator()(const EvalCqRequest& r) const {
      EncodeQuery(r.query, out);
      EncodeStructure(r.database, out);
    }
    void operator()(const DatalogFixpointRequest& r) const {
      EncodeProgram(r.program, out);
      EncodeStructure(r.edb, out);
    }
    void operator()(const CheckContainmentRequest& r) const {
      EncodeQuery(r.q1, out);
      EncodeQuery(r.q2, out);
    }
  };
  std::visit(Encoder{out}, request);
}

void EncodeResponsePayload(const Response& response,
                           std::vector<uint8_t>* out) {
  PutU8(static_cast<uint8_t>(response.status), out);
  PutU8(static_cast<uint8_t>(response.kind), out);
  uint8_t bits = 0;
  if (response.cache_hit) bits |= 1u << 0;
  if (response.coalesced) bits |= 1u << 1;
  if (response.served_remotely) bits |= 1u << 2;
  PutU8(bits, out);
  PutI64(response.latency_ns, out);
  PutI64(response.queue_wait_ns, out);
  EncodeAnswer(response.answer, out);
}

void EncodeErrorPayload(const std::string& message,
                        std::vector<uint8_t>* out) {
  std::string clipped = message;
  if (clipped.size() > kMaxErrorBytes) clipped.resize(kMaxErrorBytes);
  PutString(clipped, out);
}

std::vector<uint8_t> AnswerBytes(const Response& response) {
  std::vector<uint8_t> out;
  PutU8(static_cast<uint8_t>(response.status), &out);
  PutU8(static_cast<uint8_t>(response.kind), &out);
  if (response.status == StatusCode::kOk) EncodeAnswer(response.answer, &out);
  return out;
}

// --- public decoders --------------------------------------------------------

std::optional<ServiceRequest> DecodeRequestPayload(const uint8_t* data,
                                                   std::size_t size,
                                                   std::string* error) {
  Reader r(data, size);
  uint8_t kind = 0;
  if (!r.ReadU8(&kind)) {
    *error = r.error();
    return std::nullopt;
  }
  std::optional<ServiceRequest> request;
  switch (kind) {
    case static_cast<uint8_t>(RequestKind::kSolveCsp): {
      std::optional<CspInstance> csp;
      if (DecodeCsp(&r, &csp)) request = SolveCspRequest{std::move(*csp)};
      break;
    }
    case static_cast<uint8_t>(RequestKind::kEvalCq): {
      std::optional<ConjunctiveQuery> query;
      std::optional<Structure> db;
      if (DecodeQuery(&r, &query) && DecodeStructure(&r, &db)) {
        request = EvalCqRequest{std::move(*query), std::move(*db)};
      }
      break;
    }
    case static_cast<uint8_t>(RequestKind::kDatalogFixpoint): {
      std::optional<DatalogProgram> program;
      std::optional<Structure> edb;
      if (DecodeProgram(&r, &program) && DecodeStructure(&r, &edb)) {
        request = DatalogFixpointRequest{std::move(*program), std::move(*edb)};
      }
      break;
    }
    case static_cast<uint8_t>(RequestKind::kCheckContainment): {
      std::optional<ConjunctiveQuery> q1;
      std::optional<ConjunctiveQuery> q2;
      if (DecodeQuery(&r, &q1) && DecodeQuery(&r, &q2)) {
        request = CheckContainmentRequest{std::move(*q1), std::move(*q2)};
      }
      break;
    }
    default:
      r.Fail("unknown request kind");
      break;
  }
  if (!request.has_value()) {
    *error = r.error().empty() ? "malformed request payload" : r.error();
    return std::nullopt;
  }
  if (!r.AtEnd()) {
    *error = "trailing bytes after request payload";
    return std::nullopt;
  }
  return request;
}

std::optional<Response> DecodeResponsePayload(const uint8_t* data,
                                              std::size_t size,
                                              std::string* error) {
  Reader r(data, size);
  Response response;
  uint8_t status = 0;
  uint8_t kind = 0;
  uint8_t bits = 0;
  if (!r.ReadU8(&status) || !r.ReadU8(&kind) || !r.ReadU8(&bits)) {
    *error = r.error();
    return std::nullopt;
  }
  if (status > static_cast<uint8_t>(StatusCode::kRejected)) {
    *error = "unknown response status";
    return std::nullopt;
  }
  if (kind >= static_cast<uint8_t>(service::kNumRequestKinds)) {
    *error = "unknown response kind";
    return std::nullopt;
  }
  if (bits & ~0x7u) {
    *error = "unknown response flag bits";
    return std::nullopt;
  }
  response.status = static_cast<StatusCode>(status);
  response.kind = static_cast<RequestKind>(kind);
  response.cache_hit = (bits & (1u << 0)) != 0;
  response.coalesced = (bits & (1u << 1)) != 0;
  response.served_remotely = (bits & (1u << 2)) != 0;
  if (!r.ReadI64(&response.latency_ns) ||
      !r.ReadI64(&response.queue_wait_ns) ||
      !DecodeAnswer(&r, &response.answer)) {
    *error = r.error();
    return std::nullopt;
  }
  if (response.latency_ns < 0 || response.queue_wait_ns < 0) {
    *error = "negative latency";
    return std::nullopt;
  }
  if (!r.AtEnd()) {
    *error = "trailing bytes after response payload";
    return std::nullopt;
  }
  return response;
}

std::optional<std::string> DecodeErrorPayload(const uint8_t* data,
                                              std::size_t size,
                                              std::string* error) {
  Reader r(data, size);
  std::string message;
  if (!r.ReadString(kMaxErrorBytes, &message)) {
    *error = r.error();
    return std::nullopt;
  }
  if (!r.AtEnd()) {
    *error = "trailing bytes after error payload";
    return std::nullopt;
  }
  return message;
}

// --- framing ----------------------------------------------------------------

void AppendFrame(const Frame& frame, std::vector<uint8_t>* out) {
  CSPDB_CHECK_MSG(frame.payload.size() <= kMaxPayloadBytes,
                  "frame payload exceeds protocol maximum");
  PutU32(kWireMagic, out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(frame.type), out);
  PutU16(frame.flags, out);
  PutU64(frame.request_id, out);
  PutU32(static_cast<uint32_t>(frame.payload.size()), out);
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
}

void FrameAssembler::Feed(const uint8_t* data, std::size_t size) {
  if (poisoned_) return;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer does not grow without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameAssembler::Status FrameAssembler::Next(Frame* frame) {
  if (poisoned_) return Status::kProtocolError;
  if (buffer_.size() - consumed_ < kHeaderBytes) return Status::kNeedMore;
  Reader r(buffer_.data() + consumed_, buffer_.size() - consumed_);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_size = 0;
  r.ReadU32(&magic);
  r.ReadU8(&version);
  r.ReadU8(&type);
  r.ReadU16(&flags);
  r.ReadU64(&request_id);
  r.ReadU32(&payload_size);
  if (magic != kWireMagic) {
    poisoned_ = true;
    error_ = "bad frame magic";
    return Status::kProtocolError;
  }
  if (version != kWireVersion) {
    poisoned_ = true;
    error_ = "unsupported wire version " + std::to_string(version);
    return Status::kProtocolError;
  }
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kPong)) {
    poisoned_ = true;
    error_ = "unknown frame type " + std::to_string(type);
    return Status::kProtocolError;
  }
  if ((flags & ~kKnownFlagsMask) != 0) {
    poisoned_ = true;
    error_ = "unknown frame flag bits";
    return Status::kProtocolError;
  }
  if (payload_size > kMaxPayloadBytes) {
    poisoned_ = true;
    error_ = "frame payload length " + std::to_string(payload_size) +
             " exceeds protocol maximum";
    return Status::kProtocolError;
  }
  if (buffer_.size() - consumed_ < kHeaderBytes + payload_size) {
    return Status::kNeedMore;
  }
  frame->type = static_cast<FrameType>(type);
  frame->flags = flags;
  frame->request_id = request_id;
  const uint8_t* payload = buffer_.data() + consumed_ + kHeaderBytes;
  frame->payload.assign(payload, payload + payload_size);
  consumed_ += kHeaderBytes + payload_size;
  return Status::kFrame;
}

void FrameAssembler::Reset() {
  buffer_.clear();
  consumed_ = 0;
  error_.clear();
  poisoned_ = false;
}

}  // namespace cspdb::net
