#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "net/client.h"
#include "obs/obs.h"
#include "util/check.h"

namespace cspdb::net {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Flow ids for "net.request" arrows. Process-wide, not per-server: the
// in-process two-node tests share one tracer, and a (name, id) flow key
// reused across servers would corrupt the trace.
std::atomic<uint64_t> g_net_flow_id{1};

}  // namespace

NetServer::NetServer(service::CspdbService* service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool
                                     : &exec::ThreadPool::Global()) {}

NetServer::~NetServer() { Shutdown(); }

bool NetServer::Start(std::string* error) {
  CSPDB_CHECK_MSG(!started_, "NetServer started twice");
  // ParseHostPort rejects port 0 (not dialable), but 0 is a valid
  // *listen* port (bind an ephemeral one), so accept it here.
  std::string host;
  int port = 0;
  if (!ParseHostPort(options_.listen_address, &host, &port)) {
    const std::size_t colon = options_.listen_address.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        options_.listen_address.substr(colon + 1) != "0") {
      *error = "malformed listen address " + options_.listen_address;
      return false;
    }
    host = options_.listen_address.substr(0, colon);
    port = 0;
  }
  if (host == "localhost") host = "127.0.0.1";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "unresolvable listen host " + host;
    return false;
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = "bind " + options_.listen_address + ": " + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (listen(listen_fd_, 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  address_ = host + ":" + std::to_string(port_);

  loop_.AddFd(listen_fd_, EPOLLIN, [this](uint32_t) { HandleAccept(); });
  loop_thread_ = std::thread([this] {
    loop_.Run(options_.tick_interval_ms, [this] { Tick(); });
  });
  started_ = true;
  return true;
}

void NetServer::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  loop_.Post([this] {
    draining_ = true;
    drain_deadline_ms_ = NowMs() + options_.drain_timeout_ms;
    if (listen_fd_ >= 0) {
      loop_.RemoveFd(listen_fd_);
      close(listen_fd_);
      listen_fd_ = -1;
    }
    // Close everything already quiescent; busy connections close as
    // their responses complete and flush (Tick enforces the deadline).
    std::vector<uint64_t> idle;
    for (const auto& [id, conn] : conns_) {
      if (conn->in_flight == 0 && conn->out_offset == conn->out.size()) {
        idle.push_back(id);
      }
    }
    for (uint64_t id : idle) CloseConn(id);
    MaybeFinishDrain();
  });
  loop_thread_.join();
  // The loop is gone, but request work may still be running on pool
  // threads — router-path tasks and service Submit callbacks alike
  // (their posted completions are simply never drained). Both capture
  // `this`, so destruction must wait for them.
  util::MutexLock lock(pool_tasks_mu_);
  while (pool_tasks_ > 0) pool_tasks_cv_.Wait(pool_tasks_mu_);
}

void NetServer::HandleAccept() {
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      CSPDB_COUNT("net.server.accept_errors");
      return;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity_ms = NowMs();
    const uint64_t id = conn->id;
    conns_.emplace(id, std::move(conn));
    loop_.AddFd(fd, EPOLLIN,
                [this, id](uint32_t events) { HandleConnEvent(id, events); });
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    CSPDB_COUNT("net.server.accepts");
  }
}

void NetServer::HandleConnEvent(uint64_t id, uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(id);
    return;
  }
  if (events & EPOLLOUT) {
    FlushWrites(conn);
    // FlushWrites may close; re-check.
    if (conns_.find(id) == conns_.end()) return;
  }
  if ((events & EPOLLIN) && !conn->closing) {
    uint8_t buf[16384];
    for (;;) {
      const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->last_activity_ms = NowMs();
        conn->in.Feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      CloseConn(id);  // peer closed or hard error
      return;
    }
    ProcessFrames(conn);
  }
}

void NetServer::ProcessFrames(Conn* conn) {
  while (!conn->closing &&
         conn->in_flight < options_.max_in_flight_per_connection) {
    Frame frame;
    switch (conn->in.Next(&frame)) {
      case FrameAssembler::Status::kNeedMore:
        return;
      case FrameAssembler::Status::kProtocolError:
        FailConn(conn, 0, conn->in.error());
        return;
      case FrameAssembler::Status::kFrame:
        break;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    CSPDB_COUNT("net.server.frames_in");
    switch (frame.type) {
      case FrameType::kPing: {
        pings_.fetch_add(1, std::memory_order_relaxed);
        Frame pong;
        pong.type = FrameType::kPong;
        pong.request_id = frame.request_id;
        SendFrame(conn, pong);
        break;
      }
      case FrameType::kRequest:
        DispatchRequest(conn, std::move(frame));
        break;
      default:
        // Clients send requests and pings; anything else means the
        // stream is confused.
        FailConn(conn, frame.request_id, "unexpected frame type");
        return;
    }
  }
  // Out of the loop with frames possibly still buffered: at the
  // in-flight bound. Stop reading until completions make room.
  if (!conn->closing &&
      conn->in_flight >= options_.max_in_flight_per_connection &&
      !conn->paused) {
    conn->paused = true;
    CSPDB_COUNT("net.server.backpressure_pauses");
    UpdateInterest(conn);
  }
}

void NetServer::DispatchRequest(Conn* conn, Frame frame) {
  std::string decode_error;
  std::optional<service::ServiceRequest> request = DecodeRequestPayload(
      frame.payload.data(), frame.payload.size(), &decode_error);
  if (!request.has_value()) {
    FailConn(conn, frame.request_id, "bad request: " + decode_error);
    return;
  }
  ++conn->in_flight;
  requests_dispatched_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("net.server.requests");
  const uint64_t conn_id = conn->id;
  const uint64_t wire_id = frame.request_id;

  if (router_ != nullptr && (frame.flags & kFlagNoForward) == 0) {
    // Client-facing request on a clustered node: the router probes the
    // local cache and may consult the owner shard — blocking work, so it
    // runs as a pool task. The flow arrow ties the dispatch here to the
    // pool-thread handling in the trace.
    const uint64_t flow_id =
        g_net_flow_id.fetch_add(1, std::memory_order_relaxed);
    {
      CSPDB_TRACE_SPAN("net.dispatch");
      CSPDB_TRACE_FLOW_BEGIN("net.request", flow_id);
      {
        util::MutexLock lock(pool_tasks_mu_);
        ++pool_tasks_;
      }
      pool_->Submit([this, conn_id, wire_id, flow_id,
                     request = std::move(*request)]() mutable {
        {
          CSPDB_TRACE_SPAN("net.handle");
          CSPDB_TRACE_FLOW_END("net.request", flow_id);
          service::Response response = router_->Handle(request);
          loop_.Post([this, conn_id, wire_id,
                      response = std::move(response)] {
            CompleteRequest(conn_id, wire_id, response);
          });
        }
        util::MutexLock lock(pool_tasks_mu_);
        if (--pool_tasks_ == 0) pool_tasks_cv_.NotifyAll();
      });
    }
    return;
  }

  // Peer forward (kFlagNoForward) or an unclustered node: the service's
  // admission-controlled async path. The callback runs on a pool thread
  // (inline here on admission rejection); the response hops back to the
  // loop thread to be written. Counted in pool_tasks_ — Shutdown() must
  // not let ~NetServer destroy the loop while a callback is still
  // posting to it.
  {
    util::MutexLock lock(pool_tasks_mu_);
    ++pool_tasks_;
  }
  service_->Submit(std::move(*request), options_.request_timeout_ns,
                   [this, conn_id, wire_id](service::Response response) {
                     loop_.Post([this, conn_id, wire_id,
                                 response = std::move(response)] {
                       CompleteRequest(conn_id, wire_id, response);
                     });
                     util::MutexLock lock(pool_tasks_mu_);
                     if (--pool_tasks_ == 0) pool_tasks_cv_.NotifyAll();
                   });
}

void NetServer::CompleteRequest(uint64_t conn_id, uint64_t wire_id,
                                const service::Response& response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died while we computed
  Conn* conn = it->second.get();
  --conn->in_flight;
  conn->last_activity_ms = NowMs();
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.request_id = wire_id;
  EncodeResponsePayload(response, &frame.payload);
  SendFrame(conn, frame);
  if (conns_.find(conn_id) == conns_.end()) return;  // send failed hard
  if (conn->paused &&
      conn->in_flight < options_.max_in_flight_per_connection &&
      !conn->closing) {
    conn->paused = false;
    UpdateInterest(conn);
    ProcessFrames(conn);
  }
}

void NetServer::SendFrame(Conn* conn, const Frame& frame) {
  AppendFrame(frame, &conn->out);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("net.server.frames_out");
  FlushWrites(conn);
}

void NetServer::FailConn(Conn* conn, uint64_t wire_id,
                         const std::string& message) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("net.server.protocol_errors");
  Frame frame;
  frame.type = FrameType::kError;
  frame.request_id = wire_id;
  EncodeErrorPayload(message, &frame.payload);
  conn->closing = true;  // flush the error, then close; no more reads
  SendFrame(conn, frame);
}

void NetServer::FlushWrites(Conn* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        send(conn->fd, conn->out.data() + conn->out_offset,
             conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<std::size_t>(n);
      conn->last_activity_ms = NowMs();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest(conn);  // arm EPOLLOUT for the rest
      return;
    }
    CloseConn(conn->id);
    return;
  }
  conn->out.clear();
  conn->out_offset = 0;
  if (conn->closing || (draining_ && conn->in_flight == 0)) {
    CloseConn(conn->id);
    return;
  }
  UpdateInterest(conn);
}

void NetServer::UpdateInterest(Conn* conn) {
  uint32_t events = 0;
  if (!conn->closing && !conn->paused) events |= EPOLLIN;
  if (conn->out_offset < conn->out.size()) events |= EPOLLOUT;
  loop_.UpdateFd(conn->fd, events);
}

void NetServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_.RemoveFd(it->second->fd);
  close(it->second->fd);
  conns_.erase(it);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("net.server.closes");
  MaybeFinishDrain();
}

void NetServer::Tick() {
  const int64_t now = NowMs();
  std::vector<uint64_t> to_close;
  for (const auto& [id, conn] : conns_) {
    if (draining_ && now >= drain_deadline_ms_) {
      to_close.push_back(id);  // drain deadline: force-close stragglers
    } else if (options_.idle_timeout_ms > 0 && conn->in_flight == 0 &&
               conn->out_offset == conn->out.size() &&
               now - conn->last_activity_ms > options_.idle_timeout_ms) {
      to_close.push_back(id);
      CSPDB_COUNT("net.server.idle_closes");
    }
  }
  for (uint64_t id : to_close) CloseConn(id);
  MaybeFinishDrain();
}

void NetServer::MaybeFinishDrain() {
  if (draining_ && conns_.empty()) loop_.Stop();
}

ServerStats NetServer::stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.requests_dispatched =
      requests_dispatched_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace cspdb::net
