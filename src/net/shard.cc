#include "net/shard.h"

#include <utility>

#include "net/wire.h"
#include "obs/obs.h"
#include "util/check.h"

namespace cspdb::net {

ShardRouter::ShardRouter(service::CspdbService* service, std::string self_id,
                         std::vector<PeerId> members, RouterOptions options)
    : service_(service),
      self_id_(std::move(self_id)),
      options_(options),
      ring_(std::move(members)) {
  bool self_found = false;
  for (const std::string& member : ring_.members()) {
    if (member == self_id_) {
      self_found = true;
    } else {
      peers_.emplace(member,
                     std::make_unique<PeerClient>(member, options_.peer));
    }
  }
  CSPDB_CHECK_MSG(self_found, "ShardRouter self id must be a ring member");
}

service::Response ShardRouter::Handle(const service::ServiceRequest& request) {
  CSPDB_TIMER_SCOPE("net.route");
  service::Fingerprint fingerprint;
  std::optional<service::Response> probed =
      service_->Probe(request, &fingerprint);
  if (probed.has_value()) {
    local_hits_.fetch_add(1, std::memory_order_relaxed);
    CSPDB_COUNT("net.route.local_hit");
    return *std::move(probed);
  }

  // Inexact fingerprints are process-nonce-salted: no other node can have
  // them cached, so consulting the owner would be a guaranteed miss.
  if (fingerprint.exact) {
    const std::string& owner = ring_.OwnerOf(fingerprint);
    if (owner != self_id_) {
      auto it = peers_.find(owner);
      CSPDB_CHECK_MSG(it != peers_.end(), "ring owner has no peer client");
      std::string error;
      const uint64_t call_id =
          next_call_id_.fetch_add(1, std::memory_order_relaxed);
      std::optional<service::Response> remote =
          it->second->Call(request, call_id, kFlagNoForward, &error);
      if (remote.has_value() &&
          remote->status != service::StatusCode::kRejected) {
        remote->served_remotely = true;
        if (remote->cache_hit) {
          remote_hits_.fetch_add(1, std::memory_order_relaxed);
          CSPDB_COUNT("net.route.remote_hit");
        } else {
          remote_compute_.fetch_add(1, std::memory_order_relaxed);
          CSPDB_COUNT("net.route.remote_compute");
        }
        // The answer is NOT copied into the local cache: each canonical
        // fingerprint stays cached on exactly one node, which is what
        // keeps N nodes serving ~N distinct working sets instead of N
        // copies of one.
        return *std::move(remote);
      }
      // Owner down or shedding: degrade to local compute. The local run
      // caches locally, so a dead owner costs one engine run per node,
      // not per request.
      peer_failures_.fetch_add(1, std::memory_order_relaxed);
      CSPDB_COUNT("net.route.peer_failure");
    }
  }

  local_compute_.fetch_add(1, std::memory_order_relaxed);
  CSPDB_COUNT("net.route.local_compute");
  return service_->Handle(request, options_.request_timeout_ns);
}

RouterStats ShardRouter::stats() const {
  RouterStats s;
  s.local_hits = local_hits_.load(std::memory_order_relaxed);
  s.remote_hits = remote_hits_.load(std::memory_order_relaxed);
  s.remote_compute = remote_compute_.load(std::memory_order_relaxed);
  s.local_compute = local_compute_.load(std::memory_order_relaxed);
  s.peer_failures = peer_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace cspdb::net
