#include "net/peer_ring.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/check.h"

namespace cspdb::net {

// SplitMix64 over FNV-1a: deterministic across processes and platforms
// (no std::hash, whose layout is implementation-defined).
uint64_t PeerRing::PointHash(const std::string& label) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : label) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

PeerRing::PeerRing(std::vector<PeerId> members) {
  std::set<std::string> unique;
  for (PeerId& m : members) unique.insert(std::move(m.id));
  members_.assign(unique.begin(), unique.end());
  points_.reserve(members_.size() * kVirtualNodes);
  for (int i = 0; i < static_cast<int>(members_.size()); ++i) {
    for (int replica = 0; replica < kVirtualNodes; ++replica) {
      points_.push_back(
          {PointHash(members_[i] + "#" + std::to_string(replica)), i});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.position != b.position ? a.position < b.position
                                             : a.member < b.member;
            });
}

const std::string& PeerRing::OwnerOf(
    const service::Fingerprint& fingerprint) const {
  CSPDB_CHECK_MSG(!points_.empty(), "PeerRing::OwnerOf on an empty ring");
  // Mix both halves so ownership uses all 128 fingerprint bits.
  const uint64_t key =
      fingerprint.lo ^ (fingerprint.hi * 0x9e3779b97f4a7c15ull);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, uint64_t k) { return p.position < k; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return members_[it->member];
}

}  // namespace cspdb::net
