#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace cspdb::net {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  CSPDB_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  CSPDB_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  AddFd(wake_fd_, EPOLLIN, [this](uint32_t) { DrainWakeFd(); });
}

EventLoop::~EventLoop() {
  close(epoll_fd_);
  close(wake_fd_);
}

void EventLoop::AddFd(int fd, uint32_t events, FdHandler handler) {
  const uint64_t token = next_token_++;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = token;
  CSPDB_CHECK_MSG(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                  "epoll_ctl(ADD) failed");
  handlers_[token] = std::move(handler);
  tokens_[fd] = token;
}

void EventLoop::UpdateFd(int fd, uint32_t events) {
  auto it = tokens_.find(fd);
  CSPDB_CHECK_MSG(it != tokens_.end(), "UpdateFd on unregistered fd");
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = it->second;
  CSPDB_CHECK_MSG(epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                  "epoll_ctl(MOD) failed");
}

void EventLoop::RemoveFd(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  auto it = tokens_.find(fd);
  if (it != tokens_.end()) {
    handlers_.erase(it->second);
    tokens_.erase(it);
  }
}

void EventLoop::Post(std::function<void()> task) {
  {
    util::MutexLock lock(mu_);
    posted_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the write result only
  // matters for that, so EAGAIN is fine to ignore.
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Stop() {
  {
    util::MutexLock lock(mu_);
    stop_requested_ = true;
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainWakeFd() {
  uint64_t count = 0;
  while (read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    util::MutexLock lock(mu_);
    tasks.swap(posted_);
  }
  CSPDB_COUNT_N("net.loop.posted_tasks", static_cast<int64_t>(tasks.size()));
  for (auto& task : tasks) task();
}

void EventLoop::Run(int64_t tick_interval_ms, std::function<void()> tick) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  int64_t next_tick_ms =
      tick_interval_ms > 0 ? NowMs() + tick_interval_ms : 0;
  for (;;) {
    {
      util::MutexLock lock(mu_);
      if (stop_requested_) {
        stop_requested_ = false;
        return;
      }
    }
    int timeout_ms = -1;
    if (tick_interval_ms > 0) {
      timeout_ms = static_cast<int>(next_tick_ms - NowMs());
      if (timeout_ms < 0) timeout_ms = 0;
    }
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      CSPDB_CHECK_MSG(errno == EINTR, "epoll_wait failed");
      continue;
    }
    CSPDB_COUNT("net.loop.wakeups");
    for (int i = 0; i < n; ++i) {
      const uint64_t token = events[i].data.u64;
      // A handler earlier in this batch may have removed this
      // registration (closed a connection that was also writable) — and
      // may have opened a new one that reuses the same fd number. Tokens
      // are never reused, so the stale queued event misses here instead
      // of firing the new connection's handler.
      auto it = handlers_.find(token);
      if (it != handlers_.end()) it->second(events[i].events);
    }
    DrainPosted();
    if (tick_interval_ms > 0 && NowMs() >= next_tick_ms) {
      next_tick_ms = NowMs() + tick_interval_ms;
      if (tick) tick();
    }
  }
}

}  // namespace cspdb::net
