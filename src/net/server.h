// NetServer: the epoll front-end of a cluster node. One loop thread owns
// every socket; request work runs on the shared thread pool; completed
// responses hop back to the loop via EventLoop::Post. Per-connection
// backpressure (reads pause at max_in_flight frames), idle timeouts, and
// a graceful drain (stop accepting, finish in-flight work, flush, then
// stop the loop) are all loop-thread bookkeeping.
//
// Request routing: frames carrying kFlagNoForward (peer-to-peer
// forwards), and every frame when no router is attached, go through
// CspdbService::Submit's admission-controlled async path. Client-facing
// frames on a clustered node go through ShardRouter::Handle on a pool
// task, which probes the local cache and consults the fingerprint's
// owner shard before computing.

#ifndef CSPDB_NET_SERVER_H_
#define CSPDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"
#include "net/event_loop.h"
#include "net/shard.h"
#include "net/wire.h"
#include "service/server.h"

namespace cspdb::net {

struct ServerOptions {
  /// "host:port"; port 0 binds an ephemeral port (see port()).
  std::string listen_address = "127.0.0.1:0";

  /// Requests a single connection may have outstanding before the server
  /// stops reading from it (resumes as responses flush).
  int max_in_flight_per_connection = 32;

  /// Connections idle (no frames, nothing in flight) this long are
  /// closed; <= 0 disables.
  int64_t idle_timeout_ms = 60000;

  /// Event-loop tick period (idle sweep / drain-deadline granularity).
  int64_t tick_interval_ms = 200;

  /// Shutdown() force-closes connections still busy after this long.
  int64_t drain_timeout_ms = 5000;

  /// Per-request timeout handed to the service; <= 0 = service default.
  int64_t request_timeout_ns = -1;

  /// Pool for request work; nullptr means ThreadPool::Global().
  exec::ThreadPool* pool = nullptr;
};

struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t frames_received = 0;
  int64_t frames_sent = 0;
  int64_t protocol_errors = 0;
  int64_t requests_dispatched = 0;
  int64_t pings = 0;
};

class NetServer {
 public:
  NetServer(service::CspdbService* service, ServerOptions options = {});

  /// Shuts down (gracefully) if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Attaches the shard router for client-facing requests. Must be called
  /// before Start().
  void set_router(ShardRouter* router) { router_ = router; }

  /// Binds, listens, and spawns the loop thread. Returns false with
  /// *error set on bind/listen failure.
  bool Start(std::string* error);

  /// The bound port (resolves a ":0" listen address).
  int port() const { return port_; }

  /// "host:port" with the resolved port.
  const std::string& address() const { return address_; }

  /// Graceful drain: stops accepting, lets in-flight requests finish and
  /// flush (up to drain_timeout_ms), stops the loop, joins the thread.
  /// Idempotent.
  void Shutdown();

  ServerStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    FrameAssembler in;
    std::vector<uint8_t> out;   // encoded frames awaiting the socket
    std::size_t out_offset = 0;  // prefix of `out` already written
    int in_flight = 0;           // dispatched, response not yet queued
    int64_t last_activity_ms = 0;
    bool closing = false;  // flush `out`, then close; reads are done
    bool paused = false;   // EPOLLIN off (backpressure)
  };

  // All private methods below run on the loop thread.
  void HandleAccept();
  void HandleConnEvent(uint64_t id, uint32_t events);
  void ProcessFrames(Conn* conn);
  void DispatchRequest(Conn* conn, Frame frame);
  void CompleteRequest(uint64_t conn_id, uint64_t request_id,
                       const service::Response& response);
  void SendFrame(Conn* conn, const Frame& frame);
  void FailConn(Conn* conn, uint64_t request_id, const std::string& message);
  void FlushWrites(Conn* conn);
  void UpdateInterest(Conn* conn);
  void CloseConn(uint64_t id);
  void Tick();
  void MaybeFinishDrain();

  service::CspdbService* service_;
  ShardRouter* router_ = nullptr;
  ServerOptions options_;
  exec::ThreadPool* pool_;

  EventLoop loop_;
  std::thread loop_thread_;
  bool started_ = false;
  bool shut_down_ = false;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string address_;

  // Loop-thread state.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;
  bool draining_ = false;
  int64_t drain_deadline_ms_ = 0;

  // Request work in flight on pool threads: router-path tasks plus
  // service Submit done-callbacks. Shutdown() must outwait both — they
  // capture `this` and post to loop_, and the loop being stopped only
  // means their posted completions are never drained, not that the
  // tasks are done.
  util::Mutex pool_tasks_mu_;
  util::CondVar pool_tasks_cv_;
  int pool_tasks_ CSPDB_GUARDED_BY(pool_tasks_mu_) = 0;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_closed_{0};
  std::atomic<int64_t> frames_received_{0};
  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> requests_dispatched_{0};
  std::atomic<int64_t> pings_{0};
};

}  // namespace cspdb::net

#endif  // CSPDB_NET_SERVER_H_
