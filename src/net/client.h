// Client side of the wire protocol: a blocking connection (used by the
// load generator and tests) and PeerClient, the per-peer wrapper the
// shard router talks through — one reconnecting connection per peer with
// call timeouts, bounded retries, and exponential-backoff "down" marking
// so a dead peer costs one fast failure per backoff window instead of a
// connect timeout per request.

#ifndef CSPDB_NET_CLIENT_H_
#define CSPDB_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/request.h"
#include "util/sync.h"

namespace cspdb::net {

/// Splits "host:port" (host nonempty, port in [1, 65535]). Returns false
/// on malformed input.
bool ParseHostPort(const std::string& address, std::string* host, int* port);

/// A blocking client connection. Not thread-safe — callers serialize
/// (PeerClient does, via its per-peer busy flag). Every failure poisons
/// the connection: the only recovery is a fresh Dial.
class Connection {
 public:
  /// Connects to "host:port" (numeric IPv4 or "localhost"). Returns
  /// nullptr and fills *error on failure.
  static std::unique_ptr<Connection> Dial(const std::string& address,
                                          int64_t timeout_ms,
                                          std::string* error);

  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Sends `request` and blocks for the matching kResponse (or kError)
  /// frame. Any I/O error, timeout, protocol violation, or server error
  /// frame returns nullopt with *error set and marks the connection
  /// broken.
  std::optional<service::Response> Call(const service::ServiceRequest& request,
                                        uint64_t request_id, uint16_t flags,
                                        int64_t timeout_ms,
                                        std::string* error);

  /// Round-trips a kPing frame.
  bool Ping(uint64_t request_id, int64_t timeout_ms, std::string* error);

  /// Escape hatches for protocol tests: raw bytes out, one frame in.
  bool SendBytes(const uint8_t* data, std::size_t size, std::string* error);
  std::optional<Frame> ReadFrame(int64_t timeout_ms, std::string* error);

  bool broken() const { return broken_; }

 private:
  explicit Connection(int fd) : fd_(fd) {}

  int fd_ = -1;
  bool broken_ = false;
  FrameAssembler assembler_;
};

struct PeerClientOptions {
  int64_t dial_timeout_ms = 500;
  int64_t call_timeout_ms = 2000;
  /// Dial-or-call attempts per Call() before giving up.
  int max_attempts = 2;
  /// First backoff window after a failed attempt run; doubles per
  /// consecutive failure up to backoff_max_ms.
  int64_t backoff_base_ms = 50;
  int64_t backoff_max_ms = 2000;
};

/// Thread-safe reconnecting client for one peer.
class PeerClient {
 public:
  PeerClient(std::string address, PeerClientOptions options = {});

  /// Calls the peer, dialing if needed. Fails fast (no network traffic)
  /// while the peer is marked down, and also while another thread is
  /// mid-call on the single connection — callers degrade to local
  /// compute rather than serialize behind blocking I/O. On failure the
  /// peer is marked down and the backoff window doubled; on success both
  /// reset.
  std::optional<service::Response> Call(const service::ServiceRequest& request,
                                        uint64_t request_id, uint16_t flags,
                                        std::string* error);

  const std::string& address() const { return address_; }

  /// True while inside a backoff window (sampling view for stats).
  bool down() const;

 private:
  const std::string address_;
  const PeerClientOptions options_;

  mutable util::Mutex mu_;
  /// Moved out under mu_ by the calling thread (busy_ set), used without
  /// the lock, and handed back under mu_ when the call completes.
  std::unique_ptr<Connection> conn_ CSPDB_GUARDED_BY(mu_);
  bool busy_ CSPDB_GUARDED_BY(mu_) = false;
  int consecutive_failures_ CSPDB_GUARDED_BY(mu_) = 0;
  int64_t down_until_ms_ CSPDB_GUARDED_BY(mu_) = 0;
};

}  // namespace cspdb::net

#endif  // CSPDB_NET_CLIENT_H_
