#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/obs.h"

namespace cspdb::net {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Waits for `events` on `fd` until `deadline_ms`; false on timeout/error.
bool PollFor(int fd, short events, int64_t deadline_ms) {
  for (;;) {
    const int64_t left = deadline_ms - NowMs();
    if (left <= 0) return false;
    pollfd p{fd, events, 0};
    const int n = poll(&p, 1, static_cast<int>(left));
    if (n > 0) return (p.revents & (events | POLLHUP | POLLERR)) != 0;
    if (n == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

bool ParseHostPort(const std::string& address, std::string* host, int* port) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return false;
  }
  int p = 0;
  for (std::size_t i = colon + 1; i < address.size(); ++i) {
    const char c = address[i];
    if (c < '0' || c > '9') return false;
    p = p * 10 + (c - '0');
    if (p > 65535) return false;
  }
  if (p < 1) return false;
  *host = address.substr(0, colon);
  *port = p;
  return true;
}

std::unique_ptr<Connection> Connection::Dial(const std::string& address,
                                             int64_t timeout_ms,
                                             std::string* error) {
  std::string host;
  int port = 0;
  if (!ParseHostPort(address, &host, &port)) {
    *error = "malformed address " + address + " (want host:port)";
    return nullptr;
  }
  if (host == "localhost") host = "127.0.0.1";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "unresolvable host " + host + " (numeric IPv4 or localhost)";
    return nullptr;
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // SO_SNDTIMEO bounds connect() too: a dead peer must cost timeout_ms,
  // not the kernel's multi-minute SYN retry schedule.
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect ") + address + ": " + std::strerror(errno);
    close(fd);
    return nullptr;
  }
  CSPDB_COUNT("net.client.dials");
  return std::unique_ptr<Connection>(new Connection(fd));
}

Connection::~Connection() {
  if (fd_ >= 0) close(fd_);
}

bool Connection::SendBytes(const uint8_t* data, std::size_t size,
                           std::string* error) {
  if (broken_) {
    *error = "connection already broken";
    return false;
  }
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("send: ") + std::strerror(errno);
      broken_ = true;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Frame> Connection::ReadFrame(int64_t timeout_ms,
                                           std::string* error) {
  if (broken_) {
    *error = "connection already broken";
    return std::nullopt;
  }
  const int64_t deadline_ms = NowMs() + timeout_ms;
  Frame frame;
  for (;;) {
    switch (assembler_.Next(&frame)) {
      case FrameAssembler::Status::kFrame:
        return frame;
      case FrameAssembler::Status::kProtocolError:
        *error = "protocol error: " + assembler_.error();
        broken_ = true;
        return std::nullopt;
      case FrameAssembler::Status::kNeedMore:
        break;
    }
    if (!PollFor(fd_, POLLIN, deadline_ms)) {
      *error = "timed out waiting for a frame";
      broken_ = true;  // a reply may still arrive and desynchronize us
      return std::nullopt;
    }
    uint8_t buf[16384];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      *error = "peer closed the connection";
      broken_ = true;
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      broken_ = true;
      return std::nullopt;
    }
    assembler_.Feed(buf, static_cast<std::size_t>(n));
  }
}

std::optional<service::Response> Connection::Call(
    const service::ServiceRequest& request, uint64_t request_id,
    uint16_t flags, int64_t timeout_ms, std::string* error) {
  Frame out;
  out.type = FrameType::kRequest;
  out.flags = flags;
  out.request_id = request_id;
  EncodeRequestPayload(request, &out.payload);
  std::vector<uint8_t> bytes;
  AppendFrame(out, &bytes);
  if (!SendBytes(bytes.data(), bytes.size(), error)) return std::nullopt;

  std::optional<Frame> in = ReadFrame(timeout_ms, error);
  if (!in.has_value()) return std::nullopt;
  if (in->request_id != request_id) {
    // One request in flight per connection, so any mismatch means the
    // stream is desynchronized.
    *error = "response for unexpected request id";
    broken_ = true;
    return std::nullopt;
  }
  if (in->type == FrameType::kError) {
    std::string decode_error;
    std::optional<std::string> message = DecodeErrorPayload(
        in->payload.data(), in->payload.size(), &decode_error);
    *error = "server error: " +
             (message.has_value() ? *message : decode_error);
    broken_ = true;
    return std::nullopt;
  }
  if (in->type != FrameType::kResponse) {
    *error = "unexpected frame type in reply";
    broken_ = true;
    return std::nullopt;
  }
  std::string decode_error;
  std::optional<service::Response> response = DecodeResponsePayload(
      in->payload.data(), in->payload.size(), &decode_error);
  if (!response.has_value()) {
    *error = "malformed response payload: " + decode_error;
    broken_ = true;
    return std::nullopt;
  }
  return response;
}

bool Connection::Ping(uint64_t request_id, int64_t timeout_ms,
                      std::string* error) {
  Frame out;
  out.type = FrameType::kPing;
  out.request_id = request_id;
  std::vector<uint8_t> bytes;
  AppendFrame(out, &bytes);
  if (!SendBytes(bytes.data(), bytes.size(), error)) return false;
  std::optional<Frame> in = ReadFrame(timeout_ms, error);
  if (!in.has_value()) return false;
  if (in->type != FrameType::kPong || in->request_id != request_id) {
    *error = "unexpected reply to ping";
    broken_ = true;
    return false;
  }
  return true;
}

PeerClient::PeerClient(std::string address, PeerClientOptions options)
    : address_(std::move(address)), options_(options) {}

bool PeerClient::down() const {
  util::MutexLock lock(mu_);
  return NowMs() < down_until_ms_;
}

std::optional<service::Response> PeerClient::Call(
    const service::ServiceRequest& request, uint64_t request_id,
    uint16_t flags, std::string* error) {
  // mu_ covers only the down/busy state and connection handoff — never
  // the blocking dial/call itself. A slow-but-alive peer must cost the
  // one thread already talking to it, not stall every pool thread that
  // routes to the same owner shard.
  std::unique_ptr<Connection> conn;
  {
    util::MutexLock lock(mu_);
    if (NowMs() < down_until_ms_) {
      *error = "peer " + address_ + " is marked down";
      CSPDB_COUNT("net.peer.fast_fail");
      return std::nullopt;
    }
    if (busy_) {
      // Another thread is mid-call on this peer's single connection.
      // Fail fast (no backoff: the peer is alive) so the caller degrades
      // to local compute instead of queueing behind blocking I/O.
      *error = "peer " + address_ + " connection is busy";
      CSPDB_COUNT("net.peer.busy_fail");
      return std::nullopt;
    }
    busy_ = true;
    conn = std::move(conn_);
  }

  std::optional<service::Response> response;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (conn == nullptr || conn->broken()) {
      conn = Connection::Dial(address_, options_.dial_timeout_ms, error);
      if (conn == nullptr) continue;
    }
    response = conn->Call(request, request_id, flags,
                          options_.call_timeout_ms, error);
    if (response.has_value()) break;
  }

  util::MutexLock lock(mu_);
  busy_ = false;
  if (response.has_value()) {
    conn_ = std::move(conn);
    consecutive_failures_ = 0;
    down_until_ms_ = 0;
    return response;
  }
  // All attempts failed: open a backoff window that doubles per
  // consecutive failed Call(), so a dead peer degrades to one cheap
  // failure per window.
  int64_t backoff = options_.backoff_base_ms;
  for (int i = 0; i < consecutive_failures_ && backoff < options_.backoff_max_ms;
       ++i) {
    backoff *= 2;
  }
  if (backoff > options_.backoff_max_ms) backoff = options_.backoff_max_ms;
  ++consecutive_failures_;
  down_until_ms_ = NowMs() + backoff;
  CSPDB_COUNT("net.peer.marked_down");
  return std::nullopt;
}

}  // namespace cspdb::net
