// ShardRouter: the request path of a cluster node. Every client-facing
// request is (1) probed against the local result cache, (2) on a miss,
// sent to the fingerprint's owner shard — which has either cached the
// answer already or computes and caches it, so each canonical request is
// computed once cluster-wide — and (3) computed locally when this node
// is the owner, the fingerprint is inexact, or the owner is down
// (degradation: a partitioned cluster serves everything, just without
// sharing). Peer forwards carry kFlagNoForward, so a ring
// mis-configuration costs one extra hop, never a loop.

#ifndef CSPDB_NET_SHARD_H_
#define CSPDB_NET_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/client.h"
#include "net/peer_ring.h"
#include "service/server.h"

namespace cspdb::net {

struct RouterStats {
  int64_t local_hits = 0;      ///< answered from this node's cache
  int64_t remote_hits = 0;     ///< owner answered from its cache
  int64_t remote_compute = 0;  ///< owner computed (and cached) the answer
  int64_t local_compute = 0;   ///< computed here (owner, inexact, or down)
  int64_t peer_failures = 0;   ///< owner consult failed; degraded locally
};

struct RouterOptions {
  PeerClientOptions peer;
  /// Per-request timeout handed to the local service on compute.
  int64_t request_timeout_ns = -1;
};

class ShardRouter {
 public:
  /// `self_id` must appear in `members`; every other member gets a
  /// PeerClient dialed on demand.
  ShardRouter(service::CspdbService* service, std::string self_id,
              std::vector<PeerId> members, RouterOptions options = {});

  /// Serves one client-facing request (blocking; call from a pool
  /// thread, not the event loop).
  service::Response Handle(const service::ServiceRequest& request);

  /// Ring owner of `fingerprint` (exposed for tests).
  const std::string& OwnerOf(const service::Fingerprint& fingerprint) const {
    return ring_.OwnerOf(fingerprint);
  }

  const std::string& self_id() const { return self_id_; }
  RouterStats stats() const;

 private:
  service::CspdbService* service_;
  const std::string self_id_;
  const RouterOptions options_;
  PeerRing ring_;
  std::unordered_map<std::string, std::unique_ptr<PeerClient>> peers_;

  std::atomic<uint64_t> next_call_id_{1};
  std::atomic<int64_t> local_hits_{0};
  std::atomic<int64_t> remote_hits_{0};
  std::atomic<int64_t> remote_compute_{0};
  std::atomic<int64_t> local_compute_{0};
  std::atomic<int64_t> peer_failures_{0};
};

}  // namespace cspdb::net

#endif  // CSPDB_NET_SHARD_H_
