// Two-way regular-path queries (2RPQs) — the extension with inverse
// roles from Calvanese-De Giacomo-Lenzerini-Vardi [11], cited by the
// paper as the companion PODS 2000 work. The alphabet is doubled: symbol
// s < L traverses an s-labeled edge forward, symbol L + s traverses one
// backward.

#ifndef CSPDB_RPQ_TWO_WAY_H_
#define CSPDB_RPQ_TWO_WAY_H_

#include <utility>
#include <vector>

#include "rpq/graphdb.h"
#include "rpq/nfa.h"
#include "rpq/regex.h"

namespace cspdb {

/// The symbol traversing label `label` in the opposite direction
/// (involution: applying it twice returns `symbol`).
int InverseSymbol(int symbol, int num_labels);

/// ans(Q, DB) for a 2RPQ automaton `q` over 2 * db.num_labels() symbols.
std::vector<std::pair<int, int>> EvaluateTwoWayRpq(const GraphDb& db,
                                                   const Nfa& q);

/// Membership test for one pair.
bool TwoWayRpqHolds(const GraphDb& db, const Nfa& q, int x, int y);

}  // namespace cspdb

#endif  // CSPDB_RPQ_TWO_WAY_H_
