// Regular expressions over an abstract alphabet of labeled symbols — the
// query mechanism for semistructured data (paper, Section 7: regular-path
// queries are expressed by regular expressions or finite automata).

#ifndef CSPDB_RPQ_REGEX_H_
#define CSPDB_RPQ_REGEX_H_

#include <string>
#include <vector>

namespace cspdb {

/// A regular expression AST with value semantics. Symbols are alphabet
/// ids (dense ints).
class Regex {
 public:
  enum class Kind {
    kEmpty,    ///< the empty language
    kEpsilon,  ///< the empty word
    kSymbol,   ///< a single alphabet symbol
    kConcat,   ///< children in sequence
    kUnion,    ///< any child
    kStar,     ///< Kleene star of the single child
  };

  static Regex Empty();
  static Regex Epsilon();
  static Regex Symbol(int symbol);
  static Regex Concat(std::vector<Regex> children);
  static Regex Union(std::vector<Regex> children);
  static Regex Star(Regex child);
  /// r+ == r . r*
  static Regex Plus(Regex child);
  /// r? == r | epsilon
  static Regex Optional(Regex child);

  Kind kind() const { return kind_; }
  int symbol() const { return symbol_; }
  const std::vector<Regex>& children() const { return children_; }

  /// Rendering with `alphabet` names for symbols.
  std::string ToString(const std::vector<std::string>& alphabet) const;

 private:
  Kind kind_ = Kind::kEmpty;
  int symbol_ = -1;
  std::vector<Regex> children_;
};

/// Parses a regular expression. Syntax: single-character symbols matched
/// against one-character alphabet entries, '|' union, juxtaposition for
/// concatenation, postfix '*', '+', '?', parentheses, '()' not allowed —
/// use '%' for epsilon and '~' for the empty language. Aborts on
/// malformed input or symbols missing from the alphabet.
Regex ParseRegex(const std::string& pattern,
                 const std::vector<std::string>& alphabet);

}  // namespace cspdb

#endif  // CSPDB_RPQ_REGEX_H_
