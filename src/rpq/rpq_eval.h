// Regular-path query evaluation (paper, Section 7): ans(Q, DB) is the set
// of node pairs connected by a path spelling a word of L(Q). Evaluated by
// reachability in the product of the database with the query automaton.

#ifndef CSPDB_RPQ_RPQ_EVAL_H_
#define CSPDB_RPQ_RPQ_EVAL_H_

#include <utility>
#include <vector>

#include "rpq/graphdb.h"
#include "rpq/nfa.h"
#include "rpq/regex.h"

namespace cspdb {

/// True if some path from x to y spells a word of the automaton's
/// language (epsilon transitions allowed in `q`).
bool RpqHolds(const GraphDb& db, const Nfa& q, int x, int y);

/// ans(Q, DB): all pairs (x, y) with a Q-path from x to y, in
/// lexicographic order.
std::vector<std::pair<int, int>> EvaluateRpq(const GraphDb& db,
                                             const Nfa& q);

/// Convenience: compile the regex and evaluate.
std::vector<std::pair<int, int>> EvaluateRpq(const GraphDb& db,
                                             const Regex& q);

}  // namespace cspdb

#endif  // CSPDB_RPQ_RPQ_EVAL_H_
