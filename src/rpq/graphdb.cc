#include "rpq/graphdb.h"

#include <algorithm>

#include "util/check.h"

namespace cspdb {

GraphDb::GraphDb(int num_nodes, int num_labels)
    : num_nodes_(num_nodes), num_labels_(num_labels), out_(num_nodes) {
  CSPDB_CHECK(num_nodes >= 0);
  CSPDB_CHECK(num_labels >= 0);
}

void GraphDb::AddEdge(int from, int label, int to) {
  CSPDB_CHECK(from >= 0 && from < num_nodes_);
  CSPDB_CHECK(to >= 0 && to < num_nodes_);
  CSPDB_CHECK(label >= 0 && label < num_labels_);
  if (HasEdge(from, label, to)) return;
  out_[from].push_back({label, to});
  edges_.push_back({from, label, to});
}

const std::vector<std::pair<int, int>>& GraphDb::OutEdges(int node) const {
  CSPDB_CHECK(node >= 0 && node < num_nodes_);
  return out_[node];
}

bool GraphDb::HasEdge(int from, int label, int to) const {
  CSPDB_CHECK(from >= 0 && from < num_nodes_);
  return std::find(out_[from].begin(), out_[from].end(),
                   std::make_pair(label, to)) != out_[from].end();
}

int GraphDb::NumEdges() const { return static_cast<int>(edges_.size()); }

std::string GraphDb::DebugString(
    const std::vector<std::string>& alphabet) const {
  std::string out = "GraphDb(" + std::to_string(num_nodes_) + " nodes)\n";
  for (const auto& [from, label, to] : edges_) {
    out += "  n" + std::to_string(from) + " -" +
           (label < static_cast<int>(alphabet.size()) ? alphabet[label]
                                                      : "?") +
           "-> n" + std::to_string(to) + "\n";
  }
  return out;
}

Structure StructureFromGraphDb(const GraphDb& db,
                               const std::vector<std::string>& alphabet) {
  Vocabulary voc;
  for (int label = 0; label < db.num_labels(); ++label) {
    std::string name = label < static_cast<int>(alphabet.size())
                           ? alphabet[label]
                           : "L" + std::to_string(label);
    voc.AddSymbol(name, 2);
  }
  Structure a(voc, db.num_nodes());
  for (const auto& [from, label, to] : db.edges()) {
    a.AddTuple(label, {from, to});
  }
  return a;
}

GraphDb GraphDbFromStructure(const Structure& a) {
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    CSPDB_CHECK_MSG(a.vocabulary().symbol(r).arity == 2,
                    "graph databases need all-binary vocabularies");
  }
  GraphDb db(a.domain_size(), a.vocabulary().size());
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) db.AddEdge(t[0], r, t[1]);
  }
  return db;
}

}  // namespace cspdb
