#include "rpq/two_way.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace cspdb {

int InverseSymbol(int symbol, int num_labels) {
  CSPDB_CHECK(symbol >= 0 && symbol < 2 * num_labels);
  return symbol < num_labels ? symbol + num_labels : symbol - num_labels;
}

namespace {

std::vector<int> ReachableTwoWay(const GraphDb& db, const Nfa& q,
                                 const std::vector<std::vector<
                                     std::pair<int, int>>>& in_edges,
                                 int x) {
  std::vector<char> seen(
      static_cast<std::size_t>(db.num_nodes()) * q.num_states, 0);
  std::vector<char> found(db.num_nodes(), 0);
  std::deque<std::pair<int, int>> queue;
  auto visit = [&](int node, int state) {
    std::size_t id = static_cast<std::size_t>(node) * q.num_states + state;
    if (!seen[id]) {
      seen[id] = 1;
      queue.push_back({node, state});
      if (q.accepting[state]) found[node] = 1;
    }
  };
  visit(x, q.start);
  int labels = db.num_labels();
  while (!queue.empty()) {
    auto [node, state] = queue.front();
    queue.pop_front();
    for (const auto& [symbol, next_state] : q.transitions[state]) {
      if (symbol < labels) {
        for (const auto& [label, target] : db.OutEdges(node)) {
          if (label == symbol) visit(target, next_state);
        }
      } else {
        for (const auto& [label, source] : in_edges[node]) {
          if (label == symbol - labels) visit(source, next_state);
        }
      }
    }
  }
  std::vector<int> result;
  for (int y = 0; y < db.num_nodes(); ++y) {
    if (found[y]) result.push_back(y);
  }
  return result;
}

std::vector<std::vector<std::pair<int, int>>> InEdges(const GraphDb& db) {
  std::vector<std::vector<std::pair<int, int>>> in(db.num_nodes());
  for (const auto& [from, label, to] : db.edges()) {
    in[to].push_back({label, from});
  }
  return in;
}

}  // namespace

std::vector<std::pair<int, int>> EvaluateTwoWayRpq(const GraphDb& db,
                                                   const Nfa& q) {
  CSPDB_CHECK_MSG(q.num_symbols == 2 * db.num_labels(),
                  "2RPQ automaton must use the doubled alphabet");
  Nfa eps_free = q.RemoveEpsilon();
  auto in_edges = InEdges(db);
  std::vector<std::pair<int, int>> answers;
  for (int x = 0; x < db.num_nodes(); ++x) {
    for (int y : ReachableTwoWay(db, eps_free, in_edges, x)) {
      answers.push_back({x, y});
    }
  }
  return answers;
}

bool TwoWayRpqHolds(const GraphDb& db, const Nfa& q, int x, int y) {
  CSPDB_CHECK_MSG(q.num_symbols == 2 * db.num_labels(),
                  "2RPQ automaton must use the doubled alphabet");
  Nfa eps_free = q.RemoveEpsilon();
  auto in_edges = InEdges(db);
  std::vector<int> reachable = ReachableTwoWay(db, eps_free, in_edges, x);
  return std::binary_search(reachable.begin(), reachable.end(), y);
}

}  // namespace cspdb
