#include "rpq/nfa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "util/check.h"

namespace cspdb {
namespace {

// Thompson fragments: single start, single accept.
class ThompsonBuilder {
 public:
  explicit ThompsonBuilder(int num_symbols) { nfa_.num_symbols = num_symbols; }

  std::pair<int, int> Build(const Regex& r) {
    switch (r.kind()) {
      case Regex::Kind::kEmpty: {
        int s = NewState(), t = NewState();
        return {s, t};
      }
      case Regex::Kind::kEpsilon: {
        int s = NewState(), t = NewState();
        AddEdge(s, Nfa::kEpsilonSym, t);
        return {s, t};
      }
      case Regex::Kind::kSymbol: {
        CSPDB_CHECK(r.symbol() < nfa_.num_symbols);
        int s = NewState(), t = NewState();
        AddEdge(s, r.symbol(), t);
        return {s, t};
      }
      case Regex::Kind::kConcat: {
        std::pair<int, int> acc = Build(r.children()[0]);
        for (std::size_t i = 1; i < r.children().size(); ++i) {
          std::pair<int, int> next = Build(r.children()[i]);
          AddEdge(acc.second, Nfa::kEpsilonSym, next.first);
          acc.second = next.second;
        }
        return acc;
      }
      case Regex::Kind::kUnion: {
        int s = NewState(), t = NewState();
        for (const Regex& c : r.children()) {
          std::pair<int, int> frag = Build(c);
          AddEdge(s, Nfa::kEpsilonSym, frag.first);
          AddEdge(frag.second, Nfa::kEpsilonSym, t);
        }
        return {s, t};
      }
      case Regex::Kind::kStar: {
        int s = NewState(), t = NewState();
        std::pair<int, int> frag = Build(r.children()[0]);
        AddEdge(s, Nfa::kEpsilonSym, frag.first);
        AddEdge(s, Nfa::kEpsilonSym, t);
        AddEdge(frag.second, Nfa::kEpsilonSym, frag.first);
        AddEdge(frag.second, Nfa::kEpsilonSym, t);
        return {s, t};
      }
    }
    CSPDB_CHECK(false);
    return {0, 0};
  }

  Nfa Finish(std::pair<int, int> frag) {
    nfa_.start = frag.first;
    nfa_.accepting.assign(nfa_.num_states, 0);
    nfa_.accepting[frag.second] = 1;
    return std::move(nfa_);
  }

 private:
  int NewState() {
    nfa_.transitions.emplace_back();
    return nfa_.num_states++;
  }

  void AddEdge(int s, int symbol, int t) {
    nfa_.transitions[s].push_back({symbol, t});
  }

  Nfa nfa_;
};

void SortUnique(std::vector<int>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

Nfa Nfa::FromRegex(const Regex& regex, int num_symbols) {
  ThompsonBuilder builder(num_symbols);
  return builder.Finish(builder.Build(regex));
}

std::vector<int> Nfa::EpsilonClosure(std::vector<int> states) const {
  std::vector<char> seen(num_states, 0);
  std::deque<int> queue;
  for (int s : states) {
    if (!seen[s]) {
      seen[s] = 1;
      queue.push_back(s);
    }
  }
  std::vector<int> closure;
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    closure.push_back(s);
    for (const auto& [symbol, t] : transitions[s]) {
      if (symbol == kEpsilonSym && !seen[t]) {
        seen[t] = 1;
        queue.push_back(t);
      }
    }
  }
  SortUnique(&closure);
  return closure;
}

std::vector<int> Nfa::Step(const std::vector<int>& states,
                           int symbol) const {
  std::vector<int> closed = EpsilonClosure(states);
  std::vector<int> moved;
  for (int s : closed) {
    for (const auto& [sym, t] : transitions[s]) {
      if (sym == symbol) moved.push_back(t);
    }
  }
  SortUnique(&moved);
  return EpsilonClosure(std::move(moved));
}

bool Nfa::Accepts(const std::vector<int>& word) const {
  std::vector<int> current = EpsilonClosure({start});
  for (int symbol : word) {
    current = Step(current, symbol);
    if (current.empty()) return false;
  }
  for (int s : current) {
    if (accepting[s]) return true;
  }
  return false;
}

Nfa Nfa::RemoveEpsilon() const {
  Nfa out;
  out.num_states = num_states;
  out.num_symbols = num_symbols;
  out.start = start;
  out.accepting.assign(num_states, 0);
  out.transitions.resize(num_states);
  for (int s = 0; s < num_states; ++s) {
    std::vector<int> closure = EpsilonClosure({s});
    for (int u : closure) {
      if (accepting[u]) out.accepting[s] = 1;
      for (const auto& [symbol, t] : transitions[u]) {
        if (symbol != kEpsilonSym) out.transitions[s].push_back({symbol, t});
      }
    }
    std::sort(out.transitions[s].begin(), out.transitions[s].end());
    out.transitions[s].erase(
        std::unique(out.transitions[s].begin(), out.transitions[s].end()),
        out.transitions[s].end());
  }
  return out;
}

bool Dfa::Accepts(const std::vector<int>& word) const {
  int state = start;
  for (int symbol : word) {
    CSPDB_CHECK(symbol >= 0 && symbol < num_symbols);
    state = next[state][symbol];
  }
  return accepting[state] != 0;
}

Dfa Dfa::Complement() const {
  Dfa out = *this;
  for (char& a : out.accepting) a = a ? 0 : 1;
  return out;
}

Dfa Dfa::Product(const Dfa& other, bool intersection) const {
  CSPDB_CHECK(num_symbols == other.num_symbols);
  Dfa out;
  out.num_symbols = num_symbols;
  std::map<std::pair<int, int>, int> ids;
  std::deque<std::pair<int, int>> queue;
  auto intern = [&](std::pair<int, int> p) {
    auto it = ids.find(p);
    if (it != ids.end()) return it->second;
    int id = static_cast<int>(ids.size());
    ids.emplace(p, id);
    out.next.emplace_back(num_symbols, -1);
    bool acc = intersection
                   ? accepting[p.first] && other.accepting[p.second]
                   : accepting[p.first] || other.accepting[p.second];
    out.accepting.push_back(acc ? 1 : 0);
    queue.push_back(p);
    return id;
  };
  out.start = intern({start, other.start});
  while (!queue.empty()) {
    auto p = queue.front();
    queue.pop_front();
    int id = ids[p];
    for (int symbol = 0; symbol < num_symbols; ++symbol) {
      out.next[id][symbol] =
          intern({next[p.first][symbol], other.next[p.second][symbol]});
    }
  }
  out.num_states = static_cast<int>(out.next.size());
  return out;
}

bool Dfa::IsEmpty() const {
  std::vector<char> seen(num_states, 0);
  std::deque<int> queue{start};
  seen[start] = 1;
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    if (accepting[s]) return false;
    for (int symbol = 0; symbol < num_symbols; ++symbol) {
      int t = next[s][symbol];
      if (!seen[t]) {
        seen[t] = 1;
        queue.push_back(t);
      }
    }
  }
  return true;
}

bool Dfa::ShortestWord(std::vector<int>* word) const {
  std::vector<int> parent(num_states, -1);
  std::vector<int> via(num_states, -1);
  std::vector<char> seen(num_states, 0);
  std::deque<int> queue{start};
  seen[start] = 1;
  int found = accepting[start] ? start : -1;
  while (!queue.empty() && found < 0) {
    int s = queue.front();
    queue.pop_front();
    for (int symbol = 0; symbol < num_symbols && found < 0; ++symbol) {
      int t = next[s][symbol];
      if (!seen[t]) {
        seen[t] = 1;
        parent[t] = s;
        via[t] = symbol;
        if (accepting[t]) found = t;
        queue.push_back(t);
      }
    }
  }
  if (found < 0) return false;
  word->clear();
  for (int s = found; s != start; s = parent[s]) word->push_back(via[s]);
  std::reverse(word->begin(), word->end());
  return true;
}

Dfa Dfa::Minimize() const {
  // Moore partition refinement.
  std::vector<int> cls(num_states);
  for (int s = 0; s < num_states; ++s) cls[s] = accepting[s] ? 1 : 0;
  while (true) {
    std::map<std::vector<int>, int> signature_ids;
    std::vector<int> next_cls(num_states);
    for (int s = 0; s < num_states; ++s) {
      std::vector<int> sig{cls[s]};
      for (int symbol = 0; symbol < num_symbols; ++symbol) {
        sig.push_back(cls[next[s][symbol]]);
      }
      auto [it, inserted] =
          signature_ids.emplace(std::move(sig),
                                static_cast<int>(signature_ids.size()));
      next_cls[s] = it->second;
    }
    bool stable = true;
    for (int s = 0; s < num_states; ++s) {
      if (next_cls[s] != cls[s]) {
        stable = false;
        break;
      }
    }
    cls = std::move(next_cls);
    if (stable) break;
  }
  int num_classes = 0;
  for (int c : cls) num_classes = std::max(num_classes, c + 1);
  Dfa out;
  out.num_states = num_classes;
  out.num_symbols = num_symbols;
  out.start = cls[start];
  out.accepting.assign(num_classes, 0);
  out.next.assign(num_classes, std::vector<int>(num_symbols, -1));
  for (int s = 0; s < num_states; ++s) {
    out.accepting[cls[s]] = accepting[s];
    for (int symbol = 0; symbol < num_symbols; ++symbol) {
      out.next[cls[s]][symbol] = cls[next[s][symbol]];
    }
  }
  return out;
}

Dfa Determinize(const Nfa& nfa) {
  Dfa out;
  out.num_symbols = nfa.num_symbols;
  std::map<std::vector<int>, int> ids;
  std::deque<std::vector<int>> queue;
  auto intern = [&](std::vector<int> set) {
    auto it = ids.find(set);
    if (it != ids.end()) return it->second;
    int id = static_cast<int>(ids.size());
    bool acc = false;
    for (int s : set) acc = acc || nfa.accepting[s];
    ids.emplace(set, id);
    out.next.emplace_back(nfa.num_symbols, -1);
    out.accepting.push_back(acc ? 1 : 0);
    queue.push_back(std::move(set));
    return id;
  };
  out.start = intern(nfa.EpsilonClosure({nfa.start}));
  while (!queue.empty()) {
    std::vector<int> set = queue.front();
    queue.pop_front();
    int id = ids[set];
    for (int symbol = 0; symbol < nfa.num_symbols; ++symbol) {
      out.next[id][symbol] = intern(nfa.Step(set, symbol));
    }
  }
  out.num_states = static_cast<int>(out.next.size());
  return out;
}

bool SameLanguage(const Dfa& a, const Dfa& b) {
  return a.Product(b.Complement(), true).IsEmpty() &&
         b.Product(a.Complement(), true).IsEmpty();
}

}  // namespace cspdb
