// Edge-labeled graph databases — the semistructured data model of
// Section 7: nodes are objects, labeled edges are links.

#ifndef CSPDB_RPQ_GRAPHDB_H_
#define CSPDB_RPQ_GRAPHDB_H_

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "relational/structure.h"

namespace cspdb {

/// A database DB = (D, {r_e}) over an alphabet of `num_labels` edge
/// labels.
class GraphDb {
 public:
  GraphDb(int num_nodes, int num_labels);

  /// Adds the labeled edge from --label--> to (duplicates ignored).
  void AddEdge(int from, int label, int to);

  int num_nodes() const { return num_nodes_; }
  int num_labels() const { return num_labels_; }

  /// Outgoing edges of `node` as (label, target) pairs.
  const std::vector<std::pair<int, int>>& OutEdges(int node) const;

  bool HasEdge(int from, int label, int to) const;

  /// Total edge count.
  int NumEdges() const;

  /// All edges as (from, label, to) triples, in insertion order.
  const std::vector<std::tuple<int, int, int>>& edges() const {
    return edges_;
  }

  std::string DebugString(const std::vector<std::string>& alphabet) const;

 private:
  int num_nodes_;
  int num_labels_;
  std::vector<std::vector<std::pair<int, int>>> out_;
  std::vector<std::tuple<int, int, int>> edges_;
};

/// Views a graph database as a relational structure: label i becomes the
/// binary relation named `alphabet[i]` (or "L<i>" when no alphabet is
/// given). Bridges Section 7's semistructured data model back to the
/// Section 2 substrate.
Structure StructureFromGraphDb(
    const GraphDb& db, const std::vector<std::string>& alphabet = {});

/// Views a structure whose relations are all binary as a graph database
/// (relation r becomes label r).
GraphDb GraphDbFromStructure(const Structure& a);

}  // namespace cspdb

#endif  // CSPDB_RPQ_GRAPHDB_H_
