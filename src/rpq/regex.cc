#include "rpq/regex.h"

#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace cspdb {

Regex Regex::Empty() { return Regex(); }

Regex Regex::Epsilon() {
  Regex r;
  r.kind_ = Kind::kEpsilon;
  return r;
}

Regex Regex::Symbol(int symbol) {
  CSPDB_CHECK(symbol >= 0);
  Regex r;
  r.kind_ = Kind::kSymbol;
  r.symbol_ = symbol;
  return r;
}

Regex Regex::Concat(std::vector<Regex> children) {
  if (children.empty()) return Epsilon();
  if (children.size() == 1) return std::move(children[0]);
  Regex r;
  r.kind_ = Kind::kConcat;
  r.children_ = std::move(children);
  return r;
}

Regex Regex::Union(std::vector<Regex> children) {
  if (children.empty()) return Empty();
  if (children.size() == 1) return std::move(children[0]);
  Regex r;
  r.kind_ = Kind::kUnion;
  r.children_ = std::move(children);
  return r;
}

Regex Regex::Star(Regex child) {
  Regex r;
  r.kind_ = Kind::kStar;
  r.children_.push_back(std::move(child));
  return r;
}

Regex Regex::Plus(Regex child) {
  Regex copy = child;
  std::vector<Regex> parts;
  parts.push_back(std::move(copy));
  parts.push_back(Star(std::move(child)));
  return Concat(std::move(parts));
}

Regex Regex::Optional(Regex child) {
  std::vector<Regex> parts;
  parts.push_back(std::move(child));
  parts.push_back(Epsilon());
  return Union(std::move(parts));
}

std::string Regex::ToString(
    const std::vector<std::string>& alphabet) const {
  switch (kind_) {
    case Kind::kEmpty:
      return "~";
    case Kind::kEpsilon:
      return "%";
    case Kind::kSymbol:
      CSPDB_CHECK(symbol_ < static_cast<int>(alphabet.size()));
      return alphabet[symbol_];
    case Kind::kConcat: {
      std::string out;
      for (const Regex& c : children_) {
        bool paren = c.kind() == Kind::kUnion;
        out += paren ? "(" + c.ToString(alphabet) + ")" : c.ToString(alphabet);
      }
      return out;
    }
    case Kind::kUnion: {
      std::string out;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += "|";
        out += children_[i].ToString(alphabet);
      }
      return out;
    }
    case Kind::kStar: {
      const Regex& c = children_[0];
      bool paren = c.kind() == Kind::kUnion || c.kind() == Kind::kConcat;
      return (paren ? "(" + c.ToString(alphabet) + ")"
                    : c.ToString(alphabet)) +
             "*";
    }
  }
  return "~";
}

namespace {

// Recursive-descent parser.
class Parser {
 public:
  Parser(const std::string& pattern,
         const std::vector<std::string>& alphabet)
      : pattern_(pattern) {
    for (std::size_t i = 0; i < alphabet.size(); ++i) {
      if (alphabet[i].size() == 1) {
        symbol_of_[alphabet[i][0]] = static_cast<int>(i);
      }
    }
  }

  Regex Parse() {
    Regex r = ParseUnion();
    CSPDB_CHECK_MSG(pos_ == pattern_.size(),
                    "trailing input in regex: " + pattern_);
    return r;
  }

 private:
  char Peek() const { return pos_ < pattern_.size() ? pattern_[pos_] : 0; }
  void Advance() { ++pos_; }

  Regex ParseUnion() {
    std::vector<Regex> parts;
    parts.push_back(ParseConcat());
    while (Peek() == '|') {
      Advance();
      parts.push_back(ParseConcat());
    }
    return Regex::Union(std::move(parts));
  }

  Regex ParseConcat() {
    std::vector<Regex> parts;
    while (true) {
      char c = Peek();
      if (c == 0 || c == '|' || c == ')') break;
      parts.push_back(ParsePostfix());
    }
    return Regex::Concat(std::move(parts));
  }

  Regex ParsePostfix() {
    Regex r = ParseAtom();
    while (true) {
      char c = Peek();
      if (c == '*') {
        r = Regex::Star(std::move(r));
        Advance();
      } else if (c == '+') {
        r = Regex::Plus(std::move(r));
        Advance();
      } else if (c == '?') {
        r = Regex::Optional(std::move(r));
        Advance();
      } else {
        break;
      }
    }
    return r;
  }

  Regex ParseAtom() {
    char c = Peek();
    CSPDB_CHECK_MSG(c != 0, "unexpected end of regex: " + pattern_);
    if (c == '(') {
      Advance();
      Regex r = ParseUnion();
      CSPDB_CHECK_MSG(Peek() == ')', "missing ')' in regex: " + pattern_);
      Advance();
      return r;
    }
    if (c == '%') {
      Advance();
      return Regex::Epsilon();
    }
    if (c == '~') {
      Advance();
      return Regex::Empty();
    }
    auto it = symbol_of_.find(c);
    CSPDB_CHECK_MSG(it != symbol_of_.end(),
                    std::string("unknown symbol '") + c + "' in regex");
    Advance();
    return Regex::Symbol(it->second);
  }

  const std::string& pattern_;
  std::size_t pos_ = 0;
  std::unordered_map<char, int> symbol_of_;
};

}  // namespace

Regex ParseRegex(const std::string& pattern,
                 const std::vector<std::string>& alphabet) {
  return Parser(pattern, alphabet).Parse();
}

}  // namespace cspdb
