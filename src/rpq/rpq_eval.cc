#include "rpq/rpq_eval.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace cspdb {
namespace {

// Targets of `y` reachable from node x in the product construction.
// Works on the epsilon-free form of q.
std::vector<int> ReachableFrom(const GraphDb& db, const Nfa& q, int x) {
  CSPDB_CHECK(q.num_symbols == db.num_labels());
  // Product states: node * num_states + state.
  std::vector<char> seen(
      static_cast<std::size_t>(db.num_nodes()) * q.num_states, 0);
  std::deque<std::pair<int, int>> queue;
  std::vector<char> found(db.num_nodes(), 0);
  auto visit = [&](int node, int state) {
    std::size_t id =
        static_cast<std::size_t>(node) * q.num_states + state;
    if (!seen[id]) {
      seen[id] = 1;
      queue.push_back({node, state});
      if (q.accepting[state]) found[node] = 1;
    }
  };
  visit(x, q.start);
  while (!queue.empty()) {
    auto [node, state] = queue.front();
    queue.pop_front();
    for (const auto& [label, target] : db.OutEdges(node)) {
      for (const auto& [symbol, next_state] : q.transitions[state]) {
        if (symbol == label) visit(target, next_state);
      }
    }
  }
  std::vector<int> result;
  for (int y = 0; y < db.num_nodes(); ++y) {
    if (found[y]) result.push_back(y);
  }
  return result;
}

}  // namespace

bool RpqHolds(const GraphDb& db, const Nfa& q, int x, int y) {
  Nfa eps_free = q.RemoveEpsilon();
  std::vector<int> reachable = ReachableFrom(db, eps_free, x);
  return std::binary_search(reachable.begin(), reachable.end(), y);
}

std::vector<std::pair<int, int>> EvaluateRpq(const GraphDb& db,
                                             const Nfa& q) {
  Nfa eps_free = q.RemoveEpsilon();
  std::vector<std::pair<int, int>> answers;
  for (int x = 0; x < db.num_nodes(); ++x) {
    for (int y : ReachableFrom(db, eps_free, x)) answers.push_back({x, y});
  }
  return answers;
}

std::vector<std::pair<int, int>> EvaluateRpq(const GraphDb& db,
                                             const Regex& q) {
  return EvaluateRpq(db, Nfa::FromRegex(q, db.num_labels()));
}

}  // namespace cspdb
