// Finite automata over dense symbol alphabets: Thompson construction,
// epsilon removal, subset construction, product, and complement. These
// are the machinery behind RPQ evaluation, view-based query answering
// (the constraint template of Theorem 7.5 is built from the query
// automaton), and RPQ rewriting.

#ifndef CSPDB_RPQ_NFA_H_
#define CSPDB_RPQ_NFA_H_

#include <cstdint>
#include <vector>

#include "rpq/regex.h"

namespace cspdb {

/// A nondeterministic finite automaton. Transitions labeled kEpsilonSym
/// are epsilon moves.
struct Nfa {
  static constexpr int kEpsilonSym = -1;

  int num_states = 0;
  int num_symbols = 0;
  int start = 0;
  std::vector<char> accepting;
  /// transitions[s] = list of (symbol, target).
  std::vector<std::vector<std::pair<int, int>>> transitions;

  /// Thompson construction from a regex over `num_symbols` symbols.
  static Nfa FromRegex(const Regex& regex, int num_symbols);

  /// True if the automaton accepts the word (sequence of symbol ids).
  bool Accepts(const std::vector<int>& word) const;

  /// An equivalent automaton without epsilon transitions.
  Nfa RemoveEpsilon() const;

  /// Epsilon closure of a state set (sorted state list in, sorted out).
  std::vector<int> EpsilonClosure(std::vector<int> states) const;

  /// States reachable from `states` by `symbol` then epsilon closure.
  std::vector<int> Step(const std::vector<int>& states, int symbol) const;
};

/// A complete deterministic automaton (every state has a transition on
/// every symbol; a non-accepting sink absorbs dead words).
struct Dfa {
  int num_states = 0;
  int num_symbols = 0;
  int start = 0;
  std::vector<char> accepting;
  /// next[s][symbol]
  std::vector<std::vector<int>> next;

  bool Accepts(const std::vector<int>& word) const;

  /// Swaps accepting and rejecting states.
  Dfa Complement() const;

  /// Product automaton; accepting = and/or of the components.
  Dfa Product(const Dfa& other, bool intersection) const;

  /// True if no accepting state is reachable from the start.
  bool IsEmpty() const;

  /// A shortest accepted word, or std::nullopt-like empty signal: returns
  /// false if the language is empty.
  bool ShortestWord(std::vector<int>* word) const;

  /// Hopcroft-style minimization (partition refinement).
  Dfa Minimize() const;
};

/// Subset construction (reachable subsets only).
Dfa Determinize(const Nfa& nfa);

/// Language equality via product of minimal DFAs.
bool SameLanguage(const Dfa& a, const Dfa& b);

}  // namespace cspdb

#endif  // CSPDB_RPQ_NFA_H_
