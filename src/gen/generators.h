// Seeded workload generators for tests, examples, and the benchmark
// harness. The paper is a tutorial with no datasets; these generators
// provide the standard synthetic instance families used throughout the
// literature it surveys (random digraphs, random k-SAT, model-B random
// binary CSPs, partial k-trees).

#ifndef CSPDB_GEN_GENERATORS_H_
#define CSPDB_GEN_GENERATORS_H_

#include "boolean/cnf.h"
#include "csp/instance.h"
#include "relational/structure.h"
#include "rpq/graphdb.h"
#include "treewidth/gaifman.h"
#include "util/rng.h"

namespace cspdb {

/// G(n, p) digraph over {E/2} (no loops unless allow_loops).
Structure RandomDigraph(int n, double p, Rng* rng, bool allow_loops = false);

/// G(n, p) undirected graph over {E/2} (symmetric, loopless).
Structure RandomUndirectedGraph(int n, double p, Rng* rng);

/// Random k-SAT: `num_clauses` clauses of `k` distinct variables each,
/// signs fair coin flips.
CnfFormula RandomKSat(int num_variables, int num_clauses, int k, Rng* rng);

/// Random Horn formula: clauses of up to `max_size` literals with at most
/// one positive literal.
CnfFormula RandomHorn(int num_variables, int num_clauses, int max_size,
                      Rng* rng);

/// Model-B random binary CSP: `num_constraints` distinct variable pairs;
/// each constraint forbids `tightness * d * d` value pairs.
CspInstance RandomBinaryCsp(int num_variables, int num_values,
                            int num_constraints, double tightness, Rng* rng);

/// A random partial k-tree: build a k-tree on n vertices, keep each
/// non-clique edge with probability keep_p. Treewidth is at most k.
Graph RandomPartialKTree(int n, int k, double keep_p, Rng* rng);

/// A binary CSP whose primal graph is a random partial k-tree (treewidth
/// <= k), with per-edge random relations of the given tightness.
CspInstance RandomTreewidthCsp(int n, int k, int num_values,
                               double tightness, double keep_p, Rng* rng);

/// A random structure over {E/2} whose Gaifman graph is a partial k-tree
/// (treewidth <= k); used to exercise the bounded-treewidth game
/// completeness property.
Structure RandomTreewidthDigraph(int n, int k, double keep_p, Rng* rng);

/// A random edge-labeled graph database.
GraphDb RandomGraphDb(int num_nodes, int num_labels, int num_edges,
                      Rng* rng);

/// `count` indices into a pool of `pool_size` items drawn from a Zipfian
/// distribution with exponent `s` (P(i) proportional to 1/(i+1)^s): the
/// skewed repetition profile of real query workloads, which makes cache
/// hit-rate benchmarks reproducible (ISSUE 5). `s = 0` degenerates to
/// uniform; larger `s` concentrates mass on low indices. Requires
/// pool_size >= 1 and s >= 0.
std::vector<int> ZipfianIndices(int pool_size, int count, double s,
                                Rng* rng);

/// A mutated copy of a binary (or any-arity) CSP instance: one randomly
/// chosen constraint has one value tuple toggled (an allowed tuple
/// removed, or a currently-forbidden tuple added). The mutation knob of
/// the request-stream generator — mutants fingerprint differently from
/// their base instance with overwhelming probability.
CspInstance MutateCsp(const CspInstance& csp, Rng* rng);

}  // namespace cspdb

#endif  // CSPDB_GEN_GENERATORS_H_
