#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "analysis/validate_csp.h"
#include "analysis/validate_structure.h"
#include "boolean/hell_nesetril.h"
#include "util/check.h"

namespace cspdb {

Structure RandomDigraph(int n, double p, Rng* rng, bool allow_loops) {
  Structure g(GraphVocabulary(), n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v && !allow_loops) continue;
      if (rng->Bernoulli(p)) g.AddTuple(0, {u, v});
    }
  }
  CSPDB_AUDIT(AuditOrDie("generated random digraph", ValidateStructure(g)));
  return g;
}

Structure RandomUndirectedGraph(int n, double p, Rng* rng) {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng->Bernoulli(p)) edges.push_back({u, v});
    }
  }
  return MakeUndirectedGraph(n, edges);
}

CnfFormula RandomKSat(int num_variables, int num_clauses, int k, Rng* rng) {
  CSPDB_CHECK(k <= num_variables);
  CnfFormula phi;
  phi.num_variables = num_variables;
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    for (int v : rng->SampleDistinct(num_variables, k)) {
      clause.literals.push_back({v, rng->Bernoulli(0.5)});
    }
    phi.clauses.push_back(std::move(clause));
  }
  return phi;
}

CnfFormula RandomHorn(int num_variables, int num_clauses, int max_size,
                      Rng* rng) {
  CSPDB_CHECK(max_size >= 1 && max_size <= num_variables);
  CnfFormula phi;
  phi.num_variables = num_variables;
  for (int c = 0; c < num_clauses; ++c) {
    int size = rng->UniformInt(1, max_size);
    Clause clause;
    std::vector<int> vars = rng->SampleDistinct(num_variables, size);
    bool with_positive = rng->Bernoulli(0.7);
    for (std::size_t i = 0; i < vars.size(); ++i) {
      bool positive = with_positive && i == 0;
      clause.literals.push_back({vars[i], positive});
    }
    phi.clauses.push_back(std::move(clause));
  }
  CSPDB_CHECK(phi.IsHorn());
  return phi;
}

CspInstance RandomBinaryCsp(int num_variables, int num_values,
                            int num_constraints, double tightness,
                            Rng* rng) {
  CspInstance csp(num_variables, num_values);
  std::set<std::pair<int, int>> used;
  int max_pairs = num_variables * (num_variables - 1) / 2;
  CSPDB_CHECK(num_constraints <= max_pairs);
  int forbidden = static_cast<int>(tightness * num_values * num_values);
  while (static_cast<int>(used.size()) < num_constraints) {
    int u = rng->UniformInt(0, num_variables - 1);
    int v = rng->UniformInt(0, num_variables - 1);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!used.insert({u, v}).second) continue;
    // Forbid `forbidden` distinct value pairs.
    std::vector<int> cells = rng->SampleDistinct(num_values * num_values,
                                                 forbidden);
    std::set<int> bad(cells.begin(), cells.end());
    std::vector<Tuple> allowed;
    for (int x = 0; x < num_values; ++x) {
      for (int y = 0; y < num_values; ++y) {
        if (bad.count(x * num_values + y) == 0) allowed.push_back({x, y});
      }
    }
    csp.AddConstraint({u, v}, std::move(allowed));
  }
  CSPDB_AUDIT(
      AuditOrDie("generated random binary CSP", ValidateCspInstance(csp)));
  return csp;
}

Graph RandomPartialKTree(int n, int k, double keep_p, Rng* rng) {
  CSPDB_CHECK(k >= 1);
  Graph g(n);
  if (n == 0) return g;
  int clique = std::min(n, k + 1);
  std::vector<std::pair<int, int>> candidate_edges;
  for (int u = 0; u < clique; ++u) {
    for (int v = u + 1; v < clique; ++v) candidate_edges.push_back({u, v});
  }
  // Grow: each new vertex attaches to a random k-clique of the current
  // k-tree. We track k-cliques lazily: attach to the k-subset of an
  // earlier vertex's bag.
  std::vector<std::vector<int>> bags;  // (k+1)-cliques created so far
  std::vector<int> base(clique);
  for (int i = 0; i < clique; ++i) base[i] = i;
  bags.push_back(base);
  for (int v = clique; v < n; ++v) {
    const std::vector<int>& host = bags[rng->UniformInt(
        0, static_cast<int>(bags.size()) - 1)];
    // Choose k vertices of the host clique.
    std::vector<int> idx = rng->SampleDistinct(
        static_cast<int>(host.size()),
        std::min(k, static_cast<int>(host.size())));
    std::vector<int> attach;
    for (int i : idx) attach.push_back(host[i]);
    for (int u : attach) candidate_edges.push_back({u, v});
    attach.push_back(v);
    std::sort(attach.begin(), attach.end());
    bags.push_back(attach);
  }
  for (const auto& [u, v] : candidate_edges) {
    if (rng->Bernoulli(keep_p)) g.AddEdge(u, v);
  }
  return g;
}

CspInstance RandomTreewidthCsp(int n, int k, int num_values,
                               double tightness, double keep_p, Rng* rng) {
  Graph g = RandomPartialKTree(n, k, keep_p, rng);
  CspInstance csp(n, num_values);
  int forbidden = static_cast<int>(tightness * num_values * num_values);
  for (int u = 0; u < n; ++u) {
    for (int v : g.adj[u]) {
      if (v < u) continue;
      std::vector<int> cells =
          rng->SampleDistinct(num_values * num_values, forbidden);
      std::set<int> bad(cells.begin(), cells.end());
      std::vector<Tuple> allowed;
      for (int x = 0; x < num_values; ++x) {
        for (int y = 0; y < num_values; ++y) {
          if (bad.count(x * num_values + y) == 0) {
            allowed.push_back({x, y});
          }
        }
      }
      csp.AddConstraint({u, v}, std::move(allowed));
    }
  }
  CSPDB_AUDIT(AuditOrDie("generated random treewidth-bounded CSP",
                         ValidateCspInstance(csp)));
  return csp;
}

Structure RandomTreewidthDigraph(int n, int k, double keep_p, Rng* rng) {
  Graph g = RandomPartialKTree(n, k, keep_p, rng);
  Structure a(GraphVocabulary(), n);
  for (int u = 0; u < n; ++u) {
    for (int v : g.adj[u]) {
      if (v < u) continue;
      // Random orientation (or both).
      int roll = rng->UniformInt(0, 2);
      if (roll == 0 || roll == 2) a.AddTuple(0, {u, v});
      if (roll == 1 || roll == 2) a.AddTuple(0, {v, u});
    }
  }
  CSPDB_AUDIT(AuditOrDie("generated random treewidth-bounded digraph",
                         ValidateStructure(a)));
  return a;
}

GraphDb RandomGraphDb(int num_nodes, int num_labels, int num_edges,
                      Rng* rng) {
  GraphDb db(num_nodes, num_labels);
  for (int e = 0; e < num_edges; ++e) {
    db.AddEdge(rng->UniformInt(0, num_nodes - 1),
               rng->UniformInt(0, num_labels - 1),
               rng->UniformInt(0, num_nodes - 1));
  }
  return db;
}

std::vector<int> ZipfianIndices(int pool_size, int count, double s,
                                Rng* rng) {
  CSPDB_CHECK(pool_size >= 1);
  CSPDB_CHECK(s >= 0.0);
  // Cumulative mass of 1/(i+1)^s, sampled by binary search per draw.
  std::vector<double> cdf(pool_size);
  double total = 0.0;
  for (int i = 0; i < pool_size; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  std::vector<int> indices;
  indices.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double u = rng->UniformDouble() * total;
    indices.push_back(static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
  }
  return indices;
}

CspInstance MutateCsp(const CspInstance& csp, Rng* rng) {
  CSPDB_CHECK(!csp.constraints().empty());
  const int target = rng->UniformInt(
      0, static_cast<int>(csp.constraints().size()) - 1);
  CspInstance mutated(csp.num_variables(), csp.num_values());
  for (int c = 0; c < static_cast<int>(csp.constraints().size()); ++c) {
    const Constraint& constraint = csp.constraint(c);
    std::vector<Tuple> allowed = constraint.allowed;
    if (c == target) {
      // Toggle one tuple: drop an allowed one, or add a random forbidden
      // one (retrying a few times; a full relation stays full).
      if (!allowed.empty() && rng->Bernoulli(0.5)) {
        allowed.erase(allowed.begin() +
                      rng->UniformInt(0, static_cast<int>(allowed.size()) - 1));
      } else {
        for (int attempt = 0; attempt < 16; ++attempt) {
          Tuple t(constraint.arity());
          for (int& x : t) x = rng->UniformInt(0, csp.num_values() - 1);
          if (!constraint.allowed_set.count(t)) {
            allowed.push_back(std::move(t));
            break;
          }
        }
      }
    }
    mutated.AddConstraint(constraint.scope, std::move(allowed));
  }
  CSPDB_AUDIT(
      AuditOrDie("mutated CSP instance", ValidateCspInstance(mutated)));
  return mutated;
}

}  // namespace cspdb
