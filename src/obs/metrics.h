// Process-wide metrics registry: named counters, gauges, and timers that
// the instrumentation macros in obs/obs.h increment from the hot
// subsystems (search nodes, GAC revisions, semijoin passes, fixpoint
// deltas, ...). Handles returned by the registry are stable for the
// process lifetime, so a call site pays the name lookup once (the macros
// cache the handle in a function-local static) and then a relaxed atomic
// add per event — cheap enough to leave compiled into instrumented
// builds, absent entirely from CSPDB_OBS=OFF release builds.
//
// The registry itself is always compiled (EXPLAIN, tests, and tools use
// it directly); only the macro layer is gated by the build tier.

#ifndef CSPDB_OBS_METRICS_H_
#define CSPDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "obs/histogram.h"
#include "util/sync.h"

namespace cspdb::obs {

/// A monotonically increasing event count. Thread-safe-enough: relaxed
/// atomics, no ordering guarantees between counters.
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A last-written or high-watermark value (peak queue length, peak
/// intermediate rows).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if `v` is larger (high-watermark semantics).
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Accumulated wall time across scoped measurements of one named region.
class Timer {
 public:
  void Record(int64_t ns) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> total_ns_{0};
};

/// A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct TimerValue {
    int64_t count = 0;
    int64_t total_ns = 0;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, TimerValue> timers;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// The process-wide registry. Registration takes a writer lock,
/// snapshots and existence checks a reader lock; increments on returned
/// handles are lock-free. Names are conventionally dot-separated,
/// subsystem first ("csp.nodes", "gac.revisions",
/// "db.semijoin.rows_removed").
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the counter/gauge/timer registered under `name`, creating it
  /// on first use. The reference stays valid for the process lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Timer& GetTimer(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// True if a metric of the given kind was ever registered under `name`.
  bool HasCounter(std::string_view name) const;
  bool HasHistogram(std::string_view name) const;

  MetricsSnapshot Snapshot() const;

  /// The snapshot rendered as a JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "timers": {name: {"count": c, "total_ns": t}, ...},
  ///    "histograms": {name: {"count": c, "sum": s, "min": m, "max": M,
  ///                          "p50": ..., "p90": ..., "p99": ...,
  ///                          "p999": ...,
  ///                          "buckets": [[lo, hi, count], ...]}, ...}}
  /// Histogram buckets are emitted sparsely (nonzero only) as
  /// [inclusive lower bound, exclusive upper bound, count] triples in
  /// ascending order — the shape tools/validate_metrics.py checks.
  std::string SnapshotJson() const;

  /// Zeroes every registered metric (handles stay valid). Test support;
  /// production code accumulates for the process lifetime.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  // Leaf lock: nothing is acquired while holding it. The maps are
  // guarded; the Counter/Gauge/Timer objects they own are not (their
  // state is atomic, and handle addresses are stable across
  // registrations because the maps are node-based).
  mutable util::SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CSPDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CSPDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_
      CSPDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CSPDB_GUARDED_BY(mu_);
};

}  // namespace cspdb::obs

#endif  // CSPDB_OBS_METRICS_H_
