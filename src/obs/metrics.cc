#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace cspdb::obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Timer& MetricsRegistry::GetTimer(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

bool MetricsRegistry::HasCounter(std::string_view name) const {
  util::ReaderLock lock(mu_);
  return counters_.find(name) != counters_.end();
}

bool MetricsRegistry::HasHistogram(std::string_view name) const {
  util::ReaderLock lock(mu_);
  return histograms_.find(name) != histograms_.end();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::ReaderLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, timer] : timers_) {
    snap.timers[name] = {timer->count(), timer->total_ns()};
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

namespace {

// Metric names are identifier-and-dot strings by convention, but escape
// defensively so the snapshot is valid JSON for any name.
void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out << "\\\"";
        break;
      case '\\':
        *out << "\\\\";
        break;
      default:
        // Escape DEL alongside the control range, and format via unsigned
        // char: a negative signed char sign-extends through %x into
        // eight hex digits, corrupting the JSON instead of escaping it.
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(&out, name);
    out << ": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(&out, name);
    out << ": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"timers\": {";
  first = true;
  for (const auto& [name, value] : snap.timers) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(&out, name);
    out << ": {\"count\": " << value.count
        << ", \"total_ns\": " << value.total_ns << "}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(&out, name);
    out << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"p50\": " << h.ValueAtQuantile(0.50)
        << ", \"p90\": " << h.ValueAtQuantile(0.90)
        << ", \"p99\": " << h.ValueAtQuantile(0.99)
        << ", \"p999\": " << h.ValueAtQuantile(0.999) << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      out << (first_bucket ? "" : ", ") << "["
          << Histogram::BucketLowerBound(static_cast<int>(i)) << ", "
          << Histogram::BucketUpperBound(static_cast<int>(i)) << ", "
          << h.buckets[i] << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

void MetricsRegistry::ResetAll() {
  // Reader lock is enough: the maps are only read, and the metric
  // objects reset through their own atomics.
  util::ReaderLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, timer] : timers_) timer->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace cspdb::obs
