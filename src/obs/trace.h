// Span tracer emitting Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing. A session buffers begin/end/instant events in memory
// (one small POD per event, names must be string literals) and writes the
// {"traceEvents": [...]} object on Stop()/Flush(), which also runs at
// process exit.
//
// Activation: the first touch of TraceSession::Global() reads the
// CSPDB_TRACE environment variable; if set, the session opens that path
// and enables itself. Tests and tools can instead call Start(path)
// programmatically. When disabled, emitting is a single relaxed atomic
// load — the instrumentation macros stay cheap even in instrumented
// builds with no trace requested.

#ifndef CSPDB_OBS_TRACE_H_
#define CSPDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/sync.h"

namespace cspdb::obs {

/// Request-scoped trace context, propagated across thread hops so a
/// request's spans stitch into one logical lane via flow events. The
/// current context is thread-local; exec::ThreadPool::Submit captures it
/// at enqueue time and re-installs it inside the task wrapper, so any
/// code running on behalf of a request can ask "which request?" without
/// plumbing an argument through every layer. `request_id` 0 means "no
/// request" (nothing is captured or emitted).
struct TraceContext {
  uint64_t request_id = 0;
};

/// The calling thread's current context ({0} when none is installed).
TraceContext CurrentTraceContext();

/// RAII: installs `ctx` as the calling thread's context, restoring the
/// previous one on destruction (contexts nest like scopes).
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// The process-wide trace session.
class TraceSession {
 public:
  /// Lazily constructed singleton; first call honors CSPDB_TRACE.
  static TraceSession& Global();

  /// The calling thread's trace track id: a small sequential integer
  /// assigned on first use (0 for the first thread that emits, 1 for the
  /// next, ...). Stable for the thread's lifetime and collision-free,
  /// unlike hashing std::thread::id.
  static uint64_t CurrentTid();

  /// Names the calling thread's track ("exec.worker.0.3"). Remembered
  /// across Start()/Stop() cycles and emitted as a thread_name metadata
  /// event in every written trace, so worker threads register once at
  /// spawn. Safe to call whether or not a session is recording.
  static void SetCurrentThreadName(const char* name);

  /// True if events are currently being recorded.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts recording to `path` (overwrites). A running session is
  /// stopped and flushed first.
  void Start(const std::string& path);

  /// Flushes buffered events to the file and disables recording.
  /// No-op if not recording.
  void Stop();

  /// Writes the events buffered so far without ending the session.
  void Flush();

  /// Emits a duration-begin event ("ph":"B"). `name` must outlive the
  /// session (string literals in practice). Balanced by EndSpan — use the
  /// RAII wrappers below rather than calling these directly.
  void BeginSpan(const char* name);

  /// Emits the matching duration-end event ("ph":"E").
  void EndSpan(const char* name);

  /// Emits an instant event ("ph":"i", thread scope).
  void Instant(const char* name);

  /// Emits a counter event ("ph":"C") so numeric series (queue lengths,
  /// delta sizes) render as tracks in the viewer.
  void CounterValue(const char* name, int64_t value);

  /// Emits a flow-start event ("ph":"s"). Chrome/Perfetto draw an arrow
  /// from the duration span enclosing this event to the span enclosing
  /// the matching FlowEnd — which is how a request's spans link across
  /// worker-thread lanes. Lifetime rules (validated by
  /// tools/validate_trace.py): a flow event must be emitted while a
  /// span is open on its thread (it binds to that span), and every
  /// started id must be finished exactly once before the session ends.
  void FlowStart(const char* name, uint64_t id);

  /// Emits the matching flow-end event ("ph":"f", "bp":"e" — binds to
  /// the *enclosing* span rather than the next one to start).
  void FlowEnd(const char* name, uint64_t id);

 private:
  TraceSession();

  struct Event {
    char phase;        // 'B', 'E', 'i', 'C', 's', or 'f'
    const char* name;  // not owned; must outlive the session
    int64_t ts_ns;     // relative to session start
    uint64_t tid;
    int64_t arg;  // counter value for 'C'; flow id for 's'/'f'
  };

  void Record(char phase, const char* name, int64_t arg);
  // Session-relative timestamp; reads t0_ns_, so the caller holds mu_.
  int64_t NowNs() const CSPDB_REQUIRES(mu_);
  // Rewrites the output file from the full event buffer (the file is
  // valid JSON after every flush).
  void WriteFileLocked() CSPDB_REQUIRES(mu_);
  // Disables recording and flushes; shared by Stop() and Start().
  void StopLocked() CSPDB_REQUIRES(mu_);

  // enabled_ is the lock-free fast-path flag read by every emit site;
  // its transitions happen only under mu_, so Start/Stop/Record cannot
  // interleave half-switched (a racer past the relaxed fast path
  // re-checks under the lock).
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;
  std::string path_ CSPDB_GUARDED_BY(mu_);
  std::vector<Event> events_ CSPDB_GUARDED_BY(mu_);
  // tid -> human-readable track name; persists across Start/Stop cycles.
  std::map<uint64_t, std::string> thread_names_ CSPDB_GUARDED_BY(mu_);
  int64_t t0_ns_ CSPDB_GUARDED_BY(mu_) = 0;
};

/// RAII span: begin on construction, end on destruction. Does nothing if
/// the session is disabled at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(name), active_(TraceSession::Global().enabled()) {
    if (active_) TraceSession::Global().BeginSpan(name_);
  }
  ~ScopedSpan() {
    if (active_) TraceSession::Global().EndSpan(name_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  bool active_;
};

}  // namespace cspdb::obs

#endif  // CSPDB_OBS_TRACE_H_
