// Fingerprint-keyed runtime-stats store: a bounded, sharded map from a
// 128-bit request key (the service's canonical fingerprint, but any
// stable 128-bit identity works — obs/ knows nothing about service/) to
// the outcomes of prior requests with that key. The serving layer records
// one RequestOutcome per handled request; later requests with the same
// fingerprint can ask "how did this query behave before?" — the
// adaptive-dispatch hook ROADMAP.md's open items call for.
//
// Bounding and eviction: each of the kNumShards shards holds at most
// max_keys / kNumShards keys under LRU eviction (recording to a key
// refreshes it; the least recently *recorded* key is evicted when a
// shard is full). Per key, only the last history_per_key outcomes are
// retained in a ring, plus running aggregates over every outcome ever
// recorded for the key — so memory is O(max_keys * history_per_key)
// regardless of traffic volume or skew.
//
// Thread safety: each shard is guarded by its own util::Mutex (leaf
// locks: nothing is acquired while holding one, and operations touch
// exactly one shard except Clear/size/DumpJson which take them in index
// order one at a time). Clean under TSan by construction — verified by
// tests/stats_store_test.cc's StatsStoreConcurrency hammer.

#ifndef CSPDB_OBS_STATS_STORE_H_
#define CSPDB_OBS_STATS_STORE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/sync.h"

namespace cspdb::obs {

/// A 128-bit request identity. The service passes its canonical
/// fingerprint; the store only hashes and compares it.
struct StatsKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const StatsKey& a, const StatsKey& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// One handled request's outcome. The integer codes (kind, status,
/// cache_disposition) are caller-defined ordinals — the store treats
/// them as opaque labels and echoes them back in queries and dumps.
struct RequestOutcome {
  int32_t kind = 0;               ///< request-kind ordinal
  int32_t status = 0;             ///< status-code ordinal
  int32_t cache_disposition = 0;  ///< e.g. miss/hit/coalesced/bypass
  int64_t work_items = 0;  ///< engine-specific size: nodes, rows, facts
  int64_t wall_ns = 0;     ///< handling wall time
  int64_t queue_wait_ns = 0;  ///< enqueue -> task-start wait (async only)
};

/// Aggregate view of every outcome ever recorded for one key, plus the
/// retained ring of recent outcomes (most recent first).
struct KeySummary {
  int64_t count = 0;         ///< outcomes recorded (not just retained)
  int64_t total_wall_ns = 0;
  int64_t min_wall_ns = 0;
  int64_t max_wall_ns = 0;
  std::vector<RequestOutcome> recent;  ///< newest first, bounded
};

struct StatsStoreOptions {
  /// Total key capacity across shards (rounded up to a multiple of the
  /// shard count; minimum one key per shard).
  std::size_t max_keys = 4096;
  /// Recent outcomes retained per key.
  std::size_t history_per_key = 8;
};

class StatsStore {
 public:
  explicit StatsStore(StatsStoreOptions options = {});

  StatsStore(const StatsStore&) = delete;
  StatsStore& operator=(const StatsStore&) = delete;

  /// Records `outcome` under `key`, refreshing the key's LRU position
  /// and evicting the shard's least recently recorded key if the shard
  /// is at capacity.
  void Record(const StatsKey& key, const RequestOutcome& outcome);

  /// Stats of prior requests with this exact key, or nullopt if the key
  /// was never recorded (or has been evicted). Does not refresh LRU —
  /// querying is free of side effects.
  std::optional<KeySummary> Query(const StatsKey& key) const;

  /// Keys currently resident (post-eviction), across all shards.
  std::size_t size() const;

  /// Every resident key with aggregates and retained outcomes, as a JSON
  /// object:
  ///   {"max_keys": N, "keys": [{"key": "<hex32>", "count": c,
  ///     "total_wall_ns": t, "min_wall_ns": m, "max_wall_ns": M,
  ///     "recent": [{"kind": k, "status": s, "cache_disposition": d,
  ///                 "work_items": w, "wall_ns": n,
  ///                 "queue_wait_ns": q}, ...]}, ...]}
  /// Keys are emitted in ascending hex order so dumps diff cleanly.
  std::string DumpJson() const;

  /// Drops every key. Capacity configuration is retained.
  void Clear();

 private:
  struct Entry {
    int64_t count = 0;
    int64_t total_wall_ns = 0;
    int64_t min_wall_ns = 0;
    int64_t max_wall_ns = 0;
    std::vector<RequestOutcome> ring;  ///< capacity history_per_key
    std::size_t ring_next = 0;         ///< next slot to overwrite
    std::list<StatsKey>::iterator lru_pos;
  };

  struct KeyHash {
    std::size_t operator()(const StatsKey& key) const {
      // splitmix-style mix of the halves; the fingerprint is already
      // well distributed but defend against adversarially similar keys.
      uint64_t x = key.lo ^ (key.hi * 0x9e3779b97f4a7c15ULL);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };

  static constexpr int kNumShards = 8;

  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<StatsKey, Entry, KeyHash> entries
        CSPDB_GUARDED_BY(mu);
    // Front = most recently recorded; evict from the back.
    std::list<StatsKey> lru CSPDB_GUARDED_BY(mu);
  };

  const Shard& ShardFor(const StatsKey& key) const {
    return shards_[KeyHash{}(key) % kNumShards];
  }
  Shard& ShardFor(const StatsKey& key) {
    return shards_[KeyHash{}(key) % kNumShards];
  }

  std::size_t keys_per_shard_;
  std::size_t history_per_key_;
  Shard shards_[kNumShards];
};

}  // namespace cspdb::obs

#endif  // CSPDB_OBS_STATS_STORE_H_
