#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <thread>

namespace cspdb::obs {

namespace {

uint64_t CurrentTid() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

void FlushGlobalAtExit() { TraceSession::Global().Stop(); }

}  // namespace

TraceSession::TraceSession() {
  const char* path = std::getenv("CSPDB_TRACE");
  if (path != nullptr && path[0] != '\0') {
    Start(path);
  }
}

TraceSession& TraceSession::Global() {
  static TraceSession* session = new TraceSession();
  return *session;
}

void TraceSession::Start(const std::string& path) {
  Stop();
  std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
  events_.clear();
  t0_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count();
  // Write an empty-but-valid trace immediately so a crashed run still
  // leaves a loadable file.
  WriteFileLocked();
  static bool atexit_registered = []() {
    std::atexit(FlushGlobalAtExit);
    return true;
  }();
  (void)atexit_registered;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSession::Stop() {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  WriteFileLocked();
}

void TraceSession::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) return;
  WriteFileLocked();
}

int64_t TraceSession::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         t0_ns_;
}

void TraceSession::Record(char phase, const char* name, int64_t arg) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const int64_t ts = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({phase, name, ts, CurrentTid(), arg});
}

void TraceSession::BeginSpan(const char* name) { Record('B', name, 0); }
void TraceSession::EndSpan(const char* name) { Record('E', name, 0); }
void TraceSession::Instant(const char* name) { Record('i', name, 0); }
void TraceSession::CounterValue(const char* name, int64_t value) {
  Record('C', name, value);
}

void TraceSession::WriteFileLocked() {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  const char* sep = "\n";
  for (const Event& e : events_) {
    // Chrome trace timestamps are microseconds; keep ns resolution via
    // the fractional part.
    const int64_t us = e.ts_ns / 1000;
    const int64_t frac = e.ts_ns % 1000;
    out << sep << "{\"name\": \"" << e.name << "\", \"ph\": \"" << e.phase
        << "\", \"ts\": " << us << "." << (frac / 100) << ((frac / 10) % 10)
        << (frac % 10) << ", \"pid\": 1, \"tid\": " << (e.tid % 1000000);
    if (e.phase == 'i') {
      out << ", \"s\": \"t\"";
    } else if (e.phase == 'C') {
      out << ", \"args\": {\"value\": " << e.arg << "}";
    }
    out << "}";
    sep = ",\n";
  }
  out << "\n]}\n";
}

}  // namespace cspdb::obs
