#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace cspdb::obs {

namespace {

void FlushGlobalAtExit() { TraceSession::Global().Stop(); }

thread_local TraceContext g_trace_context;

// Minimal JSON string escaping for event/track names (quote, backslash,
// and control characters; names are identifiers in practice).
void WriteJsonString(std::ofstream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out << '\\' << *s;
    } else if (c < 0x20 || c == 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out << buf;
    } else {
      out << *s;
    }
  }
  out << '"';
}

}  // namespace

TraceContext CurrentTraceContext() { return g_trace_context; }

TraceContextScope::TraceContextScope(TraceContext ctx)
    : saved_(g_trace_context) {
  g_trace_context = ctx;
}

TraceContextScope::~TraceContextScope() { g_trace_context = saved_; }

uint64_t TraceSession::CurrentTid() {
  // Sequential registry instead of std::hash<std::thread::id>: hashes can
  // collide (merging two threads' tracks, breaking span nesting) and vary
  // across runs (unstable track ids in diffs). Ids are never reused.
  static std::atomic<uint64_t> next_tid{0};
  thread_local const uint64_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void TraceSession::SetCurrentThreadName(const char* name) {
  TraceSession& session = Global();
  util::MutexLock lock(session.mu_);
  session.thread_names_[CurrentTid()] = name;
}

TraceSession::TraceSession() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, inside the
  // magic-static constructor of Global() — no concurrent setenv exists.
  const char* path = std::getenv("CSPDB_TRACE");
  if (path != nullptr && path[0] != '\0') {
    Start(path);
  }
}

TraceSession& TraceSession::Global() {
  static TraceSession* session = new TraceSession();
  return *session;
}

void TraceSession::Start(const std::string& path) {
  // One critical section for the whole transition: the old session (if
  // any) is flushed and the new one armed without a window where a
  // racing Record() could deposit an event against a half-switched
  // path_/t0_ns_ (previously Stop() ran before the lock was taken).
  util::MutexLock lock(mu_);
  StopLocked();
  path_ = path;
  events_.clear();
  t0_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count();
  // Write an empty-but-valid trace immediately so a crashed run still
  // leaves a loadable file.
  WriteFileLocked();
  static bool atexit_registered = []() {
    std::atexit(FlushGlobalAtExit);
    return true;
  }();
  (void)atexit_registered;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSession::Stop() {
  util::MutexLock lock(mu_);
  StopLocked();
}

void TraceSession::StopLocked() {
  // The enabled_ check-then-clear races with concurrent Stop()/Start()
  // were real (two Stops could both flush; a Stop could disable a
  // just-started session's flag after its buffer swap) — transitions
  // now happen only with mu_ held.
  if (!enabled_.load(std::memory_order_relaxed)) return;
  enabled_.store(false, std::memory_order_relaxed);
  WriteFileLocked();
}

void TraceSession::Flush() {
  util::MutexLock lock(mu_);
  if (path_.empty()) return;
  WriteFileLocked();
}

int64_t TraceSession::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         t0_ns_;
}

void TraceSession::Record(char phase, const char* name, int64_t arg) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  util::MutexLock lock(mu_);
  // Re-check under the lock: a Stop() that won the race must not see a
  // straggler land in the next session's cleared buffer. The timestamp
  // is also taken here — NowNs() reads t0_ns_, which a concurrent
  // Start() rewrites (previously an unguarded read, flagged by the
  // thread-safety analysis).
  if (!enabled_.load(std::memory_order_relaxed)) return;
  events_.push_back({phase, name, NowNs(), CurrentTid(), arg});
}

void TraceSession::BeginSpan(const char* name) { Record('B', name, 0); }
void TraceSession::EndSpan(const char* name) { Record('E', name, 0); }
void TraceSession::Instant(const char* name) { Record('i', name, 0); }
void TraceSession::CounterValue(const char* name, int64_t value) {
  Record('C', name, value);
}
void TraceSession::FlowStart(const char* name, uint64_t id) {
  Record('s', name, static_cast<int64_t>(id));
}
void TraceSession::FlowEnd(const char* name, uint64_t id) {
  Record('f', name, static_cast<int64_t>(id));
}

void TraceSession::WriteFileLocked() {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  const char* sep = "\n";
  // Metadata first: bind each registered thread's sequential tid to its
  // track name so viewers label worker tracks.
  for (const auto& [tid, name] : thread_names_) {
    out << sep
        << "{\"name\": \"thread_name\", \"ph\": \"M\", \"ts\": 0, "
           "\"pid\": 1, \"tid\": "
        << tid << ", \"args\": {\"name\": ";
    WriteJsonString(out, name.c_str());
    out << "}}";
    sep = ",\n";
  }
  for (const Event& e : events_) {
    // Chrome trace timestamps are microseconds; keep ns resolution via
    // the fractional part.
    const int64_t us = e.ts_ns / 1000;
    const int64_t frac = e.ts_ns % 1000;
    out << sep << "{\"name\": ";
    WriteJsonString(out, e.name);
    out << ", \"ph\": \"" << e.phase << "\", \"ts\": " << us << "."
        << (frac / 100) << ((frac / 10) % 10) << (frac % 10)
        << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.phase == 'i') {
      out << ", \"s\": \"t\"";
    } else if (e.phase == 'C') {
      out << ", \"args\": {\"value\": " << e.arg << "}";
    } else if (e.phase == 's' || e.phase == 'f') {
      // Flow events match on (cat, name, id); "bp": "e" binds the end
      // to its enclosing span instead of the next slice to begin.
      out << ", \"cat\": \"flow\", \"id\": " << e.arg;
      if (e.phase == 'f') out << ", \"bp\": \"e\"";
    }
    out << "}";
    sep = ",\n";
  }
  out << "\n]}\n";
}

}  // namespace cspdb::obs
