#include "obs/explain.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"

namespace cspdb::obs {
namespace {

void AppendSchema(std::ostringstream* out, const std::vector<int>& schema) {
  *out << "(";
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) *out << ", ";
    *out << schema[i];
  }
  *out << ")";
}

void RenderForestNode(const JoinForest& forest,
                      const std::vector<DbRelation>& relations,
                      const YannakakisStats* stats,
                      const std::vector<std::vector<int>>& children, int node,
                      int depth, std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << (depth == 0 ? "* " : "- ") << "R" << node;
  AppendSchema(out, relations[node].schema());
  *out << "  input=" << relations[node].size();
  if (stats != nullptr) {
    if (node < static_cast<int>(stats->reduced_rows.size())) {
      *out << "  reduced=" << stats->reduced_rows[node];
    }
    if (node < static_cast<int>(stats->fold_rows.size()) &&
        stats->fold_rows[node] >= 0) {
      *out << "  fold_join=" << stats->fold_rows[node];
    }
  }
  *out << "\n";
  for (int child : children[node]) {
    RenderForestNode(forest, relations, stats, children, child, depth + 1,
                     out);
  }
}

}  // namespace

std::string ExplainJoinForest(const JoinForest& forest,
                              const std::vector<DbRelation>& relations,
                              const YannakakisStats* stats) {
  const int m = static_cast<int>(relations.size());
  CSPDB_CHECK(static_cast<int>(forest.parent.size()) == m);
  std::vector<std::vector<int>> children(m);
  std::vector<int> roots;
  for (int e = 0; e < m; ++e) {
    if (forest.parent[e] < 0) {
      roots.push_back(e);
    } else {
      children[forest.parent[e]].push_back(e);
    }
  }
  std::ostringstream out;
  out << "join forest: " << m << " relation" << (m == 1 ? "" : "s") << ", "
      << roots.size() << " root" << (roots.size() == 1 ? "" : "s") << "\n";
  for (int root : roots) {
    RenderForestNode(forest, relations, stats, children, root, 0, &out);
  }
  if (stats != nullptr) {
    out << "full reducer: " << stats->semijoin_passes << " semijoin pass"
        << (stats->semijoin_passes == 1 ? "" : "es") << ", "
        << stats->rows_removed << " rows removed, peak reduced rows "
        << stats->peak_reduced_rows << "\n";
    out << "bottom-up joins: peak intermediate " << stats->peak_join_rows
        << " rows, output " << stats->output_rows << " rows\n";
  }
  return out.str();
}

std::string ExplainBucketElimination(const CspInstance& csp,
                                     const std::vector<int>& order,
                                     const BucketStats& stats) {
  const int n = csp.num_variables();
  CSPDB_CHECK(static_cast<int>(order.size()) == n);
  std::ostringstream out;
  out << "bucket elimination: " << n << " variables, " << csp.num_values()
      << " values, " << csp.constraints().size() << " constraints\n";
  if (stats.induced_width >= 0) {
    const double bound =
        std::pow(static_cast<double>(csp.num_values()),
                 static_cast<double>(stats.induced_width + 1));
    out << "induced width w=" << stats.induced_width << ", table bound "
        << "d^(w+1)=" << static_cast<int64_t>(bound) << ", observed max "
        << stats.max_table_rows
        << (static_cast<double>(stats.max_table_rows) <= bound
                ? " (within bound)\n"
                : " (EXCEEDS bound)\n");
  } else {
    out << "observed max table " << stats.max_table_rows << " rows\n";
  }
  out << "buckets in execution order (latest position first):\n";
  for (int i = n - 1; i >= 0; --i) {
    const int64_t rows = i < static_cast<int>(stats.bucket_rows.size())
                             ? stats.bucket_rows[i]
                             : 0;
    if (rows == 0) continue;  // empty buckets carry no table
    out << "  [" << i << "] eliminate " << csp.VariableName(order[i]) << ": "
        << rows << " rows\n";
  }
  out << "total intermediate rows: " << stats.total_rows << "\n";
  return out.str();
}

std::string ExplainSolver(const CspInstance& csp,
                          const SolverOptions& options,
                          const SolverStats& stats,
                          const std::vector<int64_t>* revision_counts) {
  std::ostringstream out;
  out << "solver: backtracking search over " << csp.num_variables()
      << " variables, " << csp.num_values() << " values, "
      << csp.constraints().size() << " constraints\n";
  out << "  propagation: ";
  switch (options.propagation) {
    case Propagation::kNone:
      out << "none (check on full assignment)";
      break;
    case Propagation::kForwardChecking:
      out << "forward checking";
      break;
    case Propagation::kGac:
      out << "MAC (maintain GAC)";
      break;
  }
  out << "\n  variable order: "
      << (options.mrv ? "dynamic MRV + degree tie-break" : "static") << "\n";
  out << "  node limit: ";
  if (options.node_limit < 0) {
    out << "unlimited";
  } else {
    out << options.node_limit;
  }
  out << "\nobserved: nodes=" << stats.nodes
      << " backtracks=" << stats.backtracks << " prunings=" << stats.prunings
      << " revisions=" << stats.revisions
      << " aborted=" << (stats.aborted ? "yes" : "no") << "\n";
  if (revision_counts != nullptr && !revision_counts->empty()) {
    // Heaviest constraints first; cap the listing so huge instances stay
    // readable.
    std::vector<int> idx(revision_counts->size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](int x, int y) {
      return (*revision_counts)[x] > (*revision_counts)[y];
    });
    const std::size_t shown = std::min<std::size_t>(idx.size(), 16);
    out << "per-constraint revisions (top " << shown << "):\n";
    for (std::size_t i = 0; i < shown; ++i) {
      const int ci = idx[i];
      out << "  c" << ci << " scope(";
      const Constraint& c = csp.constraint(ci);
      for (std::size_t q = 0; q < c.scope.size(); ++q) {
        if (q > 0) out << ", ";
        out << csp.VariableName(c.scope[q]);
      }
      out << "): " << (*revision_counts)[ci] << "\n";
    }
    if (idx.size() > shown) {
      out << "  ... " << (idx.size() - shown) << " more constraints\n";
    }
  }
  return out.str();
}

}  // namespace cspdb::obs
