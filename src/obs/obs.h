// Instrumentation macros: the one header hot subsystems include.
//
// Tiering mirrors util/check.h's audit tier: CSPDB_OBS_ENABLED is 1 in
// builds without NDEBUG (Debug) and in any build compiled with
// -DCSPDB_ENABLE_OBS (the CMake option CSPDB_OBS=ON sets it, giving an
// *instrumented* optimized build). Otherwise every macro expands to
// nothing — operands are not evaluated — so CSPDB_OBS=OFF release builds
// carry zero observability cost in the kernels.
//
// Macro summary (names must be string literals or otherwise outlive the
// process):
//   CSPDB_COUNT(name)            increment counter `name` by 1
//   CSPDB_COUNT_N(name, n)       increment counter `name` by n
//   CSPDB_GAUGE_SET(name, v)     set gauge `name` to v
//   CSPDB_GAUGE_MAX(name, v)     raise gauge `name` to v (high watermark)
//   CSPDB_TIMER_SCOPE(name)      RAII: accumulate this scope's wall time
//                                into timer `name` AND emit a trace span
//   CSPDB_HISTO_NS(name, ns)     record ns into latency histogram `name`
//   CSPDB_HISTO_SCOPE(name)      RAII: record this scope's wall time into
//                                histogram `name` AND emit a trace span
//   CSPDB_TRACE_SPAN(name)       RAII: trace span only (no timer)
//   CSPDB_TRACE_INSTANT(name)    instant event in the trace
//   CSPDB_TRACE_COUNTER(name, v) counter track sample in the trace
//   CSPDB_TRACE_FLOW_BEGIN(name, id)  flow-start: arrow from the
//                                enclosing span (requires an open span)
//   CSPDB_TRACE_FLOW_END(name, id)    matching flow-end in the enclosing
//                                span of another thread's lane
//
// CSPDB_TIMER_SCOPE / CSPDB_TRACE_SPAN declare local objects: use them as
// statements inside a block, not as the body of a braceless `if`.

#ifndef CSPDB_OBS_OBS_H_
#define CSPDB_OBS_OBS_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(CSPDB_ENABLE_OBS) || !defined(NDEBUG)
#define CSPDB_OBS_ENABLED 1
#else
#define CSPDB_OBS_ENABLED 0
#endif

namespace cspdb::obs {

/// RAII helper behind CSPDB_TIMER_SCOPE: records elapsed wall time into a
/// registry timer and brackets the scope with trace begin/end events when
/// a trace session is active.
class TimedSpan {
 public:
  TimedSpan(const char* name, Timer& timer)
      : name_(name),
        timer_(timer),
        tracing_(TraceSession::Global().enabled()),
        start_(std::chrono::steady_clock::now()) {
    if (tracing_) TraceSession::Global().BeginSpan(name_);
  }
  ~TimedSpan() {
    timer_.Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    if (tracing_) TraceSession::Global().EndSpan(name_);
  }
  TimedSpan(const TimedSpan&) = delete;
  TimedSpan& operator=(const TimedSpan&) = delete;

 private:
  const char* name_;
  Timer& timer_;
  bool tracing_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII helper behind CSPDB_HISTO_SCOPE: records elapsed wall time into a
/// registry histogram and brackets the scope with trace begin/end events
/// when a trace session is active.
class HistoSpan {
 public:
  HistoSpan(const char* name, Histogram& histogram)
      : name_(name),
        histogram_(histogram),
        tracing_(TraceSession::Global().enabled()),
        start_(std::chrono::steady_clock::now()) {
    if (tracing_) TraceSession::Global().BeginSpan(name_);
  }
  ~HistoSpan() {
    histogram_.Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count());
    if (tracing_) TraceSession::Global().EndSpan(name_);
  }
  HistoSpan(const HistoSpan&) = delete;
  HistoSpan& operator=(const HistoSpan&) = delete;

 private:
  const char* name_;
  Histogram& histogram_;
  bool tracing_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cspdb::obs

#define CSPDB_OBS_CONCAT_INNER(a, b) a##b
#define CSPDB_OBS_CONCAT(a, b) CSPDB_OBS_CONCAT_INNER(a, b)

#if CSPDB_OBS_ENABLED

#define CSPDB_COUNT(name) CSPDB_COUNT_N(name, 1)

#define CSPDB_COUNT_N(name, n)                                      \
  do {                                                              \
    static ::cspdb::obs::Counter& cspdb_obs_counter =               \
        ::cspdb::obs::MetricsRegistry::Global().GetCounter((name)); \
    cspdb_obs_counter.Add((n));                                     \
  } while (false)

#define CSPDB_GAUGE_SET(name, v)                                  \
  do {                                                            \
    static ::cspdb::obs::Gauge& cspdb_obs_gauge =                 \
        ::cspdb::obs::MetricsRegistry::Global().GetGauge((name)); \
    cspdb_obs_gauge.Set((v));                                     \
  } while (false)

#define CSPDB_GAUGE_MAX(name, v)                                  \
  do {                                                            \
    static ::cspdb::obs::Gauge& cspdb_obs_gauge =                 \
        ::cspdb::obs::MetricsRegistry::Global().GetGauge((name)); \
    cspdb_obs_gauge.UpdateMax((v));                               \
  } while (false)

#define CSPDB_TIMER_SCOPE(name)                                            \
  static ::cspdb::obs::Timer& CSPDB_OBS_CONCAT(cspdb_obs_timer_,           \
                                               __LINE__) =                 \
      ::cspdb::obs::MetricsRegistry::Global().GetTimer((name));            \
  ::cspdb::obs::TimedSpan CSPDB_OBS_CONCAT(cspdb_obs_span_, __LINE__)(     \
      (name), CSPDB_OBS_CONCAT(cspdb_obs_timer_, __LINE__))

#define CSPDB_HISTO_NS(name, ns)                                      \
  do {                                                                \
    static ::cspdb::obs::Histogram& cspdb_obs_histogram =             \
        ::cspdb::obs::MetricsRegistry::Global().GetHistogram((name)); \
    cspdb_obs_histogram.Record((ns));                                 \
  } while (false)

#define CSPDB_HISTO_SCOPE(name)                                            \
  static ::cspdb::obs::Histogram& CSPDB_OBS_CONCAT(cspdb_obs_histo_,       \
                                                   __LINE__) =             \
      ::cspdb::obs::MetricsRegistry::Global().GetHistogram((name));        \
  ::cspdb::obs::HistoSpan CSPDB_OBS_CONCAT(cspdb_obs_hspan_, __LINE__)(    \
      (name), CSPDB_OBS_CONCAT(cspdb_obs_histo_, __LINE__))

#define CSPDB_TRACE_SPAN(name) \
  ::cspdb::obs::ScopedSpan CSPDB_OBS_CONCAT(cspdb_obs_span_, __LINE__)((name))

#define CSPDB_TRACE_INSTANT(name)                                      \
  do {                                                                 \
    if (::cspdb::obs::TraceSession::Global().enabled()) {              \
      ::cspdb::obs::TraceSession::Global().Instant((name));            \
    }                                                                  \
  } while (false)

#define CSPDB_TRACE_COUNTER(name, v)                                   \
  do {                                                                 \
    if (::cspdb::obs::TraceSession::Global().enabled()) {              \
      ::cspdb::obs::TraceSession::Global().CounterValue((name), (v));  \
    }                                                                  \
  } while (false)

#define CSPDB_TRACE_FLOW_BEGIN(name, id)                               \
  do {                                                                 \
    if (::cspdb::obs::TraceSession::Global().enabled()) {              \
      ::cspdb::obs::TraceSession::Global().FlowStart((name), (id));    \
    }                                                                  \
  } while (false)

#define CSPDB_TRACE_FLOW_END(name, id)                                 \
  do {                                                                 \
    if (::cspdb::obs::TraceSession::Global().enabled()) {              \
      ::cspdb::obs::TraceSession::Global().FlowEnd((name), (id));      \
    }                                                                  \
  } while (false)

#else  // !CSPDB_OBS_ENABLED

// sizeof keeps operands type-checked and "used" without evaluating them
// (same trick as CSPDB_DCHECK), so instrumentation-only locals don't trip
// -Wunused in CSPDB_OBS=OFF builds.
#define CSPDB_COUNT(name) ((void)sizeof(name))
#define CSPDB_COUNT_N(name, n) ((void)sizeof(name), (void)sizeof((n)))
#define CSPDB_GAUGE_SET(name, v) ((void)sizeof(name), (void)sizeof((v)))
#define CSPDB_GAUGE_MAX(name, v) ((void)sizeof(name), (void)sizeof((v)))
#define CSPDB_TIMER_SCOPE(name) ((void)sizeof(name))
#define CSPDB_HISTO_NS(name, ns) ((void)sizeof(name), (void)sizeof((ns)))
#define CSPDB_HISTO_SCOPE(name) ((void)sizeof(name))
#define CSPDB_TRACE_SPAN(name) ((void)sizeof(name))
#define CSPDB_TRACE_INSTANT(name) ((void)sizeof(name))
#define CSPDB_TRACE_COUNTER(name, v) ((void)sizeof(name), (void)sizeof((v)))
#define CSPDB_TRACE_FLOW_BEGIN(name, id) \
  ((void)sizeof(name), (void)sizeof((id)))
#define CSPDB_TRACE_FLOW_END(name, id) \
  ((void)sizeof(name), (void)sizeof((id)))

#endif  // CSPDB_OBS_ENABLED

#endif  // CSPDB_OBS_OBS_H_
