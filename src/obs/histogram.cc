#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace cspdb::obs {

namespace {

constexpr int64_t kOverflowBound = int64_t{1} << Histogram::kMaxExp;

}  // namespace

Histogram::Histogram() {
  for (Shard& shard : shards_) {
    // Value-initialized array: every std::atomic<int64_t> starts at 0.
    shard.buckets = std::make_unique<std::atomic<int64_t>[]>(kNumBuckets);
  }
}

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  if (value >= kOverflowBound) return kNumBuckets - 1;
  const int exp = 63 - std::countl_zero(static_cast<uint64_t>(value));
  const int shift = exp - kSubBits;
  const int64_t sub = (value >> shift) - kSubBuckets;
  return static_cast<int>((exp - kSubBits + 1) * kSubBuckets + sub);
}

int64_t Histogram::BucketLowerBound(int index) {
  if (index < kSubBuckets) return index;
  if (index >= kNumBuckets - 1) return kOverflowBound;
  const int octave = index >> kSubBits;          // >= 1
  const int64_t sub = index & (kSubBuckets - 1);
  return (kSubBuckets + sub) << (octave - 1);
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index >= kNumBuckets - 1) return kOverflowBound + 1;
  return BucketLowerBound(index + 1);
}

int64_t Histogram::BucketRepresentative(int index) {
  const int64_t lo = BucketLowerBound(index);
  const int64_t hi = BucketUpperBound(index);
  return lo + (hi - lo) / 2;
}

Histogram::Shard& Histogram::ShardForThisThread() {
  // A sequential thread stripe id, like TraceSession::CurrentTid but
  // local to the histogram layer so obs/histogram has no dependency on
  // the tracer.
  static std::atomic<uint32_t> next_stripe{0};
  thread_local const uint32_t stripe =
      next_stripe.fetch_add(1, std::memory_order_relaxed);
  return shards_[stripe % kNumShards];
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  Shard& shard = ShardForThisThread();
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen && !shard.min.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
    for (int i = 0; i < kNumBuckets; ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  snap.min = snap.count > 0 ? min : 0;
  snap.max = snap.count > 0 ? max : 0;
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(INT64_MAX, std::memory_order_relaxed);
    shard.max.store(INT64_MIN, std::memory_order_relaxed);
    for (int i = 0; i < kNumBuckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count > 0) {
    min = count > 0 ? std::min(min, other.min) : other.min;
    max = count > 0 ? std::max(max, other.max) : other.max;
  }
  count += other.count;
  sum += other.sum;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

int64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest rank r with (r + 1) / count >= q.
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count))) - 1;
  rank = std::max<int64_t>(0, std::min(rank, count - 1));
  int64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative > rank) {
      const int64_t representative =
          Histogram::BucketRepresentative(static_cast<int>(i));
      // Tighten into the observed range: the extreme buckets' midpoints
      // can overshoot the true extremes, and quantiles outside
      // [min, max] would be nonsense.
      return std::max(min, std::min(representative, max));
    }
  }
  return max;  // unreachable when bucket counts sum to count
}

}  // namespace cspdb::obs
