// EXPLAIN: renders the structural plans the engines execute — a join
// forest, a bucket-elimination ordering, a solver configuration — with
// the row counts and prune counts actually observed during a run. The
// textual analogue of a query engine's EXPLAIN ANALYZE: the shape claims
// in EXPERIMENTS.md (peak intermediate rows, d^(w+1) table bounds,
// propagation-vs-search node counts) become inspectable per node instead
// of one aggregate number.
//
// All functions are pure formatters over structures the caller already
// has; none of them run anything. See examples/explain_tool.cc for an
// end-to-end driver.

#ifndef CSPDB_OBS_EXPLAIN_H_
#define CSPDB_OBS_EXPLAIN_H_

#include <string>
#include <vector>

#include "csp/instance.h"
#include "csp/solver.h"
#include "db/acyclic.h"
#include "db/relation.h"
#include "treewidth/bucket_elimination.h"

namespace cspdb::obs {

/// Renders a join forest as an indented tree, one line per relation:
/// schema, input rows, and — when `stats` carries them — rows after full
/// reduction and the bottom-up join cardinality at that node.
std::string ExplainJoinForest(const JoinForest& forest,
                              const std::vector<DbRelation>& relations,
                              const YannakakisStats* stats = nullptr);

/// Renders a bucket-elimination run: the elimination ordering (latest
/// position first, matching execution order) with each bucket's observed
/// joined-table rows, plus the induced width and the d^(w+1) bound the
/// tables are measured against.
std::string ExplainBucketElimination(const CspInstance& csp,
                                     const std::vector<int>& order,
                                     const BucketStats& stats);

/// Renders a solver configuration and its observed search counters;
/// `revision_counts` (from BacktrackingSolver::revision_counts()), if
/// non-null, adds a per-constraint revision breakdown.
std::string ExplainSolver(const CspInstance& csp,
                          const SolverOptions& options,
                          const SolverStats& stats,
                          const std::vector<int64_t>* revision_counts =
                              nullptr);

}  // namespace cspdb::obs

#endif  // CSPDB_OBS_EXPLAIN_H_
