// Log-bucketed latency histograms (HDR-style) for tail-latency
// visibility: p50/p90/p99/p999 with a bounded relative bucket error,
// cheap enough to record on every request.
//
// Bucket math (DESIGN.md "Observability" has the full derivation):
// values are nonnegative int64 (nanoseconds in practice). Values below
// 2^kSubBits = 64 get exact unit-width buckets. Above that, each octave
// [2^e, 2^(e+1)) is split into 64 equal sub-buckets of width 2^(e-6), so
// a bucket's midpoint is within half a sub-bucket of any value it holds:
// relative error <= (2^(e-7)) / 2^e = 1/128 < 1%. Values at or above
// 2^kMaxExp saturate into a single overflow bucket whose representative
// is the tracking bound (still monotone, bounded memory). Negative
// values clamp to 0.
//
// Recording is lock-free and sharded: each of kNumShards shards owns its
// own bucket array of relaxed atomics plus count/sum/min/max, and a
// thread picks a shard by a cheap thread-local id, so concurrent
// recorders on different shards never contend on a cache line. A
// snapshot sums the shards; snapshots are plain values that Merge()
// bucket-wise (exactly associative), which is what lets per-process
// snapshots aggregate across runs or shards-of-shards later.
//
// Quantiles are exact-rank over the bucketed distribution: for quantile
// q of n recorded values, rank = ceil(q*n) - 1 (clamped), and the
// returned value is the midpoint of the bucket holding that rank — the
// same nearest-rank definition the oracle tests apply to a sorted
// vector, so the only divergence is the <=1% bucket representative
// error.

#ifndef CSPDB_OBS_HISTOGRAM_H_
#define CSPDB_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cspdb::obs {

/// A point-in-time copy of one histogram: dense bucket counts plus the
/// summary fields. Plain data — copy, merge, and query freely.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< smallest recorded value (0 when count == 0)
  int64_t max = 0;  ///< largest recorded value (0 when count == 0)
  std::vector<int64_t> buckets;  ///< dense, Histogram::kNumBuckets wide

  /// Adds `other` into this snapshot bucket-wise. Exactly associative
  /// and commutative (integer adds, min/min and max/max).
  void Merge(const HistogramSnapshot& other);

  /// Nearest-rank quantile over the bucketed distribution; `q` in
  /// [0, 1]. Returns the midpoint of the bucket holding rank
  /// ceil(q * count) - 1 (clamped to a valid rank), tightened into
  /// [min, max] so quantiles never fall outside the observed range.
  /// Returns 0 when the histogram is empty.
  int64_t ValueAtQuantile(double q) const;
};

/// A concurrent log-bucketed histogram. All methods are thread-safe;
/// Record is wait-free (two relaxed atomic adds plus bounded CAS loops
/// for min/max on the recording thread's shard).
class Histogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits buckets per octave.
  static constexpr int kSubBits = 6;
  static constexpr int64_t kSubBuckets = int64_t{1} << kSubBits;

  /// Values >= 2^kMaxExp land in the overflow bucket. 2^42 ns is about
  /// 73 minutes — far past any latency this system serves.
  static constexpr int kMaxExp = 42;

  /// Dense bucket count: 64 exact unit buckets, 64 sub-buckets for each
  /// octave [2^6, 2^42), plus the overflow bucket.
  static constexpr int kNumBuckets =
      static_cast<int>((kMaxExp - kSubBits + 1) * kSubBuckets) + 1;

  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one value (negative values clamp to 0).
  void Record(int64_t value);

  HistogramSnapshot Snapshot() const;

  /// Zeroes every shard. Test support; concurrent Record()s during a
  /// reset may survive it (same contract as MetricsRegistry::ResetAll).
  void Reset();

  /// The dense bucket index for `value` (clamped to [0, kNumBuckets)).
  static int BucketIndex(int64_t value);

  /// Inclusive lower bound of bucket `index`.
  static int64_t BucketLowerBound(int index);

  /// Exclusive upper bound of bucket `index` (the overflow bucket
  /// reports 2^kMaxExp + 1: its representative is the tracking bound).
  static int64_t BucketUpperBound(int index);

  /// The value reported for any sample in bucket `index`: the bucket
  /// midpoint, which bounds the relative error at 1/128.
  static int64_t BucketRepresentative(int index);

 private:
  // One shard per recording stripe, cache-line separated so concurrent
  // recorders don't false-share.
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
    std::unique_ptr<std::atomic<int64_t>[]> buckets;  // kNumBuckets wide
  };

  static constexpr int kNumShards = 4;

  Shard& ShardForThisThread();

  std::array<Shard, kNumShards> shards_;
};

}  // namespace cspdb::obs

#endif  // CSPDB_OBS_HISTOGRAM_H_
