#include "obs/stats_store.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cspdb::obs {

StatsStore::StatsStore(StatsStoreOptions options)
    : keys_per_shard_(std::max<std::size_t>(
          1, (options.max_keys + kNumShards - 1) / kNumShards)),
      history_per_key_(std::max<std::size_t>(1, options.history_per_key)) {}

void StatsStore::Record(const StatsKey& key, const RequestOutcome& outcome) {
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    if (shard.entries.size() >= keys_per_shard_) {
      // Evict the least recently recorded key of this shard.
      const StatsKey victim = shard.lru.back();
      shard.lru.pop_back();
      shard.entries.erase(victim);
    }
    shard.lru.push_front(key);
    Entry entry;
    entry.min_wall_ns = outcome.wall_ns;
    entry.max_wall_ns = outcome.wall_ns;
    entry.ring.reserve(history_per_key_);
    entry.lru_pos = shard.lru.begin();
    it = shard.entries.emplace(key, std::move(entry)).first;
  } else if (it->second.lru_pos != shard.lru.begin()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  }
  Entry& entry = it->second;
  entry.count += 1;
  entry.total_wall_ns += outcome.wall_ns;
  entry.min_wall_ns = std::min(entry.min_wall_ns, outcome.wall_ns);
  entry.max_wall_ns = std::max(entry.max_wall_ns, outcome.wall_ns);
  if (entry.ring.size() < history_per_key_) {
    entry.ring.push_back(outcome);
  } else {
    entry.ring[entry.ring_next] = outcome;
    entry.ring_next = (entry.ring_next + 1) % history_per_key_;
  }
}

std::optional<KeySummary> StatsStore::Query(const StatsKey& key) const {
  const Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return std::nullopt;
  const Entry& entry = it->second;
  KeySummary summary;
  summary.count = entry.count;
  summary.total_wall_ns = entry.total_wall_ns;
  summary.min_wall_ns = entry.min_wall_ns;
  summary.max_wall_ns = entry.max_wall_ns;
  // The ring holds the last N outcomes with ring_next pointing at the
  // oldest once full; unwind it newest-first.
  const std::size_t n = entry.ring.size();
  summary.recent.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    summary.recent.push_back(entry.ring[(entry.ring_next + n - 1 - i) % n]);
  }
  return summary;
}

std::size_t StatsStore::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

void StatsStore::Clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    shard.entries.clear();
    shard.lru.clear();
  }
}

namespace {

void AppendOutcomeJson(std::ostringstream* out, const RequestOutcome& o) {
  *out << "{\"kind\": " << o.kind << ", \"status\": " << o.status
       << ", \"cache_disposition\": " << o.cache_disposition
       << ", \"work_items\": " << o.work_items
       << ", \"wall_ns\": " << o.wall_ns
       << ", \"queue_wait_ns\": " << o.queue_wait_ns << "}";
}

}  // namespace

std::string StatsStore::DumpJson() const {
  // Snapshot everything first so the JSON walk holds no locks, then sort
  // by key so dumps are deterministic regardless of shard/hash order.
  struct Row {
    StatsKey key;
    KeySummary summary;
  };
  std::vector<Row> rows;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      KeySummary summary;
      summary.count = entry.count;
      summary.total_wall_ns = entry.total_wall_ns;
      summary.min_wall_ns = entry.min_wall_ns;
      summary.max_wall_ns = entry.max_wall_ns;
      const std::size_t n = entry.ring.size();
      summary.recent.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        summary.recent.push_back(entry.ring[(entry.ring_next + n - 1 - i) % n]);
      }
      rows.push_back({key, std::move(summary)});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.key.hi != b.key.hi ? a.key.hi < b.key.hi : a.key.lo < b.key.lo;
  });

  std::ostringstream out;
  out << "{\n  \"max_keys\": " << keys_per_shard_ * kNumShards
      << ",\n  \"keys\": [";
  const char* sep = "\n    ";
  for (const Row& row : rows) {
    char hex[33];
    std::snprintf(hex, sizeof(hex), "%016llx%016llx",
                  static_cast<unsigned long long>(row.key.hi),
                  static_cast<unsigned long long>(row.key.lo));
    out << sep << "{\"key\": \"" << hex << "\", \"count\": "
        << row.summary.count
        << ", \"total_wall_ns\": " << row.summary.total_wall_ns
        << ", \"min_wall_ns\": " << row.summary.min_wall_ns
        << ", \"max_wall_ns\": " << row.summary.max_wall_ns
        << ", \"recent\": [";
    const char* osep = "";
    for (const RequestOutcome& o : row.summary.recent) {
      out << osep;
      AppendOutcomeJson(&out, o);
      osep = ", ";
    }
    out << "]}";
    sep = ",\n    ";
  }
  out << (rows.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

}  // namespace cspdb::obs
