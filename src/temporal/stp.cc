#include "temporal/stp.h"

#include <limits>

#include "util/check.h"

namespace cspdb {

void StpInstance::AddInterval(int from, int to, int64_t lo, int64_t hi) {
  CSPDB_CHECK(from >= 0 && from < num_points);
  CSPDB_CHECK(to >= 0 && to < num_points);
  CSPDB_CHECK(lo <= hi);
  constraints.push_back({from, to, hi});    // to - from <= hi
  constraints.push_back({to, from, -lo});   // from - to <= -lo
}

bool StpInstance::Satisfies(const std::vector<int64_t>& schedule) const {
  CSPDB_CHECK(static_cast<int>(schedule.size()) == num_points);
  for (const DifferenceConstraint& c : constraints) {
    if (schedule[c.to] - schedule[c.from] > c.bound) return false;
  }
  return true;
}

namespace {

constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;

// Bellman-Ford from a virtual origin connected to every point with
// weight 0. Returns distances, or nullopt on a negative cycle.
std::optional<std::vector<int64_t>> BellmanFord(const StpInstance& stp) {
  std::vector<int64_t> dist(stp.num_points, 0);  // origin edges
  for (int round = 0; round < stp.num_points; ++round) {
    bool changed = false;
    for (const DifferenceConstraint& c : stp.constraints) {
      if (dist[c.from] + c.bound < dist[c.to]) {
        dist[c.to] = dist[c.from] + c.bound;
        changed = true;
      }
    }
    if (!changed) return dist;
  }
  // One more relaxation detects a negative cycle.
  for (const DifferenceConstraint& c : stp.constraints) {
    if (dist[c.from] + c.bound < dist[c.to]) return std::nullopt;
  }
  return dist;
}

}  // namespace

StpSolution SolveStp(const StpInstance& stp) {
  StpSolution result;
  for (const DifferenceConstraint& c : stp.constraints) {
    CSPDB_CHECK(c.from >= 0 && c.from < stp.num_points);
    CSPDB_CHECK(c.to >= 0 && c.to < stp.num_points);
  }
  auto dist = BellmanFord(stp);
  if (!dist.has_value()) return result;
  result.consistent = true;
  result.schedule = std::move(*dist);
  CSPDB_CHECK(stp.Satisfies(result.schedule));
  return result;
}

std::optional<int64_t> TightestBound(const StpInstance& stp, int from,
                                     int to) {
  CSPDB_CHECK(from >= 0 && from < stp.num_points);
  CSPDB_CHECK(to >= 0 && to < stp.num_points);
  CSPDB_CHECK_MSG(SolveStp(stp).consistent,
                  "tightest bounds need a consistent STP");
  // Single-source shortest paths from `from`.
  std::vector<int64_t> dist(stp.num_points, kInf);
  dist[from] = 0;
  for (int round = 0; round < stp.num_points; ++round) {
    bool changed = false;
    for (const DifferenceConstraint& c : stp.constraints) {
      if (dist[c.from] < kInf && dist[c.from] + c.bound < dist[c.to]) {
        dist[c.to] = dist[c.from] + c.bound;
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (dist[to] >= kInf) return std::nullopt;
  return dist[to];
}

}  // namespace cspdb
