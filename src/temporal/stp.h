// Simple Temporal Problems (STPs): conjunctions of difference constraints
// x_j - x_i <= c over real-valued time points. Temporal reasoning heads
// the paper's Section 1 list of CSP application areas; the STP is its
// tractable backbone — consistency and tightest bounds are shortest-path
// computations (Bellman-Ford / negative-cycle detection), another
// instance of "local propagation decides".

#ifndef CSPDB_TEMPORAL_STP_H_
#define CSPDB_TEMPORAL_STP_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace cspdb {

/// One difference constraint: to - from <= bound.
struct DifferenceConstraint {
  int from = 0;
  int to = 0;
  int64_t bound = 0;
};

/// A Simple Temporal Problem over time points 0..num_points-1.
struct StpInstance {
  int num_points = 0;
  std::vector<DifferenceConstraint> constraints;

  /// Adds `lo <= to - from <= hi` (the interval form of an STP edge).
  void AddInterval(int from, int to, int64_t lo, int64_t hi);

  /// True if the integer-valued schedule satisfies every constraint.
  bool Satisfies(const std::vector<int64_t>& schedule) const;
};

/// Result of the consistency check.
struct StpSolution {
  bool consistent = false;
  /// A feasible schedule (earliest times relative to an implicit origin);
  /// empty when inconsistent.
  std::vector<int64_t> schedule;
};

/// Decides consistency by Bellman-Ford on the distance graph (edge
/// from -> to with weight bound); a negative cycle certifies
/// inconsistency, otherwise shortest path distances from a virtual origin
/// yield a feasible schedule.
StpSolution SolveStp(const StpInstance& stp);

/// The tightest implied bound on to - from (shortest path from `from` to
/// `to` in the distance graph), or std::nullopt when unbounded. Requires
/// a consistent instance. This is the "minimal network" computation of
/// temporal-reasoning practice — all-pairs constraint propagation.
std::optional<int64_t> TightestBound(const StpInstance& stp, int from,
                                     int to);

}  // namespace cspdb

#endif  // CSPDB_TEMPORAL_STP_H_
