#include "views/certain_answers.h"

#include <string>

#include "csp/convert.h"
#include "csp/solver.h"
#include "games/pebble_game.h"
#include "rpq/rpq_eval.h"
#include "util/check.h"

namespace cspdb {
namespace {

// All words over [0, sigma) of length <= max_len accepted by `dfa`.
std::vector<std::vector<int>> AcceptedWordsUpTo(const Dfa& dfa,
                                                int max_len) {
  std::vector<std::vector<int>> accepted;
  std::vector<int> word;
  // Iterative deepening over word length.
  struct Frame {
    int state;
    int next_symbol;
  };
  for (int len = 0; len <= max_len; ++len) {
    // DFS enumerating words of exactly `len`.
    std::vector<Frame> stack{{dfa.start, 0}};
    word.clear();
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (static_cast<int>(word.size()) == len) {
        if (dfa.accepting[top.state]) accepted.push_back(word);
        stack.pop_back();
        if (!word.empty()) word.pop_back();
        continue;
      }
      if (top.next_symbol == dfa.num_symbols) {
        stack.pop_back();
        if (!word.empty()) word.pop_back();
        continue;
      }
      int symbol = top.next_symbol++;
      word.push_back(symbol);
      stack.push_back({dfa.next[top.state][symbol], 0});
    }
  }
  return accepted;
}

}  // namespace

bool CertainAnswerViaCsp(const ConstraintTemplate& tmpl,
                         const ViewSetting& setting,
                         const ViewInstance& instance, int c, int d) {
  Structure a = BuildViewInstanceStructure(setting, instance,
                                           tmpl.b.vocabulary(), c, d);
  // Theorem 7.5: (c, d) is NOT certain iff a counterexample annotation
  // (a homomorphism A -> B) exists. The template domain is the powerset
  // of the query DFA, so solve with full propagation (MAC + MRV) rather
  // than plain homomorphism search.
  CspInstance csp = ToCspInstance(a, tmpl.b);
  BacktrackingSolver solver(csp);
  return !solver.Solve().has_value();
}

bool CertainAnswerViaCsp(const ViewSetting& setting,
                         const ViewInstance& instance, int c, int d) {
  ConstraintTemplate tmpl = BuildConstraintTemplate(setting);
  return CertainAnswerViaCsp(tmpl, setting, instance, c, d);
}

bool CertainByKConsistency(const ConstraintTemplate& tmpl,
                           const ViewSetting& setting,
                           const ViewInstance& instance, int c, int d,
                           int k) {
  Structure a = BuildViewInstanceStructure(setting, instance,
                                           tmpl.b.vocabulary(), c, d);
  // Spoiler win => no homomorphism => no counterexample database =>
  // certain. Duplicator win proves nothing (the game is incomplete).
  return !PebbleGame(a, tmpl.b, k).DuplicatorWins();
}

std::vector<std::pair<int, int>> CertainAnswers(
    const ViewSetting& setting, const ViewInstance& instance) {
  ConstraintTemplate tmpl = BuildConstraintTemplate(setting);
  std::vector<std::pair<int, int>> result;
  for (int c = 0; c < instance.num_objects; ++c) {
    for (int d = 0; d < instance.num_objects; ++d) {
      if (CertainAnswerViaCsp(tmpl, setting, instance, c, d)) {
        result.push_back({c, d});
      }
    }
  }
  return result;
}

bool CertainAnswerBruteForce(const ViewSetting& setting,
                             const ViewInstance& instance, int c, int d,
                             int max_word_length, long max_combinations) {
  int sigma = static_cast<int>(setting.alphabet.size());
  CSPDB_CHECK(instance.ext.size() == setting.views.size());

  // Witness word choices per view edge.
  struct EdgeChoice {
    int x, y;
    const std::vector<std::vector<int>>* words;
  };
  std::vector<std::vector<std::vector<int>>> view_words;
  for (const ViewDefinition& view : setting.views) {
    Dfa dfa = Determinize(Nfa::FromRegex(view.definition, sigma));
    view_words.push_back(AcceptedWordsUpTo(dfa, max_word_length));
  }
  std::vector<EdgeChoice> edges;
  for (std::size_t i = 0; i < setting.views.size(); ++i) {
    for (const auto& [x, y] : instance.ext[i]) {
      edges.push_back({x, y, &view_words[i]});
    }
  }

  long combinations = 1;
  for (const EdgeChoice& e : edges) {
    // Epsilon only realizes an extension pair with equal endpoints.
    long usable = 0;
    for (const auto& w : *e.words) {
      if (!w.empty() || e.x == e.y) ++usable;
    }
    if (usable == 0) return true;  // no bounded realization; inconclusive
    combinations *= usable;
    if (combinations > max_combinations) return true;  // inconclusive
  }

  // Enumerate combinations with a mixed-radix counter over usable words.
  std::vector<std::vector<const std::vector<int>*>> usable_words(
      edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    for (const auto& w : *edges[e].words) {
      if (!w.empty() || edges[e].x == edges[e].y) {
        usable_words[e].push_back(&w);
      }
    }
  }
  Nfa query_nfa = Nfa::FromRegex(setting.query, sigma);
  std::vector<int> pick(edges.size(), 0);
  while (true) {
    // Build the candidate database: objects plus fresh path nodes.
    int nodes = instance.num_objects;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      int len = static_cast<int>(usable_words[e][pick[e]]->size());
      if (len > 1) nodes += len - 1;
    }
    GraphDb db(nodes, sigma);
    int fresh = instance.num_objects;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const std::vector<int>& w = *usable_words[e][pick[e]];
      if (w.empty()) continue;  // x == y, nothing to add
      int current = edges[e].x;
      for (std::size_t j = 0; j < w.size(); ++j) {
        int target = j + 1 == w.size() ? edges[e].y : fresh++;
        db.AddEdge(current, w[j], target);
        current = target;
      }
    }
    if (!RpqHolds(db, query_nfa, c, d)) return false;  // counterexample
    // Advance.
    std::size_t pos = 0;
    while (pos < pick.size()) {
      if (++pick[pos] < static_cast<int>(usable_words[pos].size())) break;
      pick[pos] = 0;
      ++pos;
    }
    if (pos == pick.size()) break;
    if (edges.empty()) break;
  }
  if (edges.empty()) {
    // Single candidate: the empty database.
    GraphDb db(instance.num_objects, sigma);
    return RpqHolds(db, query_nfa, c, d);
  }
  return true;
}

}  // namespace cspdb
