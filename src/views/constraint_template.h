// The constraint template of Theorem 7.5: from a query Q and view
// definitions def(V), a structure B over the vocabulary
// {V_1/2, ..., V_k/2, U_c/1, U_d/1} whose domain is the powerset of the
// query automaton's states, such that deciding (c,d) not-in cert(Q, V)
// reduces to CSP(A, B) where A encodes the view extensions.

#ifndef CSPDB_VIEWS_CONSTRAINT_TEMPLATE_H_
#define CSPDB_VIEWS_CONSTRAINT_TEMPLATE_H_

#include "relational/structure.h"
#include "rpq/nfa.h"
#include "views/view.h"

namespace cspdb {

/// The template together with the query DFA it was built from.
struct ConstraintTemplate {
  Structure b;  ///< domain 2^S, indexed by bitmask
  Dfa query_dfa;  ///< minimal complete DFA for the query (state set S)
};

/// Builds the Theorem 7.5 template. The query automaton is determinized
/// and minimized first; its state count must stay <= 12 (the domain of B
/// is its powerset).
///
/// Relations: (s1, s2) in V_i^B iff some word w of L(def(V_i)) satisfies
/// rho(s1, w) contained in s2; s in U_c^B iff the DFA start state is in
/// s; s in U_d^B iff s avoids every accepting state.
ConstraintTemplate BuildConstraintTemplate(const ViewSetting& setting);

/// The instance side of the reduction: A has the objects as domain, view
/// extensions as the V_i relations, and U_c = {c}, U_d = {d}.
Structure BuildViewInstanceStructure(const ViewSetting& setting,
                                     const ViewInstance& instance,
                                     const Vocabulary& template_vocabulary,
                                     int c, int d);

}  // namespace cspdb

#endif  // CSPDB_VIEWS_CONSTRAINT_TEMPLATE_H_
