// View-based query answering (paper, Section 7): deciding membership in
// the certain answer set cert(Q, V) under sound views and open domain.
// The primary decision procedure is the Theorem 7.5 reduction to CSP; a
// bounded brute-force counterexample search is provided for differential
// testing.

#ifndef CSPDB_VIEWS_CERTAIN_ANSWERS_H_
#define CSPDB_VIEWS_CERTAIN_ANSWERS_H_

#include <utility>
#include <vector>

#include "views/constraint_template.h"
#include "views/view.h"

namespace cspdb {

/// True iff (c, d) is a certain answer of the query w.r.t. the views:
/// every database consistent with the extensions connects c to d by a
/// Q-path. Decided by the Theorem 7.5 reduction: (c,d) not-in cert iff
/// CSP(A, B) is solvable for the constraint template B.
bool CertainAnswerViaCsp(const ViewSetting& setting,
                         const ViewInstance& instance, int c, int d);

/// As above, reusing a prebuilt template (Theorem 7.5's B depends only on
/// the query and the view definitions).
bool CertainAnswerViaCsp(const ConstraintTemplate& tmpl,
                         const ViewSetting& setting,
                         const ViewInstance& instance, int c, int d);

/// The full certain answer set over D_V x D_V.
std::vector<std::pair<int, int>> CertainAnswers(const ViewSetting& setting,
                                                const ViewInstance& instance);

/// The Datalog/consistency route of the paper's closing remark ([10]):
/// the complement of CSP(B) is approximated from above by the existential
/// k-pebble game, so "the Spoiler wins on (A, B)" is a *sound* Datalog-
/// expressible certificate that (c, d) is certain. Returns true only if
/// (c, d) is provably certain at consistency level k; a false result
/// means "not proved" (the exact decision may still be certain). Runs in
/// polynomial time for fixed k, unlike the exact co-NP decision.
bool CertainByKConsistency(const ConstraintTemplate& tmpl,
                           const ViewSetting& setting,
                           const ViewInstance& instance, int c, int d,
                           int k);

/// Bounded counterexample search: tries every combination of witness
/// words (length <= max_word_length, at most max_combinations candidate
/// databases) in which each view edge is realized by a fresh path. A
/// `false` result is definitive (a counterexample database was found); a
/// `true` result is only as trustworthy as the bounds. Used to cross-check
/// CertainAnswerViaCsp on small cases.
bool CertainAnswerBruteForce(const ViewSetting& setting,
                             const ViewInstance& instance, int c, int d,
                             int max_word_length,
                             long max_combinations = 1000000);

}  // namespace cspdb

#endif  // CSPDB_VIEWS_CERTAIN_ANSWERS_H_
