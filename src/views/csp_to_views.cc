#include "views/csp_to_views.h"

#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cspdb {

CspToViewsReduction ReduceCspToViewAnswering(const Structure& a,
                                             const Structure& b) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  int e_rel = a.vocabulary().IndexOf("E");
  CSPDB_CHECK_MSG(e_rel >= 0 && a.vocabulary().symbol(e_rel).arity == 2,
                  "reduction expects digraphs over {E/2}");
  int m = b.domain_size();
  int n = a.domain_size();

  CspToViewsReduction red;
  // Alphabet: a_0..a_{m-1}, then e, s, t.
  for (int i = 0; i < m; ++i) {
    red.setting.alphabet.push_back("a" + std::to_string(i));
  }
  int sym_e = m, sym_s = m + 1, sym_t = m + 2;
  red.setting.alphabet.push_back("e");
  red.setting.alphabet.push_back("s");
  red.setting.alphabet.push_back("t");

  // Views: the node-choice view and the three structural single-symbol
  // views.
  std::vector<Regex> choice_parts;
  for (int i = 0; i < m; ++i) choice_parts.push_back(Regex::Symbol(i));
  red.setting.views.push_back(
      {"Vchoice", Regex::Union(std::move(choice_parts))});
  red.setting.views.push_back({"Ve", Regex::Symbol(sym_e)});
  red.setting.views.push_back({"Vs", Regex::Symbol(sym_s)});
  red.setting.views.push_back({"Vt", Regex::Symbol(sym_t)});

  // Query: s . (union over non-edges (i,j) of B of a_i e a_j) . t.
  std::vector<Regex> bad_pairs;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (!b.HasTuple(e_rel, {i, j})) {
        std::vector<Regex> seq;
        seq.push_back(Regex::Symbol(i));
        seq.push_back(Regex::Symbol(sym_e));
        seq.push_back(Regex::Symbol(j));
        bad_pairs.push_back(Regex::Concat(std::move(seq)));
      }
    }
  }
  std::vector<Regex> query_seq;
  query_seq.push_back(Regex::Symbol(sym_s));
  query_seq.push_back(Regex::Union(std::move(bad_pairs)));
  query_seq.push_back(Regex::Symbol(sym_t));
  red.setting.query = Regex::Concat(std::move(query_seq));

  // Objects: c = 0, d = 1, then x_in = 2 + 2x and x_out = 3 + 2x.
  red.instance.num_objects = 2 + 2 * n;
  red.instance.ext.resize(4);
  auto x_in = [](int x) { return 2 + 2 * x; };
  auto x_out = [](int x) { return 3 + 2 * x; };
  for (int x = 0; x < n; ++x) {
    red.instance.ext[0].push_back({x_in(x), x_out(x)});  // Vchoice
    red.instance.ext[2].push_back({0, x_in(x)});         // Vs
    red.instance.ext[3].push_back({x_out(x), 1});        // Vt
  }
  for (const Tuple& t : a.tuples(e_rel)) {
    red.instance.ext[1].push_back({x_out(t[0]), x_in(t[1])});  // Ve
  }
  red.c = 0;
  red.d = 1;
  return red;
}

}  // namespace cspdb
