// View-based query processing setting (paper, Section 7): a database is
// accessible only through views V_1..V_k, each with an RPQ definition
// over the alphabet Sigma and an extension (a set of object pairs). Views
// are sound and the domain is open.

#ifndef CSPDB_VIEWS_VIEW_H_
#define CSPDB_VIEWS_VIEW_H_

#include <string>
#include <utility>
#include <vector>

#include "rpq/graphdb.h"
#include "rpq/regex.h"

namespace cspdb {

/// A view: a name and an RPQ definition over the base alphabet.
struct ViewDefinition {
  std::string name;
  Regex definition;
};

/// The fixed part of a view-based query processing problem: the base
/// alphabet, the views, and the query (all regexes over the alphabet).
struct ViewSetting {
  std::vector<std::string> alphabet;
  std::vector<ViewDefinition> views;
  Regex query;
};

/// The variable part: objects 0..num_objects-1 and per-view extensions
/// ext(V_i) as pairs of objects.
struct ViewInstance {
  int num_objects = 0;
  std::vector<std::vector<std::pair<int, int>>> ext;  // one list per view
};

/// The view extensions as an edge-labeled graph over the *view* alphabet
/// (label i = view i). This is the database a rewriting is evaluated on.
GraphDb ExtensionGraph(const ViewSetting& setting,
                       const ViewInstance& instance);

/// True if `db` (over the base alphabet) is consistent with the views:
/// ext(V_i) is contained in ans(def(V_i), db) for every view. `db` must
/// have at least `instance.num_objects` nodes, with object o = node o.
bool ConsistentWithViews(const ViewSetting& setting,
                         const ViewInstance& instance, const GraphDb& db);

}  // namespace cspdb

#endif  // CSPDB_VIEWS_VIEW_H_
