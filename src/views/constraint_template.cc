#include "views/constraint_template.h"

#include <deque>
#include <set>
#include <utility>

#include "util/check.h"

namespace cspdb {

ConstraintTemplate BuildConstraintTemplate(const ViewSetting& setting) {
  int sigma = static_cast<int>(setting.alphabet.size());
  Dfa dfa = Determinize(Nfa::FromRegex(setting.query, sigma)).Minimize();
  int s = dfa.num_states;
  CSPDB_CHECK_MSG(s <= 12, "query automaton too large for the powerset "
                           "construction");
  int domain = 1 << s;

  Vocabulary voc;
  for (const ViewDefinition& view : setting.views) {
    voc.AddSymbol(view.name, 2);
  }
  int u_c = voc.AddSymbol("U_c", 1);
  int u_d = voc.AddSymbol("U_d", 1);

  Structure b(voc, domain);

  // V_i relations: for each start mask, BFS over (view automaton state,
  // image mask) pairs; images reached at accepting view states are the
  // obligations rho(s1, w); every superset qualifies as s2.
  for (std::size_t i = 0; i < setting.views.size(); ++i) {
    Nfa view_nfa =
        Nfa::FromRegex(setting.views[i].definition, sigma).RemoveEpsilon();
    for (int start_mask = 0; start_mask < domain; ++start_mask) {
      std::set<std::pair<int, int>> seen;
      std::deque<std::pair<int, int>> queue;
      std::set<int> images;
      auto visit = [&](int view_state, int mask) {
        if (seen.insert({view_state, mask}).second) {
          queue.push_back({view_state, mask});
          if (view_nfa.accepting[view_state]) images.insert(mask);
        }
      };
      visit(view_nfa.start, start_mask);
      while (!queue.empty()) {
        auto [view_state, mask] = queue.front();
        queue.pop_front();
        for (const auto& [symbol, next_view] :
             view_nfa.transitions[view_state]) {
          // Image of `mask` under the DFA on `symbol`.
          int next_mask = 0;
          for (int q = 0; q < dfa.num_states; ++q) {
            if (mask & (1 << q)) next_mask |= 1 << dfa.next[q][symbol];
          }
          visit(next_view, next_mask);
        }
      }
      for (int s2 = 0; s2 < domain; ++s2) {
        for (int image : images) {
          if ((image & ~s2) == 0) {  // image is a subset of s2
            b.AddTuple(static_cast<int>(i), {start_mask, s2});
            break;
          }
        }
      }
    }
  }

  // U_c: masks containing the DFA start state.
  for (int mask = 0; mask < domain; ++mask) {
    if (mask & (1 << dfa.start)) b.AddTuple(u_c, {mask});
  }
  // U_d: masks avoiding every accepting state.
  for (int mask = 0; mask < domain; ++mask) {
    bool touches_accepting = false;
    for (int q = 0; q < dfa.num_states; ++q) {
      if ((mask & (1 << q)) && dfa.accepting[q]) {
        touches_accepting = true;
        break;
      }
    }
    if (!touches_accepting) b.AddTuple(u_d, {mask});
  }

  return {std::move(b), std::move(dfa)};
}

Structure BuildViewInstanceStructure(const ViewSetting& setting,
                                     const ViewInstance& instance,
                                     const Vocabulary& template_vocabulary,
                                     int c, int d) {
  CSPDB_CHECK(instance.ext.size() == setting.views.size());
  CSPDB_CHECK(c >= 0 && c < instance.num_objects);
  CSPDB_CHECK(d >= 0 && d < instance.num_objects);
  Structure a(template_vocabulary, instance.num_objects);
  for (std::size_t i = 0; i < setting.views.size(); ++i) {
    int rel = template_vocabulary.IndexOf(setting.views[i].name);
    CSPDB_CHECK(rel >= 0);
    for (const auto& [x, y] : instance.ext[i]) a.AddTuple(rel, {x, y});
  }
  a.AddTuple(template_vocabulary.IndexOf("U_c"), {c});
  a.AddTuple(template_vocabulary.IndexOf("U_d"), {d});
  return a;
}

}  // namespace cspdb
