// Maximal RPQ rewriting of a query with respect to RPQ views
// ([8] in the paper, Calvanese-De Giacomo-Lenzerini-Vardi PODS'99): the
// largest regular language R over the view alphabet such that every
// expansion of every word of R is contained in L(Q). Evaluating the
// rewriting over the view extensions yields a sound (generally
// non-perfect) approximation of the certain answers.

#ifndef CSPDB_VIEWS_REWRITING_H_
#define CSPDB_VIEWS_REWRITING_H_

#include <utility>
#include <vector>

#include "rpq/nfa.h"
#include "views/view.h"

namespace cspdb {

/// Computes the maximal RPQ rewriting as a DFA over the view alphabet
/// (symbol i = view i). Construction: a word V_{i1}..V_{il} is *bad* iff
/// some expansion w_1..w_l (w_j in L(def V_{ij})) falls outside L(Q);
/// bad words are recognized by simulating the query DFA through each view
/// language, accepting in a non-accepting query state. The rewriting is
/// the complement.
Dfa MaximalRpqRewriting(const ViewSetting& setting);

/// Evaluates the rewriting over the extension graph. Always sound:
/// the result is contained in cert(Q, V) (tested against the Theorem 7.5
/// decision procedure).
std::vector<std::pair<int, int>> RewritingAnswers(
    const ViewSetting& setting, const ViewInstance& instance);

/// Nfa view of a DFA (for RPQ evaluation over the view alphabet).
Nfa NfaFromDfa(const Dfa& dfa);

}  // namespace cspdb

#endif  // CSPDB_VIEWS_REWRITING_H_
