#include "views/rewriting.h"

#include <deque>
#include <set>
#include <utility>

#include "rpq/rpq_eval.h"
#include "util/check.h"

namespace cspdb {

Nfa NfaFromDfa(const Dfa& dfa) {
  Nfa nfa;
  nfa.num_states = dfa.num_states;
  nfa.num_symbols = dfa.num_symbols;
  nfa.start = dfa.start;
  nfa.accepting = dfa.accepting;
  nfa.transitions.resize(dfa.num_states);
  for (int s = 0; s < dfa.num_states; ++s) {
    for (int symbol = 0; symbol < dfa.num_symbols; ++symbol) {
      nfa.transitions[s].push_back({symbol, dfa.next[s][symbol]});
    }
  }
  return nfa;
}

Dfa MaximalRpqRewriting(const ViewSetting& setting) {
  int sigma = static_cast<int>(setting.alphabet.size());
  int k = static_cast<int>(setting.views.size());
  Dfa query_dfa =
      Determinize(Nfa::FromRegex(setting.query, sigma)).Minimize();

  // For each query-DFA state q and view i: the set of states reachable by
  // reading some word of L(def V_i).
  std::vector<std::vector<std::vector<int>>> via_view(
      query_dfa.num_states, std::vector<std::vector<int>>(k));
  for (int i = 0; i < k; ++i) {
    Nfa view_nfa =
        Nfa::FromRegex(setting.views[i].definition, sigma).RemoveEpsilon();
    for (int q = 0; q < query_dfa.num_states; ++q) {
      std::set<std::pair<int, int>> seen;
      std::deque<std::pair<int, int>> queue;
      std::set<int> reached;
      auto visit = [&](int view_state, int dfa_state) {
        if (seen.insert({view_state, dfa_state}).second) {
          queue.push_back({view_state, dfa_state});
          if (view_nfa.accepting[view_state]) reached.insert(dfa_state);
        }
      };
      visit(view_nfa.start, q);
      while (!queue.empty()) {
        auto [view_state, dfa_state] = queue.front();
        queue.pop_front();
        for (const auto& [symbol, next_view] :
             view_nfa.transitions[view_state]) {
          visit(next_view, query_dfa.next[dfa_state][symbol]);
        }
      }
      via_view[q][i].assign(reached.begin(), reached.end());
    }
  }

  // Bad-word NFA over the view alphabet: states of the query DFA,
  // accepting in non-accepting query states.
  Nfa bad;
  bad.num_states = query_dfa.num_states;
  bad.num_symbols = k;
  bad.start = query_dfa.start;
  bad.accepting.resize(query_dfa.num_states);
  bad.transitions.resize(query_dfa.num_states);
  for (int q = 0; q < query_dfa.num_states; ++q) {
    bad.accepting[q] = query_dfa.accepting[q] ? 0 : 1;
    for (int i = 0; i < k; ++i) {
      for (int target : via_view[q][i]) {
        bad.transitions[q].push_back({i, target});
      }
    }
  }
  return Determinize(bad).Complement().Minimize();
}

std::vector<std::pair<int, int>> RewritingAnswers(
    const ViewSetting& setting, const ViewInstance& instance) {
  Dfa rewriting = MaximalRpqRewriting(setting);
  GraphDb ext = ExtensionGraph(setting, instance);
  return EvaluateRpq(ext, NfaFromDfa(rewriting));
}

}  // namespace cspdb
