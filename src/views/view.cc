#include "views/view.h"

#include "rpq/nfa.h"
#include "rpq/rpq_eval.h"
#include "util/check.h"

namespace cspdb {

GraphDb ExtensionGraph(const ViewSetting& setting,
                       const ViewInstance& instance) {
  CSPDB_CHECK(instance.ext.size() == setting.views.size());
  GraphDb db(instance.num_objects, static_cast<int>(setting.views.size()));
  for (std::size_t i = 0; i < instance.ext.size(); ++i) {
    for (const auto& [x, y] : instance.ext[i]) {
      db.AddEdge(x, static_cast<int>(i), y);
    }
  }
  return db;
}

bool ConsistentWithViews(const ViewSetting& setting,
                         const ViewInstance& instance, const GraphDb& db) {
  CSPDB_CHECK(instance.ext.size() == setting.views.size());
  CSPDB_CHECK(db.num_nodes() >= instance.num_objects);
  CSPDB_CHECK(db.num_labels() ==
              static_cast<int>(setting.alphabet.size()));
  for (std::size_t i = 0; i < setting.views.size(); ++i) {
    Nfa def = Nfa::FromRegex(setting.views[i].definition,
                             static_cast<int>(setting.alphabet.size()));
    for (const auto& [x, y] : instance.ext[i]) {
      if (!RpqHolds(db, def, x, y)) return false;
    }
  }
  return true;
}

}  // namespace cspdb
