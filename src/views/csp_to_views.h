// Theorem 7.3: every CSP over directed graphs reduces polynomially to
// view-based query answering. For a digraph template B the query and view
// definitions depend only on B; only the view extensions depend on the
// input digraph A, so non-uniform CSP(B) reduces to query rewriting.
//
// Gadget: a "choice" view (one base symbol per node of B) forces every
// consistent database to pick a B-node for each A-node; the query spells
// s . (union of bad pairs a_i e a_j) . t and therefore connects c to d
// exactly when some A-edge is mapped to a non-edge of B. Hence
// (c, d) not-in cert(Q, V) iff a homomorphism A -> B exists.

#ifndef CSPDB_VIEWS_CSP_TO_VIEWS_H_
#define CSPDB_VIEWS_CSP_TO_VIEWS_H_

#include "relational/structure.h"
#include "views/view.h"

namespace cspdb {

/// The produced view-answering instance.
struct CspToViewsReduction {
  ViewSetting setting;    ///< depends only on the template B
  ViewInstance instance;  ///< depends only on the input A
  int c = 0;
  int d = 1;
};

/// Builds the reduction for digraphs `a`, `b` over the vocabulary {E/2}.
/// Postcondition (Theorem 7.3): (c, d) not-in cert(Q, V) iff CSP(A, B) is
/// solvable.
CspToViewsReduction ReduceCspToViewAnswering(const Structure& a,
                                             const Structure& b);

}  // namespace cspdb

#endif  // CSPDB_VIEWS_CSP_TO_VIEWS_H_
