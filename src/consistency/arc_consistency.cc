#include "consistency/arc_consistency.h"

#include <cstddef>
#include <deque>
#include <utility>

#include "csp/support_masks.h"
#include "obs/obs.h"
#include "util/check.h"

namespace cspdb {
namespace {

// The shared propagation engine: owns the immutable support masks and
// runs the AC-3 worklist over externally held packed state, so SAC can
// probe by copying state words instead of rebuilding instances.
class GacEngine {
 public:
  // Mutable propagation state. Copy-assignable; copies reuse buffers, so
  // a probe costs a handful of memcpys.
  struct State {
    std::vector<Bitset> domains;   // [var] -> packed surviving values
    std::vector<int> domain_size;  // popcount cache of domains
    std::vector<Bitset> valid;     // [constraint] -> tuples alive under
                                   //   the current domains
  };

  explicit GacEngine(const CspInstance& csp) : csp_(csp), masks_(csp) {}

  void InitFullState(State* s) const {
    s->domains.assign(csp_.num_variables(), Bitset(csp_.num_values(), true));
    s->domain_size.assign(csp_.num_variables(), csp_.num_values());
    s->valid.clear();
    s->valid.reserve(csp_.constraints().size());
    for (const Constraint& c : csp_.constraints()) {
      s->valid.emplace_back(static_cast<int>(c.allowed.size()), true);
    }
  }

  /// Removes (var, val) from the state: domain bit, size cache, and the
  /// valid-tuple masks of every constraint on var (whole words at a
  /// time). Returns false on domain wipeout.
  bool Prune(State* s, int var, int val, int64_t* prunings) const {
    s->domains[var].Reset(val);
    --s->domain_size[var];
    ++*prunings;
    CSPDB_COUNT("gac.prunings");
    const std::vector<int>& cons = csp_.ConstraintsOn(var);
    for (std::size_t k = 0; k < cons.size(); ++k) {
      const int ci = cons[k];
      s->valid[ci].AndNotWithWords(masks_.constraints[ci].KillerMask(
          masks_.var_group[var][k], csp_.num_values(), val));
    }
    return s->domain_size[var] > 0;
  }

  /// Runs the AC-3 worklist to fixpoint with every constraint seeded.
  /// Returns false (leaving partially pruned state) on wipeout.
  bool RunToFixpoint(State* s, int64_t* revisions, int64_t* prunings) {
    const int m = static_cast<int>(csp_.constraints().size());
    const int num_values = csp_.num_values();
    queue_.clear();
    queued_.assign(m, 1);
    for (int ci = 0; ci < m; ++ci) queue_.push_back(ci);
    while (!queue_.empty()) {
      const int ci = queue_.front();
      queue_.pop_front();
      queued_[ci] = 0;
      const ConstraintSupport& masks = masks_.constraints[ci];
      bool any_changed = false;
      for (std::size_t g = 0; g < masks.group_var.size(); ++g) {
        const int var = masks.group_var[g];
        ++*revisions;
        CSPDB_COUNT("gac.revisions");
        // SIMD sweep over the group's support rows against a snapshot of
        // the valid-tuple mask. Pruning a collected value can strip the
        // last support of a later value in the same group; that value is
        // caught when the worklist revisits this constraint (any change
        // re-queues it below), so the fixpoint — the compared contract —
        // is unchanged relative to the value-at-a-time revision.
        prune_buf_.clear();
        masks.CollectUnsupported(s->valid[ci], s->domains[var],
                                 static_cast<int>(g), num_values,
                                 &prune_buf_);
        const bool changed = !prune_buf_.empty();
        for (int val : prune_buf_) {
          if (!Prune(s, var, val, prunings)) return false;
        }
        if (changed) {
          any_changed = true;
          for (int other : csp_.ConstraintsOn(var)) {
            if (other != ci && !queued_[other]) {
              queue_.push_back(other);
              queued_[other] = 1;
              CSPDB_GAUGE_MAX("gac.queue_peak",
                              static_cast<int64_t>(queue_.size()));
            }
          }
        }
      }
      // Re-examine this constraint's other variables too.
      if (any_changed && !queued_[ci]) {
        queue_.push_back(ci);
        queued_[ci] = 1;
      }
    }
    return true;
  }

 private:
  const CspInstance& csp_;
  SupportMasks masks_;
  // Worklist scratch, reused across runs.
  std::deque<int> queue_;
  std::vector<char> queued_;
  // Values collected by the revision sweep, reused across revisions.
  std::vector<int> prune_buf_;
};

}  // namespace

AcResult EnforceGac(const CspInstance& csp) {
  CSPDB_TIMER_SCOPE("consistency.gac");
  AcResult result;
  if (csp.num_variables() > 0 && csp.num_values() == 0) {
    result.domains.assign(csp.num_variables(), Bitset(0));
    result.consistent = false;
    result.wipeouts = 1;
    return result;
  }
  GacEngine engine(csp);
  GacEngine::State state;
  engine.InitFullState(&state);
  result.consistent =
      engine.RunToFixpoint(&state, &result.revisions, &result.prunings);
  if (!result.consistent) {
    result.wipeouts = 1;
    CSPDB_COUNT("gac.wipeouts");
    CSPDB_TRACE_INSTANT("gac.wipeout");
  }
  result.domains = std::move(state.domains);
  return result;
}

AcResult EnforceSingletonArcConsistency(const CspInstance& csp) {
  CSPDB_TIMER_SCOPE("consistency.sac");
  AcResult result;
  if (csp.num_variables() > 0 && csp.num_values() == 0) {
    result.domains.assign(csp.num_variables(), Bitset(0));
    result.consistent = false;
    result.wipeouts = 1;
    return result;
  }
  GacEngine engine(csp);
  GacEngine::State outer;
  engine.InitFullState(&outer);
  result.consistent =
      engine.RunToFixpoint(&outer, &result.revisions, &result.prunings);
  if (!result.consistent) {
    result.wipeouts = 1;
    CSPDB_COUNT("gac.wipeouts");
    result.domains = std::move(outer.domains);
    return result;
  }

  // Probe x_v = d on top of the shared masks: copy the packed state,
  // apply the restriction, and rerun the worklist. No instances are
  // rebuilt and no support masks recomputed per probe.
  GacEngine::State probe;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 0; v < csp.num_variables() && result.consistent; ++v) {
      for (int d = 0; d < csp.num_values(); ++d) {
        if (!outer.domains[v].Test(d)) continue;
        probe = outer;
        bool probe_consistent = true;
        int64_t scratch = 0;
        CSPDB_COUNT("sac.probes");
        for (int other = outer.domains[v].FindFirst(); other >= 0;
             other = outer.domains[v].NextSetBit(other + 1)) {
          if (other == d) continue;
          if (!engine.Prune(&probe, v, other, &scratch)) {
            probe_consistent = false;
            break;
          }
        }
        if (probe_consistent) {
          probe_consistent =
              engine.RunToFixpoint(&probe, &result.revisions, &scratch);
        }
        if (!probe_consistent) {
          changed = true;
          ++result.wipeouts;
          CSPDB_COUNT("sac.probe_wipeouts");
          if (!engine.Prune(&outer, v, d, &result.prunings)) {
            result.consistent = false;
            ++result.wipeouts;
            CSPDB_COUNT("gac.wipeouts");
            break;
          }
        }
      }
    }
  }
  result.domains = std::move(outer.domains);
  return result;
}

CspInstance RestrictToDomains(const CspInstance& csp,
                              const std::vector<Bitset>& domains) {
  CSPDB_CHECK(static_cast<int>(domains.size()) == csp.num_variables());
  CspInstance out(csp.num_variables(), csp.num_values());
  for (const Constraint& c : csp.constraints()) {
    out.AddConstraint(c.scope, c.allowed);
  }
  for (int v = 0; v < csp.num_variables(); ++v) {
    std::vector<Tuple> allowed;
    for (int d = 0; d < csp.num_values(); ++d) {
      if (domains[v].Test(d)) allowed.push_back({d});
    }
    out.AddConstraint({v}, std::move(allowed));
  }
  return out;
}

}  // namespace cspdb
