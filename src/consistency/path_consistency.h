// Path consistency (PC-2) for binary CSP instances: the classical AI
// algorithm behind 3-consistency (paper, Section 5; Freuder [23, 24] and
// Dechter [17] in the paper's references). Where arc consistency prunes
// unary domains, path consistency tightens the binary relation between
// every *pair* of variables by composing through third variables.

#ifndef CSPDB_CONSISTENCY_PATH_CONSISTENCY_H_
#define CSPDB_CONSISTENCY_PATH_CONSISTENCY_H_

#include <cstdint>
#include <vector>

#include "csp/instance.h"

namespace cspdb {

/// Result of the PC-2 pass.
struct PcResult {
  /// False if some pair relation became empty (instance unsolvable).
  bool consistent = true;

  /// allowed[i][j] (i < j, flattened as i * n + j) is the matrix of value
  /// pairs still admitted between variables i and j:
  /// allowed[i*n+j][a * d + b] == 1 iff (x_i = a, x_j = b) survives.
  std::vector<std::vector<char>> pairs;

  int64_t revisions = 0;
  int64_t prunings = 0;
};

/// Runs PC-2 on a *binary* instance (arity <= 2 after normalization;
/// higher-arity constraints are rejected). Initializes the pair matrices
/// from the binary constraints (complete relation when unconstrained),
/// intersects unary constraints into the diagonal handling, and composes
/// to fixpoint: a pair (a, b) for (i, j) survives only if for every third
/// variable m some value c is compatible with both.
///
/// Sound: never removes a pair that participates in a solution (tested),
/// so an empty pair relation refutes the instance. Deciding solvability
/// from path consistency alone is incomplete in general — the classic
/// counterexamples need k > 3 — but it refutes every odd-cycle/2-coloring
/// style instance that arc consistency misses.
PcResult EnforcePathConsistency(const CspInstance& csp);

}  // namespace cspdb

#endif  // CSPDB_CONSISTENCY_PATH_CONSISTENCY_H_
