// Frozen copy of the pre-optimization arc_consistency.cc. Kept verbatim
// (modulo renames) as the differential-testing oracle and benchmark
// baseline; see reference_gac.h.

#include "consistency/reference_gac.h"

#include <deque>

#include "util/check.h"

namespace cspdb {

ReferenceAcResult ReferenceEnforceGac(const CspInstance& csp) {
  ReferenceAcResult result;
  result.domains.assign(csp.num_variables(),
                        std::vector<char>(csp.num_values(), 1));
  std::vector<int> domain_size(csp.num_variables(), csp.num_values());
  if (csp.num_variables() > 0 && csp.num_values() == 0) {
    result.consistent = false;
    return result;
  }

  int m = static_cast<int>(csp.constraints().size());
  std::deque<int> queue;
  std::vector<char> queued(m, 0);
  for (int c = 0; c < m; ++c) {
    queue.push_back(c);
    queued[c] = 1;
  }

  while (!queue.empty()) {
    int ci = queue.front();
    queue.pop_front();
    queued[ci] = 0;
    const Constraint& c = csp.constraint(ci);
    for (int q = 0; q < c.arity(); ++q) {
      int var = c.scope[q];
      bool dup = false;
      for (int p = 0; p < q; ++p) {
        if (c.scope[p] == var) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      ++result.revisions;
      bool changed = false;
      for (int val = 0; val < csp.num_values(); ++val) {
        if (!result.domains[var][val]) continue;
        bool supported = false;
        for (const Tuple& t : c.allowed) {
          bool ok = true;
          for (int p = 0; p < c.arity(); ++p) {
            if (c.scope[p] == var ? (t[p] != val)
                                  : !result.domains[c.scope[p]][t[p]]) {
              ok = false;
              break;
            }
          }
          if (ok) {
            supported = true;
            break;
          }
        }
        if (!supported) {
          result.domains[var][val] = 0;
          --domain_size[var];
          ++result.prunings;
          changed = true;
          if (domain_size[var] == 0) {
            result.consistent = false;
            return result;
          }
        }
      }
      if (changed) {
        for (int other : csp.ConstraintsOn(var)) {
          if (other != ci && !queued[other]) {
            queue.push_back(other);
            queued[other] = 1;
          }
        }
        // Re-examine this constraint's other variables too.
        if (!queued[ci]) {
          queue.push_back(ci);
          queued[ci] = 1;
        }
      }
    }
  }
  return result;
}

ReferenceAcResult ReferenceEnforceSingletonArcConsistency(
    const CspInstance& csp) {
  ReferenceAcResult result = ReferenceEnforceGac(csp);
  if (!result.consistent) return result;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 0; v < csp.num_variables() && result.consistent; ++v) {
      for (int d = 0; d < csp.num_values(); ++d) {
        if (!result.domains[v][d]) continue;
        // Probe x_v = d on top of the current domains.
        CspInstance probe = ReferenceRestrictToDomains(csp, result.domains);
        probe.AddConstraint({v}, {{d}});
        ReferenceAcResult probe_result = ReferenceEnforceGac(probe);
        result.revisions += probe_result.revisions;
        if (!probe_result.consistent) {
          result.domains[v][d] = 0;
          ++result.prunings;
          changed = true;
          // Domain wipeout?
          bool any = false;
          for (int other = 0; other < csp.num_values(); ++other) {
            if (result.domains[v][other]) {
              any = true;
              break;
            }
          }
          if (!any) {
            result.consistent = false;
            return result;
          }
        }
      }
    }
  }
  return result;
}

CspInstance ReferenceRestrictToDomains(
    const CspInstance& csp,
    const std::vector<std::vector<char>>& domains) {
  CSPDB_CHECK(static_cast<int>(domains.size()) == csp.num_variables());
  CspInstance out(csp.num_variables(), csp.num_values());
  for (const Constraint& c : csp.constraints()) {
    out.AddConstraint(c.scope, c.allowed);
  }
  for (int v = 0; v < csp.num_variables(); ++v) {
    std::vector<Tuple> allowed;
    for (int d = 0; d < csp.num_values(); ++d) {
      if (domains[v][d]) allowed.push_back({d});
    }
    out.AddConstraint({v}, std::move(allowed));
  }
  return out;
}

}  // namespace cspdb
