#include "consistency/establish.h"

#include <utility>
#include <vector>

#include "games/pebble_game.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Enumerates all i-tuples over [0, n) with *distinct* entries and invokes
// visit(tuple) for each.
template <typename Visit>
void ForEachDistinctTuple(int n, int i, Tuple* scratch, Visit&& visit) {
  if (static_cast<int>(scratch->size()) == i) {
    visit(*scratch);
    return;
  }
  for (int e = 0; e < n; ++e) {
    bool used = false;
    for (int x : *scratch) {
      if (x == e) {
        used = true;
        break;
      }
    }
    if (used) continue;
    scratch->push_back(e);
    ForEachDistinctTuple(n, i, scratch, visit);
    scratch->pop_back();
  }
}

}  // namespace

EstablishResult EstablishStrongKConsistency(const Structure& a,
                                            const Structure& b, int k) {
  CSPDB_CHECK(k >= 1);
  PebbleGame game(a, b, k);
  EstablishResult result{false, CspInstance(a.domain_size(),
                                            b.domain_size())};
  if (!game.DuplicatorWins()) return result;
  result.possible = true;

  // Steps 2-3 of Theorem 5.6: R_a = { b : (a, b) in W^k(A, B) } for every
  // distinct-entry tuple a of length i <= k. b ranges over all of B^i;
  // membership in W^k is exactly "the induced map is in the largest
  // winning strategy".
  Tuple scope_scratch;
  for (int i = 1; i <= k && i <= a.domain_size(); ++i) {
    ForEachDistinctTuple(a.domain_size(), i, &scope_scratch,
                         [&](const Tuple& scope) {
      std::vector<Tuple> allowed;
      Tuple image(scope.size());
      // Enumerate B^i.
      std::vector<int> counter(scope.size(), 0);
      while (true) {
        for (std::size_t j = 0; j < scope.size(); ++j) image[j] = counter[j];
        if (game.IsWinningConfiguration(scope, image)) {
          allowed.push_back(image);
        }
        // Advance the mixed-radix counter.
        std::size_t pos = 0;
        while (pos < counter.size()) {
          if (++counter[pos] < b.domain_size()) break;
          counter[pos] = 0;
          ++pos;
        }
        if (pos == counter.size()) break;
        if (b.domain_size() == 0) break;
      }
      result.csp.AddConstraint(std::vector<int>(scope.begin(), scope.end()),
                               std::move(allowed));
    });
  }
  return result;
}

EstablishResult EstablishStrongKConsistency(const CspInstance& csp, int k) {
  HomInstance hom = ToHomomorphismInstance(csp);
  return EstablishStrongKConsistency(hom.a, hom.b, k);
}

bool KConsistencyDecides(const Structure& a, const Structure& b, int k) {
  return PebbleGame(a, b, k).DuplicatorWins();
}

}  // namespace cspdb
