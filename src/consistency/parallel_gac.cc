#include "consistency/parallel_gac.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "csp/support_masks.h"
#include "obs/obs.h"
#include "util/bitset.h"
#include "util/check.h"

namespace cspdb {
namespace {

// True if the two word spans share a set bit.
bool SpansIntersect(const uint64_t* a, const uint64_t* b, int words) {
  for (int i = 0; i < words; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

// The shared mutable state of one parallel run. Domains are written with
// atomic word-level fetch_and (each dead value's bit is cleared by exactly
// one winner) and read with relaxed atomic loads; because domains only
// shrink, any stale read is a superset of the truth and every pruning
// decision made from it is sound.
struct SharedState {
  const CspInstance& csp;
  const SupportMasks& masks;
  std::vector<Bitset>& domains;
  std::vector<std::atomic<uint8_t>>& dirty;
  std::atomic<bool>& wiped;
  std::atomic<int64_t>& revisions;
  std::atomic<int64_t>& prunings;
};

// Snapshots variable `var`'s domain words into `snap` with relaxed
// atomic loads (racing fetch_ands make plain reads UB under TSan).
void SnapshotDomain(const Bitset& domain, std::vector<uint64_t>* snap) {
  const int n = domain.num_words();
  snap->resize(static_cast<std::size_t>(n));
  // atomic_ref<const T> lands in C++26; the underlying words are non-const
  // Bitset storage, so the const_cast is well-defined.
  uint64_t* words = const_cast<uint64_t*>(domain.words());
  for (int i = 0; i < n; ++i) {
    (*snap)[i] =
        std::atomic_ref<uint64_t>(words[i]).load(std::memory_order_relaxed);
  }
}

// Clears (var, val) from the shared domains if still present. Returns
// true if this call was the one that cleared it (exactly-once counting).
bool TryPrune(const SharedState& s, int var, int val) {
  uint64_t* words = s.domains[var].mutable_words();
  const uint64_t bit = uint64_t{1} << (val & 63);
  const uint64_t old = std::atomic_ref<uint64_t>(words[val >> 6])
                           .fetch_and(~bit, std::memory_order_acq_rel);
  if ((old & bit) == 0) return false;  // a racing revision beat us to it
  CSPDB_COUNT("gac.prunings");
  // Wipeout probe over the freshly shrunk domain.
  uint64_t any = 0;
  const int n = s.domains[var].num_words();
  for (int i = 0; i < n; ++i) {
    any |=
        std::atomic_ref<uint64_t>(words[i]).load(std::memory_order_relaxed);
  }
  if (any == 0) s.wiped.store(true, std::memory_order_relaxed);
  // Every constraint on var must re-check support (including the one
  // currently being revised — serial GAC re-queues it too).
  for (int other : s.csp.ConstraintsOn(var)) {
    s.dirty[other].store(1, std::memory_order_release);
  }
  return true;
}

// One full revision of constraint `ci` against the current shared
// domains. Rather than maintaining the incremental compact-table valid
// mask under concurrency, the alive-tuple mask is recomputed from the
// domain snapshot: AND over groups of (OR over alive values of the
// group's support rows). The recomputed mask differs from the serial
// incremental one only on tuples whose repeated-variable slots disagree —
// tuples that appear in no support mask, so every probe answers
// identically.
void ReviseConstraint(const SharedState& s, int ci,
                      std::vector<uint64_t>* valid,
                      std::vector<uint64_t>* row,
                      std::vector<uint64_t>* snap, int64_t* revisions,
                      int64_t* prunings) {
  const ConstraintSupport& cs = s.masks.constraints[ci];
  const int words = cs.words;
  const int num_values = s.csp.num_values();
  const std::size_t num_groups = cs.group_var.size();
  valid->assign(static_cast<std::size_t>(words), 0);
  for (std::size_t g = 0; g < num_groups; ++g) {
    SnapshotDomain(s.domains[cs.group_var[g]], snap);
    row->assign(static_cast<std::size_t>(words), 0);
    for (int wi = 0; wi < static_cast<int>(snap->size()); ++wi) {
      uint64_t w = (*snap)[wi];
      while (w != 0) {
        const int val = (wi << 6) + std::countr_zero(w);
        w &= w - 1;
        const uint64_t* mask =
            cs.SupportMask(static_cast<int>(g), num_values, val);
        for (int i = 0; i < words; ++i) (*row)[i] |= mask[i];
      }
    }
    if (g == 0) {
      *valid = *row;
    } else {
      for (int i = 0; i < words; ++i) (*valid)[i] &= (*row)[i];
    }
  }
  for (std::size_t g = 0; g < num_groups; ++g) {
    const int var = cs.group_var[g];
    ++*revisions;
    CSPDB_COUNT("gac.revisions");
    SnapshotDomain(s.domains[var], snap);
    for (int wi = 0; wi < static_cast<int>(snap->size()); ++wi) {
      uint64_t w = (*snap)[wi];
      while (w != 0) {
        const int val = (wi << 6) + std::countr_zero(w);
        w &= w - 1;
        if (SpansIntersect(valid->data(),
                           cs.SupportMask(static_cast<int>(g), num_values,
                                          val),
                           words)) {
          continue;
        }
        if (TryPrune(s, var, val)) ++*prunings;
        if (s.wiped.load(std::memory_order_relaxed)) return;
      }
    }
  }
}

}  // namespace

AcResult EnforceGacParallel(const CspInstance& csp,
                            const ParallelGacOptions& options) {
  AcResult result;
  if (csp.num_variables() > 0 && csp.num_values() == 0) {
    result.domains.assign(csp.num_variables(), Bitset(0));
    result.consistent = false;
    result.wipeouts = 1;
    return result;
  }
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    result.domains.assign(csp.num_variables(),
                          Bitset(csp.num_values(), true));
    result.complete = false;
    return result;
  }
  const int m = static_cast<int>(csp.constraints().size());
  exec::ThreadPool* pool =
      options.pool != nullptr ? options.pool : &exec::ThreadPool::Global();
  if (pool->num_threads() <= 1 || m < options.min_constraints) {
    return EnforceGac(csp);  // fork/join overhead not worth it
  }
  CSPDB_TIMER_SCOPE("consistency.gac_parallel");

  SupportMasks masks(csp);
  std::vector<Bitset> domains(csp.num_variables(),
                              Bitset(csp.num_values(), true));
  std::vector<std::atomic<uint8_t>> dirty(m);
  for (auto& d : dirty) d.store(1, std::memory_order_relaxed);
  std::atomic<bool> wiped{false};
  std::atomic<int64_t> revisions{0};
  std::atomic<int64_t> prunings{0};
  SharedState shared{csp,   masks,     domains, dirty,
                     wiped, revisions, prunings};

  std::vector<int> worklist;
  worklist.reserve(static_cast<std::size_t>(m));
  bool cancelled = false;
  while (!wiped.load(std::memory_order_relaxed)) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      cancelled = true;
      break;
    }
    worklist.clear();
    for (int ci = 0; ci < m; ++ci) {
      if (dirty[ci].exchange(0, std::memory_order_acquire) != 0) {
        worklist.push_back(ci);
      }
    }
    if (worklist.empty()) break;
    CSPDB_COUNT("gac.parallel.rounds");
    const int64_t size = static_cast<int64_t>(worklist.size());
    const int64_t grain =
        std::max<int64_t>(1, size / (4 * pool->num_threads()));
    pool->ParallelFor(0, size, grain, [&](int64_t lo, int64_t hi) {
      std::vector<uint64_t> valid, row, snap;
      int64_t local_revisions = 0;
      int64_t local_prunings = 0;
      for (int64_t i = lo; i < hi; ++i) {
        if (shared.wiped.load(std::memory_order_relaxed)) break;
        if (options.cancel != nullptr && options.cancel->cancelled()) break;
        ReviseConstraint(shared, worklist[static_cast<std::size_t>(i)],
                         &valid, &row, &snap, &local_revisions,
                         &local_prunings);
      }
      revisions.fetch_add(local_revisions, std::memory_order_relaxed);
      prunings.fetch_add(local_prunings, std::memory_order_relaxed);
    });
  }

  result.consistent = !wiped.load(std::memory_order_relaxed);
  result.complete = !cancelled;
  result.revisions = revisions.load(std::memory_order_relaxed);
  result.prunings = prunings.load(std::memory_order_relaxed);
  if (!result.consistent) {
    result.wipeouts = 1;
    CSPDB_COUNT("gac.wipeouts");
    CSPDB_TRACE_INSTANT("gac.wipeout");
  }
  result.domains = std::move(domains);
  return result;
}

}  // namespace cspdb
