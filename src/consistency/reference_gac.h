// Frozen pre-optimization GAC kernels (byte-map domains, tuple-at-a-time
// support scans). These are the exact algorithms the bit-packed kernels
// in arc_consistency.* replaced; they exist solely as the trusted oracle
// for differential tests and as the "before" side of the
// BENCH_kernels.json trajectory. Do not optimize this file.

#ifndef CSPDB_CONSISTENCY_REFERENCE_GAC_H_
#define CSPDB_CONSISTENCY_REFERENCE_GAC_H_

#include <cstdint>
#include <vector>

#include "csp/instance.h"

namespace cspdb {

/// Result of the reference GAC pass; mirrors the pre-change AcResult with
/// its byte-per-value domain maps.
struct ReferenceAcResult {
  bool consistent = true;
  std::vector<std::vector<char>> domains;  ///< domains[v][d] == 1 iff alive
  int64_t revisions = 0;
  int64_t prunings = 0;
};

/// The pre-change GAC-3: scans every allowed tuple per (value, revision).
ReferenceAcResult ReferenceEnforceGac(const CspInstance& csp);

/// The pre-change SAC: rebuilds a full restricted CspInstance per
/// (variable, value) probe via ReferenceRestrictToDomains.
ReferenceAcResult ReferenceEnforceSingletonArcConsistency(
    const CspInstance& csp);

/// The pre-change domain write-back (one unary constraint per variable).
CspInstance ReferenceRestrictToDomains(
    const CspInstance& csp, const std::vector<std::vector<char>>& domains);

}  // namespace cspdb

#endif  // CSPDB_CONSISTENCY_REFERENCE_GAC_H_
