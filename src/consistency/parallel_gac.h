// Parallel generalized arc consistency on the work-stealing pool
// (exec/thread_pool.h). Independent constraints are revised concurrently
// against shared packed domains; prunings clear domain bits with atomic
// word-level fetch_and, so every dead value is counted exactly once.
//
// Determinism contract: on a consistent instance the GAC fixpoint is
// unique (the largest arc-consistent sub-domain), and because domains only
// ever shrink, a racy stale read is a superset of the truth — revisions
// using it prune only values that are dead under *some* sound
// over-approximation, hence dead at the fixpoint. The engine therefore
// converges to domains bit-identical to EnforceGac's, with an equal
// `prunings` count. On a wipeout only `consistent` is deterministic (which
// constraint noticed first is a race, as serial engines stop at the first
// wipeout anyway); differential tests compare the flag alone in that case.
//
// Cancellation is cooperative and checked between revisions: a cancelled
// run returns complete=false with soundly over-approximated domains.

#ifndef CSPDB_CONSISTENCY_PARALLEL_GAC_H_
#define CSPDB_CONSISTENCY_PARALLEL_GAC_H_

#include "consistency/arc_consistency.h"
#include "csp/instance.h"
#include "exec/cancellation.h"
#include "exec/thread_pool.h"

namespace cspdb {

struct ParallelGacOptions {
  /// Pool to run on; nullptr means ThreadPool::Global().
  exec::ThreadPool* pool = nullptr;

  /// Optional cooperative cancellation; polled between revisions.
  const exec::CancellationToken* cancel = nullptr;

  /// Below this many constraints the parallel engine delegates to the
  /// serial EnforceGac — fork/join overhead dwarfs the work.
  int min_constraints = 32;
};

/// Runs GAC-3 to fixpoint in parallel. Equivalent to EnforceGac on every
/// consistent instance (bit-identical domains, equal prunings); the
/// `revisions` counter is scheduling-dependent, as documented on AcResult.
AcResult EnforceGacParallel(const CspInstance& csp,
                            const ParallelGacOptions& options = {});

}  // namespace cspdb

#endif  // CSPDB_CONSISTENCY_PARALLEL_GAC_H_
