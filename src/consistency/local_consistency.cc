#include "consistency/local_consistency.h"

#include <vector>

#include "csp/convert.h"
#include "games/pebble_game.h"
#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Enumerates partial solutions over the distinct variables vars[0..idx),
// then recurses over variable subsets; calls `visit` for each (subset,
// partial solution). `visit` returns false to abort the whole walk.
//
// We enumerate subsets of size `count` starting from `next_var`, and for
// each subset all value assignments that are partial solutions.
class PartialSolutionWalker {
 public:
  PartialSolutionWalker(const CspInstance& csp, int count)
      : csp_(csp), count_(count),
        assignment_(csp.num_variables(), kUnassigned) {}

  // Returns false if `visit` aborted.
  template <typename Visit>
  bool Walk(Visit&& visit) {
    chosen_.clear();
    return ChooseVars(0, visit);
  }

 private:
  template <typename Visit>
  bool ChooseVars(int next_var, Visit&& visit) {
    if (static_cast<int>(chosen_.size()) == count_) {
      return AssignValues(0, visit);
    }
    for (int v = next_var; v < csp_.num_variables(); ++v) {
      chosen_.push_back(v);
      if (!ChooseVars(v + 1, visit)) return false;
      chosen_.pop_back();
    }
    return true;
  }

  template <typename Visit>
  bool AssignValues(int idx, Visit&& visit) {
    if (idx == static_cast<int>(chosen_.size())) {
      // Partial-solution check: constraints fully inside the subset.
      if (!csp_.IsPartialSolution(assignment_)) return true;  // skip
      return visit(chosen_, assignment_);
    }
    for (int d = 0; d < csp_.num_values(); ++d) {
      assignment_[chosen_[idx]] = d;
      bool keep_going = AssignValues(idx + 1, visit);
      assignment_[chosen_[idx]] = kUnassigned;
      if (!keep_going) return false;
    }
    return true;
  }

  const CspInstance& csp_;
  int count_;
  std::vector<int> assignment_;
  std::vector<int> chosen_;
};

}  // namespace

bool IsIConsistent(const CspInstance& csp, int i) {
  CSPDB_CHECK(i >= 1);
  if (i - 1 > csp.num_variables()) return true;  // no i-1 variables exist
  PartialSolutionWalker walker(csp, i - 1);
  bool consistent = true;
  walker.Walk([&](const std::vector<int>& vars,
                  const std::vector<int>& assignment) {
    std::vector<int> extended = assignment;
    for (int v = 0; v < csp.num_variables(); ++v) {
      bool chosen = false;
      for (int u : vars) {
        if (u == v) {
          chosen = true;
          break;
        }
      }
      if (chosen) continue;
      bool extendable = false;
      for (int d = 0; d < csp.num_values(); ++d) {
        extended[v] = d;
        if (csp.IsPartialSolution(extended)) {
          extendable = true;
          break;
        }
      }
      extended[v] = kUnassigned;
      if (!extendable) {
        consistent = false;
        return false;  // abort walk
      }
    }
    return true;
  });
  return consistent;
}

bool IsStronglyKConsistent(const CspInstance& csp, int k) {
  for (int i = 1; i <= k; ++i) {
    if (!IsIConsistent(csp, i)) return false;
  }
  return true;
}

bool IsIConsistentViaGames(const CspInstance& csp, int i) {
  HomInstance hom = ToHomomorphismInstance(csp);
  return HasIForthProperty(hom.a, hom.b, i);
}

bool IsStronglyKConsistentViaGames(const CspInstance& csp, int k) {
  HomInstance hom = ToHomomorphismInstance(csp);
  return PairIsStronglyKConsistent(hom.a, hom.b, k);
}

bool IsCoherent(const CspInstance& csp) {
  for (const Constraint& c : csp.constraints()) {
    for (const Tuple& t : c.allowed) {
      // Well-definedness on repeated scope variables.
      std::vector<int> partial(csp.num_variables(), kUnassigned);
      bool well_defined = true;
      for (int q = 0; q < c.arity(); ++q) {
        int v = c.scope[q];
        if (partial[v] != kUnassigned && partial[v] != t[q]) {
          well_defined = false;
          break;
        }
        partial[v] = t[q];
      }
      if (!well_defined || !csp.IsPartialSolution(partial)) return false;
    }
  }
  return true;
}

}  // namespace cspdb
