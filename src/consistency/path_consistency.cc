#include "consistency/path_consistency.h"

#include "util/check.h"

namespace cspdb {
namespace {

// Access helper over the flattened pair matrices with i <= j stored.
class PairMatrices {
 public:
  PairMatrices(int n, int d, std::vector<std::vector<char>>* pairs)
      : n_(n), d_(d), pairs_(pairs) {}

  char Get(int i, int a, int j, int b) const {
    if (i <= j) return (*pairs_)[i * n_ + j][a * d_ + b];
    return (*pairs_)[j * n_ + i][b * d_ + a];
  }

  // Returns true if the entry was set (previously allowed).
  bool Clear(int i, int a, int j, int b) {
    char& cell = i <= j ? (*pairs_)[i * n_ + j][a * d_ + b]
                        : (*pairs_)[j * n_ + i][b * d_ + a];
    if (!cell) return false;
    cell = 0;
    return true;
  }

 private:
  int n_;
  int d_;
  std::vector<std::vector<char>>* pairs_;
};

}  // namespace

PcResult EnforcePathConsistency(const CspInstance& csp) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  int n = normalized.num_variables();
  int d = normalized.num_values();
  PcResult result;
  result.pairs.assign(static_cast<std::size_t>(n) * n, {});
  if (n > 0 && d == 0) {
    result.consistent = false;
    return result;
  }

  // Initialize: diagonal = domain (a == b), off-diagonal = complete.
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      std::vector<char>& m = result.pairs[i * n + j];
      m.assign(static_cast<std::size_t>(d) * d, 0);
      for (int a = 0; a < d; ++a) {
        for (int b = 0; b < d; ++b) {
          m[a * d + b] = (i == j) ? (a == b ? 1 : 0) : 1;
        }
      }
    }
  }
  PairMatrices mats(n, d, &result.pairs);

  // Intersect the instance's constraints.
  for (const Constraint& c : normalized.constraints()) {
    CSPDB_CHECK_MSG(c.arity() <= 2,
                    "path consistency requires a binary instance");
    if (c.arity() == 1) {
      int i = c.scope[0];
      for (int a = 0; a < d; ++a) {
        if (c.allowed_set.count({a}) == 0) {
          if (mats.Clear(i, a, i, a)) ++result.prunings;
        }
      }
    } else {
      int i = c.scope[0], j = c.scope[1];
      for (int a = 0; a < d; ++a) {
        for (int b = 0; b < d; ++b) {
          if (c.allowed_set.count({a, b}) == 0) {
            if (mats.Clear(i, a, j, b)) ++result.prunings;
          }
        }
      }
    }
  }

  // PC-2 fixpoint: (a, b) on (i, j) needs a witness c at every third
  // variable m with (a, c) on (i, m) and (c, b) on (m, j). Diagonal
  // matrices participate, which folds arc consistency in.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      for (int j = i; j < n; ++j) {
        for (int m = 0; m < n; ++m) {
          if (m == i || m == j) continue;
          ++result.revisions;
          for (int a = 0; a < d; ++a) {
            for (int b = 0; b < d; ++b) {
              if (!mats.Get(i, a, j, b)) continue;
              bool witness = false;
              for (int c = 0; c < d; ++c) {
                if (mats.Get(i, a, m, c) && mats.Get(m, c, j, b)) {
                  witness = true;
                  break;
                }
              }
              if (!witness) {
                mats.Clear(i, a, j, b);
                ++result.prunings;
                changed = true;
              }
            }
          }
        }
      }
    }
  }

  // Wipeout check.
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      bool any = false;
      for (char cell : result.pairs[i * n + j]) {
        if (cell) {
          any = true;
          break;
        }
      }
      if (!any) {
        result.consistent = false;
        return result;
      }
    }
  }
  return result;
}

}  // namespace cspdb
