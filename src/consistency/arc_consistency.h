// Generalized arc consistency (AC-3 / GAC-3) as a standalone propagation
// pass over a CSP instance. Arc consistency is the workhorse special case
// of the consistency methods of Section 5 (2-consistency on binary
// instances) and the propagation engine behind Horn-SAT-style templates.
//
// The kernels run on word-packed state: domains are Bitset rows and every
// constraint carries per-(variable, value) masks over its tuple indices,
// so a support probe is a word-parallel AND across the mask of candidate
// tuples and the mask of tuples still valid under the current domains
// (the compact-table idea). A value pruning invalidates whole words of
// tuples at a time instead of re-scanning the relation row by row.
// Differential tests pin this implementation to the frozen byte-map
// reference in consistency/reference_gac.h.

#ifndef CSPDB_CONSISTENCY_ARC_CONSISTENCY_H_
#define CSPDB_CONSISTENCY_ARC_CONSISTENCY_H_

#include <cstdint>
#include <vector>

#include "csp/instance.h"
#include "util/bitset.h"

namespace cspdb {

/// Result of enforcing generalized arc consistency.
struct AcResult {
  /// False if some variable's domain was wiped out (the instance is
  /// certainly unsolvable).
  bool consistent = true;

  /// False if the run was cancelled before reaching the fixpoint (only the
  /// parallel engine can be cancelled; serial engines always report true).
  /// An incomplete result is still sound: `domains` over-approximates the
  /// fixpoint, so no solution has been pruned.
  bool complete = true;

  /// domains[v][d] is true iff value d survives for variable v.
  std::vector<Bitset> domains;

  /// Number of (constraint, variable) revisions performed. Implementation-
  /// specific effort counter (word-packed and byte-map engines schedule
  /// revisions differently); compare prunings/domains across engines, not
  /// this.
  int64_t revisions = 0;

  /// Number of (variable, value) pairs pruned.
  int64_t prunings = 0;

  /// Number of domain wipeouts observed: 0 or 1 for plain GAC (a wipeout
  /// ends the run), and additionally one per refuted probe for SAC (a
  /// probe wipeout is the signal that prunes the probed value).
  int64_t wipeouts = 0;
};

/// Runs GAC-3 to fixpoint: repeatedly removes values without a supporting
/// tuple in some constraint (supporting tuples must themselves lie within
/// the current domains). Sound: no solution is ever pruned.
AcResult EnforceGac(const CspInstance& csp);

/// Applies pruned domains back onto an instance: adds a unary constraint
/// per variable restricting it to the surviving values. Useful for
/// propagate-then-search pipelines.
CspInstance RestrictToDomains(const CspInstance& csp,
                              const std::vector<Bitset>& domains);

/// Singleton arc consistency (SAC): value d survives for variable v only
/// if the instance restricted to x_v = d is still GAC-consistent. At
/// least as strong as GAC, still polynomial, still sound (no solution is
/// ever pruned) — the next rung on Section 5's local-consistency ladder.
/// Probes run incrementally on the shared support masks: each probe
/// copies the packed domain/valid-tuple state instead of rebuilding a
/// restricted CspInstance from scratch.
AcResult EnforceSingletonArcConsistency(const CspInstance& csp);

}  // namespace cspdb

#endif  // CSPDB_CONSISTENCY_ARC_CONSISTENCY_H_
