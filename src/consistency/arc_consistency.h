// Generalized arc consistency (AC-3 / GAC-3) as a standalone propagation
// pass over a CSP instance. Arc consistency is the workhorse special case
// of the consistency methods of Section 5 (2-consistency on binary
// instances) and the propagation engine behind Horn-SAT-style templates.

#ifndef CSPDB_CONSISTENCY_ARC_CONSISTENCY_H_
#define CSPDB_CONSISTENCY_ARC_CONSISTENCY_H_

#include <cstdint>
#include <vector>

#include "csp/instance.h"

namespace cspdb {

/// Result of enforcing generalized arc consistency.
struct AcResult {
  /// False if some variable's domain was wiped out (the instance is
  /// certainly unsolvable).
  bool consistent = true;

  /// domains[v][d] is 1 iff value d survives for variable v.
  std::vector<std::vector<char>> domains;

  /// Number of (constraint, variable) revisions performed.
  int64_t revisions = 0;

  /// Number of (variable, value) pairs pruned.
  int64_t prunings = 0;
};

/// Runs GAC-3 to fixpoint: repeatedly removes values without a supporting
/// tuple in some constraint (supporting tuples must themselves lie within
/// the current domains). Sound: no solution is ever pruned.
AcResult EnforceGac(const CspInstance& csp);

/// Applies pruned domains back onto an instance: adds a unary constraint
/// per variable restricting it to the surviving values. Useful for
/// propagate-then-search pipelines.
CspInstance RestrictToDomains(const CspInstance& csp,
                              const std::vector<std::vector<char>>& domains);

/// Singleton arc consistency (SAC): value d survives for variable v only
/// if the instance restricted to x_v = d is still GAC-consistent. At
/// least as strong as GAC, still polynomial, still sound (no solution is
/// ever pruned) — the next rung on Section 5's local-consistency ladder.
AcResult EnforceSingletonArcConsistency(const CspInstance& csp);

}  // namespace cspdb

#endif  // CSPDB_CONSISTENCY_ARC_CONSISTENCY_H_
