// Local-consistency notions of Section 5: i-consistency and strong
// k-consistency (Definition 5.2), both directly on CSP instances and via
// the pebble-game reformulation (Proposition 5.3).

#ifndef CSPDB_CONSISTENCY_LOCAL_CONSISTENCY_H_
#define CSPDB_CONSISTENCY_LOCAL_CONSISTENCY_H_

#include "csp/instance.h"

namespace cspdb {

/// Definition 5.2, implemented literally: for every i-1 distinct
/// variables, every partial solution on them, and every further variable,
/// some extension is a partial solution. Exponential in i; intended for
/// small i and for validating the game-based route.
bool IsIConsistent(const CspInstance& csp, int i);

/// i-consistency for every i <= k (Definition 5.2).
bool IsStronglyKConsistent(const CspInstance& csp, int k);

/// Proposition 5.3: i-consistency decided through the homomorphism
/// instance and the i-forth property of the family of all partial
/// homomorphisms. Agrees with IsIConsistent (tested).
bool IsIConsistentViaGames(const CspInstance& csp, int i);

/// Proposition 5.3 for strong k-consistency: the family of all k-partial
/// homomorphisms is a winning strategy for the Duplicator.
bool IsStronglyKConsistentViaGames(const CspInstance& csp, int k);

/// Definition 5.5: the instance is coherent if for every constraint
/// (a, R) and tuple b in R, the correspondence a -> b is a well-defined
/// partial solution of the instance.
bool IsCoherent(const CspInstance& csp);

}  // namespace cspdb

#endif  // CSPDB_CONSISTENCY_LOCAL_CONSISTENCY_H_
