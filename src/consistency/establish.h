// Establishing strong k-consistency (paper, Definition 5.4 and
// Theorem 5.6): compute the set W^k(A, B) of winning configurations of the
// existential k-pebble game and reformat it into the largest coherent
// instance that establishes strong k-consistency.

#ifndef CSPDB_CONSISTENCY_ESTABLISH_H_
#define CSPDB_CONSISTENCY_ESTABLISH_H_

#include "csp/convert.h"
#include "csp/instance.h"
#include "relational/structure.h"

namespace cspdb {

/// Result of the Theorem 5.6 procedure.
struct EstablishResult {
  /// True iff W^k(A, B) is nonempty, i.e., strong k-consistency can be
  /// established (equivalently, the Duplicator wins the game).
  bool possible = false;

  /// The CSP instance P of Theorem 5.6 step 3: variables A, values B,
  /// and one constraint (a, R_a) for every tuple a in A^i, i <= k, where
  /// R_a = { b : (a, b) in W^k(A, B) }. Meaningful only when `possible`.
  CspInstance csp;
};

/// Runs the four-step procedure of Theorem 5.6 on structures A and B over
/// a k-ary vocabulary. The returned instance is the largest coherent
/// instance establishing strong k-consistency; its homomorphism instance
/// (A', B') is obtained with ToHomomorphismInstance.
///
/// To keep the output size manageable, constraints whose scope contains a
/// repeated element are omitted: they are determined by their
/// distinct-variable projections (the same solutions are admitted), which
/// NormalizedDistinctScopes would reproduce.
EstablishResult EstablishStrongKConsistency(const Structure& a,
                                            const Structure& b, int k);

/// Convenience form for CSP instances: converts to the homomorphism
/// instance first (Proposition 5.3).
EstablishResult EstablishStrongKConsistency(const CspInstance& csp, int k);

/// The k-consistency *decision* procedure: true iff establishing strong
/// k-consistency is possible (Duplicator wins). For every template B with
/// ¬CSP(B) expressible in k-Datalog this decides CSP(A, B) exactly
/// (Theorem 5.7); in general a `true` answer may be a false positive but
/// `false` always certifies unsolvability.
bool KConsistencyDecides(const Structure& a, const Structure& b, int k);

}  // namespace cspdb

#endif  // CSPDB_CONSISTENCY_ESTABLISH_H_
