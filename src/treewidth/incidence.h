// Incidence graphs and width comparisons (paper, Section 6's discussion
// of Chekuri-Ramajaran [14] and Gottlob-Leone-Scarcello [29, 30]): the
// incidence graph of a query/hypergraph is the bipartite graph between
// atoms and variables; its treewidth upper-bounds querywidth, which in
// turn upper-bounds hypertree width. This module builds incidence graphs
// so those relationships can be measured empirically (see the width
// tests and EXPERIMENTS.md).

#ifndef CSPDB_TREEWIDTH_INCIDENCE_H_
#define CSPDB_TREEWIDTH_INCIDENCE_H_

#include "csp/instance.h"
#include "db/acyclic.h"
#include "treewidth/gaifman.h"

namespace cspdb {

/// The incidence graph of a hypergraph: one node per vertex (ids
/// 0..n-1) and one node per hyperedge (ids n..n+m-1), adjacent iff the
/// vertex belongs to the hyperedge. `num_vertices_out`, if non-null,
/// receives n (the split point).
Graph IncidenceGraph(const Hypergraph& h, int* num_vertices_out = nullptr);

/// Incidence graph of a CSP instance's constraint hypergraph (scopes are
/// normalized to distinct variables first).
Graph IncidenceGraphOfCsp(const CspInstance& csp,
                          int* num_vertices_out = nullptr);

}  // namespace cspdb

#endif  // CSPDB_TREEWIDTH_INCIDENCE_H_
