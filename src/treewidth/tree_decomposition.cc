#include "treewidth/tree_decomposition.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace cspdb {
namespace {

// Union-find for forest/connectivity checks.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  // Returns false if x and y were already connected (a cycle).
  bool Union(int x, int y) {
    int rx = Find(x), ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<int> parent_;
};

bool BagContains(const std::vector<int>& bag, int v) {
  return std::binary_search(bag.begin(), bag.end(), v);
}

// Shared skeleton checks: tree-ness and per-vertex connectivity.
bool SkeletonValid(int num_vertices, const TreeDecomposition& td) {
  int nodes = static_cast<int>(td.bags.size());
  UnionFind uf(nodes);
  for (const auto& [x, y] : td.edges) {
    if (x < 0 || x >= nodes || y < 0 || y >= nodes || x == y) return false;
    if (!uf.Union(x, y)) return false;  // cycle
  }
  // Per-vertex subtree connectivity: the nodes containing v, with the
  // induced edges, must be connected.
  for (int v = 0; v < num_vertices; ++v) {
    std::vector<int> holders;
    for (int i = 0; i < nodes; ++i) {
      if (BagContains(td.bags[i], v)) holders.push_back(i);
    }
    if (holders.empty()) return false;  // vertex uncovered
    // BFS within holder nodes.
    std::vector<char> is_holder(nodes, 0);
    for (int h : holders) is_holder[h] = 1;
    std::vector<std::vector<int>> tree_adj(nodes);
    for (const auto& [x, y] : td.edges) {
      tree_adj[x].push_back(y);
      tree_adj[y].push_back(x);
    }
    std::vector<char> seen(nodes, 0);
    std::deque<int> queue{holders[0]};
    seen[holders[0]] = 1;
    int reached = 0;
    while (!queue.empty()) {
      int x = queue.front();
      queue.pop_front();
      ++reached;
      for (int y : tree_adj[x]) {
        if (is_holder[y] && !seen[y]) {
          seen[y] = 1;
          queue.push_back(y);
        }
      }
    }
    if (reached != static_cast<int>(holders.size())) return false;
  }
  return true;
}

bool BagsWellFormed(int num_vertices, const TreeDecomposition& td) {
  for (const auto& bag : td.bags) {
    if (bag.empty()) return false;
    if (!std::is_sorted(bag.begin(), bag.end())) return false;
    for (std::size_t i = 0; i < bag.size(); ++i) {
      if (bag[i] < 0 || bag[i] >= num_vertices) return false;
      if (i > 0 && bag[i] == bag[i - 1]) return false;
    }
  }
  return true;
}

}  // namespace

int TreeDecomposition::Width() const {
  int w = -1;
  for (const auto& bag : bags) {
    w = std::max(w, static_cast<int>(bag.size()) - 1);
  }
  return w;
}

bool IsValidDecomposition(const Graph& g, const TreeDecomposition& td) {
  if (td.bags.empty()) return g.n == 0;
  if (!BagsWellFormed(g.n, td)) return false;
  // Every graph edge inside some bag.
  for (int u = 0; u < g.n; ++u) {
    for (int v : g.adj[u]) {
      if (v < u) continue;
      bool covered = false;
      for (const auto& bag : td.bags) {
        if (BagContains(bag, u) && BagContains(bag, v)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
  }
  return SkeletonValid(g.n, td);
}

bool IsValidForStructure(const Structure& a, const TreeDecomposition& td) {
  if (td.bags.empty()) return a.domain_size() == 0;
  if (!BagsWellFormed(a.domain_size(), td)) return false;
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) {
      bool covered = false;
      for (const auto& bag : td.bags) {
        bool inside = true;
        for (int e : t) {
          if (!BagContains(bag, e)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
  }
  return SkeletonValid(a.domain_size(), td);
}

}  // namespace cspdb
