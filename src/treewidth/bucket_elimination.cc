#include "treewidth/bucket_elimination.h"

#include <algorithm>
#include <utility>

#include "analysis/validate_csp.h"
#include "db/algebra.h"
#include "db/relation.h"
#include "obs/obs.h"
#include "relational/homomorphism.h"
#include "treewidth/heuristics.h"
#include "util/check.h"

namespace cspdb {

std::optional<std::vector<int>> SolveByBucketElimination(
    const CspInstance& csp, const std::vector<int>& order,
    BucketStats* stats) {
  CSPDB_TIMER_SCOPE("treewidth.bucket_elimination");
  int n = csp.num_variables();
  CSPDB_CHECK(static_cast<int>(order.size()) == n);
  if (n > 0 && csp.num_values() == 0) return std::nullopt;

  std::vector<int> position(n, -1);
  for (int i = 0; i < n; ++i) {
    CSPDB_CHECK(order[i] >= 0 && order[i] < n);
    CSPDB_CHECK_MSG(position[order[i]] == -1, "ordering repeats a variable");
    position[order[i]] = i;
  }

  // Buckets indexed by elimination position; a relation lives in the
  // bucket of its latest-eliminated attribute.
  CspInstance normalized = csp.NormalizedDistinctScopes();
  std::vector<std::vector<DbRelation>> buckets(n);
  auto place = [&](DbRelation rel) {
    CSPDB_CHECK(!rel.schema().empty());
    int latest = rel.schema()[0];
    for (int a : rel.schema()) {
      if (position[a] > position[latest]) latest = a;
    }
    buckets[position[latest]].push_back(std::move(rel));
  };
  for (const Constraint& c : normalized.constraints()) {
    if (c.allowed.empty()) return std::nullopt;
    DbRelation rel(c.scope);
    for (const Tuple& t : c.allowed) rel.AddRow(t);
    place(std::move(rel));
  }

  BucketStats local_stats;
  local_stats.bucket_rows.assign(n, 0);
  if (stats != nullptr) {
    // Buckets are processed last-position-first, so the effective
    // elimination sequence is the reverse of `order`.
    std::vector<int> elimination(order.rbegin(), order.rend());
    local_stats.induced_width =
        InducedWidth(GaifmanGraphOfCsp(csp), elimination);
  }

  // Elimination pass: latest bucket first.
  for (int i = n - 1; i >= 0; --i) {
    if (buckets[i].empty()) continue;
    DbRelation joined = JoinAll(buckets[i]);
    local_stats.bucket_rows[i] = static_cast<int64_t>(joined.size());
    local_stats.max_table_rows = std::max(
        local_stats.max_table_rows, static_cast<int64_t>(joined.size()));
    local_stats.total_rows += static_cast<int64_t>(joined.size());
    CSPDB_COUNT("treewidth.buckets_joined");
    CSPDB_GAUGE_MAX("treewidth.max_table_rows",
                    static_cast<int64_t>(joined.size()));
    if (joined.empty()) {
      if (stats != nullptr) *stats = local_stats;
      return std::nullopt;
    }
    std::vector<int> keep;
    for (int a : joined.schema()) {
      if (a != order[i]) keep.push_back(a);
    }
    if (keep.empty()) continue;  // fully projected away; nonempty == OK
    DbRelation projected = Project(joined, keep);
    // Keep the joined relation in the bucket for solution extraction and
    // forward the projection to the next bucket.
    place(std::move(projected));
  }

  // Backtrack-free solution construction in elimination order.
  std::vector<int> solution(n, kUnassigned);
  for (int i = 0; i < n; ++i) {
    int var = order[i];
    bool assigned = false;
    for (int d = 0; d < csp.num_values() && !assigned; ++d) {
      bool ok = true;
      for (const DbRelation& rel : buckets[i]) {
        // All schema attributes other than var are already assigned.
        bool supported = false;
        for (auto row : rel.rows()) {
          bool match = true;
          for (std::size_t q = 0; q < rel.schema().size(); ++q) {
            int a = rel.schema()[q];
            int expect = a == var ? d : solution[a];
            if (row[q] != expect) {
              match = false;
              break;
            }
          }
          if (match) {
            supported = true;
            break;
          }
        }
        if (!supported) {
          ok = false;
          break;
        }
      }
      if (ok) {
        solution[var] = d;
        assigned = true;
      }
    }
    if (!assigned) {
      // Cannot happen after a successful elimination pass (adaptive
      // consistency makes the search backtrack-free), unless the variable
      // is unconstrained and the value set is empty — excluded above.
      if (stats != nullptr) *stats = local_stats;
      return std::nullopt;
    }
  }
  if (stats != nullptr) *stats = local_stats;
  CSPDB_CHECK(csp.IsSolution(solution));
  CSPDB_AUDIT(AuditOrDie("bucket-elimination solution",
                         ValidateSolution(csp, solution)));
  return solution;
}

std::optional<std::vector<int>> SolveWithTreewidthHeuristic(
    const CspInstance& csp, BucketStats* stats) {
  Graph primal = GaifmanGraphOfCsp(csp);
  // Min-fill lists the variable to eliminate *first* first; bucket
  // elimination eliminates the last position first, so reverse.
  std::vector<int> order = MinFillOrdering(primal);
  std::reverse(order.begin(), order.end());
  return SolveByBucketElimination(csp, order, stats);
}

}  // namespace cspdb
