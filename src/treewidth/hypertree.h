// Hypertree decompositions (paper, Section 6 discussion of Gottlob,
// Leone, Scarcello [30]): the "topological" width notion that strictly
// dominates treewidth and querywidth for tractability of CSP/join
// evaluation. A generalized hypertree decomposition of a hypergraph H is
// a tree whose nodes carry a bag chi(t) of vertices and a guard lambda(t)
// of hyperedges covering the bag; its width is the largest guard size.
// Width 1 coincides with alpha-acyclicity, and CSP instances with a
// width-k decomposition are solvable in polynomial time by joining each
// node's guards and running Yannakakis on the resulting acyclic instance.
//
// Exact hypertree width is expensive (recognizing width <= k is
// polynomial for fixed k but costly); this module provides the standard
// upper-bound construction — cover the bags of a tree decomposition by
// hyperedges, with an exact minimum set cover per bag — plus validity
// checkers and the width-1 = acyclicity correspondence.

#ifndef CSPDB_TREEWIDTH_HYPERTREE_H_
#define CSPDB_TREEWIDTH_HYPERTREE_H_

#include <optional>
#include <vector>

#include "csp/instance.h"
#include "db/acyclic.h"
#include "treewidth/tree_decomposition.h"

namespace cspdb {

/// A (generalized) hypertree decomposition: a rooted tree with one bag
/// chi and one guard lambda (hyperedge indices into the source
/// hypergraph) per node.
struct HypertreeDecomposition {
  std::vector<std::vector<int>> chi;     ///< sorted vertex bags
  std::vector<std::vector<int>> lambda;  ///< guard edge indices per node
  std::vector<std::pair<int, int>> edges;  ///< tree edges

  /// Max guard size; 0 for an empty decomposition.
  int Width() const;
};

/// Checks the generalized-hypertree-decomposition conditions against `h`:
/// (1) every hyperedge is contained in some bag; (2) per-vertex bags form
/// a connected subtree; (3) every bag is covered by the union of its
/// guard's hyperedges.
bool IsValidGeneralizedHypertree(const Hypergraph& h,
                                 const HypertreeDecomposition& htd);

/// A tree decomposition whose bags are the hyperedges of an acyclic
/// hypergraph, connected along its join forest. Valid for the primal
/// graph; every bag is one hyperedge, so covering it yields width 1.
TreeDecomposition JoinForestToTreeDecomposition(const Hypergraph& h,
                                                const JoinForest& forest);

/// The exact minimum number of hyperedges of `h` needed to cover
/// `vertices` (DFS over candidate edges; exponential in the cover size,
/// fine for small bags). Returns std::nullopt if some vertex occurs in no
/// hyperedge.
std::optional<std::vector<int>> MinimumEdgeCover(
    const Hypergraph& h, const std::vector<int>& vertices);

/// Upper-bound construction: takes a tree decomposition of the primal
/// graph (or, for acyclic h, its join forest) and covers each bag with a
/// minimum edge cover. Returns std::nullopt if some bag is uncoverable
/// (a vertex in no hyperedge).
std::optional<HypertreeDecomposition> HypertreeFromTreeDecomposition(
    const Hypergraph& h, const TreeDecomposition& td);

/// The width of the best decomposition this module can construct:
/// width 1 via the join forest when `h` is alpha-acyclic, otherwise the
/// cover of a min-fill tree decomposition. An upper bound on the true
/// (generalized) hypertree width.
std::optional<int> HypertreeWidthUpperBound(const Hypergraph& h);

/// Solves a CSP instance along a hypertree decomposition of its
/// constraint hypergraph: joins each node's guard constraints, projects
/// onto the bag, and evaluates the resulting acyclic join with the
/// Yannakakis full reducer — the Gottlob-Leone-Scarcello polynomial
/// algorithm for bounded hypertree width. The decomposition must be valid
/// for the instance's (normalized) constraint hypergraph.
std::optional<std::vector<int>> SolveByHypertreeDecomposition(
    const CspInstance& csp, const HypertreeDecomposition& htd);

/// Convenience: normalize the instance, build the decomposition with
/// HypertreeFromTreeDecomposition (join forest if acyclic, min-fill
/// otherwise), and solve. `width_out`, if non-null, receives the
/// decomposition width used.
std::optional<std::vector<int>> SolveWithHypertreeHeuristic(
    const CspInstance& csp, int* width_out = nullptr);

}  // namespace cspdb

#endif  // CSPDB_TREEWIDTH_HYPERTREE_H_
