// Bucket elimination (adaptive consistency): the polynomial-time decision
// and solution procedure for CSP instances of bounded treewidth
// (Theorem 6.2). Constraints are processed along an elimination ordering;
// each bucket joins its relations and projects out its variable, exactly
// the bounded-variable evaluation of phi_A that Proposition 6.1 provides.
// The search for a solution afterwards is backtrack-free.

#ifndef CSPDB_TREEWIDTH_BUCKET_ELIMINATION_H_
#define CSPDB_TREEWIDTH_BUCKET_ELIMINATION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "csp/instance.h"

namespace cspdb {

/// Counters reported by bucket elimination.
struct BucketStats {
  int64_t max_table_rows = 0;   ///< largest intermediate relation
  int64_t total_rows = 0;       ///< sum of intermediate relation sizes
  int induced_width = -1;       ///< width induced by the ordering used

  /// Joined-table rows per elimination position (index i = the bucket of
  /// order[i]; 0 for empty buckets). Feeds obs/explain.h's per-bucket
  /// rendering of the d^(w+1) table-growth claim.
  std::vector<int64_t> bucket_rows;
};

/// Solves the instance along the given ordering (a permutation of the
/// variables): buckets are processed from the *last* position backwards,
/// so the effective elimination sequence is reverse(order) and the
/// relevant induced width is that of the reversed sequence. Correct for
/// any ordering; time and space are O(n * d^(w+1)) for its width w.
/// Returns a solution or std::nullopt if unsolvable.
std::optional<std::vector<int>> SolveByBucketElimination(
    const CspInstance& csp, const std::vector<int>& order,
    BucketStats* stats = nullptr);

/// Convenience: min-fill ordering on the primal graph, then bucket
/// elimination. For instances of treewidth k this realizes the
/// Theorem 6.2 polynomial algorithm (up to the heuristic's width).
std::optional<std::vector<int>> SolveWithTreewidthHeuristic(
    const CspInstance& csp, BucketStats* stats = nullptr);

}  // namespace cspdb

#endif  // CSPDB_TREEWIDTH_BUCKET_ELIMINATION_H_
