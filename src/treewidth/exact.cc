#include "treewidth/exact.h"

#include <algorithm>
#include <cstdint>
#include <deque>

#include "util/check.h"

namespace cspdb {
namespace {

// q(S, v): number of vertices outside S + {v} reachable from v along
// paths whose internal vertices lie in S. This is the degree v would have
// when eliminated after exactly the vertices of S.
int EliminationDegree(const Graph& g, uint32_t s, int v) {
  std::vector<char> seen(g.n, 0);
  std::deque<int> queue{v};
  seen[v] = 1;
  int degree = 0;
  while (!queue.empty()) {
    int x = queue.front();
    queue.pop_front();
    for (int y : g.adj[x]) {
      if (seen[y]) continue;
      seen[y] = 1;
      if (s & (1u << y)) {
        queue.push_back(y);  // internal vertex, keep walking
      } else if (y != v) {
        ++degree;  // neighbor in the fill graph
      }
    }
  }
  return degree;
}

void ComputeDp(const Graph& g, std::vector<int8_t>* f,
               std::vector<int8_t>* choice) {
  CSPDB_CHECK_MSG(g.n <= 24, "exact treewidth DP limited to 24 vertices");
  uint32_t full = g.n == 0 ? 0 : (1u << g.n) - 1;
  f->assign(static_cast<std::size_t>(full) + 1, 0);
  if (choice != nullptr) {
    choice->assign(static_cast<std::size_t>(full) + 1, -1);
  }
  (*f)[0] = -1;
  for (uint32_t s = 1; s <= full; ++s) {
    int best = 127;
    int best_v = -1;
    for (int v = 0; v < g.n; ++v) {
      if (!(s & (1u << v))) continue;
      uint32_t rest = s & ~(1u << v);
      int width = std::max(static_cast<int>((*f)[rest]),
                           EliminationDegree(g, rest, v));
      if (width < best) {
        best = width;
        best_v = v;
      }
    }
    (*f)[s] = static_cast<int8_t>(best);
    if (choice != nullptr) (*choice)[s] = static_cast<int8_t>(best_v);
    if (s == full) break;
  }
}

}  // namespace

int ExactTreewidth(const Graph& g) {
  if (g.n == 0) return -1;
  std::vector<int8_t> f;
  ComputeDp(g, &f, nullptr);
  return f[(1u << g.n) - 1];
}

int TreewidthLowerBound(const Graph& g) {
  if (g.n == 0) return -1;
  // Repeatedly delete a minimum-degree vertex (no fill edges); the
  // largest minimum degree seen is the degeneracy, a treewidth lower
  // bound.
  std::vector<int> degree(g.n);
  std::vector<char> removed(g.n, 0);
  for (int v = 0; v < g.n; ++v) {
    degree[v] = static_cast<int>(g.adj[v].size());
  }
  int bound = 0;
  for (int step = 0; step < g.n; ++step) {
    int best = -1;
    for (int v = 0; v < g.n; ++v) {
      if (!removed[v] && (best < 0 || degree[v] < degree[best])) best = v;
    }
    bound = std::max(bound, degree[best]);
    removed[best] = 1;
    for (int u : g.adj[best]) {
      if (!removed[u]) --degree[u];
    }
  }
  return bound;
}

std::vector<int> OptimalEliminationOrdering(const Graph& g) {
  std::vector<int> order;
  if (g.n == 0) return order;
  std::vector<int8_t> f;
  std::vector<int8_t> choice;
  ComputeDp(g, &f, &choice);
  uint32_t s = (1u << g.n) - 1;
  while (s != 0) {
    int v = choice[s];
    CSPDB_CHECK(v >= 0);
    order.push_back(v);
    s &= ~(1u << v);
  }
  // The DP picks the vertex eliminated *last* in the prefix S; reverse to
  // get elimination order.
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace cspdb
