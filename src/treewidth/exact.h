// Exact treewidth by dynamic programming over vertex subsets
// (O(2^n * n^2)); practical for n up to ~20. Used by the tests to
// validate the heuristics and to generate structures of known treewidth.

#ifndef CSPDB_TREEWIDTH_EXACT_H_
#define CSPDB_TREEWIDTH_EXACT_H_

#include <vector>

#include "treewidth/gaifman.h"

namespace cspdb {

/// The exact treewidth of g (0 for edgeless graphs, -1 for the empty
/// graph). Requires g.n <= 24.
int ExactTreewidth(const Graph& g);

/// An optimal elimination ordering realizing ExactTreewidth(g).
std::vector<int> OptimalEliminationOrdering(const Graph& g);

/// A fast lower bound on treewidth: the graph's degeneracy (maximum over
/// the min-degree elimination process of the minimum degree; the MMD
/// bound). Works on any graph size. -1 for the empty graph.
int TreewidthLowerBound(const Graph& g);

}  // namespace cspdb

#endif  // CSPDB_TREEWIDTH_EXACT_H_
