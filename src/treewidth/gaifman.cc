#include "treewidth/gaifman.h"

#include <algorithm>

#include "util/check.h"

namespace cspdb {

void Graph::AddEdge(int u, int v) {
  CSPDB_CHECK(u >= 0 && u < n && v >= 0 && v < n);
  if (u == v) return;
  auto it = std::lower_bound(adj[u].begin(), adj[u].end(), v);
  if (it != adj[u].end() && *it == v) return;
  adj[u].insert(it, v);
  adj[v].insert(std::lower_bound(adj[v].begin(), adj[v].end(), u), u);
}

bool Graph::HasEdge(int u, int v) const {
  CSPDB_CHECK(u >= 0 && u < n && v >= 0 && v < n);
  return std::binary_search(adj[u].begin(), adj[u].end(), v);
}

int Graph::NumEdges() const {
  int total = 0;
  for (const auto& neighbors : adj) total += static_cast<int>(neighbors.size());
  return total / 2;
}

Graph GaifmanGraph(const Structure& a) {
  Graph g(a.domain_size());
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) {
      for (std::size_t i = 0; i < t.size(); ++i) {
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          g.AddEdge(t[i], t[j]);
        }
      }
    }
  }
  return g;
}

Graph GaifmanGraphOfCsp(const CspInstance& csp) {
  Graph g(csp.num_variables());
  for (const Constraint& c : csp.constraints()) {
    for (int i = 0; i < c.arity(); ++i) {
      for (int j = i + 1; j < c.arity(); ++j) {
        g.AddEdge(c.scope[i], c.scope[j]);
      }
    }
  }
  return g;
}

}  // namespace cspdb
