#include "treewidth/hypertree.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_set>
#include <utility>

#include "analysis/validate_csp.h"
#include "analysis/validate_decomposition.h"
#include "db/algebra.h"
#include "relational/homomorphism.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Union-find for tree-ness checks.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  bool Union(int x, int y) {
    int rx = Find(x), ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<int> parent_;
};

bool Contains(const std::vector<int>& sorted, int v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

// BFS order over the decomposition's tree (forest), parents before
// children. Returns (order, parent-per-node).
std::pair<std::vector<int>, std::vector<int>> BfsOrder(
    int nodes, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<int>> adj(nodes);
  for (const auto& [x, y] : edges) {
    adj[x].push_back(y);
    adj[y].push_back(x);
  }
  std::vector<int> order;
  std::vector<int> parent(nodes, -1);
  std::vector<char> seen(nodes, 0);
  for (int root = 0; root < nodes; ++root) {
    if (seen[root]) continue;
    seen[root] = 1;
    std::deque<int> queue{root};
    while (!queue.empty()) {
      int t = queue.front();
      queue.pop_front();
      order.push_back(t);
      for (int u : adj[t]) {
        if (!seen[u]) {
          seen[u] = 1;
          parent[u] = t;
          queue.push_back(u);
        }
      }
    }
  }
  return {order, parent};
}

}  // namespace

int HypertreeDecomposition::Width() const {
  int w = 0;
  for (const auto& guard : lambda) {
    w = std::max(w, static_cast<int>(guard.size()));
  }
  return w;
}

bool IsValidGeneralizedHypertree(const Hypergraph& h,
                                 const HypertreeDecomposition& htd) {
  int nodes = static_cast<int>(htd.chi.size());
  if (htd.lambda.size() != htd.chi.size()) return false;

  // Tree-ness.
  UnionFind uf(nodes);
  for (const auto& [x, y] : htd.edges) {
    if (x < 0 || x >= nodes || y < 0 || y >= nodes || x == y) return false;
    if (!uf.Union(x, y)) return false;
  }

  // Bags sorted; guards reference real edges; coverage chi <= union of
  // guard edges.
  for (int t = 0; t < nodes; ++t) {
    if (!std::is_sorted(htd.chi[t].begin(), htd.chi[t].end())) return false;
    std::unordered_set<int> covered;
    for (int e : htd.lambda[t]) {
      if (e < 0 || e >= static_cast<int>(h.edges.size())) return false;
      covered.insert(h.edges[e].begin(), h.edges[e].end());
    }
    for (int v : htd.chi[t]) {
      if (covered.count(v) == 0) return false;
    }
  }

  // Every hyperedge inside some bag.
  for (const auto& edge : h.edges) {
    bool found = false;
    for (int t = 0; t < nodes && !found; ++t) {
      bool inside = true;
      for (int v : edge) {
        if (!Contains(htd.chi[t], v)) {
          inside = false;
          break;
        }
      }
      found = inside;
    }
    if (!found) return false;
  }

  // Per-vertex connectivity over the nodes whose bag holds the vertex.
  std::unordered_set<int> vertices;
  for (const auto& edge : h.edges) {
    vertices.insert(edge.begin(), edge.end());
  }
  std::vector<std::vector<int>> adj(nodes);
  for (const auto& [x, y] : htd.edges) {
    adj[x].push_back(y);
    adj[y].push_back(x);
  }
  for (int v : vertices) {
    std::vector<int> holders;
    for (int t = 0; t < nodes; ++t) {
      if (Contains(htd.chi[t], v)) holders.push_back(t);
    }
    if (holders.empty()) return false;
    std::vector<char> seen(nodes, 0);
    std::deque<int> queue{holders[0]};
    seen[holders[0]] = 1;
    int reached = 0;
    while (!queue.empty()) {
      int t = queue.front();
      queue.pop_front();
      ++reached;
      for (int u : adj[t]) {
        if (!seen[u] && Contains(htd.chi[u], v)) {
          seen[u] = 1;
          queue.push_back(u);
        }
      }
    }
    if (reached != static_cast<int>(holders.size())) return false;
  }
  return true;
}

TreeDecomposition JoinForestToTreeDecomposition(const Hypergraph& h,
                                                const JoinForest& forest) {
  TreeDecomposition td;
  td.bags.resize(h.edges.size());
  for (std::size_t i = 0; i < h.edges.size(); ++i) {
    td.bags[i] = h.edges[i];
    std::sort(td.bags[i].begin(), td.bags[i].end());
  }
  for (std::size_t e = 0; e < forest.parent.size(); ++e) {
    if (forest.parent[e] >= 0) {
      td.edges.push_back({static_cast<int>(e), forest.parent[e]});
    }
  }
  return td;
}

std::optional<std::vector<int>> MinimumEdgeCover(
    const Hypergraph& h, const std::vector<int>& vertices) {
  std::vector<int> todo = vertices;
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
  if (todo.empty()) return std::vector<int>{};

  // Candidate edges per vertex.
  for (int v : todo) {
    bool occurs = false;
    for (const auto& edge : h.edges) {
      if (std::find(edge.begin(), edge.end(), v) != edge.end()) {
        occurs = true;
        break;
      }
    }
    if (!occurs) return std::nullopt;
  }

  // Iterative deepening over cover size; branch on the first uncovered
  // vertex.
  std::vector<int> chosen;
  std::vector<int> best;
  // Depth-limited DFS returns true on success.
  std::function<bool(std::vector<char>&, int)> dfs =
      [&](std::vector<char>& covered, int budget) -> bool {
    int first_uncovered = -1;
    for (std::size_t i = 0; i < todo.size(); ++i) {
      if (!covered[i]) {
        first_uncovered = static_cast<int>(i);
        break;
      }
    }
    if (first_uncovered < 0) return true;
    if (budget == 0) return false;
    int v = todo[first_uncovered];
    for (std::size_t e = 0; e < h.edges.size(); ++e) {
      if (std::find(h.edges[e].begin(), h.edges[e].end(), v) ==
          h.edges[e].end()) {
        continue;
      }
      std::vector<char> next = covered;
      for (std::size_t i = 0; i < todo.size(); ++i) {
        if (!next[i] &&
            std::find(h.edges[e].begin(), h.edges[e].end(), todo[i]) !=
                h.edges[e].end()) {
          next[i] = 1;
        }
      }
      chosen.push_back(static_cast<int>(e));
      if (dfs(next, budget - 1)) return true;
      chosen.pop_back();
    }
    return false;
  };

  for (int budget = 1; budget <= static_cast<int>(h.edges.size());
       ++budget) {
    std::vector<char> covered(todo.size(), 0);
    chosen.clear();
    if (dfs(covered, budget)) return chosen;
  }
  return std::nullopt;  // unreachable: every vertex occurs somewhere
}

std::optional<HypertreeDecomposition> HypertreeFromTreeDecomposition(
    const Hypergraph& h, const TreeDecomposition& td) {
  // Vertices that occur in some hyperedge; others are dropped from bags
  // (they are unconstrained and cannot be covered).
  std::unordered_set<int> constrained;
  for (const auto& edge : h.edges) {
    constrained.insert(edge.begin(), edge.end());
  }
  HypertreeDecomposition htd;
  htd.edges = td.edges;
  htd.chi.reserve(td.bags.size());
  htd.lambda.reserve(td.bags.size());
  for (const auto& bag : td.bags) {
    std::vector<int> chi;
    for (int v : bag) {
      if (constrained.count(v) > 0) chi.push_back(v);
    }
    auto cover = MinimumEdgeCover(h, chi);
    if (!cover.has_value()) return std::nullopt;
    htd.chi.push_back(std::move(chi));
    htd.lambda.push_back(std::move(*cover));
  }
  CSPDB_AUDIT(AuditOrDie("hypertree decomposition from tree decomposition",
                         ValidateHypertreeDecomposition(h, htd)));
  return htd;
}

std::optional<int> HypertreeWidthUpperBound(const Hypergraph& h) {
  if (h.edges.empty()) return 0;
  std::optional<HypertreeDecomposition> htd;
  auto forest = BuildJoinForest(h);
  if (forest.has_value()) {
    htd = HypertreeFromTreeDecomposition(
        h, JoinForestToTreeDecomposition(h, *forest));
  } else {
    // Min-fill tree decomposition of the primal graph.
    int n = 0;
    for (const auto& edge : h.edges) {
      for (int v : edge) n = std::max(n, v + 1);
    }
    Graph primal(n);
    for (const auto& edge : h.edges) {
      for (std::size_t i = 0; i < edge.size(); ++i) {
        for (std::size_t j = i + 1; j < edge.size(); ++j) {
          primal.AddEdge(edge[i], edge[j]);
        }
      }
    }
    htd = HypertreeFromTreeDecomposition(h, MinFillDecomposition(primal));
  }
  if (!htd.has_value()) return std::nullopt;
  return htd->Width();
}

std::optional<std::vector<int>> SolveByHypertreeDecomposition(
    const CspInstance& csp, const HypertreeDecomposition& htd) {
  if (csp.num_variables() > 0 && csp.num_values() == 0) return std::nullopt;
  CspInstance normalized = csp.NormalizedDistinctScopes();
  std::vector<DbRelation> relations = ConstraintsAsRelations(normalized);
  Hypergraph h = HypergraphOfSchemas(relations);
  CSPDB_CHECK_MSG(IsValidGeneralizedHypertree(h, htd),
                  "decomposition invalid for this instance");

  int nodes = static_cast<int>(htd.chi.size());
  // Assign every constraint to one covering node.
  std::vector<std::vector<int>> assigned(nodes);
  for (std::size_t c = 0; c < relations.size(); ++c) {
    int home = -1;
    for (int t = 0; t < nodes && home < 0; ++t) {
      bool inside = true;
      for (int v : h.edges[c]) {
        if (!std::binary_search(htd.chi[t].begin(), htd.chi[t].end(), v)) {
          inside = false;
          break;
        }
      }
      if (inside) home = t;
    }
    CSPDB_CHECK(home >= 0);  // guaranteed by validity
    assigned[home].push_back(static_cast<int>(c));
  }

  // Node relations: join of guards and assigned constraints, projected
  // onto the bag.
  std::vector<DbRelation> node_rel;
  node_rel.reserve(nodes);
  for (int t = 0; t < nodes; ++t) {
    if (htd.chi[t].empty()) {
      node_rel.push_back(DbRelation({}));
      node_rel.back().AddRow(Tuple{});  // universally true
      continue;
    }
    std::vector<DbRelation> parts;
    for (int e : htd.lambda[t]) parts.push_back(relations[e]);
    for (int c : assigned[t]) parts.push_back(relations[c]);
    DbRelation joined = JoinAll(parts);
    node_rel.push_back(Project(joined, htd.chi[t]));
    if (node_rel.back().empty()) return std::nullopt;
  }

  // Full reducer along the decomposition tree, then backtrack-free
  // extraction parents-first.
  auto [order, parent] = BfsOrder(nodes, htd.edges);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int t = *it;
    if (parent[t] >= 0) {
      node_rel[parent[t]] = Semijoin(node_rel[parent[t]], node_rel[t]);
      if (node_rel[parent[t]].empty()) return std::nullopt;
    }
  }
  for (int t : order) {
    if (parent[t] >= 0) {
      node_rel[t] = Semijoin(node_rel[t], node_rel[parent[t]]);
      if (node_rel[t].empty()) return std::nullopt;
    }
  }

  std::vector<int> solution(csp.num_variables(), kUnassigned);
  for (int t : order) {
    const DbRelation& rel = node_rel[t];
    // Find a row agreeing with everything already assigned in this bag.
    bool found = false;
    for (auto row : rel.rows()) {
      bool ok = true;
      for (std::size_t q = 0; q < rel.schema().size(); ++q) {
        int var = rel.schema()[q];
        if (solution[var] != kUnassigned && solution[var] != row[q]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (std::size_t q = 0; q < rel.schema().size(); ++q) {
          solution[rel.schema()[q]] = row[q];
        }
        found = true;
        break;
      }
    }
    if (!found && !rel.schema().empty()) return std::nullopt;
  }
  for (int v = 0; v < csp.num_variables(); ++v) {
    if (solution[v] == kUnassigned) solution[v] = 0;
  }
  CSPDB_CHECK(csp.IsSolution(solution));
  CSPDB_AUDIT(AuditOrDie("hypertree-decomposition solution",
                         ValidateSolution(csp, solution)));
  return solution;
}

std::optional<std::vector<int>> SolveWithHypertreeHeuristic(
    const CspInstance& csp, int* width_out) {
  if (csp.num_variables() > 0 && csp.num_values() == 0) return std::nullopt;
  CspInstance normalized = csp.NormalizedDistinctScopes();
  for (const Constraint& c : normalized.constraints()) {
    if (c.allowed.empty()) return std::nullopt;
  }
  if (normalized.constraints().empty()) {
    if (width_out != nullptr) *width_out = 0;
    return std::vector<int>(csp.num_variables(), 0);
  }
  std::vector<DbRelation> relations = ConstraintsAsRelations(normalized);
  Hypergraph h = HypergraphOfSchemas(relations);
  std::optional<HypertreeDecomposition> htd;
  auto forest = BuildJoinForest(h);
  if (forest.has_value()) {
    htd = HypertreeFromTreeDecomposition(
        h, JoinForestToTreeDecomposition(h, *forest));
  } else {
    htd = HypertreeFromTreeDecomposition(
        h, MinFillDecomposition(GaifmanGraphOfCsp(normalized)));
  }
  CSPDB_CHECK(htd.has_value());  // every scope variable occurs in an edge
  if (width_out != nullptr) *width_out = htd->Width();
  return SolveByHypertreeDecomposition(csp, *htd);
}

}  // namespace cspdb
