#include "treewidth/incidence.h"

#include <algorithm>

#include "db/algebra.h"
#include "util/check.h"

namespace cspdb {
namespace {

Graph BuildIncidence(const Hypergraph& h, int num_vertices) {
  Graph g(num_vertices + static_cast<int>(h.edges.size()));
  for (std::size_t e = 0; e < h.edges.size(); ++e) {
    for (int v : h.edges[e]) {
      CSPDB_CHECK(v < num_vertices);
      g.AddEdge(v, num_vertices + static_cast<int>(e));
    }
  }
  return g;
}

}  // namespace

Graph IncidenceGraph(const Hypergraph& h, int* num_vertices_out) {
  int n = 0;
  for (const auto& edge : h.edges) {
    for (int v : edge) n = std::max(n, v + 1);
  }
  if (num_vertices_out != nullptr) *num_vertices_out = n;
  return BuildIncidence(h, n);
}

Graph IncidenceGraphOfCsp(const CspInstance& csp, int* num_vertices_out) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  Hypergraph h = HypergraphOfSchemas(ConstraintsAsRelations(normalized));
  int n = csp.num_variables();
  if (num_vertices_out != nullptr) *num_vertices_out = n;
  return BuildIncidence(h, n);
}

}  // namespace cspdb
