// Solution counting by weighted variable elimination (sum-product): the
// counting analogue of Theorem 6.2's bucket elimination. Along an
// elimination ordering of induced width w, the number of solutions of a
// CSP instance is computed in O(n * d^(w+1)) — joins become
// multiplications, projections become sums.

#ifndef CSPDB_TREEWIDTH_COUNTING_H_
#define CSPDB_TREEWIDTH_COUNTING_H_

#include <cstdint>
#include <vector>

#include "csp/instance.h"

namespace cspdb {

/// Counts the solutions of `csp` by eliminating variables bucket-wise
/// from the last position of `order` backwards (same convention as
/// SolveByBucketElimination: the effective elimination sequence is
/// reverse(order)). Exact; overflow is the caller's concern (counts fit
/// int64 for the intended instance sizes).
int64_t CountSolutionsByElimination(const CspInstance& csp,
                                    const std::vector<int>& order);

/// Convenience: min-fill ordering on the primal graph.
int64_t CountSolutionsWithTreewidthHeuristic(const CspInstance& csp);

}  // namespace cspdb

#endif  // CSPDB_TREEWIDTH_COUNTING_H_
