// Gaifman (primal) graphs of relational structures and CSP instances:
// vertices are elements/variables, with an edge whenever two of them
// co-occur in a tuple/constraint. Treewidth of a structure (paper,
// Section 6) is the treewidth of this graph.

#ifndef CSPDB_TREEWIDTH_GAIFMAN_H_
#define CSPDB_TREEWIDTH_GAIFMAN_H_

#include <vector>

#include "csp/instance.h"
#include "relational/structure.h"

namespace cspdb {

/// A simple undirected graph on vertices 0..n-1 (no loops, no parallel
/// edges; adjacency lists are kept sorted).
struct Graph {
  int n = 0;
  std::vector<std::vector<int>> adj;

  explicit Graph(int num_vertices = 0) : n(num_vertices), adj(num_vertices) {}

  /// Adds the undirected edge {u, v}; loops and duplicates are ignored.
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  int NumEdges() const;
};

/// The Gaifman graph of a structure: elements u, v adjacent iff they
/// co-occur in some tuple.
Graph GaifmanGraph(const Structure& a);

/// The primal (constraint) graph of a CSP instance: variables adjacent
/// iff they share a constraint scope.
Graph GaifmanGraphOfCsp(const CspInstance& csp);

}  // namespace cspdb

#endif  // CSPDB_TREEWIDTH_GAIFMAN_H_
