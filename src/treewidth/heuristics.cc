#include "treewidth/heuristics.h"

#include <algorithm>
#include <set>
#include <utility>

#include "analysis/validate_decomposition.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Mutable adjacency as sets, supporting elimination.
class FillGraph {
 public:
  explicit FillGraph(const Graph& g) : adj_(g.n) {
    for (int u = 0; u < g.n; ++u) {
      adj_[u] = std::set<int>(g.adj[u].begin(), g.adj[u].end());
    }
    eliminated_.assign(g.n, 0);
  }

  int Degree(int v) const { return static_cast<int>(adj_[v].size()); }

  int FillCount(int v) const {
    int fill = 0;
    for (auto it = adj_[v].begin(); it != adj_[v].end(); ++it) {
      auto jt = it;
      for (++jt; jt != adj_[v].end(); ++jt) {
        if (adj_[*it].count(*jt) == 0) ++fill;
      }
    }
    return fill;
  }

  // Eliminates v: connects its neighborhood into a clique, removes v.
  // Returns the neighborhood at elimination time.
  std::vector<int> Eliminate(int v) {
    std::vector<int> neighbors(adj_[v].begin(), adj_[v].end());
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        adj_[neighbors[i]].insert(neighbors[j]);
        adj_[neighbors[j]].insert(neighbors[i]);
      }
    }
    for (int u : neighbors) adj_[u].erase(v);
    adj_[v].clear();
    eliminated_[v] = 1;
    return neighbors;
  }

  bool Eliminated(int v) const { return eliminated_[v] != 0; }

 private:
  std::vector<std::set<int>> adj_;
  std::vector<char> eliminated_;
};

template <typename Score>
std::vector<int> GreedyOrdering(const Graph& g, Score&& score) {
  FillGraph fg(g);
  std::vector<int> order;
  order.reserve(g.n);
  for (int step = 0; step < g.n; ++step) {
    int best = -1;
    long best_score = 0;
    for (int v = 0; v < g.n; ++v) {
      if (fg.Eliminated(v)) continue;
      long s = score(fg, v);
      if (best == -1 || s < best_score) {
        best = v;
        best_score = s;
      }
    }
    fg.Eliminate(best);
    order.push_back(best);
  }
  return order;
}

}  // namespace

std::vector<int> MinDegreeOrdering(const Graph& g) {
  return GreedyOrdering(
      g, [](const FillGraph& fg, int v) { return fg.Degree(v); });
}

std::vector<int> MinFillOrdering(const Graph& g) {
  return GreedyOrdering(g, [](const FillGraph& fg, int v) {
    return static_cast<long>(fg.FillCount(v)) * 10000 + fg.Degree(v);
  });
}

TreeDecomposition DecompositionFromOrdering(const Graph& g,
                                            const std::vector<int>& order) {
  CSPDB_CHECK(static_cast<int>(order.size()) == g.n);
  std::vector<int> position(g.n, -1);
  for (int i = 0; i < g.n; ++i) {
    CSPDB_CHECK(order[i] >= 0 && order[i] < g.n);
    CSPDB_CHECK_MSG(position[order[i]] == -1, "ordering repeats a vertex");
    position[order[i]] = i;
  }

  FillGraph fg(g);
  TreeDecomposition td;
  td.bags.resize(g.n);
  std::vector<int> bag_of(g.n);  // vertex -> its bag node
  for (int i = 0; i < g.n; ++i) {
    int v = order[i];
    std::vector<int> neighbors = fg.Eliminate(v);
    std::vector<int> bag = neighbors;
    bag.push_back(v);
    std::sort(bag.begin(), bag.end());
    td.bags[i] = std::move(bag);
    bag_of[v] = i;
    if (!neighbors.empty()) {
      // Parent: the neighbor eliminated next (smallest position).
      int parent_vertex = neighbors[0];
      for (int u : neighbors) {
        if (position[u] < position[parent_vertex]) parent_vertex = u;
      }
      // Its bag exists later in the loop; record the edge lazily by
      // vertex, resolved after all bags exist.
      td.edges.push_back({i, position[parent_vertex]});
    }
  }
  CSPDB_AUDIT(AuditOrDie("elimination-ordering tree decomposition",
                         ValidateTreeDecomposition(g, td)));
  return td;
}

int InducedWidth(const Graph& g, const std::vector<int>& order) {
  CSPDB_CHECK(static_cast<int>(order.size()) == g.n);
  FillGraph fg(g);
  int width = -1;
  for (int v : order) {
    width = std::max(width, static_cast<int>(fg.Eliminate(v).size()));
  }
  return width;
}

TreeDecomposition MinFillDecomposition(const Graph& g) {
  return DecompositionFromOrdering(g, MinFillOrdering(g));
}

}  // namespace cspdb
