// Tree decompositions of graphs and relational structures (paper,
// Section 6): labeled trees whose bags cover every tuple and whose
// per-vertex occurrences form subtrees.

#ifndef CSPDB_TREEWIDTH_TREE_DECOMPOSITION_H_
#define CSPDB_TREEWIDTH_TREE_DECOMPOSITION_H_

#include <utility>
#include <vector>

#include "relational/structure.h"
#include "treewidth/gaifman.h"

namespace cspdb {

/// A tree decomposition: node i carries the (sorted) bag `bags[i]`;
/// `edges` are the tree edges. A decomposition with zero nodes is valid
/// only for the empty graph.
struct TreeDecomposition {
  std::vector<std::vector<int>> bags;
  std::vector<std::pair<int, int>> edges;

  /// Max bag size minus one; -1 for an empty decomposition.
  int Width() const;
};

/// Checks the three conditions of the paper's definition against a graph:
/// (1) bags are nonempty subsets of the vertex set and every vertex
/// occurs; (2) both endpoints of every graph edge share a bag; (3) the
/// bags containing any given vertex induce a connected subtree (and the
/// node/edge set is a tree/forest).
bool IsValidDecomposition(const Graph& g, const TreeDecomposition& td);

/// The structure form (condition 2 strengthened per the paper): every
/// tuple of every relation is contained in some bag. Equivalent to
/// validity for the Gaifman graph, because a bag covering all pairwise
/// edges of a tuple need not contain the tuple — hence the separate
/// check.
bool IsValidForStructure(const Structure& a, const TreeDecomposition& td);

}  // namespace cspdb

#endif  // CSPDB_TREEWIDTH_TREE_DECOMPOSITION_H_
