// Elimination-ordering heuristics (min-fill, min-degree) and the standard
// construction of a tree decomposition from an elimination ordering.
// These provide the decompositions consumed by bucket elimination
// (Theorem 6.2's polynomial algorithm for bounded-treewidth CSP).

#ifndef CSPDB_TREEWIDTH_HEURISTICS_H_
#define CSPDB_TREEWIDTH_HEURISTICS_H_

#include <vector>

#include "treewidth/gaifman.h"
#include "treewidth/tree_decomposition.h"

namespace cspdb {

/// Min-degree elimination ordering: repeatedly eliminate a vertex of
/// minimum current degree (making its neighborhood a clique).
std::vector<int> MinDegreeOrdering(const Graph& g);

/// Min-fill elimination ordering: repeatedly eliminate a vertex adding
/// the fewest fill edges.
std::vector<int> MinFillOrdering(const Graph& g);

/// Builds a tree decomposition from an elimination ordering: the bag of v
/// is v plus its not-yet-eliminated neighbors in the fill graph; its
/// parent is the bag of the earliest-eliminated such neighbor. Valid for
/// any ordering; width is the induced width of the ordering.
TreeDecomposition DecompositionFromOrdering(const Graph& g,
                                            const std::vector<int>& order);

/// Width of the ordering without materializing the decomposition.
int InducedWidth(const Graph& g, const std::vector<int>& order);

/// Min-fill decomposition in one call.
TreeDecomposition MinFillDecomposition(const Graph& g);

}  // namespace cspdb

#endif  // CSPDB_TREEWIDTH_HEURISTICS_H_
