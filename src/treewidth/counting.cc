#include "treewidth/counting.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "relational/structure.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "util/check.h"

namespace cspdb {
namespace {

// A nonnegative-weighted relation: schema plus weight per row.
struct WeightedRelation {
  std::vector<int> schema;  // distinct attribute ids
  std::unordered_map<Tuple, int64_t, TupleHash> rows;
};

int Position(const WeightedRelation& r, int attr) {
  for (std::size_t i = 0; i < r.schema.size(); ++i) {
    if (r.schema[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

// Weighted natural join: weights multiply.
WeightedRelation Join(const WeightedRelation& a,
                      const WeightedRelation& b) {
  std::vector<int> a_shared, b_shared, b_extra;
  for (std::size_t i = 0; i < b.schema.size(); ++i) {
    int p = Position(a, b.schema[i]);
    if (p >= 0) {
      a_shared.push_back(p);
      b_shared.push_back(static_cast<int>(i));
    } else {
      b_extra.push_back(static_cast<int>(i));
    }
  }
  WeightedRelation out;
  out.schema = a.schema;
  for (int i : b_extra) out.schema.push_back(b.schema[i]);

  // Index b on the shared key.
  std::unordered_map<Tuple, std::vector<const std::pair<const Tuple,
                                                        int64_t>*>,
                     TupleHash>
      index;
  for (const auto& row : b.rows) {
    Tuple key;
    key.reserve(b_shared.size());
    for (int p : b_shared) key.push_back(row.first[p]);
    index[key].push_back(&row);
  }
  for (const auto& [tuple, weight] : a.rows) {
    Tuple key;
    key.reserve(a_shared.size());
    for (int p : a_shared) key.push_back(tuple[p]);
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (const auto* brow : it->second) {
      Tuple combined = tuple;
      for (int p : b_extra) combined.push_back(brow->first[p]);
      out.rows[std::move(combined)] += weight * brow->second;
    }
  }
  return out;
}

// Sums out one attribute.
WeightedRelation SumOut(const WeightedRelation& r, int attr) {
  int pos = Position(r, attr);
  CSPDB_CHECK(pos >= 0);
  WeightedRelation out;
  for (std::size_t i = 0; i < r.schema.size(); ++i) {
    if (static_cast<int>(i) != pos) out.schema.push_back(r.schema[i]);
  }
  for (const auto& [tuple, weight] : r.rows) {
    Tuple reduced;
    reduced.reserve(tuple.size() - 1);
    for (std::size_t i = 0; i < tuple.size(); ++i) {
      if (static_cast<int>(i) != pos) reduced.push_back(tuple[i]);
    }
    out.rows[std::move(reduced)] += weight;
  }
  return out;
}

}  // namespace

int64_t CountSolutionsByElimination(const CspInstance& csp,
                                    const std::vector<int>& order) {
  int n = csp.num_variables();
  CSPDB_CHECK(static_cast<int>(order.size()) == n);
  if (n == 0) return 1;
  if (csp.num_values() == 0) return 0;

  std::vector<int> position(n, -1);
  for (int i = 0; i < n; ++i) {
    CSPDB_CHECK(order[i] >= 0 && order[i] < n);
    CSPDB_CHECK_MSG(position[order[i]] == -1, "ordering repeats a variable");
    position[order[i]] = i;
  }

  CspInstance normalized = csp.NormalizedDistinctScopes();
  std::vector<std::vector<WeightedRelation>> buckets(n);
  std::vector<char> covered(n, 0);
  auto place = [&](WeightedRelation rel) {
    CSPDB_CHECK(!rel.schema.empty());
    int latest = rel.schema[0];
    for (int a : rel.schema) {
      if (position[a] > position[latest]) latest = a;
    }
    buckets[position[latest]].push_back(std::move(rel));
  };
  for (const Constraint& c : normalized.constraints()) {
    WeightedRelation rel;
    rel.schema = c.scope;
    for (const Tuple& t : c.allowed) rel.rows[t] = 1;
    for (int v : c.scope) covered[v] = 1;
    if (rel.rows.empty()) return 0;
    place(std::move(rel));
  }

  int64_t scalar = 1;
  for (int i = n - 1; i >= 0; --i) {
    if (buckets[i].empty()) continue;
    WeightedRelation acc = std::move(buckets[i][0]);
    for (std::size_t j = 1; j < buckets[i].size(); ++j) {
      acc = Join(acc, buckets[i][j]);
    }
    if (acc.rows.empty()) return 0;
    acc = SumOut(acc, order[i]);
    if (acc.schema.empty()) {
      // Fully eliminated: a scalar factor.
      int64_t total = 0;
      for (const auto& [tuple, weight] : acc.rows) {
        (void)tuple;
        total += weight;
      }
      if (total == 0) return 0;
      scalar *= total;
    } else {
      place(std::move(acc));
    }
  }

  // Unconstrained variables pick any value.
  for (int v = 0; v < n; ++v) {
    if (!covered[v]) scalar *= csp.num_values();
  }
  return scalar;
}

int64_t CountSolutionsWithTreewidthHeuristic(const CspInstance& csp) {
  Graph primal = GaifmanGraphOfCsp(csp);
  // Buckets are processed last-position-first; reverse the min-fill
  // order so the cheap eliminations happen first.
  std::vector<int> order = MinFillOrdering(primal);
  std::reverse(order.begin(), order.end());
  return CountSolutionsByElimination(csp, order);
}

}  // namespace cspdb
