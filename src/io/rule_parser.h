// Text parsers for rule syntax: conjunctive queries and Datalog programs
// in the notation the paper itself uses,
//
//   Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).
//
//   T(x, y) :- E(x, y).
//   T(x, y) :- T(x, z), E(z, y).
//
// Identifiers are alphanumeric (plus '_'); variables are recognized
// purely by occurrence (every argument is a variable — the paper's
// constraint-free fragment); whitespace is free; each rule ends with '.'
// or a newline.

#ifndef CSPDB_IO_RULE_PARSER_H_
#define CSPDB_IO_RULE_PARSER_H_

#include <string>

#include "datalog/program.h"
#include "db/conjunctive_query.h"

namespace cspdb {

/// Parses a single conjunctive query rule "Head(args) :- body atoms".
/// The head predicate name is ignored (it names the query); head
/// arguments must occur in the body. Aborts with a diagnostic on
/// malformed input.
ConjunctiveQuery ParseConjunctiveQuery(const std::string& text);

/// Parses a Datalog program: one rule per '.'-terminated (or
/// line-terminated) clause; the goal is the head predicate of the *last*
/// rule unless `goal` is given. Lines starting with '%' or '#' are
/// comments.
DatalogProgram ParseDatalogProgram(const std::string& text,
                                   const std::string& goal = "");

}  // namespace cspdb

#endif  // CSPDB_IO_RULE_PARSER_H_
