#include "io/rule_parser.h"

#include <cctype>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cspdb {
namespace {

// A parsed atom with textual arguments.
struct RawAtom {
  std::string predicate;
  std::vector<std::string> args;
};

struct RawRule {
  RawAtom head;
  std::vector<RawAtom> body;
};

class RuleLexer {
 public:
  explicit RuleLexer(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : 0;
  }

  void Expect(char c) {
    CSPDB_CHECK_MSG(Peek() == c,
                    std::string("expected '") + c + "' in rule syntax");
    ++pos_;
  }

  bool Accept(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // ":-" separator.
  void ExpectTurnstile() {
    Expect(':');
    CSPDB_CHECK_MSG(pos_ < text_.size() && text_[pos_] == '-',
                    "expected ':-' in rule syntax");
    ++pos_;
  }

  std::string Identifier() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    CSPDB_CHECK_MSG(pos_ > start, "expected an identifier in rule syntax");
    return text_.substr(start, pos_ - start);
  }

  RawAtom Atom() {
    RawAtom atom;
    atom.predicate = Identifier();
    Expect('(');
    if (!Accept(')')) {
      while (true) {
        atom.args.push_back(Identifier());
        if (Accept(')')) break;
        Expect(',');
      }
    }
    return atom;
  }

  RawRule Rule() {
    RawRule rule;
    rule.head = Atom();
    ExpectTurnstile();
    while (true) {
      rule.body.push_back(Atom());
      if (!Accept(',')) break;
    }
    Accept('.');
    return rule;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

ConjunctiveQuery ParseConjunctiveQuery(const std::string& text) {
  RuleLexer lexer(text);
  RawRule rule = lexer.Rule();
  CSPDB_CHECK_MSG(lexer.AtEnd(), "trailing input after the query rule");

  std::unordered_map<std::string, int> variable_ids;
  auto intern = [&variable_ids](const std::string& name) {
    auto [it, inserted] =
        variable_ids.emplace(name, static_cast<int>(variable_ids.size()));
    return it->second;
  };
  std::vector<Atom> body;
  for (const RawAtom& atom : rule.body) {
    Atom out{atom.predicate, {}};
    for (const std::string& arg : atom.args) out.args.push_back(intern(arg));
    body.push_back(std::move(out));
  }
  std::vector<int> head;
  for (const std::string& arg : rule.head.args) {
    auto it = variable_ids.find(arg);
    CSPDB_CHECK_MSG(it != variable_ids.end(),
                    "unsafe query: head variable '" + arg +
                        "' missing from the body");
    head.push_back(it->second);
  }
  return ConjunctiveQuery(static_cast<int>(variable_ids.size()),
                          std::move(head), std::move(body));
}

DatalogProgram ParseDatalogProgram(const std::string& text,
                                   const std::string& goal) {
  RuleLexer lexer(text);
  DatalogProgram program;
  std::string last_head;
  while (!lexer.AtEnd()) {
    RawRule raw = lexer.Rule();
    // Rule-local variable interning.
    std::unordered_map<std::string, int> variable_ids;
    auto intern = [&variable_ids](const std::string& name) {
      auto [it, inserted] = variable_ids.emplace(
          name, static_cast<int>(variable_ids.size()));
      return it->second;
    };
    DatalogRule rule;
    for (const RawAtom& atom : raw.body) {
      DatalogAtom out{atom.predicate, {}};
      for (const std::string& arg : atom.args) {
        out.args.push_back(intern(arg));
      }
      rule.body.push_back(std::move(out));
    }
    rule.head.predicate = raw.head.predicate;
    for (const std::string& arg : raw.head.args) {
      auto it = variable_ids.find(arg);
      CSPDB_CHECK_MSG(it != variable_ids.end(),
                      "unsafe rule: head variable '" + arg +
                          "' missing from the body");
      rule.head.args.push_back(it->second);
    }
    rule.num_variables = static_cast<int>(variable_ids.size());
    last_head = rule.head.predicate;
    program.AddRule(std::move(rule));
  }
  CSPDB_CHECK_MSG(!last_head.empty(), "program has no rules");
  program.SetGoal(goal.empty() ? last_head : goal);
  return program;
}

}  // namespace cspdb
