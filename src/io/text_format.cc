#include "io/text_format.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace cspdb {
namespace {

// Splits into non-comment, non-empty lines of whitespace tokens.
std::vector<std::vector<std::string>> Tokenize(const std::string& text) {
  std::vector<std::vector<std::string>> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] == '#') continue;
    std::istringstream words(line);
    std::vector<std::string> tokens;
    std::string token;
    while (words >> token) tokens.push_back(token);
    if (!tokens.empty()) lines.push_back(std::move(tokens));
  }
  return lines;
}

int ToInt(const std::string& token) {
  std::size_t used = 0;
  int value = 0;
  bool ok = true;
  if (token.empty()) {
    ok = false;
  } else {
    value = std::stoi(token, &used);
    ok = used == token.size();
  }
  CSPDB_CHECK_MSG(ok, "expected an integer, got '" + token + "'");
  return value;
}

}  // namespace

std::string SerializeStructure(const Structure& a) {
  std::ostringstream out;
  out << "structure\n";
  out << "domain " << a.domain_size() << "\n";
  const Vocabulary& voc = a.vocabulary();
  for (int r = 0; r < voc.size(); ++r) {
    out << "relation " << voc.symbol(r).name << " " << voc.symbol(r).arity
        << "\n";
  }
  for (int r = 0; r < voc.size(); ++r) {
    for (const Tuple& t : a.tuples(r)) {
      out << "tuple " << voc.symbol(r).name;
      for (int e : t) out << " " << e;
      out << "\n";
    }
  }
  return out.str();
}

Structure ParseStructure(const std::string& text) {
  auto lines = Tokenize(text);
  CSPDB_CHECK_MSG(!lines.empty() && lines[0][0] == "structure",
                  "missing 'structure' header");
  int domain = -1;
  Vocabulary voc;
  std::size_t i = 1;
  // Header lines first: domain then relations.
  for (; i < lines.size(); ++i) {
    const auto& tokens = lines[i];
    if (tokens[0] == "domain") {
      CSPDB_CHECK_MSG(tokens.size() == 2, "domain line needs one number");
      domain = ToInt(tokens[1]);
    } else if (tokens[0] == "relation") {
      CSPDB_CHECK_MSG(tokens.size() == 3,
                      "relation line needs a name and an arity");
      voc.AddSymbol(tokens[1], ToInt(tokens[2]));
    } else {
      break;
    }
  }
  CSPDB_CHECK_MSG(domain >= 0, "missing 'domain' line");
  Structure a(voc, domain);
  for (; i < lines.size(); ++i) {
    const auto& tokens = lines[i];
    CSPDB_CHECK_MSG(tokens[0] == "tuple",
                    "unexpected line '" + tokens[0] + "'");
    CSPDB_CHECK_MSG(tokens.size() >= 2, "tuple line needs a relation");
    Tuple t;
    for (std::size_t j = 2; j < tokens.size(); ++j) {
      t.push_back(ToInt(tokens[j]));
    }
    a.AddTuple(tokens[1], std::move(t));
  }
  return a;
}

std::string SerializeCsp(const CspInstance& csp) {
  std::ostringstream out;
  out << "csp " << csp.num_variables() << " " << csp.num_values() << "\n";
  for (const Constraint& c : csp.constraints()) {
    out << "constraint " << c.arity();
    for (int v : c.scope) out << " " << v;
    out << "\n";
    for (const Tuple& t : c.allowed) {
      out << "allow";
      for (int d : t) out << " " << d;
      out << "\n";
    }
  }
  return out.str();
}

CspInstance ParseCsp(const std::string& text) {
  auto lines = Tokenize(text);
  CSPDB_CHECK_MSG(!lines.empty() && lines[0][0] == "csp" &&
                      lines[0].size() == 3,
                  "missing 'csp <vars> <values>' header");
  CspInstance csp(ToInt(lines[0][1]), ToInt(lines[0][2]));
  std::vector<int> scope;
  std::vector<Tuple> allowed;
  bool open = false;
  auto flush = [&]() {
    if (open) csp.AddConstraint(scope, std::move(allowed));
    allowed = {};
    open = false;
  };
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto& tokens = lines[i];
    if (tokens[0] == "constraint") {
      flush();
      CSPDB_CHECK_MSG(tokens.size() >= 3, "constraint line needs a scope");
      int arity = ToInt(tokens[1]);
      CSPDB_CHECK_MSG(static_cast<int>(tokens.size()) == arity + 2,
                      "constraint scope length mismatch");
      scope.clear();
      for (int j = 0; j < arity; ++j) scope.push_back(ToInt(tokens[j + 2]));
      open = true;
    } else if (tokens[0] == "allow") {
      CSPDB_CHECK_MSG(open, "'allow' before any 'constraint'");
      Tuple t;
      for (std::size_t j = 1; j < tokens.size(); ++j) {
        t.push_back(ToInt(tokens[j]));
      }
      CSPDB_CHECK_MSG(t.size() == scope.size(),
                      "allow tuple arity mismatch");
      allowed.push_back(std::move(t));
    } else {
      CSPDB_CHECK_MSG(false, "unexpected line '" + tokens[0] + "'");
    }
  }
  flush();
  return csp;
}

std::string WriteDimacs(const CnfFormula& phi) {
  std::ostringstream out;
  out << "p cnf " << phi.num_variables << " " << phi.clauses.size()
      << "\n";
  for (const Clause& clause : phi.clauses) {
    for (const Literal& lit : clause.literals) {
      out << (lit.positive ? lit.var + 1 : -(lit.var + 1)) << " ";
    }
    out << "0\n";
  }
  return out.str();
}

CnfFormula ReadDimacs(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  CnfFormula phi;
  bool header_seen = false;
  Clause current;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream words(line);
    if (line[0] == 'p') {
      std::string p, cnf;
      int clauses = 0;
      words >> p >> cnf >> phi.num_variables >> clauses;
      CSPDB_CHECK_MSG(cnf == "cnf", "expected 'p cnf' header");
      header_seen = true;
      continue;
    }
    CSPDB_CHECK_MSG(header_seen, "clause before DIMACS header");
    int lit = 0;
    while (words >> lit) {
      if (lit == 0) {
        phi.clauses.push_back(std::move(current));
        current = Clause{};
      } else {
        int var = std::abs(lit) - 1;
        CSPDB_CHECK_MSG(var < phi.num_variables,
                        "literal exceeds declared variable count");
        current.literals.push_back({var, lit > 0});
      }
    }
  }
  CSPDB_CHECK_MSG(current.literals.empty(),
                  "unterminated clause at end of DIMACS input");
  return phi;
}

}  // namespace cspdb
