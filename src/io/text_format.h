// Plain-text serialization for the core cspdb types, so instances and
// structures can be stored, diffed, and shared between tools:
//
//   structure                    csp 3 4              (vars, values)
//   domain 3                     constraint 2 0 1     (arity, scope...)
//   relation E 2                 allow 0 1
//   tuple E 0 1                  allow 1 0
//   tuple E 1 2
//
// plus reading/writing CNF formulas in the standard DIMACS format used by
// SAT solvers.

#ifndef CSPDB_IO_TEXT_FORMAT_H_
#define CSPDB_IO_TEXT_FORMAT_H_

#include <string>

#include "boolean/cnf.h"
#include "csp/instance.h"
#include "relational/structure.h"

namespace cspdb {

/// Serializes a structure (relations in vocabulary order, tuples in
/// insertion order). Element names are not persisted.
std::string SerializeStructure(const Structure& a);

/// Parses the SerializeStructure format; aborts with a diagnostic on
/// malformed input. Lines starting with '#' are comments.
Structure ParseStructure(const std::string& text);

/// Serializes a CSP instance (constraints in insertion order).
std::string SerializeCsp(const CspInstance& csp);

/// Parses the SerializeCsp format.
CspInstance ParseCsp(const std::string& text);

/// Writes a formula in DIMACS CNF ("p cnf <vars> <clauses>", clauses as
/// 1-based signed literals terminated by 0).
std::string WriteDimacs(const CnfFormula& phi);

/// Reads DIMACS CNF; supports comment lines ('c ...') and multi-line
/// clauses.
CnfFormula ReadDimacs(const std::string& text);

}  // namespace cspdb

#endif  // CSPDB_IO_TEXT_FORMAT_H_
