#include "games/two_sided_game.h"

#include <algorithm>
#include <deque>
#include <tuple>

#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {
namespace {

bool InsertPair(PartialHom* f, int a, int b) {
  auto it = std::lower_bound(
      f->begin(), f->end(), std::make_pair(a, b),
      [](const auto& x, const auto& y) { return x.first < y.first; });
  if (it != f->end() && it->first == a) return false;
  f->insert(it, {a, b});
  return true;
}

std::vector<std::vector<std::pair<int, const Tuple*>>> IndexTuples(
    const Structure& s) {
  std::vector<std::vector<std::pair<int, const Tuple*>>> index(
      s.domain_size());
  for (int r = 0; r < s.vocabulary().size(); ++r) {
    for (const Tuple& t : s.tuples(r)) {
      Tuple sorted = t;
      std::sort(sorted.begin(), sorted.end());
      int prev = -1;
      for (int e : sorted) {
        if (e != prev) index[e].push_back({r, &t});
        prev = e;
      }
    }
  }
  return index;
}

}  // namespace

TwoSidedPebbleGame::TwoSidedPebbleGame(const Structure& a,
                                       const Structure& b, int k)
    : a_(a), b_(b), k_(k) {
  CSPDB_CHECK(k >= 1);
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  a_tuples_on_ = IndexTuples(a);
  b_tuples_on_ = IndexTuples(b);
  Enumerate();
  Eliminate();
}

bool TwoSidedPebbleGame::ValidExtension(const PartialHom& f, int a,
                                        int b) const {
  // Injectivity: b must be fresh in the range.
  for (const auto& [x, y] : f) {
    if (y == b) return false;
  }
  auto forward = [&](int e) -> int {
    if (e == a) return b;
    auto it = std::lower_bound(
        f.begin(), f.end(), std::make_pair(e, 0),
        [](const auto& x, const auto& y) { return x.first < y.first; });
    if (it == f.end() || it->first != e) return kUnassigned;
    return it->second;
  };
  auto backward = [&](int e) -> int {
    if (e == b) return a;
    for (const auto& [x, y] : f) {
      if (y == e) return x;
    }
    return kUnassigned;
  };
  // A-tuples inside dom(f)+{a} must map to B-tuples.
  Tuple image;
  for (const auto& [rel, tuple] : a_tuples_on_[a]) {
    bool covered = true;
    image.clear();
    for (int e : *tuple) {
      int v = forward(e);
      if (v == kUnassigned) {
        covered = false;
        break;
      }
      image.push_back(v);
    }
    if (covered && !b_.HasTuple(rel, image)) return false;
  }
  // B-tuples inside range(f)+{b} must have preimages in A.
  for (const auto& [rel, tuple] : b_tuples_on_[b]) {
    bool covered = true;
    image.clear();
    for (int e : *tuple) {
      int v = backward(e);
      if (v == kUnassigned) {
        covered = false;
        break;
      }
      image.push_back(v);
    }
    if (covered && !a_.HasTuple(rel, image)) return false;
  }
  return true;
}

void TwoSidedPebbleGame::Enumerate() {
  homs_.push_back({});
  id_.emplace(PartialHom{}, 0);
  std::size_t level_begin = 0;
  for (int size = 0; size < k_; ++size) {
    std::size_t level_end = homs_.size();
    for (std::size_t fi = level_begin; fi < level_end; ++fi) {
      for (int a = 0; a < a_.domain_size(); ++a) {
        PartialHom f = homs_[fi];
        bool present = false;
        for (const auto& [x, y] : f) {
          if (x == a) {
            present = true;
            break;
          }
        }
        if (present) continue;
        for (int b = 0; b < b_.domain_size(); ++b) {
          if (!ValidExtension(f, a, b)) continue;
          PartialHom g = f;
          InsertPair(&g, a, b);
          if (id_.find(g) == id_.end()) {
            id_.emplace(g, static_cast<int>(homs_.size()));
            homs_.push_back(std::move(g));
          }
        }
      }
    }
    level_begin = level_end;
  }
}

void TwoSidedPebbleGame::Eliminate() {
  int total = static_cast<int>(homs_.size());
  alive_.assign(total, 1);
  children_a_.assign(total, {});
  children_b_.assign(total, {});
  std::vector<std::vector<std::tuple<int, int, int>>> parents(total);

  for (int g = 0; g < total; ++g) {
    const PartialHom& hom = homs_[g];
    for (std::size_t i = 0; i < hom.size(); ++i) {
      PartialHom parent = hom;
      auto [elem_a, elem_b] = hom[i];
      parent.erase(parent.begin() + static_cast<std::ptrdiff_t>(i));
      auto it = id_.find(parent);
      CSPDB_CHECK(it != id_.end());
      children_a_[it->second][elem_a].push_back(g);
      children_b_[it->second][elem_b].push_back(g);
      parents[g].push_back({it->second, elem_a, elem_b});
    }
  }

  // Two-sided supports: f (|f| < k) needs an alive extension for every
  // fresh element of A and onto every fresh element of B.
  std::vector<std::unordered_map<int, int>> support_a(total);
  std::vector<std::unordered_map<int, int>> support_b(total);
  std::deque<int> dead;
  auto kill = [&](int f) {
    if (alive_[f]) {
      alive_[f] = 0;
      dead.push_back(f);
    }
  };
  for (int f = 0; f < total; ++f) {
    if (static_cast<int>(homs_[f].size()) >= k_) continue;
    for (int a = 0; a < a_.domain_size(); ++a) {
      bool in_dom = false;
      for (const auto& [x, y] : homs_[f]) {
        if (x == a) in_dom = true;
      }
      if (in_dom) continue;
      auto it = children_a_[f].find(a);
      int count = it == children_a_[f].end()
                      ? 0
                      : static_cast<int>(it->second.size());
      support_a[f][a] = count;
      if (count == 0) kill(f);
    }
    for (int b = 0; b < b_.domain_size(); ++b) {
      bool in_range = false;
      for (const auto& [x, y] : homs_[f]) {
        if (y == b) in_range = true;
      }
      if (in_range) continue;
      auto it = children_b_[f].find(b);
      int count = it == children_b_[f].end()
                      ? 0
                      : static_cast<int>(it->second.size());
      support_b[f][b] = count;
      if (count == 0) kill(f);
    }
  }

  while (!dead.empty()) {
    int g = dead.front();
    dead.pop_front();
    for (const auto& [elem, kids] : children_a_[g]) {
      (void)elem;
      for (int child : kids) kill(child);
    }
    for (const auto& [parent, elem_a, elem_b] : parents[g]) {
      if (!alive_[parent]) continue;
      auto ita = support_a[parent].find(elem_a);
      CSPDB_CHECK(ita != support_a[parent].end());
      if (--ita->second == 0) kill(parent);
      if (!alive_[parent]) continue;
      auto itb = support_b[parent].find(elem_b);
      CSPDB_CHECK(itb != support_b[parent].end());
      if (--itb->second == 0) kill(parent);
    }
  }
}

bool TwoSidedPebbleGame::DuplicatorWins() const { return alive_[0] != 0; }

bool TwoSidedPebbleGame::InLargestFamily(PartialHom f) const {
  std::sort(f.begin(), f.end());
  for (std::size_t i = 1; i < f.size(); ++i) {
    if (f[i].first == f[i - 1].first) return false;
  }
  auto it = id_.find(f);
  return it != id_.end() && alive_[it->second] != 0;
}

bool KVariableEquivalent(const Structure& a, const Structure& b, int k) {
  return TwoSidedPebbleGame(a, b, k).DuplicatorWins();
}

}  // namespace cspdb
