#include "games/pebble_game.h"

#include <algorithm>
#include <deque>

#include "obs/obs.h"
#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Inserts (a, b) into the sorted pair list `f`; returns false if a is
// already present.
bool InsertPair(PartialHom* f, int a, int b) {
  auto it = std::lower_bound(
      f->begin(), f->end(), std::make_pair(a, b),
      [](const auto& x, const auto& y) { return x.first < y.first; });
  if (it != f->end() && it->first == a) return false;
  f->insert(it, {a, b});
  return true;
}

}  // namespace

PebbleGame::PebbleGame(const Structure& a, const Structure& b, int k)
    : a_(a), b_(b), k_(k) {
  CSPDB_TIMER_SCOPE("games.pebble_game");
  CSPDB_CHECK(k >= 1);
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  tuples_on_.resize(a_.domain_size());
  for (int r = 0; r < a_.vocabulary().size(); ++r) {
    for (const Tuple& t : a_.tuples(r)) {
      int prev = -1;
      Tuple sorted = t;
      std::sort(sorted.begin(), sorted.end());
      for (int e : sorted) {
        if (e != prev) tuples_on_[e].push_back({r, &t});
        prev = e;
      }
    }
  }
  Enumerate();
  Eliminate();
  CSPDB_COUNT_N("games.pebble.positions", UniverseSize());
  CSPDB_COUNT_N("games.pebble.eliminated", EliminatedCount());
}

bool PebbleGame::ValidExtension(const PartialHom& f, int a, int b) const {
  // Check every tuple of A involving `a` whose elements all lie in
  // dom(f) + {a}: its image under f + (a -> b) must be in B.
  Tuple image;
  for (const auto& [rel, tuple] : tuples_on_[a]) {
    bool covered = true;
    image.clear();
    for (int e : *tuple) {
      if (e == a) {
        image.push_back(b);
        continue;
      }
      auto it = std::lower_bound(
          f.begin(), f.end(), std::make_pair(e, 0),
          [](const auto& x, const auto& y) { return x.first < y.first; });
      if (it == f.end() || it->first != e) {
        covered = false;
        break;
      }
      image.push_back(it->second);
    }
    if (covered && !b_.HasTuple(rel, image)) return false;
  }
  return true;
}

void PebbleGame::Enumerate() {
  // Level 0: the empty partial homomorphism.
  homs_.push_back({});
  id_.emplace(PartialHom{}, 0);
  std::size_t level_begin = 0;
  for (int size = 0; size < k_; ++size) {
    std::size_t level_end = homs_.size();
    for (std::size_t fi = level_begin; fi < level_end; ++fi) {
      for (int a = 0; a < a_.domain_size(); ++a) {
        // Skip elements already in dom(f).
        // (homs_[fi] may be reallocated by push_back; copy what we need.)
        PartialHom f = homs_[fi];
        bool present = false;
        for (const auto& [x, y] : f) {
          if (x == a) {
            present = true;
            break;
          }
        }
        if (present) continue;
        for (int b = 0; b < b_.domain_size(); ++b) {
          if (!ValidExtension(f, a, b)) continue;
          PartialHom g = f;
          InsertPair(&g, a, b);
          if (id_.find(g) == id_.end()) {
            id_.emplace(g, static_cast<int>(homs_.size()));
            homs_.push_back(std::move(g));
          }
        }
      }
    }
    level_begin = level_end;
  }
}

void PebbleGame::Eliminate() {
  int total = static_cast<int>(homs_.size());
  alive_ = Bitset(total, true);
  children_.assign(total, {});
  // parents_by_child[g] lists (parent id, extension element) pairs.
  std::vector<std::vector<std::pair<int, int>>> parents(total);

  for (int g = 0; g < total; ++g) {
    const PartialHom& hom = homs_[g];
    if (hom.empty()) continue;
    for (std::size_t i = 0; i < hom.size(); ++i) {
      PartialHom parent = hom;
      int elem = hom[i].first;
      parent.erase(parent.begin() + static_cast<std::ptrdiff_t>(i));
      auto it = id_.find(parent);
      CSPDB_CHECK(it != id_.end());  // subfunctions are always valid
      children_[it->second][elem].push_back(g);
      parents[g].push_back({it->second, elem});
    }
  }

  // Support counts: for f with |f| < k and element a outside dom(f), the
  // number of alive extensions of f on a. Zero support kills f.
  std::vector<std::unordered_map<int, int>> support(total);
  std::deque<int> dead_queue;
  for (int f = 0; f < total; ++f) {
    if (static_cast<int>(homs_[f].size()) >= k_) continue;
    for (int a = 0; a < a_.domain_size(); ++a) {
      bool in_dom = false;
      for (const auto& [x, y] : homs_[f]) {
        if (x == a) {
          in_dom = true;
          break;
        }
      }
      if (in_dom) continue;
      auto it = children_[f].find(a);
      int count = it == children_[f].end()
                      ? 0
                      : static_cast<int>(it->second.size());
      support[f][a] = count;
      if (count == 0 && alive_.Test(f)) {
        alive_.Reset(f);
        dead_queue.push_back(f);
      }
    }
  }

  while (!dead_queue.empty()) {
    int g = dead_queue.front();
    dead_queue.pop_front();
    CSPDB_COUNT("games.pebble.elimination_rounds");
    // Down-closure upwards: any extension of a dead map is dead.
    for (const auto& [elem, kids] : children_[g]) {
      (void)elem;
      for (int child : kids) {
        if (alive_.Test(child)) {
          alive_.Reset(child);
          dead_queue.push_back(child);
        }
      }
    }
    // Forth property: parents lose one unit of support on the extension
    // element.
    for (const auto& [parent, elem] : parents[g]) {
      if (!alive_.Test(parent)) continue;
      auto it = support[parent].find(elem);
      CSPDB_CHECK(it != support[parent].end());
      if (--it->second == 0) {
        alive_.Reset(parent);
        dead_queue.push_back(parent);
      }
    }
  }
}

bool PebbleGame::DuplicatorWins() const {
  // The empty map has id 0; by down-closure the family is nonempty iff it
  // contains the empty map.
  return alive_.Test(0);
}

bool PebbleGame::IsAlive(int id) const {
  CSPDB_CHECK(id >= 0 && id < static_cast<int>(homs_.size()));
  return alive_.Test(id);
}

int PebbleGame::IdOf(PartialHom f) const {
  std::sort(f.begin(), f.end());
  for (std::size_t i = 1; i < f.size(); ++i) {
    if (f[i].first == f[i - 1].first) return -1;  // not a function
  }
  auto it = id_.find(f);
  return it == id_.end() ? -1 : it->second;
}

bool PebbleGame::InLargestStrategy(PartialHom f) const {
  int id = IdOf(std::move(f));
  return id >= 0 && alive_.Test(id);
}

bool PebbleGame::IsWinningConfiguration(const Tuple& a_tuple,
                                        const Tuple& b_tuple) const {
  CSPDB_CHECK(a_tuple.size() == b_tuple.size());
  CSPDB_CHECK(static_cast<int>(a_tuple.size()) <= k_);
  PartialHom f;
  for (std::size_t i = 0; i < a_tuple.size(); ++i) {
    // Well-definedness: repeated a's must map to equal b's.
    bool duplicate = false;
    for (const auto& [x, y] : f) {
      if (x == a_tuple[i]) {
        if (y != b_tuple[i]) return false;
        duplicate = true;
        break;
      }
    }
    if (!duplicate) InsertPair(&f, a_tuple[i], b_tuple[i]);
  }
  return InLargestStrategy(std::move(f));
}

std::vector<PartialHom> PebbleGame::LargestWinningStrategy() const {
  std::vector<PartialHom> out;
  for (std::size_t i = 0; i < homs_.size(); ++i) {
    if (alive_.Test(i)) out.push_back(homs_[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const PartialHom& x, const PartialHom& y) {
              if (x.size() != y.size()) return x.size() < y.size();
              return x < y;
            });
  return out;
}

bool HasIForthProperty(const Structure& a, const Structure& b, int i) {
  CSPDB_CHECK(i >= 1);
  // Enumerate all partial homomorphisms of size exactly i-1 via a game
  // universe of size i, then test one-point extendability.
  PebbleGame game(a, b, i);
  for (const PartialHom& f : game.universe()) {
    if (static_cast<int>(f.size()) != i - 1) continue;
    for (int elem = 0; elem < a.domain_size(); ++elem) {
      bool in_dom = false;
      for (const auto& [x, y] : f) {
        if (x == elem) {
          in_dom = true;
          break;
        }
      }
      if (in_dom) continue;
      bool extendable = false;
      for (int val = 0; val < b.domain_size(); ++val) {
        PartialHom g = f;
        InsertPair(&g, elem, val);
        if (game.IdOf(g) >= 0) {
          extendable = true;
          break;
        }
      }
      if (!extendable) return false;
    }
  }
  return true;
}

bool PairIsStronglyKConsistent(const Structure& a, const Structure& b,
                               int k) {
  for (int i = 1; i <= k; ++i) {
    if (!HasIForthProperty(a, b, i)) return false;
  }
  return true;
}

}  // namespace cspdb
