// The existential k-pebble game of Kolaitis and Vardi (paper, Section 4).
//
// The engine enumerates every partial homomorphism from A to B with at
// most k elements in its domain and computes, by greatest-fixpoint
// elimination, the largest family that is closed under subfunctions and
// has the k-forth property — i.e., the largest winning strategy for the
// Duplicator (Proposition 5.1). The Duplicator wins iff the family is
// nonempty; this is the polynomial-time decision procedure of
// Theorem 4.5(2) (O(n^{2k}) for fixed k, Theorem 4.7).

#ifndef CSPDB_GAMES_PEBBLE_GAME_H_
#define CSPDB_GAMES_PEBBLE_GAME_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relational/structure.h"
#include "util/bitset.h"

namespace cspdb {

/// A partial function from A's domain to B's domain, represented as pairs
/// (a, b) sorted by a with distinct a's.
using PartialHom = std::vector<std::pair<int, int>>;

/// Hash for PartialHom, usable in unordered containers.
struct PartialHomHash {
  std::size_t operator()(const PartialHom& f) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (const auto& [a, b] : f) {
      h ^= (static_cast<std::size_t>(a) * 1000003u) ^
           static_cast<std::size_t>(b);
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// The existential k-pebble game on structures A and B over a common
/// vocabulary. All computation happens at construction; queries are O(1)
/// or O(|f| log) afterwards. A and B must outlive the game.
class PebbleGame {
 public:
  /// Requires k >= 1 and matching vocabularies.
  PebbleGame(const Structure& a, const Structure& b, int k);

  int k() const { return k_; }

  /// True iff the Duplicator has a winning strategy (equivalently, the
  /// Spoiler does not win; Theorem 4.5(2)).
  bool DuplicatorWins() const;

  /// All partial homomorphisms of size <= k, the universe of game
  /// positions. Index into this vector is the position id.
  const std::vector<PartialHom>& universe() const { return homs_; }

  /// True if position `id` survives elimination, i.e., belongs to the
  /// largest winning strategy H^k(A, B) (Proposition 5.1).
  bool IsAlive(int id) const;

  /// Id of partial function `f` (need not be sorted), or -1 if `f` is not
  /// a partial homomorphism of size <= k (such positions are immediate
  /// Spoiler wins).
  int IdOf(PartialHom f) const;

  /// True iff `f` is a member of the largest winning strategy.
  bool InLargestStrategy(PartialHom f) const;

  /// True iff the configuration (a_tuple, b_tuple) is in W^k(A, B): the
  /// correspondence is a well-defined partial function belonging to the
  /// largest winning strategy. Tuples may repeat elements.
  bool IsWinningConfiguration(const Tuple& a_tuple,
                              const Tuple& b_tuple) const;

  /// The members of the largest winning strategy, smallest first.
  std::vector<PartialHom> LargestWinningStrategy() const;

  /// Number of enumerated positions (for the complexity benchmarks).
  int64_t UniverseSize() const { return static_cast<int64_t>(homs_.size()); }

  /// Positions killed by the greatest-fixpoint elimination (the game's
  /// analogue of GAC's pruning count).
  int64_t EliminatedCount() const {
    return static_cast<int64_t>(homs_.size()) - alive_.Count();
  }

 private:
  void Enumerate();
  bool ValidExtension(const PartialHom& f, int a, int b) const;
  void Eliminate();

  const Structure& a_;
  const Structure& b_;
  int k_;

  std::vector<PartialHom> homs_;
  std::unordered_map<PartialHom, int, PartialHomHash> id_;
  Bitset alive_;  // positions surviving elimination, packed
  // For f with |f| < k: children_[f] maps element a (not in dom f) to the
  // valid one-point extensions of f on a.
  std::vector<std::unordered_map<int, std::vector<int>>> children_;
  // Tuples of A indexed by participating element (deduplicated).
  std::vector<std::vector<std::pair<int, const Tuple*>>> tuples_on_;
};

/// Proposition 5.3 building block: true iff the family of all partial
/// homomorphisms from `a` to `b` with exactly i-1 elements in their domain
/// has the i-forth property (every such map extends to any further
/// element). With the CSP <-> homomorphism conversion this *is*
/// i-consistency.
bool HasIForthProperty(const Structure& a, const Structure& b, int i);

/// True iff HasIForthProperty holds for every i <= k (strong
/// k-consistency of the pair, Proposition 5.3).
bool PairIsStronglyKConsistent(const Structure& a, const Structure& b,
                               int k);

}  // namespace cspdb

#endif  // CSPDB_GAMES_PEBBLE_GAME_H_
