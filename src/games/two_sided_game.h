// The two-sided k-pebble game: the back-and-forth companion of the
// existential game of Section 4. The Duplicator maintains partial
// *isomorphisms* and must answer Spoiler moves played on either
// structure; a winning strategy characterizes equivalence in the
// k-variable infinitary logic L^k_{inf,omega} that Section 4 situates
// Datalog inside. Computed, like the existential game, by
// greatest-fixpoint elimination over the position universe.

#ifndef CSPDB_GAMES_TWO_SIDED_GAME_H_
#define CSPDB_GAMES_TWO_SIDED_GAME_H_

#include "games/pebble_game.h"
#include "relational/structure.h"

namespace cspdb {

/// The two-sided (back-and-forth) k-pebble game on A and B.
class TwoSidedPebbleGame {
 public:
  /// Requires k >= 1 and matching vocabularies.
  TwoSidedPebbleGame(const Structure& a, const Structure& b, int k);

  int k() const { return k_; }

  /// True iff the Duplicator wins: there is a nonempty family of partial
  /// isomorphisms of size <= k, closed under subfunctions, with the
  /// two-sided forth property (every f with |f| < k extends on any
  /// further element of A *and* onto any further element of B).
  bool DuplicatorWins() const;

  /// Number of enumerated positions (partial isomorphisms).
  int64_t UniverseSize() const { return static_cast<int64_t>(homs_.size()); }

  /// Membership of a partial map in the largest winning family.
  bool InLargestFamily(PartialHom f) const;

 private:
  void Enumerate();
  bool ValidExtension(const PartialHom& f, int a, int b) const;
  void Eliminate();

  const Structure& a_;
  const Structure& b_;
  int k_;

  std::vector<PartialHom> homs_;
  std::unordered_map<PartialHom, int, PartialHomHash> id_;
  std::vector<char> alive_;
  std::vector<std::unordered_map<int, std::vector<int>>> children_a_;
  std::vector<std::unordered_map<int, std::vector<int>>> children_b_;
  std::vector<std::vector<std::pair<int, const Tuple*>>> a_tuples_on_;
  std::vector<std::vector<std::pair<int, const Tuple*>>> b_tuples_on_;
};

/// Convenience: do A and B satisfy the same sentences of the k-variable
/// infinitary logic (Duplicator wins the two-sided game)?
bool KVariableEquivalent(const Structure& a, const Structure& b, int k);

}  // namespace cspdb

#endif  // CSPDB_GAMES_TWO_SIDED_GAME_H_
