// CNF formulas and their encoding as homomorphism/CSP instances over a
// Boolean template (paper, Section 3: Boolean structures B make CSP(B) a
// generalized satisfiability problem in the sense of Schaefer).

#ifndef CSPDB_BOOLEAN_CNF_H_
#define CSPDB_BOOLEAN_CNF_H_

#include <string>
#include <vector>

#include "relational/structure.h"

namespace cspdb {

/// A literal: variable id plus sign.
struct Literal {
  int var = 0;
  bool positive = true;
};

/// A disjunction of literals.
struct Clause {
  std::vector<Literal> literals;
};

/// A CNF formula over variables 0..num_variables-1.
struct CnfFormula {
  int num_variables = 0;
  std::vector<Clause> clauses;

  /// True if the 0/1 `assignment` satisfies every clause.
  bool Evaluate(const std::vector<int>& assignment) const;

  /// At most one positive literal per clause.
  bool IsHorn() const;

  /// At most one negative literal per clause.
  bool IsDualHorn() const;

  /// Every clause has at most two literals.
  bool Is2Cnf() const;

  /// Largest clause size (0 if no clauses).
  int MaxClauseSize() const;

  std::string ToString() const;
};

/// The vocabulary of the CNF encoding for clauses of up to
/// `max_clause_size` literals: relation OR_<j>_<r> of arity r holds the
/// variable tuples of r-literal clauses whose first j literals are
/// negated (0 <= j <= r).
Vocabulary CnfVocabulary(int max_clause_size);

/// The Horn fragment of CnfVocabulary: only shapes with at most one
/// positive literal (j >= r-1).
Vocabulary HornVocabulary(int max_clause_size);

/// The Boolean template over `voc` (a subset of some CnfVocabulary):
/// domain {0, 1}, each OR_<j>_<r> containing exactly the satisfying
/// assignments of the clause shape. CSP(A_phi, template) is
/// satisfiability of phi.
Structure SatTemplateOver(const Vocabulary& voc);

/// SatTemplateOver(CnfVocabulary(max_clause_size)).
Structure SatTemplate(int max_clause_size);

/// SatTemplateOver(HornVocabulary(max_clause_size)) — a min-closed
/// template.
Structure HornTemplate(int max_clause_size);

/// The 2-CNF template SatTemplate(2) — a majority-closed template.
Structure TwoSatTemplate();

/// The instance structure A_phi over `voc`: one tuple per clause with
/// negated literals listed first. Every clause shape must exist in `voc`
/// and clauses must be nonempty.
Structure CnfToStructure(const CnfFormula& phi, const Vocabulary& voc);

}  // namespace cspdb

#endif  // CSPDB_BOOLEAN_CNF_H_
