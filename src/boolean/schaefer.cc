#include "boolean/schaefer.h"

#include <algorithm>

#include "boolean/affine_sat.h"
#include "boolean/cnf.h"
#include "boolean/two_sat.h"
#include "consistency/arc_consistency.h"
#include "csp/convert.h"
#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {
namespace {

int OpAnd(const int* x) { return x[0] & x[1]; }
int OpOr(const int* x) { return x[0] | x[1]; }
int OpMajority(const int* x) { return (x[0] + x[1] + x[2]) >= 2 ? 1 : 0; }
int OpXor3(const int* x) { return x[0] ^ x[1] ^ x[2]; }

bool ContainsConstantTuple(const std::vector<Tuple>& tuples, int arity,
                           int value) {
  Tuple constant(arity, value);
  for (const Tuple& t : tuples) {
    if (t == constant) return true;
  }
  return false;
}

// Enumerates {0,1}^arity.
std::vector<Tuple> AllBooleanTuples(int arity) {
  std::vector<Tuple> out;
  Tuple t(arity, 0);
  while (true) {
    out.push_back(t);
    int pos = arity - 1;
    while (pos >= 0 && ++t[pos] == 2) t[pos--] = 0;
    if (pos < 0) break;
  }
  return out;
}

// A <=2-literal clause over tuple positions.
struct PositionClause {
  // Parallel vectors: positions and required values (the clause is
  // "some position takes its value").
  std::vector<int> positions;
  std::vector<int> values;

  bool SatisfiedBy(const Tuple& t) const {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (t[positions[i]] == values[i]) return true;
    }
    return false;
  }
};

// All <=2-literal clauses implied by every tuple of R (arity r).
std::vector<PositionClause> ImpliedBinaryClauses(
    const std::vector<Tuple>& tuples, int arity) {
  std::vector<PositionClause> implied;
  auto consider = [&](PositionClause clause) {
    for (const Tuple& t : tuples) {
      if (!clause.SatisfiedBy(t)) return;
    }
    implied.push_back(std::move(clause));
  };
  for (int p = 0; p < arity; ++p) {
    for (int v = 0; v < 2; ++v) consider({{p}, {v}});
  }
  for (int p = 0; p < arity; ++p) {
    for (int q = p + 1; q < arity; ++q) {
      for (int vp = 0; vp < 2; ++vp) {
        for (int vq = 0; vq < 2; ++vq) consider({{p, q}, {vp, vq}});
      }
    }
  }
  return implied;
}

// All XOR equations (subset of positions, rhs) implied by every tuple.
std::vector<std::pair<std::vector<int>, int>> ImpliedXorEquations(
    const std::vector<Tuple>& tuples, int arity) {
  std::vector<std::pair<std::vector<int>, int>> implied;
  for (int mask = 0; mask < (1 << arity); ++mask) {
    std::vector<int> positions;
    for (int p = 0; p < arity; ++p) {
      if (mask & (1 << p)) positions.push_back(p);
    }
    for (int rhs = 0; rhs < 2; ++rhs) {
      bool holds = true;
      for (const Tuple& t : tuples) {
        int sum = 0;
        for (int p : positions) sum ^= t[p];
        if (sum != rhs) {
          holds = false;
          break;
        }
      }
      if (holds) implied.push_back({positions, rhs});
    }
  }
  return implied;
}

}  // namespace

bool ClosedUnder(const std::vector<Tuple>& tuples, int arity_of_op,
                 int (*op)(const int*)) {
  if (tuples.empty()) return true;
  int arity = static_cast<int>(tuples[0].size());
  TupleSet set(tuples.begin(), tuples.end());
  // Enumerate arity_of_op-tuples of rows (with repetition).
  std::vector<int> pick(arity_of_op, 0);
  int rows = static_cast<int>(tuples.size());
  std::vector<int> args(arity_of_op);
  while (true) {
    Tuple combined(arity);
    for (int c = 0; c < arity; ++c) {
      for (int j = 0; j < arity_of_op; ++j) args[j] = tuples[pick[j]][c];
      combined[c] = op(args.data());
    }
    if (set.count(combined) == 0) return false;
    int pos = arity_of_op - 1;
    while (pos >= 0 && ++pick[pos] == rows) pick[pos--] = 0;
    if (pos < 0) break;
  }
  return true;
}

std::string SchaeferClassification::ToString() const {
  std::string out;
  auto add = [&out](bool flag, const char* name) {
    if (flag) {
      if (!out.empty()) out += ",";
      out += name;
    }
  };
  add(zero_valid, "0-valid");
  add(one_valid, "1-valid");
  add(horn, "horn");
  add(dual_horn, "dual-horn");
  add(bijunctive, "bijunctive");
  add(affine, "affine");
  if (out.empty()) out = "NP-complete";
  return out;
}

SchaeferClassification ClassifyBooleanTemplate(const Structure& b) {
  CSPDB_CHECK_MSG(b.domain_size() == 2,
                  "Schaefer classification requires a Boolean template");
  SchaeferClassification result;
  result.zero_valid = result.one_valid = true;
  result.horn = result.dual_horn = true;
  result.bijunctive = result.affine = true;
  for (int r = 0; r < b.vocabulary().size(); ++r) {
    const std::vector<Tuple>& tuples = b.tuples(r);
    int arity = b.vocabulary().symbol(r).arity;
    result.zero_valid &= ContainsConstantTuple(tuples, arity, 0);
    result.one_valid &= ContainsConstantTuple(tuples, arity, 1);
    result.horn &= ClosedUnder(tuples, 2, OpAnd);
    result.dual_horn &= ClosedUnder(tuples, 2, OpOr);
    result.bijunctive &= ClosedUnder(tuples, 3, OpMajority);
    result.affine &= ClosedUnder(tuples, 3, OpXor3);
  }
  return result;
}

BooleanSolveResult SolveBooleanCsp(const Structure& a, const Structure& b) {
  CSPDB_CHECK(a.vocabulary() == b.vocabulary());
  SchaeferClassification cls = ClassifyBooleanTemplate(b);
  BooleanSolveResult result;
  if (!cls.Tractable()) return result;
  result.decided = true;

  if (cls.zero_valid || cls.one_valid) {
    result.model.assign(a.domain_size(), cls.zero_valid ? 0 : 1);
    result.solvable = IsHomomorphism(a, b, result.model);
    CSPDB_CHECK(result.solvable);  // guaranteed by 0/1-validity
    return result;
  }

  if (cls.horn || cls.dual_horn) {
    // GAC decides for semilattice-closed templates; the min (resp. max)
    // of the surviving domains is a solution.
    CspInstance csp = ToCspInstance(a, b);
    AcResult ac = EnforceGac(csp);
    if (!ac.consistent) {
      result.solvable = false;
      return result;
    }
    result.model.assign(a.domain_size(), 0);
    for (int v = 0; v < a.domain_size(); ++v) {
      if (cls.horn) {
        result.model[v] = ac.domains[v][0] ? 0 : 1;
      } else {
        result.model[v] = ac.domains[v][1] ? 1 : 0;
      }
    }
    result.solvable = true;
    CSPDB_CHECK(IsHomomorphism(a, b, result.model));
    return result;
  }

  if (cls.bijunctive) {
    // Majority-closed relations are conjunctions of their implied
    // <=2-literal clauses (2-decomposability); solve the resulting 2-CNF.
    CnfFormula phi;
    phi.num_variables = a.domain_size();
    for (int r = 0; r < a.vocabulary().size(); ++r) {
      int arity = a.vocabulary().symbol(r).arity;
      std::vector<PositionClause> implied =
          ImpliedBinaryClauses(b.tuples(r), arity);
      // Exactness check (theory guarantee for majority-closed relations).
      for (const Tuple& candidate : AllBooleanTuples(arity)) {
        bool all = true;
        for (const PositionClause& c : implied) {
          if (!c.SatisfiedBy(candidate)) {
            all = false;
            break;
          }
        }
        CSPDB_CHECK(all == b.HasTuple(r, candidate));
      }
      for (const Tuple& scope : a.tuples(r)) {
        for (const PositionClause& c : implied) {
          Clause clause;
          for (std::size_t i = 0; i < c.positions.size(); ++i) {
            clause.literals.push_back(
                {scope[c.positions[i]], c.values[i] == 1});
          }
          if (clause.literals.empty()) {
            // Implied empty clause: the relation is empty but used.
            result.solvable = false;
            return result;
          }
          phi.clauses.push_back(std::move(clause));
        }
      }
    }
    auto model = SolveTwoSat(phi);
    result.solvable = model.has_value();
    if (model.has_value()) {
      result.model = *model;
      CSPDB_CHECK(IsHomomorphism(a, b, result.model));
    }
    return result;
  }

  // Affine: each relation is the solution set of its implied XOR
  // equations; solve the union system by Gaussian elimination.
  XorSystem system;
  system.num_variables = a.domain_size();
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    int arity = a.vocabulary().symbol(r).arity;
    auto implied = ImpliedXorEquations(b.tuples(r), arity);
    for (const Tuple& candidate : AllBooleanTuples(arity)) {
      bool all = true;
      for (const auto& [positions, rhs] : implied) {
        int sum = 0;
        for (int p : positions) sum ^= candidate[p];
        if (sum != rhs) {
          all = false;
          break;
        }
      }
      CSPDB_CHECK(all == b.HasTuple(r, candidate));
    }
    for (const Tuple& scope : a.tuples(r)) {
      for (const auto& [positions, rhs] : implied) {
        XorClause clause;
        clause.rhs = rhs;
        for (int p : positions) clause.vars.push_back(scope[p]);
        system.clauses.push_back(std::move(clause));
      }
    }
  }
  auto model = SolveXor(system);
  result.solvable = model.has_value();
  if (model.has_value()) {
    result.model = *model;
    CSPDB_CHECK(IsHomomorphism(a, b, result.model));
  }
  return result;
}

}  // namespace cspdb
