#include "boolean/dpll.h"

#include <algorithm>

#include "util/check.h"

namespace cspdb {
namespace {

// Assignment values.
constexpr int kFree = -1;

class Dpll {
 public:
  explicit Dpll(const CnfFormula& phi)
      : phi_(phi), assignment_(phi.num_variables, kFree) {}

  std::optional<std::vector<int>> Solve(DpllStats* stats) {
    stats_ = DpllStats{};
    bool sat = Search();
    if (stats != nullptr) *stats = stats_;
    if (!sat) return std::nullopt;
    std::vector<int> model(phi_.num_variables, 0);
    for (int v = 0; v < phi_.num_variables; ++v) {
      model[v] = assignment_[v] == 1 ? 1 : 0;
    }
    CSPDB_CHECK(phi_.Evaluate(model));
    return model;
  }

 private:
  // Clause state under the current assignment.
  enum class ClauseState { kSatisfied, kConflict, kUnit, kOpen };

  ClauseState Examine(const Clause& clause, Literal* unit) const {
    int free_count = 0;
    const Literal* free_lit = nullptr;
    for (const Literal& lit : clause.literals) {
      int value = assignment_[lit.var];
      if (value == kFree) {
        ++free_count;
        free_lit = &lit;
      } else if ((value == 1) == lit.positive) {
        return ClauseState::kSatisfied;
      }
    }
    if (free_count == 0) return ClauseState::kConflict;
    if (free_count == 1) {
      *unit = *free_lit;
      return ClauseState::kUnit;
    }
    return ClauseState::kOpen;
  }

  // Unit propagation to fixpoint. Records assigned variables on the
  // trail; returns false on conflict.
  bool Propagate(std::vector<int>* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& clause : phi_.clauses) {
        Literal unit;
        switch (Examine(clause, &unit)) {
          case ClauseState::kConflict:
            ++stats_.conflicts;
            return false;
          case ClauseState::kUnit:
            assignment_[unit.var] = unit.positive ? 1 : 0;
            trail->push_back(unit.var);
            ++stats_.propagations;
            changed = true;
            break;
          default:
            break;
        }
      }
    }
    return true;
  }

  // Picks the free variable occurring most often in non-satisfied
  // clauses, preferring its majority polarity. Returns kFree if none.
  Literal PickBranch() const {
    std::vector<int> pos(phi_.num_variables, 0);
    std::vector<int> neg(phi_.num_variables, 0);
    for (const Clause& clause : phi_.clauses) {
      Literal unused;
      if (Examine(clause, &unused) == ClauseState::kSatisfied) continue;
      for (const Literal& lit : clause.literals) {
        if (assignment_[lit.var] != kFree) continue;
        (lit.positive ? pos : neg)[lit.var] += 1;
      }
    }
    int best = kFree;
    for (int v = 0; v < phi_.num_variables; ++v) {
      if (assignment_[v] != kFree) continue;
      if (best == kFree ||
          pos[v] + neg[v] > pos[best] + neg[best]) {
        best = v;
      }
    }
    if (best == kFree) return {kFree, true};
    return {best, pos[best] >= neg[best]};
  }

  bool Search() {
    std::vector<int> trail;
    if (!Propagate(&trail)) {
      Undo(trail);
      return false;
    }
    Literal branch = PickBranch();
    if (branch.var == kFree) return true;  // everything determined
    ++stats_.decisions;
    for (bool first : {true, false}) {
      bool polarity = first ? branch.positive : !branch.positive;
      assignment_[branch.var] = polarity ? 1 : 0;
      std::vector<int> subtrail{branch.var};
      if (Search()) return true;
      Undo(subtrail);
    }
    Undo(trail);
    return false;
  }

  void Undo(const std::vector<int>& trail) {
    for (int v : trail) assignment_[v] = kFree;
  }

  const CnfFormula& phi_;
  std::vector<int> assignment_;
  DpllStats stats_;
};

}  // namespace

std::optional<std::vector<int>> SolveDpll(const CnfFormula& phi,
                                          DpllStats* stats) {
  for (const Clause& clause : phi.clauses) {
    if (clause.literals.empty()) {
      if (stats != nullptr) *stats = DpllStats{};
      return std::nullopt;  // empty clause: trivially unsatisfiable
    }
  }
  Dpll solver(phi);
  return solver.Solve(stats);
}

}  // namespace cspdb
