// Affine satisfiability: systems of XOR equations over GF(2) solved by
// Gaussian elimination — Schaefer's affine class (paper, Section 3; the
// group-theoretic tractability condition of Feder-Vardi).

#ifndef CSPDB_BOOLEAN_AFFINE_SAT_H_
#define CSPDB_BOOLEAN_AFFINE_SAT_H_

#include <optional>
#include <vector>

namespace cspdb {

/// One equation: sum of `vars` (mod 2, duplicates cancel) equals `rhs`.
struct XorClause {
  std::vector<int> vars;
  int rhs = 0;  // 0 or 1
};

/// A linear system over GF(2).
struct XorSystem {
  int num_variables = 0;
  std::vector<XorClause> clauses;

  /// True if the 0/1 assignment satisfies every equation.
  bool Evaluate(const std::vector<int>& assignment) const;
};

/// Gaussian elimination. Returns a solution (free variables set to 0), or
/// std::nullopt if the system is inconsistent.
std::optional<std::vector<int>> SolveXor(const XorSystem& system);

}  // namespace cspdb

#endif  // CSPDB_BOOLEAN_AFFINE_SAT_H_
