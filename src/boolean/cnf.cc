#include "boolean/cnf.h"

#include <algorithm>

#include "util/check.h"

namespace cspdb {
namespace {

std::string ShapeName(int negated, int size) {
  return "OR_" + std::to_string(negated) + "_" + std::to_string(size);
}

// Adds to `b` the satisfying assignments of the clause shape with
// `negated` leading negative literals out of `size`.
void FillShape(Structure* b, int rel, int negated, int size) {
  Tuple t(size, 0);
  while (true) {
    // The unique falsifying assignment sets the first `negated` variables
    // to 1 and the rest to 0.
    bool falsifies = true;
    for (int i = 0; i < size; ++i) {
      if (t[i] != (i < negated ? 1 : 0)) {
        falsifies = false;
        break;
      }
    }
    if (!falsifies) b->AddTuple(rel, t);
    int pos = size - 1;
    while (pos >= 0 && ++t[pos] == 2) t[pos--] = 0;
    if (pos < 0) break;
  }
}

}  // namespace

bool CnfFormula::Evaluate(const std::vector<int>& assignment) const {
  CSPDB_CHECK(static_cast<int>(assignment.size()) == num_variables);
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    for (const Literal& lit : clause.literals) {
      int value = assignment[lit.var];
      CSPDB_CHECK(value == 0 || value == 1);
      if ((value == 1) == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool CnfFormula::IsHorn() const {
  for (const Clause& clause : clauses) {
    int positives = 0;
    for (const Literal& lit : clause.literals) {
      if (lit.positive) ++positives;
    }
    if (positives > 1) return false;
  }
  return true;
}

bool CnfFormula::IsDualHorn() const {
  for (const Clause& clause : clauses) {
    int negatives = 0;
    for (const Literal& lit : clause.literals) {
      if (!lit.positive) ++negatives;
    }
    if (negatives > 1) return false;
  }
  return true;
}

bool CnfFormula::Is2Cnf() const {
  for (const Clause& clause : clauses) {
    if (clause.literals.size() > 2) return false;
  }
  return true;
}

int CnfFormula::MaxClauseSize() const {
  int m = 0;
  for (const Clause& clause : clauses) {
    m = std::max(m, static_cast<int>(clause.literals.size()));
  }
  return m;
}

std::string CnfFormula::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " & ";
    out += "(";
    for (std::size_t j = 0; j < clauses[i].literals.size(); ++j) {
      if (j > 0) out += " | ";
      const Literal& lit = clauses[i].literals[j];
      if (!lit.positive) out += "~";
      out += "x" + std::to_string(lit.var);
    }
    out += ")";
  }
  return out;
}

Vocabulary CnfVocabulary(int max_clause_size) {
  CSPDB_CHECK(max_clause_size >= 1);
  Vocabulary voc;
  for (int size = 1; size <= max_clause_size; ++size) {
    for (int negated = 0; negated <= size; ++negated) {
      voc.AddSymbol(ShapeName(negated, size), size);
    }
  }
  return voc;
}

Vocabulary HornVocabulary(int max_clause_size) {
  CSPDB_CHECK(max_clause_size >= 1);
  Vocabulary voc;
  for (int size = 1; size <= max_clause_size; ++size) {
    for (int negated = size - 1; negated <= size; ++negated) {
      voc.AddSymbol(ShapeName(negated, size), size);
    }
  }
  return voc;
}

Structure SatTemplateOver(const Vocabulary& voc) {
  Structure b(voc, 2);
  b.SetElementName(0, "false");
  b.SetElementName(1, "true");
  for (int r = 0; r < voc.size(); ++r) {
    const std::string& name = voc.symbol(r).name;
    // Parse "OR_<j>_<r>".
    CSPDB_CHECK_MSG(name.rfind("OR_", 0) == 0,
                    "not a CNF shape relation: " + name);
    std::size_t second = name.find('_', 3);
    CSPDB_CHECK(second != std::string::npos);
    int negated = std::stoi(name.substr(3, second - 3));
    int size = std::stoi(name.substr(second + 1));
    CSPDB_CHECK(size == voc.symbol(r).arity);
    FillShape(&b, r, negated, size);
  }
  return b;
}

Structure SatTemplate(int max_clause_size) {
  return SatTemplateOver(CnfVocabulary(max_clause_size));
}

Structure HornTemplate(int max_clause_size) {
  return SatTemplateOver(HornVocabulary(max_clause_size));
}

Structure TwoSatTemplate() { return SatTemplate(2); }

Structure CnfToStructure(const CnfFormula& phi, const Vocabulary& voc) {
  Structure a(voc, phi.num_variables);
  for (const Clause& clause : phi.clauses) {
    CSPDB_CHECK_MSG(!clause.literals.empty(),
                    "empty clause has no CNF-shape encoding");
    Tuple vars;
    vars.reserve(clause.literals.size());
    int negated = 0;
    for (const Literal& lit : clause.literals) {
      if (!lit.positive) {
        vars.push_back(lit.var);
        ++negated;
      }
    }
    for (const Literal& lit : clause.literals) {
      if (lit.positive) vars.push_back(lit.var);
    }
    int rel = voc.IndexOf(
        ShapeName(negated, static_cast<int>(clause.literals.size())));
    CSPDB_CHECK_MSG(rel >= 0, "clause shape missing from vocabulary");
    a.AddTuple(rel, vars);
  }
  return a;
}

}  // namespace cspdb
