// The Hell-Nešetřil dichotomy for H-coloring (paper, Section 3): for an
// undirected template H, CSP(H) is polynomial iff H is 2-colorable (or
// has a loop), and NP-complete otherwise. Graphs here are relational
// structures over the single binary symbol "E", kept symmetric.

#ifndef CSPDB_BOOLEAN_HELL_NESETRIL_H_
#define CSPDB_BOOLEAN_HELL_NESETRIL_H_

#include <utility>
#include <vector>

#include "relational/structure.h"

namespace cspdb {

/// The vocabulary {E/2} shared by all graph structures.
Vocabulary GraphVocabulary();

/// An undirected graph on n vertices: each listed edge is added in both
/// directions. Loops are allowed.
Structure MakeUndirectedGraph(int n,
                              const std::vector<std::pair<int, int>>& edges);

/// The clique K_k (so CSP(K_k) is k-colorability).
Structure CliqueGraph(int k);

/// The cycle C_n (n >= 1; C_1 is a loop vertex).
Structure CycleGraph(int n);

/// The path P_n with n vertices and n-1 edges.
Structure PathGraph(int n);

/// True if every edge is present in both directions.
bool IsSymmetric(const Structure& g);

/// True if some vertex has a self-loop.
bool HasLoop(const Structure& g);

/// True if the graph is 2-colorable (BFS bipartition; loops make it
/// false).
bool IsBipartite(const Structure& g);

/// Outcome of the dichotomy-aware H-coloring decision.
struct HColoringResult {
  /// False if H is on the NP-complete side (non-bipartite, loopless);
  /// the caller should fall back to FindHomomorphism.
  bool tractable = false;
  bool colorable = false;
  std::vector<int> coloring;  ///< a homomorphism a -> h when colorable
};

/// Decides whether `a` is H-colorable for the polynomial cases: H with a
/// loop (always colorable), H edgeless (colorable iff `a` is edgeless and
/// H is nonempty or `a` is empty), H bipartite with an edge (colorable
/// iff `a` is 2-colorable). Both structures must be symmetric.
HColoringResult DecideHColoring(const Structure& a, const Structure& h);

}  // namespace cspdb

#endif  // CSPDB_BOOLEAN_HELL_NESETRIL_H_
