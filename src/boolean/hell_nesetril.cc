#include "boolean/hell_nesetril.h"

#include <deque>

#include "relational/homomorphism.h"
#include "util/check.h"

namespace cspdb {
namespace {

// Adjacency lists of a symmetric structure over {E/2}.
std::vector<std::vector<int>> Adjacency(const Structure& g) {
  std::vector<std::vector<int>> adj(g.domain_size());
  int e = g.vocabulary().IndexOf("E");
  CSPDB_CHECK(e >= 0);
  for (const Tuple& t : g.tuples(e)) adj[t[0]].push_back(t[1]);
  return adj;
}

// BFS bipartition; returns sides (0/1 per vertex) or empty on failure.
std::vector<int> Bipartition(const Structure& g) {
  std::vector<std::vector<int>> adj = Adjacency(g);
  std::vector<int> side(g.domain_size(), -1);
  for (int start = 0; start < g.domain_size(); ++start) {
    if (side[start] != -1) continue;
    side[start] = 0;
    std::deque<int> queue{start};
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      for (int v : adj[u]) {
        if (v == u) return {};  // loop
        if (side[v] == -1) {
          side[v] = 1 - side[u];
          queue.push_back(v);
        } else if (side[v] == side[u]) {
          return {};
        }
      }
    }
  }
  return side;
}

}  // namespace

Vocabulary GraphVocabulary() {
  Vocabulary voc;
  voc.AddSymbol("E", 2);
  return voc;
}

Structure MakeUndirectedGraph(
    int n, const std::vector<std::pair<int, int>>& edges) {
  Structure g(GraphVocabulary(), n);
  for (const auto& [u, v] : edges) {
    g.AddTuple(0, {u, v});
    g.AddTuple(0, {v, u});
  }
  return g;
}

Structure CliqueGraph(int k) {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < k; ++u) {
    for (int v = u + 1; v < k; ++v) edges.push_back({u, v});
  }
  return MakeUndirectedGraph(k, edges);
}

Structure CycleGraph(int n) {
  CSPDB_CHECK(n >= 1);
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) edges.push_back({u, (u + 1) % n});
  return MakeUndirectedGraph(n, edges);
}

Structure PathGraph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u + 1 < n; ++u) edges.push_back({u, u + 1});
  return MakeUndirectedGraph(n, edges);
}

bool IsSymmetric(const Structure& g) {
  int e = g.vocabulary().IndexOf("E");
  CSPDB_CHECK(e >= 0);
  for (const Tuple& t : g.tuples(e)) {
    if (!g.HasTuple(e, {t[1], t[0]})) return false;
  }
  return true;
}

bool HasLoop(const Structure& g) {
  int e = g.vocabulary().IndexOf("E");
  CSPDB_CHECK(e >= 0);
  for (const Tuple& t : g.tuples(e)) {
    if (t[0] == t[1]) return true;
  }
  return false;
}

bool IsBipartite(const Structure& g) { return !Bipartition(g).empty() ||
                                              g.domain_size() == 0; }

HColoringResult DecideHColoring(const Structure& a, const Structure& h) {
  CSPDB_CHECK(IsSymmetric(a));
  CSPDB_CHECK(IsSymmetric(h));
  HColoringResult result;
  int e = h.vocabulary().IndexOf("E");
  CSPDB_CHECK(e >= 0);

  // Case 1: H has a loop — map everything onto the looped vertex.
  if (HasLoop(h)) {
    result.tractable = true;
    int loop_vertex = -1;
    for (const Tuple& t : h.tuples(e)) {
      if (t[0] == t[1]) {
        loop_vertex = t[0];
        break;
      }
    }
    result.colorable = true;
    result.coloring.assign(a.domain_size(), loop_vertex);
    return result;
  }

  // Case 2: H edgeless — A must be edgeless (and H nonempty unless A is
  // empty).
  if (h.tuples(e).empty()) {
    result.tractable = true;
    int ea = a.vocabulary().IndexOf("E");
    bool a_edgeless = a.tuples(ea).empty();
    if (a.domain_size() == 0) {
      result.colorable = true;
      return result;
    }
    if (!a_edgeless || h.domain_size() == 0) {
      result.colorable = false;
      return result;
    }
    result.colorable = true;
    result.coloring.assign(a.domain_size(), 0);
    return result;
  }

  // Case 3: H bipartite with an edge — A is H-colorable iff 2-colorable.
  std::vector<int> h_sides = Bipartition(h);
  if (!h_sides.empty()) {
    result.tractable = true;
    std::vector<int> a_sides = Bipartition(a);
    if (a_sides.empty() && a.domain_size() > 0) {
      result.colorable = false;
      return result;
    }
    // Map A's sides onto the endpoints of one H edge.
    const Tuple& edge = h.tuples(e)[0];
    result.colorable = true;
    result.coloring.assign(a.domain_size(), 0);
    for (int v = 0; v < a.domain_size(); ++v) {
      result.coloring[v] = a_sides[v] == 0 ? edge[0] : edge[1];
    }
    CSPDB_CHECK(IsHomomorphism(a, h, result.coloring));
    return result;
  }

  // Non-bipartite loopless H: the NP-complete side.
  return result;
}

}  // namespace cspdb
