// 2-SAT in linear time via strongly connected components of the
// implication graph — the bijunctive case of Schaefer's dichotomy
// (paper, Section 3).

#ifndef CSPDB_BOOLEAN_TWO_SAT_H_
#define CSPDB_BOOLEAN_TWO_SAT_H_

#include <optional>
#include <vector>

#include "boolean/cnf.h"

namespace cspdb {

/// Decides a 2-CNF formula and returns a model, or std::nullopt if
/// unsatisfiable. Requires phi.Is2Cnf() and no empty clauses.
std::optional<std::vector<int>> SolveTwoSat(const CnfFormula& phi);

}  // namespace cspdb

#endif  // CSPDB_BOOLEAN_TWO_SAT_H_
