// Schaefer's dichotomy (paper, Section 3): a Boolean template B makes
// CSP(B) polynomial iff B is 0-valid, 1-valid, Horn (min-closed),
// dual-Horn (max-closed), bijunctive (majority-closed), or affine
// (closed under x XOR y XOR z); otherwise CSP(B) is NP-complete.
//
// The classifier checks the closure (polymorphism) conditions directly on
// the template's relations; the solver dispatches to the matching
// dedicated polynomial algorithm and verifies the model it returns.

#ifndef CSPDB_BOOLEAN_SCHAEFER_H_
#define CSPDB_BOOLEAN_SCHAEFER_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/structure.h"

namespace cspdb {

/// Which of Schaefer's six tractable classes a Boolean template lies in.
struct SchaeferClassification {
  bool zero_valid = false;  ///< every relation contains the all-0 tuple
  bool one_valid = false;   ///< every relation contains the all-1 tuple
  bool horn = false;        ///< every relation closed under AND (min)
  bool dual_horn = false;   ///< every relation closed under OR (max)
  bool bijunctive = false;  ///< every relation closed under majority
  bool affine = false;      ///< every relation closed under x ^ y ^ z

  /// True if any class applies (CSP(B) is in P).
  bool Tractable() const {
    return zero_valid || one_valid || horn || dual_horn || bijunctive ||
           affine;
  }

  std::string ToString() const;
};

/// Classifies a Boolean template (domain must be exactly {0, 1}).
SchaeferClassification ClassifyBooleanTemplate(const Structure& b);

/// Outcome of the dichotomy-aware solver.
struct BooleanSolveResult {
  /// False if the template is in no tractable class (caller should fall
  /// back to general search — the NP-complete side of the dichotomy).
  bool decided = false;
  bool solvable = false;
  std::vector<int> model;  ///< a homomorphism A -> B when solvable
};

/// Decides CSP(A, B) for a tractable Boolean template by the matching
/// polynomial algorithm: constant maps for 0/1-valid; GAC plus the
/// min/max assignment for Horn/dual-Horn; reduction to 2-SAT for
/// bijunctive; reduction to GF(2) Gaussian elimination for affine.
BooleanSolveResult SolveBooleanCsp(const Structure& a, const Structure& b);

/// True if relation `tuples` (over {0,1}) is closed under the coordinate-
/// wise application of `op` to `arity_of_op` tuples. Exposed for the
/// property tests.
bool ClosedUnder(const std::vector<Tuple>& tuples, int arity_of_op,
                 int (*op)(const int*));

}  // namespace cspdb

#endif  // CSPDB_BOOLEAN_SCHAEFER_H_
