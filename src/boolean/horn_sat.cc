#include "boolean/horn_sat.h"

#include "util/check.h"

namespace cspdb {

std::optional<std::vector<int>> SolveHorn(const CnfFormula& phi) {
  CSPDB_CHECK_MSG(phi.IsHorn(), "SolveHorn requires a Horn formula");
  std::vector<int> model(phi.num_variables, 0);
  // Fixpoint: while some clause is violated, it must be forced.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : phi.clauses) {
      bool satisfied = false;
      int positive_var = -1;
      for (const Literal& lit : clause.literals) {
        if ((model[lit.var] == 1) == lit.positive) {
          satisfied = true;
          break;
        }
        if (lit.positive) positive_var = lit.var;
      }
      if (satisfied) continue;
      if (positive_var < 0) return std::nullopt;  // all-negative, violated
      model[positive_var] = 1;
      changed = true;
    }
  }
  CSPDB_CHECK(phi.Evaluate(model));
  return model;
}

}  // namespace cspdb
