// Horn satisfiability by unit propagation: the classic tractable case
// Schaefer's dichotomy explains and a template whose complement is
// Datalog-expressible (paper, Sections 3-5).

#ifndef CSPDB_BOOLEAN_HORN_SAT_H_
#define CSPDB_BOOLEAN_HORN_SAT_H_

#include <optional>
#include <vector>

#include "boolean/cnf.h"

namespace cspdb {

/// Decides a Horn formula (<= 1 positive literal per clause) and returns
/// the minimal model, or std::nullopt if unsatisfiable. Requires
/// phi.IsHorn().
std::optional<std::vector<int>> SolveHorn(const CnfFormula& phi);

}  // namespace cspdb

#endif  // CSPDB_BOOLEAN_HORN_SAT_H_
