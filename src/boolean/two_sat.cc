#include "boolean/two_sat.h"

#include <algorithm>

#include "util/check.h"

namespace cspdb {
namespace {

// Iterative Tarjan SCC over the implication graph. Node 2v = "v false",
// 2v+1 = "v true".
class SccFinder {
 public:
  explicit SccFinder(const std::vector<std::vector<int>>& adj)
      : adj_(adj),
        index_(adj.size(), -1),
        low_(adj.size(), 0),
        on_stack_(adj.size(), 0),
        component_(adj.size(), -1) {}

  void Run() {
    for (std::size_t v = 0; v < adj_.size(); ++v) {
      if (index_[v] < 0) Visit(static_cast<int>(v));
    }
  }

  int component(int v) const { return component_[v]; }

 private:
  void Visit(int root) {
    // Explicit stack of (node, next-edge-index) frames.
    std::vector<std::pair<int, std::size_t>> frames{{root, 0}};
    while (!frames.empty()) {
      auto& [v, edge] = frames.back();
      if (edge == 0) {
        index_[v] = low_[v] = counter_++;
        stack_.push_back(v);
        on_stack_[v] = 1;
      }
      bool descended = false;
      while (edge < adj_[v].size()) {
        int w = adj_[v][edge++];
        if (index_[w] < 0) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w]) low_[v] = std::min(low_[v], index_[w]);
      }
      if (descended) continue;
      if (low_[v] == index_[v]) {
        while (true) {
          int w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = 0;
          component_[w] = num_components_;
          if (w == v) break;
        }
        ++num_components_;
      }
      int finished = v;
      frames.pop_back();
      if (!frames.empty()) {
        int parent = frames.back().first;
        low_[parent] = std::min(low_[parent], low_[finished]);
      }
    }
  }

  const std::vector<std::vector<int>>& adj_;
  std::vector<int> index_, low_;
  std::vector<char> on_stack_;
  std::vector<int> component_;
  std::vector<int> stack_;
  int counter_ = 0;
  int num_components_ = 0;
};

}  // namespace

std::optional<std::vector<int>> SolveTwoSat(const CnfFormula& phi) {
  CSPDB_CHECK_MSG(phi.Is2Cnf(), "SolveTwoSat requires a 2-CNF formula");
  int n = phi.num_variables;
  std::vector<std::vector<int>> adj(2 * n);
  auto node = [](const Literal& lit) { return 2 * lit.var + (lit.positive ? 1 : 0); };
  auto negation = [](int x) { return x ^ 1; };
  for (const Clause& clause : phi.clauses) {
    CSPDB_CHECK_MSG(!clause.literals.empty(), "empty clause");
    Literal a = clause.literals[0];
    Literal b = clause.literals.size() > 1 ? clause.literals[1] : a;
    // (a | b): ~a -> b and ~b -> a.
    adj[negation(node(a))].push_back(node(b));
    adj[negation(node(b))].push_back(node(a));
  }
  SccFinder scc(adj);
  scc.Run();
  std::vector<int> model(n, 0);
  for (int v = 0; v < n; ++v) {
    int comp_false = scc.component(2 * v);
    int comp_true = scc.component(2 * v + 1);
    if (comp_false == comp_true) return std::nullopt;
    // Tarjan numbers components in reverse topological order; a literal
    // is assigned true iff its component comes earlier topologically ...
    // i.e., has the *larger* Tarjan component id for the chosen
    // convention: component finished first (smaller id) is downstream.
    model[v] = comp_true < comp_false ? 1 : 0;
  }
  CSPDB_CHECK(phi.Evaluate(model));
  return model;
}

}  // namespace cspdb
