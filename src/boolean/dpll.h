// A small complete DPLL SAT solver (unit propagation, pure-literal
// elimination, most-occurring-literal branching). Boolean satisfiability
// is the paper's flagship NP-complete CSP (Section 1, Section 3's
// generalized satisfiability); this solver closes the loop: arbitrary
// CSP instances reduce to SAT via the direct encoding in
// csp/sat_encoding.h and come back through this solver.

#ifndef CSPDB_BOOLEAN_DPLL_H_
#define CSPDB_BOOLEAN_DPLL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "boolean/cnf.h"

namespace cspdb {

/// Counters reported by the DPLL search.
struct DpllStats {
  int64_t decisions = 0;
  int64_t propagations = 0;
  int64_t conflicts = 0;
};

/// Complete DPLL. Returns a model or std::nullopt if unsatisfiable.
/// Handles empty clauses, duplicate and tautological literals.
std::optional<std::vector<int>> SolveDpll(const CnfFormula& phi,
                                          DpllStats* stats = nullptr);

}  // namespace cspdb

#endif  // CSPDB_BOOLEAN_DPLL_H_
