#include "boolean/affine_sat.h"

#include "util/check.h"

namespace cspdb {

bool XorSystem::Evaluate(const std::vector<int>& assignment) const {
  CSPDB_CHECK(static_cast<int>(assignment.size()) == num_variables);
  for (const XorClause& clause : clauses) {
    int sum = 0;
    for (int v : clause.vars) {
      CSPDB_CHECK(v >= 0 && v < num_variables);
      sum ^= assignment[v];
    }
    if (sum != (clause.rhs & 1)) return false;
  }
  return true;
}

std::optional<std::vector<int>> SolveXor(const XorSystem& system) {
  int n = system.num_variables;
  // Dense rows: n coefficient bits + rhs.
  std::vector<std::vector<char>> rows;
  for (const XorClause& clause : system.clauses) {
    std::vector<char> row(n + 1, 0);
    for (int v : clause.vars) {
      CSPDB_CHECK(v >= 0 && v < n);
      row[v] ^= 1;
    }
    row[n] = static_cast<char>(clause.rhs & 1);
    rows.push_back(std::move(row));
  }

  std::vector<int> pivot_of_col(n, -1);
  int rank = 0;
  for (int col = 0; col < n && rank < static_cast<int>(rows.size());
       ++col) {
    int pivot = -1;
    for (int r = rank; r < static_cast<int>(rows.size()); ++r) {
      if (rows[r][col]) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(rows[rank], rows[pivot]);
    for (int r = 0; r < static_cast<int>(rows.size()); ++r) {
      if (r != rank && rows[r][col]) {
        for (int c = col; c <= n; ++c) rows[r][c] ^= rows[rank][c];
      }
    }
    pivot_of_col[col] = rank;
    ++rank;
  }
  // Inconsistency: a zero row with rhs 1.
  for (const auto& row : rows) {
    bool all_zero = true;
    for (int c = 0; c < n; ++c) {
      if (row[c]) {
        all_zero = false;
        break;
      }
    }
    if (all_zero && row[n]) return std::nullopt;
  }
  std::vector<int> solution(n, 0);
  for (int col = 0; col < n; ++col) {
    if (pivot_of_col[col] >= 0) solution[col] = rows[pivot_of_col[col]][n];
  }
  CSPDB_CHECK(system.Evaluate(solution));
  return solution;
}

}  // namespace cspdb
