// Portable fixed-width SIMD over uint64_t word spans — the one place in
// the tree allowed to touch vendor intrinsics (enforced by the raw-simd
// rule in tools/lint_cspdb.py). Everything the packed kernels need is
// expressed as a handful of span primitives: 256-bit-at-a-time
// and/or/andnot, a testz-style intersection probe, batched popcount, and
// a first-set-bit scan. util/bitset.h, csp/support_masks.cc, and the
// join kernels all sit on these, so one backend switch retargets every
// hot loop.
//
// Backend selection is a compile-time decision behind the CSPDB_SIMD
// CMake option (which defines CSPDB_ENABLE_SIMD and, on x86-64, compiles
// the tree with -mavx2):
//
//   CSPDB_ENABLE_SIMD && __AVX2__              -> AVX2 (4 words / op)
//   CSPDB_ENABLE_SIMD && __aarch64__ && NEON   -> NEON (2 words / op)
//   otherwise                                  -> portable scalar
//
// The scalar implementations live in simd::scalar and are ALWAYS
// compiled, whatever the backend: they are the differential oracle the
// SIMD paths are fuzzed against (tests/simd_test.cc) and the measured
// baseline of the BM_simd_* benchmarks. The dispatched functions must be
// bit-for-bit equivalent to their scalar twins on every input.
//
// All span arguments are byte-addressed uint64_t arrays with no
// alignment requirement (unaligned loads throughout) and `n` counts
// words, not bits. Word-index arithmetic is carried in int64_t so spans
// larger than 2^25 words (2^31 bits) cannot wrap the bit index the scan
// primitives return.

#ifndef CSPDB_UTIL_SIMD_H_
#define CSPDB_UTIL_SIMD_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(CSPDB_ENABLE_SIMD) && defined(__AVX2__)
#define CSPDB_SIMD_AVX2 1
#include <immintrin.h>  // cspdb-lint: allow(raw-simd) -- the sanctioned backend header
#elif defined(CSPDB_ENABLE_SIMD) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define CSPDB_SIMD_NEON 1
#include <arm_neon.h>  // cspdb-lint: allow(raw-simd) -- the sanctioned backend header
#endif

namespace cspdb::simd {

/// Name of the backend the dispatched functions compile to, for bench
/// labels and EXPLAIN output.
inline constexpr const char* BackendName() {
#if defined(CSPDB_SIMD_AVX2)
  return "avx2";
#elif defined(CSPDB_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------------------
// Scalar oracle. Plain word loops, always available, never intrinsics.

namespace scalar {

inline void AndInPlace(uint64_t* dst, const uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

inline void OrInPlace(uint64_t* dst, const uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

/// dst &= ~src, word by word.
inline void AndNotInPlace(uint64_t* dst, const uint64_t* src,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

/// True if any word of a & b is nonzero (the support probe).
inline bool Intersects(const uint64_t* a, const uint64_t* b,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

/// Lowest bit index set in a & b, or -1.
inline int64_t FirstCommonBit(const uint64_t* a, const uint64_t* b,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    if (w != 0) {
      return static_cast<int64_t>(i) * 64 + std::countr_zero(w);
    }
  }
  return -1;
}

/// Total set bits over the span.
inline int64_t PopCount(const uint64_t* w, std::size_t n) {
  int64_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += std::popcount(w[i]);
  return count;
}

/// Lowest set bit index >= from (bits numbered over the whole span), or
/// -1. `from` must be >= 0; from >= 64*n returns -1.
inline int64_t NextSetBit(const uint64_t* w, std::size_t n, int64_t from) {
  if (from >= static_cast<int64_t>(n) * 64) return -1;
  std::size_t wi = static_cast<std::size_t>(from >> 6);
  const uint64_t first = w[wi] >> (from & 63);
  if (first != 0) return from + std::countr_zero(first);
  for (++wi; wi < n; ++wi) {
    if (w[wi] != 0) {
      return static_cast<int64_t>(wi) * 64 + std::countr_zero(w[wi]);
    }
  }
  return -1;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatched primitives. One definition per backend; remainders (spans
// not divisible by the vector width) finish on the scalar loop.

#if defined(CSPDB_SIMD_AVX2)

namespace avx2_internal {

/// Per-64-bit-lane popcount of v via the nibble-LUT (vpshufb) method;
/// the four lane sums come back through _mm256_sad_epu8.
inline __m256i PopCount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline __m256i Load(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void Store(uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

}  // namespace avx2_internal

inline void AndInPlace(uint64_t* dst, const uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    avx2_internal::Store(
        dst + i, _mm256_and_si256(avx2_internal::Load(dst + i),
                                  avx2_internal::Load(src + i)));
  }
  scalar::AndInPlace(dst + i, src + i, n - i);
}

inline void OrInPlace(uint64_t* dst, const uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    avx2_internal::Store(
        dst + i, _mm256_or_si256(avx2_internal::Load(dst + i),
                                 avx2_internal::Load(src + i)));
  }
  scalar::OrInPlace(dst + i, src + i, n - i);
}

inline void AndNotInPlace(uint64_t* dst, const uint64_t* src,
                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // andnot(a, b) = ~a & b, so src goes first.
    avx2_internal::Store(
        dst + i, _mm256_andnot_si256(avx2_internal::Load(src + i),
                                     avx2_internal::Load(dst + i)));
  }
  scalar::AndNotInPlace(dst + i, src + i, n - i);
}

inline bool Intersects(const uint64_t* a, const uint64_t* b,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // testz(a, b) == 1 iff (a & b) == 0 — the block-level support probe.
    if (!_mm256_testz_si256(avx2_internal::Load(a + i),
                            avx2_internal::Load(b + i))) {
      return true;
    }
  }
  return scalar::Intersects(a + i, b + i, n - i);
}

inline int64_t FirstCommonBit(const uint64_t* a, const uint64_t* b,
                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (!_mm256_testz_si256(avx2_internal::Load(a + i),
                            avx2_internal::Load(b + i))) {
      // The hit is inside this 4-word block; pin it down scalar-wise.
      return static_cast<int64_t>(i) * 64 +
             scalar::FirstCommonBit(a + i, b + i, 4);
    }
  }
  const int64_t tail = scalar::FirstCommonBit(a + i, b + i, n - i);
  return tail < 0 ? -1 : static_cast<int64_t>(i) * 64 + tail;
}

inline int64_t PopCount(const uint64_t* w, std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, avx2_internal::PopCount256(avx2_internal::Load(w + i)));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<int64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]) +
         scalar::PopCount(w + i, n - i);
}

inline int64_t NextSetBit(const uint64_t* w, std::size_t n, int64_t from) {
  if (from >= static_cast<int64_t>(n) * 64) return -1;
  std::size_t wi = static_cast<std::size_t>(from >> 6);
  const uint64_t first = w[wi] >> (from & 63);
  if (first != 0) return from + std::countr_zero(first);
  ++wi;
  // Round up to the next 4-word block boundary scalar-wise, then skip
  // all-zero blocks with testz.
  for (; wi < n && (wi & 3) != 0; ++wi) {
    if (w[wi] != 0) {
      return static_cast<int64_t>(wi) * 64 + std::countr_zero(w[wi]);
    }
  }
  for (; wi + 4 <= n; wi += 4) {
    const __m256i v = avx2_internal::Load(w + wi);
    if (!_mm256_testz_si256(v, v)) break;
  }
  for (; wi < n; ++wi) {
    if (w[wi] != 0) {
      return static_cast<int64_t>(wi) * 64 + std::countr_zero(w[wi]);
    }
  }
  return -1;
}

#elif defined(CSPDB_SIMD_NEON)

namespace neon_internal {

/// True if any bit of the 128-bit register is set.
inline bool AnySet(uint64x2_t v) {
  return vmaxvq_u32(vreinterpretq_u32_u64(v)) != 0;
}

}  // namespace neon_internal

inline void AndInPlace(uint64_t* dst, const uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  scalar::AndInPlace(dst + i, src + i, n - i);
}

inline void OrInPlace(uint64_t* dst, const uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  scalar::OrInPlace(dst + i, src + i, n - i);
}

inline void AndNotInPlace(uint64_t* dst, const uint64_t* src,
                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // vbicq(a, b) = a & ~b.
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  scalar::AndNotInPlace(dst + i, src + i, n - i);
}

inline bool Intersects(const uint64_t* a, const uint64_t* b,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (neon_internal::AnySet(
            vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) {
      return true;
    }
  }
  return scalar::Intersects(a + i, b + i, n - i);
}

inline int64_t FirstCommonBit(const uint64_t* a, const uint64_t* b,
                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (neon_internal::AnySet(
            vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) {
      return static_cast<int64_t>(i) * 64 +
             scalar::FirstCommonBit(a + i, b + i, 2);
    }
  }
  const int64_t tail = scalar::FirstCommonBit(a + i, b + i, n - i);
  return tail < 0 ? -1 : static_cast<int64_t>(i) * 64 + tail;
}

inline int64_t PopCount(const uint64_t* w, std::size_t n) {
  std::size_t i = 0;
  uint64x2_t acc = vdupq_n_u64(0);
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t bytes =
        vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(w + i)));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes))));
  }
  return static_cast<int64_t>(vgetq_lane_u64(acc, 0) +
                              vgetq_lane_u64(acc, 1)) +
         scalar::PopCount(w + i, n - i);
}

inline int64_t NextSetBit(const uint64_t* w, std::size_t n, int64_t from) {
  if (from >= static_cast<int64_t>(n) * 64) return -1;
  std::size_t wi = static_cast<std::size_t>(from >> 6);
  const uint64_t first = w[wi] >> (from & 63);
  if (first != 0) return from + std::countr_zero(first);
  ++wi;
  for (; wi < n && (wi & 1) != 0; ++wi) {
    if (w[wi] != 0) {
      return static_cast<int64_t>(wi) * 64 + std::countr_zero(w[wi]);
    }
  }
  for (; wi + 2 <= n; wi += 2) {
    if (neon_internal::AnySet(vld1q_u64(w + wi))) break;
  }
  for (; wi < n; ++wi) {
    if (w[wi] != 0) {
      return static_cast<int64_t>(wi) * 64 + std::countr_zero(w[wi]);
    }
  }
  return -1;
}

#else  // scalar fallback

inline void AndInPlace(uint64_t* dst, const uint64_t* src, std::size_t n) {
  scalar::AndInPlace(dst, src, n);
}

inline void OrInPlace(uint64_t* dst, const uint64_t* src, std::size_t n) {
  scalar::OrInPlace(dst, src, n);
}

inline void AndNotInPlace(uint64_t* dst, const uint64_t* src,
                          std::size_t n) {
  scalar::AndNotInPlace(dst, src, n);
}

inline bool Intersects(const uint64_t* a, const uint64_t* b,
                       std::size_t n) {
  return scalar::Intersects(a, b, n);
}

inline int64_t FirstCommonBit(const uint64_t* a, const uint64_t* b,
                              std::size_t n) {
  return scalar::FirstCommonBit(a, b, n);
}

inline int64_t PopCount(const uint64_t* w, std::size_t n) {
  return scalar::PopCount(w, n);
}

inline int64_t NextSetBit(const uint64_t* w, std::size_t n, int64_t from) {
  return scalar::NextSetBit(w, n, from);
}

#endif

}  // namespace cspdb::simd

#endif  // CSPDB_UTIL_SIMD_H_
