// Deterministic random-number helper used by the workload generators.

#ifndef CSPDB_UTIL_RNG_H_
#define CSPDB_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace cspdb {

/// A seeded pseudo-random generator. All cspdb instance generators take an
/// Rng so experiments are reproducible run to run.
class Rng {
 public:
  /// Creates a generator from a fixed seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  void Shuffle(std::vector<int>* v);

  /// `k` distinct integers sampled uniformly from [0, n). Requires k <= n.
  std::vector<int> SampleDistinct(int n, int k);

  /// Access to the underlying engine for use with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cspdb

#endif  // CSPDB_UTIL_RNG_H_
