#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace cspdb::internal {

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::fprintf(stderr, "CSPDB_CHECK failed: %s at %s:%d %s\n", expr, file,
               line, message.c_str());
  std::abort();
}

}  // namespace cspdb::internal
