#include "util/rng.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace cspdb {

int Rng::UniformInt(int lo, int hi) {
  CSPDB_CHECK(lo <= hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

void Rng::Shuffle(std::vector<int>* v) {
  std::shuffle(v->begin(), v->end(), engine_);
}

std::vector<int> Rng::SampleDistinct(int n, int k) {
  CSPDB_CHECK(k <= n);
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  Shuffle(&all);
  all.resize(k);
  return all;
}

}  // namespace cspdb
