// Annotated synchronization primitives: the one place in cspdb that is
// allowed to touch <mutex>/<condition_variable>/<shared_mutex> directly
// (enforced by tools/lint_cspdb.py's raw-sync rule). Everything else in
// the tree locks through these wrappers, which carry Clang thread-safety
// annotations so locking invariants are checked at compile time:
//
//   * a field declared CSPDB_GUARDED_BY(mu) cannot be read or written
//     unless `mu` is held (negative-compile-tested in
//     tests/thread_safety_compile_test/);
//   * a helper declared CSPDB_REQUIRES(mu) cannot be called without
//     holding `mu`;
//   * MutexLock/ReaderLock are scoped capabilities, so "forgot to
//     unlock on an early return" is a compile error, not a deadlock.
//
// The analysis runs under `cmake -DCSPDB_THREAD_SAFETY=ON` on Clang
// (-Wthread-safety -Werror=thread-safety; CI job `thread-safety`). On
// GCC and other compilers every annotation macro expands to nothing and
// the wrappers are zero-cost veneers over the std primitives, so the
// contract is checked where Clang is available and free everywhere else.
//
// Lock-order hierarchy (DESIGN.md "Static analysis tiers" has the full
// rationale): pool deque -> pool idle latch | group -> single-flight
// table -> flight -> cache shard. Shard and per-node mutexes are leaf
// locks: nothing may be acquired while holding one. Clang's
// ACQUIRED_AFTER/ACQUIRED_BEFORE attributes can only name mutexes
// reachable from the annotated declaration (same object or globals), so
// the one cross-object nesting in the tree (SingleFlight::mu_ before
// Flight::mu) is documented at both declarations and enforced by
// construction instead.
//
// Condition-variable style note: CondVar::Wait deliberately has no
// predicate overload. A predicate lambda is analyzed as a separate
// function that does not hold the capability, so `cv.wait(lock, pred)`
// reading guarded state inside `pred` cannot be annotation-clean. Write
// the loop at the call site instead — the enclosing scope holds the
// lock, so the guarded reads check:
//
//   MutexLock lock(mu_);
//   while (pending_ != 0) cv_.Wait(mu_);

#ifndef CSPDB_UTIL_SYNC_H_
#define CSPDB_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Annotation macros. Active on Clang (any build — they are type
// annotations, not code); the CSPDB_THREAD_SAFETY CMake option merely
// turns on the warnings that read them. Empty on other compilers.

#if defined(__clang__)
#define CSPDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CSPDB_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex" in diagnostics).
#define CSPDB_CAPABILITY(x) CSPDB_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define CSPDB_SCOPED_CAPABILITY CSPDB_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: may only be accessed while holding `x`.
#define CSPDB_GUARDED_BY(x) CSPDB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field annotation: the pointee may only be accessed while
/// holding `x` (the pointer itself is unguarded).
#define CSPDB_PT_GUARDED_BY(x) CSPDB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: the caller must hold the listed capabilities
/// exclusively (they are not acquired or released by the function).
#define CSPDB_REQUIRES(...) \
  CSPDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotation: the caller must hold the listed capabilities at
/// least shared.
#define CSPDB_REQUIRES_SHARED(...) \
  CSPDB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (exclusively);
/// they must not already be held.
#define CSPDB_ACQUIRE(...) \
  CSPDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities shared.
#define CSPDB_ACQUIRE_SHARED(...) \
  CSPDB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities (exclusive or,
/// for scoped capabilities, whatever mode was acquired).
#define CSPDB_RELEASE(...) \
  CSPDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function annotation: releases capabilities held shared.
#define CSPDB_RELEASE_SHARED(...) \
  CSPDB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function annotation: tries to acquire; returns `ret` on success.
#define CSPDB_TRY_ACQUIRE(ret, ...) \
  CSPDB_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function annotation: the listed capabilities must NOT be held on
/// entry (deadlock prevention for self-locking public entry points).
#define CSPDB_EXCLUDES(...) \
  CSPDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a static lock-acquisition order: this capability must be
/// acquired after the listed ones. Checked under -Wthread-safety-beta;
/// only expressible between declarations that can name each other.
#define CSPDB_ACQUIRED_AFTER(...) \
  CSPDB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Dual of CSPDB_ACQUIRED_AFTER.
#define CSPDB_ACQUIRED_BEFORE(...) \
  CSPDB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held (for
/// code reached only via paths the analysis cannot follow).
#define CSPDB_ASSERT_CAPABILITY(x) \
  CSPDB_THREAD_ANNOTATION(assert_capability(x))

/// Function annotation: returns a reference to the named capability.
#define CSPDB_RETURN_CAPABILITY(x) CSPDB_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment explaining why the locking is correct anyway.
#define CSPDB_NO_THREAD_SAFETY_ANALYSIS \
  CSPDB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cspdb::util {

class CondVar;

/// An exclusive mutex (std::mutex) carrying the `capability` annotation.
/// Prefer the MutexLock RAII guard; explicit Lock/Unlock is for the rare
/// multi-exit protocol code (single-flight follower loops) where every
/// path's lock state is still statically checked.
class CSPDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CSPDB_ACQUIRE() { mu_.lock(); }
  void Unlock() CSPDB_RELEASE() { mu_.unlock(); }
  bool TryLock() CSPDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// A reader/writer mutex (std::shared_mutex). Writers use Lock/Unlock or
/// MutexLock; readers use LockShared/UnlockShared or ReaderLock.
class CSPDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() CSPDB_ACQUIRE() { mu_.lock(); }
  void Unlock() CSPDB_RELEASE() { mu_.unlock(); }
  bool TryLock() CSPDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() CSPDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() CSPDB_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() CSPDB_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex or SharedMutex (writer mode).
class CSPDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CSPDB_ACQUIRE(mu) : mu_(&mu) { mu.Lock(); }
  explicit MutexLock(SharedMutex& mu) CSPDB_ACQUIRE(mu) : shared_(&mu) {
    mu.Lock();
  }
  ~MutexLock() CSPDB_RELEASE() {
    if (mu_ != nullptr) {
      mu_->Unlock();
    } else {
      shared_->Unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_ = nullptr;
  SharedMutex* shared_ = nullptr;
};

/// RAII shared (reader) lock over a SharedMutex.
class CSPDB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) CSPDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() CSPDB_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// A condition variable bound to util::Mutex. Waits release and reacquire
/// the mutex (annotated CSPDB_REQUIRES: held on entry and on return). No
/// predicate overloads — see the header comment for the call-site loop
/// idiom that keeps predicates inside the analyzed scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). `mu` must be held.
  void Wait(Mutex& mu) CSPDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// Blocks until notified or `timeout` elapses. Returns false on
  /// timeout. `mu` must be held.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      CSPDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Blocks until notified or the absolute `deadline` passes. Returns
  /// false on timeout. `mu` must be held.
  template <class Clock, class Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      CSPDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cspdb::util

#endif  // CSPDB_UTIL_SYNC_H_
