// Lightweight runtime-check macros used across cspdb.
//
// The library does not use exceptions in its public API (Google style);
// violated preconditions are programmer errors and abort with a message.

#ifndef CSPDB_UTIL_CHECK_H_
#define CSPDB_UTIL_CHECK_H_

#include <string>

namespace cspdb::internal {

/// Prints a check-failure message to stderr and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& message);

}  // namespace cspdb::internal

/// Aborts with a diagnostic if `cond` is false. Always evaluated (not
/// compiled out in release builds): cspdb checks guard API contracts, not
/// hot inner loops.
#define CSPDB_CHECK(cond)                                               \
  (static_cast<bool>(cond)                                              \
       ? (void)0                                                        \
       : ::cspdb::internal::CheckFailed(#cond, __FILE__, __LINE__, ""))

/// Like CSPDB_CHECK but appends `msg` (anything convertible to
/// std::string via operator+) to the diagnostic.
#define CSPDB_CHECK_MSG(cond, msg)                                        \
  (static_cast<bool>(cond)                                                \
       ? (void)0                                                          \
       : ::cspdb::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg)))

#endif  // CSPDB_UTIL_CHECK_H_
