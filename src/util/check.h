// Lightweight runtime-check macros used across cspdb.
//
// The library does not use exceptions in its public API (Google style);
// violated preconditions are programmer errors and abort with a message.

#ifndef CSPDB_UTIL_CHECK_H_
#define CSPDB_UTIL_CHECK_H_

#include <string>

namespace cspdb::internal {

/// Prints a check-failure message to stderr and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& message);

}  // namespace cspdb::internal

/// Aborts with a diagnostic if `cond` is false. Always evaluated (not
/// compiled out in release builds): cspdb checks guard API contracts, not
/// hot inner loops.
#define CSPDB_CHECK(cond)                                               \
  (static_cast<bool>(cond)                                              \
       ? (void)0                                                        \
       : ::cspdb::internal::CheckFailed(#cond, __FILE__, __LINE__, ""))

/// Like CSPDB_CHECK but appends `msg` (anything convertible to
/// std::string via operator+) to the diagnostic.
#define CSPDB_CHECK_MSG(cond, msg)                                        \
  (static_cast<bool>(cond)                                                \
       ? (void)0                                                          \
       : ::cspdb::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg)))

// ---------------------------------------------------------------------------
// Audit tier: deep structural invariants, compiled out of Release hot loops.
//
// CSPDB_AUDIT_ENABLED is 1 in builds without NDEBUG (Debug) and in any
// build compiled with -DCSPDB_ENABLE_AUDITS — the CMake sanitizer presets
// (-DCSPDB_SANITIZE=address|undefined) define it so that ASan/UBSan runs
// also exercise every structural audit. In Release/RelWithDebInfo the
// macros expand to nothing (operands are not evaluated), so producers can
// afford O(artifact)-cost validation at every certificate hand-off.

#if defined(CSPDB_ENABLE_AUDITS) || !defined(NDEBUG)
#define CSPDB_AUDIT_ENABLED 1
#else
#define CSPDB_AUDIT_ENABLED 0
#endif

#if CSPDB_AUDIT_ENABLED

/// Debug-tier CSPDB_CHECK: aborts on violation in audit builds, expands
/// to nothing (condition unevaluated) otherwise.
#define CSPDB_DCHECK(cond) CSPDB_CHECK(cond)

/// Debug-tier CSPDB_CHECK_MSG.
#define CSPDB_DCHECK_MSG(cond, msg) CSPDB_CHECK_MSG(cond, msg)

/// Executes `stmt` — typically `AuditOrDie("...", Validate...(...))` from
/// analysis/diagnostics.h — in audit builds only.
#define CSPDB_AUDIT(stmt) \
  do {                    \
    stmt;                 \
  } while (false)

#else

// sizeof keeps the operands type-checked and "used" without evaluating
// them, so audit-only locals don't trip -Wunused in Release.
#define CSPDB_DCHECK(cond) ((void)sizeof(!(cond)))
#define CSPDB_DCHECK_MSG(cond, msg) ((void)sizeof(!(cond)))
#define CSPDB_AUDIT(stmt) \
  do {                    \
    if (false) {          \
      stmt;               \
    }                     \
  } while (false)

#endif  // CSPDB_AUDIT_ENABLED

#endif  // CSPDB_UTIL_CHECK_H_
