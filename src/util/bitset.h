// A fixed-capacity dynamic bitset over 64-bit words: the packed
// representation behind the propagation kernels (domains as bit rows,
// constraint tables as tuple-index masks). Word-parallel intersection
// turns per-tuple support scans into a handful of AND+CTZ instructions,
// which is where the "as fast as the hardware allows" budget for GAC and
// join evaluation actually lives.
//
// Unlike std::vector<bool> this exposes the raw words, and unlike
// std::bitset the capacity is a runtime value. All bits above size() are
// kept zero as a class invariant, so whole-word operations need no
// per-call masking.
//
// Every whole-word loop routes through the span primitives in
// util/simd.h, so the AVX2/NEON/scalar backend choice (CSPDB_SIMD)
// retargets the bitset without touching any call site. Word-index
// arithmetic in the scan operations is int64_t inside simd.h, so
// NextSetBit/FirstCommonBit cannot wrap even at capacities approaching
// the int-sized bit-index limit.

#ifndef CSPDB_UTIL_BITSET_H_
#define CSPDB_UTIL_BITSET_H_

#include <bit>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/simd.h"

namespace cspdb {

/// A set of bits indexed 0..size()-1, packed 64 per word.
class Bitset {
 public:
  Bitset() = default;

  /// Creates a bitset of `size` bits, all set to `value`.
  explicit Bitset(int size, bool value = false) { Resize(size, value); }

  /// Resets to `size` bits, all set to `value` (discards old contents).
  void Resize(int size, bool value = false) {
    CSPDB_DCHECK(size >= 0);
    size_ = size;
    words_.assign(NumWordsFor(size), value ? ~uint64_t{0} : uint64_t{0});
    if (value) MaskTail();
  }

  int size() const { return size_; }

  /// True if bit `i` is set.
  bool Test(int i) const {
    CSPDB_DCHECK(i >= 0 && i < size_);
    return (words_[static_cast<std::size_t>(i) >> 6] >> (i & 63)) & 1u;
  }

  /// Read-only indexing, so `bits[i]` reads like the byte-map it replaced.
  bool operator[](int i) const { return Test(i); }

  void Set(int i) {
    CSPDB_DCHECK(i >= 0 && i < size_);
    words_[static_cast<std::size_t>(i) >> 6] |= uint64_t{1} << (i & 63);
  }

  void Reset(int i) {
    CSPDB_DCHECK(i >= 0 && i < size_);
    words_[static_cast<std::size_t>(i) >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void SetAll() {
    for (uint64_t& w : words_) w = ~uint64_t{0};
    MaskTail();
  }

  void ResetAll() {
    for (uint64_t& w : words_) w = 0;
  }

  /// Number of set bits.
  int Count() const {
    return static_cast<int>(simd::PopCount(words_.data(), words_.size()));
  }

  bool Any() const {
    return simd::NextSetBit(words_.data(), words_.size(), 0) >= 0;
  }

  bool None() const { return !Any(); }

  /// Index of the lowest set bit, or -1 if empty.
  int FindFirst() const { return NextSetBit(0); }

  /// Index of the lowest set bit >= `from`, or -1 if none. The scan is
  /// done in int64_t bit indices (simd.h), so the word-index arithmetic
  /// cannot wrap for large capacities; the result always fits in int
  /// because any set bit is < size().
  int NextSetBit(int from) const {
    if (from < 0) from = 0;
    if (from >= size_) return -1;
    return static_cast<int>(
        simd::NextSetBit(words_.data(), words_.size(), from));
  }

  /// this &= other. Sizes must match.
  void AndWith(const Bitset& other) {
    CSPDB_DCHECK(size_ == other.size_);
    simd::AndInPlace(words_.data(), other.words_.data(), words_.size());
  }

  /// this |= other. Sizes must match.
  void OrWith(const Bitset& other) {
    CSPDB_DCHECK(size_ == other.size_);
    simd::OrInPlace(words_.data(), other.words_.data(), words_.size());
  }

  /// this &= ~other (clears every bit set in `other`). Sizes must match.
  void AndNotWith(const Bitset& other) {
    CSPDB_DCHECK(size_ == other.size_);
    simd::AndNotInPlace(words_.data(), other.words_.data(), words_.size());
  }

  /// True if this and `other` share a set bit. Sizes must match.
  bool Intersects(const Bitset& other) const {
    CSPDB_DCHECK(size_ == other.size_);
    return IntersectsWords(other.words_.data());
  }

  /// Word-span variants for masks stored in flat arenas (e.g. one
  /// contiguous array of rows per constraint, csp/support_masks.h). The
  /// span must hold num_words() words with zero bits above size().
  bool IntersectsWords(const uint64_t* other) const {
    return simd::Intersects(words_.data(), other, words_.size());
  }

  int FirstCommonBitWords(const uint64_t* other) const {
    return static_cast<int>(
        simd::FirstCommonBit(words_.data(), other, words_.size()));
  }

  void AndNotWithWords(const uint64_t* other) {
    simd::AndNotInPlace(words_.data(), other, words_.size());
  }

  /// Lowest index set in both this and `other`, or -1 if the intersection
  /// is empty. The word-parallel support probe: one AND per word until a
  /// hit, then a count-trailing-zeros.
  int FirstCommonBit(const Bitset& other) const {
    CSPDB_DCHECK(size_ == other.size_);
    return FirstCommonBitWords(other.words_.data());
  }

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }
  bool operator!=(const Bitset& other) const { return !(*this == other); }

  /// Raw word access for trailing/undo schemes that must observe which
  /// words an update changed.
  int num_words() const { return static_cast<int>(words_.size()); }
  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  /// "1011…" dump, bit 0 first, for tests and debugging.
  std::string DebugString() const {
    std::string out;
    out.reserve(static_cast<std::size_t>(size_));
    for (int i = 0; i < size_; ++i) out += Test(i) ? '1' : '0';
    return out;
  }

  static std::size_t NumWordsFor(int bits) {
    return (static_cast<std::size_t>(bits) + 63) >> 6;
  }

 private:
  // Clears the bits above size_ in the last word (class invariant).
  void MaskTail() {
    if ((size_ & 63) != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (size_ & 63)) - 1;
    }
  }

  int size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cspdb

#endif  // CSPDB_UTIL_BITSET_H_
