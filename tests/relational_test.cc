// Tests for vocabularies, structures, homomorphisms, and structure ops.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "relational/structure.h"
#include "relational/structure_ops.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(Vocabulary, AddAndLookup) {
  Vocabulary voc;
  int e = voc.AddSymbol("E", 2);
  int p = voc.AddSymbol("P", 1);
  EXPECT_EQ(voc.size(), 2);
  EXPECT_EQ(voc.IndexOf("E"), e);
  EXPECT_EQ(voc.IndexOf("P"), p);
  EXPECT_EQ(voc.IndexOf("missing"), -1);
  EXPECT_EQ(voc.symbol(e).arity, 2);
  EXPECT_EQ(voc.MaxArity(), 2);
}

TEST(Vocabulary, EqualityIsStructural) {
  Vocabulary a, b;
  a.AddSymbol("E", 2);
  b.AddSymbol("E", 2);
  EXPECT_TRUE(a == b);
  b.AddSymbol("P", 1);
  EXPECT_FALSE(a == b);
}

TEST(Structure, TuplesDeduplicated) {
  Structure s(GraphVocabulary(), 3);
  s.AddTuple(0, {0, 1});
  s.AddTuple(0, {0, 1});
  s.AddTuple(0, {1, 2});
  EXPECT_EQ(s.tuples(0).size(), 2u);
  EXPECT_EQ(s.TotalTuples(), 2);
  EXPECT_TRUE(s.HasTuple(0, {0, 1}));
  EXPECT_FALSE(s.HasTuple(0, {2, 0}));
}

TEST(Structure, AddByName) {
  Structure s(GraphVocabulary(), 2);
  s.AddTuple("E", {0, 1});
  EXPECT_TRUE(s.HasTuple(0, {0, 1}));
}

TEST(Structure, ElementNames) {
  Structure s(GraphVocabulary(), 2);
  EXPECT_EQ(s.ElementName(0), "e0");
  s.SetElementName(0, "alice");
  EXPECT_EQ(s.ElementName(0), "alice");
  EXPECT_EQ(s.ElementName(1), "e1");
}

TEST(Structure, SameTuplesAs) {
  Structure a(GraphVocabulary(), 2), b(GraphVocabulary(), 2);
  a.AddTuple(0, {0, 1});
  b.AddTuple(0, {0, 1});
  EXPECT_TRUE(a.SameTuplesAs(b));
  b.AddTuple(0, {1, 0});
  EXPECT_FALSE(a.SameTuplesAs(b));
}

TEST(Homomorphism, IdentityIsHomomorphism) {
  Structure g = CycleGraph(5);
  std::vector<int> id{0, 1, 2, 3, 4};
  EXPECT_TRUE(IsHomomorphism(g, g, id));
}

TEST(Homomorphism, EdgeReversalIsNotAlwaysHomomorphism) {
  Vocabulary voc = GraphVocabulary();
  Structure a(voc, 2), b(voc, 2);
  a.AddTuple(0, {0, 1});
  b.AddTuple(0, {1, 0});
  EXPECT_FALSE(IsHomomorphism(a, b, {0, 1}));
  EXPECT_TRUE(IsHomomorphism(a, b, {1, 0}));
}

TEST(Homomorphism, PartialChecksOnlyCoveredTuples) {
  Structure a(GraphVocabulary(), 3);
  a.AddTuple(0, {0, 1});
  a.AddTuple(0, {1, 2});
  Structure b = CliqueGraph(2);
  // Map 0 and 1 to the same vertex: violates the covered edge (0,1).
  EXPECT_FALSE(IsPartialHomomorphism(a, b, {0, 0, kUnassigned}));
  // Map only 0: edge (0,1) not covered.
  EXPECT_TRUE(IsPartialHomomorphism(a, b, {0, kUnassigned, kUnassigned}));
}

TEST(Homomorphism, EvenCycleMapsToEdge) {
  EXPECT_TRUE(FindHomomorphism(CycleGraph(4), CliqueGraph(2)).has_value());
  EXPECT_TRUE(FindHomomorphism(CycleGraph(6), CliqueGraph(2)).has_value());
}

TEST(Homomorphism, OddCycleNeedsThreeColors) {
  EXPECT_FALSE(FindHomomorphism(CycleGraph(5), CliqueGraph(2)).has_value());
  EXPECT_TRUE(FindHomomorphism(CycleGraph(5), CliqueGraph(3)).has_value());
}

TEST(Homomorphism, FoundMappingIsVerified) {
  Rng rng(7);
  Structure a = RandomUndirectedGraph(6, 0.4, &rng);
  Structure b = CliqueGraph(3);
  auto h = FindHomomorphism(a, b);
  if (h.has_value()) {
    EXPECT_TRUE(IsHomomorphism(a, b, *h));
  }
}

TEST(Homomorphism, EmptyDomainAlwaysMaps) {
  Structure a(GraphVocabulary(), 0), b(GraphVocabulary(), 0);
  EXPECT_TRUE(FindHomomorphism(a, b).has_value());
}

TEST(Homomorphism, NonemptyToEmptyFails) {
  Structure a(GraphVocabulary(), 1), b(GraphVocabulary(), 0);
  EXPECT_FALSE(FindHomomorphism(a, b).has_value());
  EXPECT_EQ(CountHomomorphisms(a, b), 0);
}

TEST(Homomorphism, CountOnEdgelessStructures) {
  // 2 isolated vertices into 3 vertices: 3^2 maps, all homomorphisms.
  Structure a(GraphVocabulary(), 2), b(GraphVocabulary(), 3);
  EXPECT_EQ(CountHomomorphisms(a, b), 9);
  EXPECT_EQ(CountHomomorphisms(a, b, 4), 4);  // limit respected
}

TEST(Homomorphism, CountEdgeToClique) {
  // An edge into K3: ordered pairs of distinct colors = 6.
  Structure a = PathGraph(2);
  EXPECT_EQ(CountHomomorphisms(a, CliqueGraph(3)), 6);
}

TEST(Homomorphism, ForEachVisitsExactlyTheHomomorphisms) {
  Structure a = PathGraph(2);
  Structure b = CliqueGraph(3);
  std::vector<std::vector<int>> seen;
  int64_t visited = ForEachHomomorphism(a, b, [&](const auto& h) {
    seen.push_back(h);
    return true;
  });
  EXPECT_EQ(visited, 6);
  EXPECT_EQ(seen.size(), 6u);
  for (const auto& h : seen) {
    EXPECT_TRUE(IsHomomorphism(a, b, h));
  }
  // Early stop after two.
  int64_t stopped = ForEachHomomorphism(a, b, [count = 0](
                                                  const auto&) mutable {
    return ++count < 2;
  });
  EXPECT_EQ(stopped, 2);
}

TEST(Homomorphism, HomomorphicEquivalenceOfEvenCycleAndEdge) {
  EXPECT_TRUE(HomomorphicallyEquivalent(CycleGraph(4), CliqueGraph(2)));
  EXPECT_FALSE(HomomorphicallyEquivalent(CycleGraph(5), CliqueGraph(2)));
}

TEST(StructureOps, DisjointSumEncodesBothSides) {
  Structure a = PathGraph(2);
  Structure b = CycleGraph(3);
  Structure sum = DisjointSum(a, b);
  EXPECT_EQ(sum.domain_size(), 5);
  const Vocabulary& voc = sum.vocabulary();
  EXPECT_GE(voc.IndexOf("E_1"), 0);
  EXPECT_GE(voc.IndexOf("E_2"), 0);
  EXPECT_GE(voc.IndexOf("D_1"), 0);
  EXPECT_GE(voc.IndexOf("D_2"), 0);
  EXPECT_EQ(sum.tuples(voc.IndexOf("E_1")).size(), a.tuples(0).size());
  EXPECT_EQ(sum.tuples(voc.IndexOf("E_2")).size(), b.tuples(0).size());
  EXPECT_EQ(sum.tuples(voc.IndexOf("D_1")).size(), 2u);
  EXPECT_EQ(sum.tuples(voc.IndexOf("D_2")).size(), 3u);
  // B's edge (0,1) is shifted by |A|.
  EXPECT_TRUE(sum.HasTuple(voc.IndexOf("E_2"), {2, 3}));
}

TEST(StructureOps, InducedSubstructureKeepsInternalTuples) {
  Structure g = CycleGraph(5);
  Structure sub = InducedSubstructure(g, {0, 1, 2});
  EXPECT_EQ(sub.domain_size(), 3);
  // Edges 0-1 and 1-2 survive (renumbered), 4-0 and 2-3 do not.
  EXPECT_TRUE(sub.HasTuple(0, {0, 1}));
  EXPECT_TRUE(sub.HasTuple(0, {1, 2}));
  EXPECT_EQ(sub.tuples(0).size(), 4u);  // both directions of two edges
}

TEST(StructureOps, ProductMultipliesHomomorphismCounts) {
  Rng rng(11);
  Structure c = PathGraph(3);
  Structure a = CliqueGraph(2);
  Structure b = CliqueGraph(3);
  Structure prod = DirectProduct(a, b);
  EXPECT_EQ(CountHomomorphisms(c, prod),
            CountHomomorphisms(c, a) * CountHomomorphisms(c, b));
}

TEST(StructureOps, ProductProjectionsAreHomomorphisms) {
  Structure a = CycleGraph(4);
  Structure b = CliqueGraph(3);
  Structure prod = DirectProduct(a, b);
  // First projection.
  std::vector<int> proj(prod.domain_size());
  for (int x = 0; x < a.domain_size(); ++x) {
    for (int y = 0; y < b.domain_size(); ++y) {
      proj[x * b.domain_size() + y] = x;
    }
  }
  EXPECT_TRUE(IsHomomorphism(prod, a, proj));
}

}  // namespace
}  // namespace cspdb
