// Differential tests for the canonical k-Datalog program rho_B
// (Theorem 4.5(3)): its goal must be derivable on A exactly when the
// Spoiler wins the existential k-pebble game on (A, B), for random
// structures and classic templates.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "datalog/canonical_program.h"
#include "datalog/eval.h"
#include "games/pebble_game.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(CanonicalProgram, IsKDatalog) {
  // k must be at least the vocabulary arity (Definition 5.4 assumes a
  // k-ary vocabulary), so graphs need k >= 2.
  Structure k2 = CliqueGraph(2);
  for (int k = 2; k <= 3; ++k) {
    DatalogProgram p = CanonicalKDatalogProgram(k2, k);
    EXPECT_TRUE(p.IsKDatalog(k)) << "k=" << k << " width=" << p.Width();
    EXPECT_FALSE(p.goal().empty());
  }
}

TEST(CanonicalProgram, AgreesWithGameOnOddAndEvenCycles) {
  Structure k2 = CliqueGraph(2);
  for (int k = 2; k <= 3; ++k) {
    for (int n = 3; n <= 7; ++n) {
      Structure cn = CycleGraph(n);
      bool game_spoiler = !PebbleGame(cn, k2, k).DuplicatorWins();
      bool datalog_spoiler = SpoilerWinsViaDatalog(cn, k2, k);
      EXPECT_EQ(game_spoiler, datalog_spoiler) << "k=" << k << " n=" << n;
    }
  }
}

TEST(CanonicalProgram, ThreePebbleProgramDecidesTwoColorability) {
  // With k = 3 the game is exact on cycles/paths (treewidth <= 2), so
  // rho_{K2} with 3 pebbles is a Datalog program for Non-2-Colorability
  // on that class — the Theorem 4.6/5.7 story in executable form.
  Structure k2 = CliqueGraph(2);
  Rng rng(43);
  for (int trial = 0; trial < 8; ++trial) {
    Structure a = RandomTreewidthDigraph(6, 2, 0.7, &rng);
    // Make it symmetric so 2-colorability is the right notion.
    Structure sym(GraphVocabulary(), a.domain_size());
    for (const Tuple& t : a.tuples(0)) {
      sym.AddTuple(0, t);
      sym.AddTuple(0, {t[1], t[0]});
    }
    bool spoiler = SpoilerWinsViaDatalog(sym, k2, 3);
    EXPECT_EQ(spoiler, !FindHomomorphism(sym, k2).has_value()) << trial;
  }
}

TEST(CanonicalProgram, RandomDifferentialAgainstGameK2) {
  Rng rng(47);
  for (int trial = 0; trial < 12; ++trial) {
    Structure a = RandomDigraph(4, 0.4, &rng);
    Structure b = RandomDigraph(2, 0.6, &rng, /*allow_loops=*/true);
    bool game = !PebbleGame(a, b, 2).DuplicatorWins();
    bool datalog = SpoilerWinsViaDatalog(a, b, 2);
    EXPECT_EQ(game, datalog) << trial;
  }
}

TEST(CanonicalProgram, RandomDifferentialAgainstGameK3) {
  Rng rng(53);
  for (int trial = 0; trial < 6; ++trial) {
    Structure a = RandomDigraph(4, 0.35, &rng);
    Structure b = RandomDigraph(2, 0.5, &rng, /*allow_loops=*/true);
    bool game = !PebbleGame(a, b, 3).DuplicatorWins();
    bool datalog = SpoilerWinsViaDatalog(a, b, 3);
    EXPECT_EQ(game, datalog) << trial;
  }
}

TEST(CanonicalProgram, TemplateWithThreeElements) {
  Rng rng(61);
  Structure b = CycleGraph(3);  // K3 as a template: 3-colorability
  for (int trial = 0; trial < 5; ++trial) {
    Structure a = RandomUndirectedGraph(5, 0.4, &rng);
    bool game = !PebbleGame(a, b, 2).DuplicatorWins();
    bool datalog = SpoilerWinsViaDatalog(a, b, 2);
    EXPECT_EQ(game, datalog) << trial;
  }
}

TEST(CanonicalProgram, EmptyTemplate) {
  Structure a(GraphVocabulary(), 2);
  a.AddTuple(0, {0, 1});
  Structure b(GraphVocabulary(), 0);
  EXPECT_TRUE(SpoilerWinsViaDatalog(a, b, 2));
  Structure empty_a(GraphVocabulary(), 0);
  EXPECT_FALSE(SpoilerWinsViaDatalog(empty_a, b, 2));
}

TEST(CanonicalProgram, UnaryVocabulary) {
  // Template with a unary relation: P = {0}; input with P on both
  // elements of a 2-element domain maps iff each P-element can go to 0.
  Vocabulary voc;
  voc.AddSymbol("P", 1);
  voc.AddSymbol("N", 1);
  Structure b(voc, 2);
  b.AddTuple(0, {0});
  b.AddTuple(1, {1});
  Structure a(voc, 2);
  a.AddTuple(0, {0});
  a.AddTuple(1, {0});  // element 0 is both P and N: impossible in B
  EXPECT_TRUE(SpoilerWinsViaDatalog(a, b, 1));
  EXPECT_FALSE(PebbleGame(a, b, 1).DuplicatorWins());

  Structure a2(voc, 2);
  a2.AddTuple(0, {0});
  a2.AddTuple(1, {1});
  EXPECT_FALSE(SpoilerWinsViaDatalog(a2, b, 1));
  EXPECT_TRUE(PebbleGame(a2, b, 1).DuplicatorWins());
}

}  // namespace
}  // namespace cspdb
